"""Bench A-2 — ablation: landmark seeding policy (hybrid motivation).

With the SumDiff scoring norm held fixed, compares random landmarks
against MaxMin- and MaxAvg-dispersed landmarks across the budget sweep.
The hybrid claim is about *small* budgets: dispersion-seeded landmarks
are themselves useful candidates, so the hybrids should not trail the
random-seeded variant early in the sweep.
"""

import numpy as np

from repro.experiments import ablations

from conftest import emit


def test_ablation_landmark_seeding(benchmark, config):
    result = benchmark.pedantic(
        ablations.run_landmark_seeding, args=(config,), rounds=1, iterations=1
    )
    emit(ablations.render_landmark_seeding(result))

    assert set(result.curves) == {"random", "MaxMin", "MaxAvg"}
    for series in result.curves.values():
        assert len(series) == len(config.budget_sweep)
        assert all(0.0 <= v <= 1.0 for _, v in series)

    # Small-budget comparison (first half of the sweep).
    half = max(1, len(config.budget_sweep) // 2)
    early = {
        label: float(np.mean([c for _, c in series[:half]]))
        for label, series in result.curves.items()
    }
    emit(
        "early-budget mean coverage: "
        + ", ".join(f"{k}={100 * v:.1f}%" for k, v in early.items())
    )
    best_hybrid = max(early["MaxMin"], early["MaxAvg"])
    assert best_hybrid >= early["random"] - 0.15
