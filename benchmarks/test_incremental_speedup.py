"""Micro-benchmark: incremental t2-level repair against full recomputation.

Times the t2-levels phase of the ground-truth sweep — one t2 level array
per t1 source — over every catalog dataset at the benchmark scale, both
ways: a full BFS on ``G_t2`` per source versus an incremental repair of
the (pre-paid) t1 level array through one precomputed
:class:`~repro.graph.incremental.SnapshotDelta`.  The level arrays must
be bit-identical; the interesting number is the per-dataset speedup.

Repair wins where the inserted edges leave most levels untouched and
approaches parity (never a cliff: its cost is bounded by one full
traversal plus an O(Δm) seed scan) where the delta rewrites most of the
graph — the committed baseline records both honestly, and the CI gate in
``scripts/check_bench.py`` enforces the floor on the best dataset.

With ``REPRO_WRITE_BENCH`` set, writes the ``BENCH_incremental.json``
baseline at the repository root, stamped with host provenance following
the ``BENCH_parallel.json`` pattern.
"""

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.datasets import dataset_names, eval_snapshots, load
from repro.graph.csr import bfs_levels
from repro.graph.incremental import SnapshotDelta, repair_levels
from repro.parallel import available_start_method

from conftest import emit

BASELINE_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_incremental.json"
)
ROUNDS = 3


def _best_of(fn, rounds=ROUNDS):
    times = []
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return result, min(times)


def test_incremental_speedup(config):
    datasets = {}
    for name in dataset_names():
        g1, g2 = eval_snapshots(load(name, scale=config.scale))
        delta = SnapshotDelta.from_graphs(g1, g2)
        csr1, csr2 = delta.csr1, delta.csr2
        # Both engines pay the t1 phase identically — precompute it so
        # the timed region is exactly the t2-levels phase.
        rows1 = [bfs_levels(csr1, i) for i in range(csr1.num_nodes)]
        t2_indices = [csr2.index[u] for u in csr1.nodes]

        full, full_s = _best_of(
            lambda: [bfs_levels(csr2, i) for i in t2_indices]
        )
        repaired, incremental_s = _best_of(
            lambda: [repair_levels(delta, lv1) for lv1 in rows1]
        )
        for a, b in zip(full, repaired):
            assert np.array_equal(a, b)

        datasets[name] = {
            "nodes": csr2.num_nodes,
            "edges_t2": g2.num_edges,
            "new_edges": delta.num_new_edges,
            "new_nodes": delta.num_new_nodes,
            "full_s": round(full_s, 6),
            "incremental_s": round(incremental_s, 6),
            "speedup": round(full_s / incremental_s, 3),
        }

    speedup = {name: row["speedup"] for name, row in datasets.items()}
    lines = [f"Incremental t2-levels repair @ scale {config.scale}:"]
    for name, row in datasets.items():
        lines.append(
            f"  {name:<18} full {row['full_s'] * 1e3:8.1f} ms   "
            f"repair {row['incremental_s'] * 1e3:8.1f} ms   "
            f"({row['speedup']:.2f}x, Δm={row['new_edges']})"
        )
    emit("\n".join(lines))

    if os.environ.get("REPRO_WRITE_BENCH"):
        baseline = {
            "schema": "bench-incremental/v1",
            "scale": config.scale,
            "host": {
                "cpus": os.cpu_count() or 1,
                "platform": platform.system().lower(),
                "start_method": available_start_method(),
            },
            "datasets": datasets,
            "speedup": speedup,
        }
        BASELINE_PATH.write_text(
            json.dumps(baseline, indent=2) + "\n", encoding="utf-8"
        )
        emit(f"wrote {BASELINE_PATH}")

    # Algorithmic, not parallel: the win must exist on any host.  The
    # 1.3x catalog-scale floor on the best dataset is enforced on the
    # committed baseline by scripts/check_bench.py.
    assert max(speedup.values()) >= 1.0
