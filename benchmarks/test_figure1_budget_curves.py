"""Bench E-F1 — regenerate Figure 1 (coverage vs budget, landmark family).

Sweeps the budget for SumDiff/MaxDiff and the four hybrids on every
dataset and asserts the paper's curve shapes.
"""

import numpy as np

from repro.experiments import figure1

from conftest import emit


def _final(series):
    return series[-1][1]


def _auc(series):
    return float(np.mean([c for _, c in series]))


def test_figure1_budget_curves(benchmark, config):
    result = benchmark.pedantic(
        figure1.run, args=(config,), rounds=1, iterations=1
    )
    emit(figure1.render(result))

    for dataset, series in result.curves.items():
        for name, curve in series.items():
            assert len(curve) == len(config.budget_sweep)
            values = [c for _, c in curve]
            assert all(0.0 <= v <= 1.0 for v in values)
            # Averaged curves grow with budget up to noise.
            assert values[-1] >= values[0] - 0.1, (dataset, name)

    # Paper shape: SumDiff-normed curves dominate MaxDiff-normed ones in
    # area-under-curve, aggregated over datasets.
    sd = np.mean([
        _auc(series["SumDiff"]) + _auc(series["MMSD"]) + _auc(series["MASD"])
        for series in result.curves.values()
    ])
    md = np.mean([
        _auc(series["MaxDiff"]) + _auc(series["MMMD"]) + _auc(series["MAMD"])
        for series in result.curves.values()
    ])
    assert sd >= md - 0.1

    # Paper shape: the best hybrid reaches high coverage by the end of
    # the sweep on most datasets.
    finals = [
        max(_final(series[n]) for n in ("MMSD", "MASD", "MMMD", "MAMD"))
        for series in result.curves.values()
    ]
    assert sorted(finals)[len(finals) // 2] >= 0.5  # median dataset
