"""Micro-benchmark: Δ-aware pruned top-k pass against the unpruned pass.

Times the t2 phase of a top-k ground-truth pass — bound computation,
source ordering, and one (possibly skipped or level-cut) t2 traversal
per t1 source — against the same single-pass collection without bounds
or cuts, over every catalog dataset at the benchmark scale and for both
unweighted engines (incremental repair and plain CSR).  The t1 level
rows and the snapshot delta are precomputed outside the timed region:
both sides pay them identically, so the measured ratio is exactly what
pruning buys on the traversal phase.

The finalized top-k (sort by ``(−Δ, repr)``, truncate) must be
identical pruned and unpruned — the differential harness already pins
this across the whole matrix; the benchmark re-asserts it on the real
catalog graphs it times.

With ``REPRO_WRITE_BENCH`` set, writes the ``BENCH_prune.json``
baseline at the repository root (schema ``bench-prune/v1``), stamped
with host provenance and the per-engine skip/cut counters so every
recorded speedup is attributable.  The CI gate in
``scripts/check_bench.py`` enforces a 1.5x floor on the best
dataset/engine cell — the win is algorithmic, so it must exist on any
host.
"""

import json
import os
import platform
import time
from pathlib import Path

from repro.core.fastpairs import csr_top_k_rows
from repro.core.pairs import ConvergingPair, canonical_pair
from repro.datasets import dataset_names, eval_snapshots, load
from repro.graph.csr import bfs_levels
from repro.graph.incremental import SnapshotDelta
from repro.graph.prune import PruneStats
from repro.parallel import available_start_method

from conftest import emit

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_prune.json"
ROUNDS = 3
K = 10


def _best_of(fn, rounds=ROUNDS):
    times = []
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return result, min(times)


def _finalize(rows, k):
    pairs = []
    for u, v, d1, d2 in rows:
        cu, cv = canonical_pair(u, v)
        pairs.append(ConvergingPair(cu, cv, d1, d2))
    pairs.sort(key=ConvergingPair.sort_key)
    return pairs[:k]


def test_prune_speedup(config):
    datasets = {}
    speedup = {}
    for name in dataset_names():
        g1, g2 = eval_snapshots(load(name, scale=config.scale))
        delta = SnapshotDelta.from_graphs(g1, g2)
        csr1 = delta.csr1
        # Both sides pay the t1 phase and the delta identically —
        # precompute them so the timed region is the t2 phase alone.
        rows1 = [bfs_levels(csr1, i) for i in range(csr1.num_nodes)]

        engines = {}
        reference = None
        for engine, incremental in (("incremental", True), ("csr", False)):
            full_rows, full_s = _best_of(
                lambda inc=incremental: csr_top_k_rows(
                    g1, g2, K, incremental=inc, prune=False,
                    delta=delta, rows1=rows1,
                )
            )
            stats = PruneStats()
            pruned_rows, pruned_s = _best_of(
                lambda inc=incremental: csr_top_k_rows(
                    g1, g2, K, incremental=inc, prune=True,
                    delta=delta, rows1=rows1,
                    stats=PruneStats(),
                )
            )
            # One extra run to capture the counters outside the timing.
            csr_top_k_rows(
                g1, g2, K, incremental=incremental, prune=True,
                delta=delta, rows1=rows1, stats=stats,
            )
            top_full = _finalize(full_rows, K)
            top_pruned = _finalize(pruned_rows, K)
            assert top_pruned == top_full
            if reference is None:
                reference = top_full
            else:
                assert top_full == reference  # engines agree on the top-k
            engines[engine] = {
                "full_s": round(full_s, 6),
                "pruned_s": round(pruned_s, 6),
                "speedup": round(full_s / pruned_s, 3),
                "skipped": stats.skipped,
                "cut": stats.cut,
            }
            speedup[f"{name}:{engine}"] = engines[engine]["speedup"]

        kth_delta = int(reference[-1].delta) if reference else 0
        datasets[name] = {
            "nodes": delta.csr2.num_nodes,
            "edges_t2": g2.num_edges,
            "new_edges": delta.num_new_edges,
            "kth_delta": kth_delta,
            "engines": engines,
        }

    lines = [f"Δ-aware pruned top-{K} pass @ scale {config.scale}:"]
    for name, row in datasets.items():
        for engine, cell in row["engines"].items():
            lines.append(
                f"  {name:<14} {engine:<12} "
                f"full {cell['full_s'] * 1e3:8.1f} ms   "
                f"pruned {cell['pruned_s'] * 1e3:8.1f} ms   "
                f"({cell['speedup']:.2f}x, skipped {cell['skipped']}, "
                f"cut {cell['cut']})"
            )
    emit("\n".join(lines))

    if os.environ.get("REPRO_WRITE_BENCH"):
        baseline = {
            "schema": "bench-prune/v1",
            "scale": config.scale,
            "k": K,
            "host": {
                "cpus": os.cpu_count() or 1,
                "platform": platform.system().lower(),
                "start_method": available_start_method(),
            },
            "datasets": datasets,
            "speedup": speedup,
        }
        BASELINE_PATH.write_text(
            json.dumps(baseline, indent=2) + "\n", encoding="utf-8"
        )
        emit(f"wrote {BASELINE_PATH}")

    # Algorithmic, not parallel: the win must exist on any host.  The
    # 1.5x catalog-scale floor on the best dataset/engine cell is
    # enforced on the committed baseline by scripts/check_bench.py.
    assert max(speedup.values()) >= 1.0
