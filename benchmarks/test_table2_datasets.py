"""Bench E-T2 — regenerate Table 2 (dataset characteristics).

Builds all four synthetic dataset analogues, materialises their 80%/100%
snapshot pairs, and reports the paper's characteristics columns.  The
shape assertions pin each analogue to its paper counterpart's regime.
"""

from repro.experiments import table2

from conftest import emit


def test_table2_dataset_characteristics(benchmark, config):
    rows = benchmark.pedantic(
        table2.run, args=(config,), rounds=1, iterations=1
    )
    emit(table2.render(rows))

    by_name = {r.dataset: r for r in rows}
    assert set(by_name) == set(config.datasets)
    for r in rows:
        assert r.nodes_t1 <= r.nodes_t2
        assert r.edges_t1 < r.edges_t2
        assert r.max_delta >= 2, f"{r.dataset}: no meaningful convergence"
        # Insertion-only evolution cannot grow the diameter beyond the
        # t1 value in the common component (new fringes may extend it
        # slightly); it collapses or holds in practice on these streams.
        assert r.diameter_t2 <= r.diameter_t1 + 3

    def density(r):
        return 2 * r.edges_t1 / (r.nodes_t1 * (r.nodes_t1 - 1))

    # Actors-like is the densest regime (paper Table 2's shape).
    assert density(by_name["actors"]) > density(by_name["dblp"])
    assert density(by_name["actors"]) > density(by_name["internet"])

    # DBLP-like is the most fragmented regime, as a *fraction* of all
    # pairs (the paper's DBLP has 608k not-connected pairs, ~0.5% of all
    # pairs; the other datasets are essentially connected).
    def disconnected_fraction(r):
        total = r.nodes_t1 * (r.nodes_t1 - 1) // 2
        return r.disconnected_t1 / total

    assert disconnected_fraction(by_name["dblp"]) == max(
        disconnected_fraction(r) for r in rows
    )
