"""Benches E-X1/E-X2 — the extension experiments.

E-X1 extends Table 5 with the selectors the paper omits; E-X2 runs the
Selective Expansion variant the paper declined to evaluate and measures
what the recursion actually buys.
"""

import numpy as np

from repro.experiments import extensions

from conftest import emit


def test_extension_extended_table(benchmark, config):
    result = benchmark.pedantic(
        extensions.run_extended_table, args=(config,), rounds=1, iterations=1
    )
    emit(extensions.render_extended_table(result))

    assert all(0.0 <= v <= 1.0 for v in result.coverage.values())

    def avg(algo):
        return float(np.mean([
            result.coverage[(algo, ds, off)]
            for ds, off, _, _ in result.columns
        ]))

    # The paper's choices hold up against the omitted variants: the
    # landmark scorers beat every active-node rank policy on average.
    best_landmark = max(avg("SumDiff"), avg("MMSD"))
    for baseline in ("IncDeg", "IncDeg2", "IncRecv", "IncBet"):
        assert best_landmark >= avg(baseline)
    # The embedding extension is a credible selector but not asserted to
    # win — the interesting number is *how close* it gets.
    assert avg("CoordDiff") > 0.1


def test_extension_selective_expansion(benchmark, config):
    rows = benchmark.pedantic(
        extensions.run_selective_expansion_study,
        args=(config,),
        rounds=1,
        iterations=1,
    )
    emit(extensions.render_selective_expansion(rows))

    by_dataset = {}
    for r in rows:
        by_dataset.setdefault(r.dataset, {})[r.variant] = r
    for dataset, variants in by_dataset.items():
        base = variants["Incidence"]
        exp = variants["SelectiveExp"]
        # Expansion can only add sources and cost.
        assert exp.sources >= base.sources
        assert exp.sp_computations >= base.sp_computations
        # ... and never loses coverage.
        assert exp.coverage >= base.coverage - 1e-9
