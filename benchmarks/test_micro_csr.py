"""Micro-benchmarks: dict BFS vs the CSR fast path.

Quantifies the accelerator that backs the ground-truth engine: the same
BFS semantics through the dict adjacency and through the frozen CSR
view, plus the end-to-end Δ-histogram comparison.
"""

import pytest

from repro.core.pairs import delta_histogram
from repro.datasets import eval_snapshots, load
from repro.graph.csr import CSRGraph, bfs_levels
from repro.graph.traversal import bfs_distances


@pytest.fixture(scope="module")
def snapshots():
    return eval_snapshots(load("internet", scale=0.5))


@pytest.fixture(scope="module")
def csr(snapshots):
    return CSRGraph.from_graph(snapshots[0])


def test_bfs_dict_engine(benchmark, snapshots):
    g1, _ = snapshots
    source = next(iter(g1.nodes()))
    dist = benchmark(bfs_distances, g1, source)
    assert dist[source] == 0


def test_bfs_csr_engine(benchmark, snapshots, csr):
    source_idx = 0
    levels = benchmark(bfs_levels, csr, source_idx)
    assert levels[source_idx] == 0


def test_delta_histogram_dict_engine(benchmark, snapshots):
    g1, g2 = snapshots
    hist = benchmark.pedantic(
        delta_histogram, args=(g1, g2),
        kwargs={"validate": False, "engine": "dict"},
        rounds=1, iterations=1,
    )
    assert sum(hist.values()) > 0


def test_delta_histogram_csr_engine(benchmark, snapshots):
    g1, g2 = snapshots
    hist = benchmark.pedantic(
        delta_histogram, args=(g1, g2),
        kwargs={"validate": False, "engine": "csr"},
        rounds=1, iterations=1,
    )
    assert sum(hist.values()) > 0


def test_engines_agree(snapshots):
    g1, g2 = snapshots
    assert delta_histogram(g1, g2, validate=False, engine="dict") == (
        delta_histogram(g1, g2, validate=False, engine="csr")
    )
