"""Micro-benchmarks of the library's hot primitives.

Unlike the experiment benches (one pedantic round around a whole paper
artefact), these use pytest-benchmark's statistical sampling: they are
the operations whose per-call cost determines how far the library scales
— the SSSP unit the budget counts, ground-truth streaming, greedy
covering, and the two selector archetypes.
"""

import numpy as np
import pytest

from repro.core.budget import SPBudget
from repro.core.cover import greedy_vertex_cover
from repro.core.pairgraph import PairGraph
from repro.core.pairs import converging_pairs_at_threshold, delta_histogram
from repro.datasets import eval_snapshots, load
from repro.graph.traversal import bfs_distances
from repro.selection import get_selector


@pytest.fixture(scope="module")
def snapshot_pair():
    tg = load("facebook", scale=0.4)
    return eval_snapshots(tg)


def test_bfs_single_source(benchmark, snapshot_pair):
    """One SSSP — the paper's unit of budget."""
    g1, _ = snapshot_pair
    source = next(iter(g1.nodes()))
    dist = benchmark(bfs_distances, g1, source)
    assert dist[source] == 0


def test_delta_histogram_ground_truth(benchmark, snapshot_pair):
    """The full ground-truth streaming pass (n SSSP pairs)."""
    g1, g2 = snapshot_pair
    hist = benchmark.pedantic(
        delta_histogram, args=(g1, g2), kwargs={"validate": False},
        rounds=1, iterations=1,
    )
    assert sum(hist.values()) > 0


def test_greedy_cover(benchmark, snapshot_pair):
    """Greedy vertex cover over a realistic pair graph."""
    g1, g2 = snapshot_pair
    pairs = converging_pairs_at_threshold(g1, g2, 2, validate=False)
    pg = PairGraph(pairs)
    cover = benchmark(greedy_vertex_cover, pg)
    assert pg.is_vertex_cover(cover)


def test_selector_degree(benchmark, snapshot_pair):
    """The zero-SSSP selector archetype (pure ranking)."""
    g1, g2 = snapshot_pair
    selector = get_selector("DegRel")

    def run():
        return selector.select(g1, g2, 40, SPBudget(80),
                               rng=np.random.default_rng(0))

    result = benchmark(run)
    assert len(result.candidates) == 40


def test_selector_hybrid_mmsd(benchmark, snapshot_pair):
    """The SSSP-heavy selector archetype (dispersion + landmarks)."""
    g1, g2 = snapshot_pair
    selector = get_selector("MMSD")

    def run():
        return selector.select(g1, g2, 40, SPBudget(80),
                               rng=np.random.default_rng(0))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(result.candidates) == 40
