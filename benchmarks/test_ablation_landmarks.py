"""Bench A-1 — ablation: number of landmarks l.

The paper fixes l = 10 and reports that more landmarks did not help.
This ablation sweeps l for SumDiff and MMSD at the fixed budget; the
assertion is the paper's: coverage at large l is not meaningfully better
than at l = 10 (at fixed m, extra landmarks also crowd out score-ranked
candidates).
"""

from repro.experiments import ablations

from conftest import emit


def test_ablation_landmark_count(benchmark, config):
    result = benchmark.pedantic(
        ablations.run_landmark_count,
        args=(config,),
        kwargs={"landmark_counts": (2, 5, 10, 15, 20)},
        rounds=1,
        iterations=1,
    )
    emit(ablations.render_landmark_count(result))

    for name in ("SumDiff", "MMSD"):
        at_10 = result.coverage[(name, 10)]
        at_20 = result.coverage[(name, 20)]
        assert at_20 <= at_10 + 0.15, (
            f"{name}: l=20 unexpectedly dominates l=10 "
            f"({at_20:.2f} vs {at_10:.2f})"
        )
    assert all(0.0 <= v <= 1.0 for v in result.coverage.values())
