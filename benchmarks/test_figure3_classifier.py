"""Bench E-F3 — regenerate Figure 3 (classifiers vs best single algorithm).

Trains the local classifier per dataset and the pooled global classifier
(on the disjoint 20%/40% split), then sweeps the budget against each
dataset's best single-feature algorithm.
"""

import numpy as np

from repro.experiments import figure3

from conftest import emit


def _auc(series):
    return float(np.mean([c for _, c in series]))


def test_figure3_classifiers(benchmark, config):
    result = benchmark.pedantic(
        figure3.run, args=(config,), rounds=1, iterations=1
    )
    emit(figure3.render(result))

    ratios = []
    for dataset, series in result.curves.items():
        best_name = result.best_algorithm[dataset]
        best_auc = _auc(series[best_name])
        clf_auc = max(_auc(series["L-Classifier"]), _auc(series["G-Classifier"]))
        if best_auc > 0:
            ratios.append(clf_auc / best_auc)

    emit(
        "classifier-vs-best AUC ratios: "
        + ", ".join(f"{r:.2f}" for r in ratios)
    )
    # Paper shape: the classifiers "catch up with the best algorithm" —
    # on the median dataset the better classifier reaches a large
    # fraction of the per-dataset best's area under the curve.
    assert ratios
    assert sorted(ratios)[len(ratios) // 2] >= 0.5
