"""Bench E-T6 — regenerate Table 6 (unbudgeted Incidence baseline).

Runs the original algorithm of [14] with shortest paths from every
active node.  Asserts the paper's contrast: near-complete coverage, but
an effective budget (the active-node fraction) an order of magnitude
above the budgeted approaches.
"""

from repro.experiments import table6

from conftest import emit


def test_table6_unbudgeted_incidence(benchmark, config):
    rows = benchmark.pedantic(
        table6.run, args=(config,), rounds=1, iterations=1
    )
    emit(table6.render(rows))

    assert rows
    for r in rows:
        # The paper reports "almost complete coverage".  That is not a
        # theorem: a pair can converge via a shortcut elsewhere on its
        # path with neither endpoint receiving an edge, and the
        # internet-like analogue's late-peering regime produces plenty
        # of such pairs.  Majority coverage is the robust form of the
        # claim; EXPERIMENTS.md records the per-dataset numbers.
        assert r.coverage >= 0.5, f"{r.dataset}: Incidence collapsed"
        assert r.sp_computations == 2 * r.active_nodes
        # The paper's |A| range is 11.66%-66% of |V1|; ours must likewise
        # exceed the budgeted m's share (which is a few percent at the
        # reference scale — at tiny test scales m itself is a large
        # fraction, so the 10% floor carries the claim).
        assert r.active_fraction > r.budget_fraction
        assert r.active_fraction >= 0.10
