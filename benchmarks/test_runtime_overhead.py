"""Micro-benchmarks of the streaming runtime's durability overhead.

The WAL is on the hot path of `repro advance` — every accepted batch
pays one append before it is applied — so its cost budget matters:
buffered appends should be microseconds, and the end-to-end runtime
should spend its wall-clock in window computations, not in bookkeeping.
These benches put numbers on both, plus the price of `fsync` (which
dominates durable appends by design — that *is* the durability).
"""

import time

from repro.datasets import load
from repro.runtime import RuntimeConfig, StreamRuntime, WriteAheadLog

from conftest import emit

BATCH = [(float(t), t % 97, t % 89 + 97, 1.0) for t in range(64)]


def test_wal_append_buffered(benchmark, tmp_path):
    """One 64-event batch append, flush-only (no fsync)."""
    wal = WriteAheadLog(tmp_path / "wal", fsync=False)
    benchmark(wal.append, BATCH)
    assert wal.last_seq >= 1


def test_wal_append_durable(benchmark, tmp_path):
    """The same append with fsync — the real durability price."""
    wal = WriteAheadLog(tmp_path / "wal", fsync=True)
    benchmark(wal.append, BATCH)
    assert wal.last_seq >= 1


def test_wal_replay_after_reopen(benchmark, tmp_path):
    """Recovery's WAL phase: reopen and replay a 64-batch suffix."""
    wal = WriteAheadLog(tmp_path / "wal", fsync=False)
    for _ in range(64):
        wal.append(BATCH)

    def reopen_and_replay():
        reopened = WriteAheadLog(tmp_path / "wal", fsync=False)
        return sum(len(rec.events) for rec in reopened.replay())

    events = benchmark(reopen_and_replay)
    assert events == 64 * len(BATCH)


def test_runtime_advancement_overhead(tmp_path):
    """End-to-end `advance` wall-clock vs. pure window computation.

    Runs the same stream twice — once through the full crash-safe
    runtime (WAL, checkpoints, breaker, supervisor) and once with
    durability disabled in a throwaway directory — and reports the
    bookkeeping share. One honest round, experiment-bench style.
    """
    stream = load("facebook", scale=0.2, seed=7)
    config = RuntimeConfig(k=10, batch_size=16, checkpoint_every=4)

    start = time.perf_counter()
    durable = StreamRuntime(
        stream, tmp_path / "durable", config, fsync=True
    ).run()
    durable_s = time.perf_counter() - start

    start = time.perf_counter()
    buffered = StreamRuntime(
        stream, tmp_path / "buffered", config, fsync=False
    ).run()
    buffered_s = time.perf_counter() - start

    assert durable.status == buffered.status == "complete"
    assert durable.render() == buffered.render()
    events_per_s = durable.consumed / durable_s if durable_s else 0.0
    emit(
        f"runtime advancement: {durable.consumed} events, "
        f"{len(durable.windows)} windows\n"
        f"  durable (fsync on):  {durable_s:.3f}s "
        f"({events_per_s:,.0f} events/s)\n"
        f"  buffered (fsync off): {buffered_s:.3f}s\n"
        f"  durability overhead: "
        f"{(durable_s - buffered_s) / durable_s * 100.0:+.1f}%"
    )
