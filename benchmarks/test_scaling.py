"""Bench E-P1 — the complexity claim, and E-X3 — out-of-catalog robustness.

E-P1 measures exact-vs-budgeted wall clock as the graph grows: the
budgeted algorithm's fixed 2m SSSPs must pull away roughly linearly in
n.  E-X3 re-runs the key selector comparison on a forest-fire stream no
generator was calibrated on.
"""

from repro.experiments import scaling

from conftest import emit


def test_scaling_exact_vs_budgeted(benchmark, config):
    scales = tuple(
        round(config.scale * f, 3) for f in (0.25, 0.5, 1.0)
    )
    rows = benchmark.pedantic(
        scaling.run_scaling,
        args=(config,),
        kwargs={"scales": scales},
        rounds=1,
        iterations=1,
    )
    emit(scaling.render_scaling(rows))

    assert [r.nodes for r in rows] == sorted(r.nodes for r in rows)
    for r in rows:
        assert r.speedup > 1.0, "budgeted must beat exact at every size"
        # Fixed budget: the budgeted SSSP count never grows with n.
        assert r.budgeted_ssps == rows[0].budgeted_ssps
    # The deterministic form of the claim: the SSSP ratio grows linearly
    # in n (exact = 2n SSSPs vs a constant 2m).
    node_growth = rows[-1].nodes / rows[0].nodes
    assert rows[-1].sssp_ratio >= 0.95 * node_growth * rows[0].sssp_ratio


def test_forest_fire_robustness(benchmark, config):
    result = benchmark.pedantic(
        scaling.run_forest_fire_robustness,
        args=(config,),
        kwargs={"num_nodes": int(1200 * config.scale)},
        rounds=1,
        iterations=1,
    )
    emit(scaling.render_forest_fire_robustness(result))

    cov = result.coverage
    assert all(0.0 <= v <= 1.0 for v in cov.values())
    # The paper's headline orderings persist off-catalog.
    assert cov["SumDiff"] > cov["Degree"]
    assert max(cov["SumDiff"], cov["MMSD"]) >= cov["IncDeg"] - 0.1
