"""Bench E-T1 — regenerate Table 1 (SSSP budget accounting).

Verifies, per approach family, that the measured generation/top-k SSSP
split equals the paper's formula, and times one full budgeted run per
family.
"""

from repro.experiments import table1

from conftest import emit


def test_table1_budget_split(benchmark, config):
    rows = benchmark.pedantic(
        table1.run, args=(config,), rounds=1, iterations=1
    )
    emit(table1.render(rows))
    assert len(rows) == len(table1.FAMILIES)
    for row in rows:
        assert row.matches, f"{row.family} deviates from Table 1's formula"
        assert row.total_measured <= 2 * config.budget
