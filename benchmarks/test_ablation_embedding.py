"""Bench A-4 — extension: Orion-style coordinate embedding vs SumDiff.

The paper's related work flags coordinate-embedding landmark methods
(Orion [25]) as a direction "beyond the scope of this work".  CoordDiff
implements it on the same 2l-generation budget as the hybrids; this
bench pits it against the paper's best landmark scorers.
"""

import numpy as np

from repro.experiments.runner import coverage_cell, get_context

from conftest import emit


def test_ablation_coordinate_embedding(benchmark, config):
    def run():
        rows = {}
        for dataset in config.datasets:
            ctx = get_context(dataset, config.scale)
            rows[dataset] = {
                name: coverage_cell(ctx, name, config.budget, 1, config)
                for name in ("CoordDiff", "SumDiff", "MMSD")
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"Ablation A-4 (m={config.budget}, δ = Δmax-1): "
             "embedding displacement vs distance-delta norms"]
    for dataset, scores in rows.items():
        rendered = ", ".join(
            f"{n}={100 * c:.1f}%" for n, c in scores.items()
        )
        lines.append(f"  {dataset:9s} {rendered}")
    emit("\n".join(lines))

    for dataset, scores in rows.items():
        assert all(0.0 <= v <= 1.0 for v in scores.values())
    # The extension must be a credible selector (not collapse to zero
    # everywhere), without any claim of beating the paper's choices.
    mean_coord = float(np.mean([s["CoordDiff"] for s in rows.values()]))
    assert mean_coord > 0.1
