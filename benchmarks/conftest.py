"""Benchmark-suite fixtures.

Every benchmark regenerates one paper artefact (table or figure) through
:mod:`repro.experiments` and prints it in the paper's layout, so a
``pytest benchmarks/ --benchmark-only -s`` run doubles as the full
reproduction report.  Scale is controlled by ``REPRO_BENCH_SCALE``
(default 0.5; use 1.0 to regenerate EXPERIMENTS.md exactly).

Heavy experiment drivers run with ``benchmark.pedantic(rounds=1)``: the
interesting number is the artefact itself plus a single honest wall-clock
measurement, not a statistically sampled microsecond distribution.
"""

import pytest

from repro.experiments import bench_config


@pytest.fixture(scope="session")
def config():
    """The shared experiment configuration (env-scalable)."""
    return bench_config()


def emit(text: str) -> None:
    """Print a rendered artefact, flush-through, set off by blank lines."""
    print("\n" + text + "\n", flush=True)
