"""Bench E-X4 — the budgeted pipeline on a weighted latency topology.

The problem definition covers weighted graphs; the paper's evaluation
does not exercise them.  This bench runs the full Dijkstra-based
pipeline on the weighted internet analogue and asserts the landmark
family still delivers.
"""

from repro.experiments import extensions

from conftest import emit


def test_extension_weighted_pipeline(benchmark, config):
    result = benchmark.pedantic(
        extensions.run_weighted_pipeline, args=(config,),
        rounds=1, iterations=1,
    )
    emit(extensions.render_weighted_pipeline(result))

    assert result.k > 0
    assert all(0.0 <= v <= 1.0 for v in result.coverage.values())
    # The landmark family generalises to weighted distances.
    best_landmark = max(
        result.coverage["SumDiff"], result.coverage["MMSD"],
        result.coverage["MaxAvg"],
    )
    assert best_landmark >= 0.5
