"""Micro-benchmark: parallel all-sources BFS against the serial engine.

Times :func:`all_sources_levels` over the largest catalog dataset at the
benchmark scale for ``workers ∈ {1, 2, 4}``, asserts the level matrices
are bit-identical, and reports the speedup.  With ``REPRO_WRITE_BENCH``
set, writes the ``BENCH_parallel.json`` baseline at the repository root,
stamped with the host's provenance (CPU count, platform, start method) —
a single-core host records its honest 1.0× numbers, and the CI gate in
``scripts/check_bench.py`` only enforces a speedup floor for
baselines recorded on multi-core hosts.
"""

import json
import os
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from repro.datasets import dataset_names, eval_snapshots, load
from repro.graph.csr import CSRGraph, all_sources_levels
from repro.parallel import available_start_method

from conftest import emit

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"
WORKER_COUNTS = (1, 2, 4)
ROUNDS = 3


@pytest.fixture(scope="module")
def largest(config):
    """(name, g1) for the biggest catalog dataset at the bench scale."""
    picked = max(
        ((name, eval_snapshots(load(name, scale=config.scale))[0])
         for name in dataset_names()),
        key=lambda pair: pair[1].num_nodes,
    )
    return picked


def _best_of(fn, rounds=ROUNDS):
    times = []
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return result, min(times)


def test_parallel_speedup(config, largest):
    name, g1 = largest
    csr = CSRGraph.from_graph(g1)
    timings = {}
    matrices = {}
    for workers in WORKER_COUNTS:
        matrices[workers], timings[workers] = _best_of(
            lambda w=workers: all_sources_levels(csr, workers=w)
        )
    for workers in WORKER_COUNTS[1:]:
        assert np.array_equal(matrices[workers], matrices[1])

    cpus = os.cpu_count() or 1
    speedup = {
        f"workers{w}": round(timings[1] / timings[w], 3)
        for w in WORKER_COUNTS[1:]
    }
    lines = [
        f"Parallel all-sources BFS — {name} @ scale {config.scale} "
        f"({csr.num_nodes} nodes, {g1.num_edges} edges, {cpus} cpus):"
    ]
    for w in WORKER_COUNTS:
        note = "" if w == 1 else f"  ({timings[1] / timings[w]:.2f}x)"
        lines.append(f"  workers={w}: {timings[w] * 1e3:8.1f} ms{note}")
    emit("\n".join(lines))

    if os.environ.get("REPRO_WRITE_BENCH"):
        baseline = {
            "schema": "bench-parallel/v1",
            "dataset": name,
            "scale": config.scale,
            "nodes": csr.num_nodes,
            "edges": g1.num_edges,
            "host": {
                "cpus": cpus,
                "platform": platform.system().lower(),
                "start_method": available_start_method(),
            },
            "timings_s": {
                f"workers{w}": round(timings[w], 6) for w in WORKER_COUNTS
            },
            "speedup": speedup,
        }
        BASELINE_PATH.write_text(
            json.dumps(baseline, indent=2) + "\n", encoding="utf-8"
        )
        emit(f"wrote {BASELINE_PATH}")

    # The floor only means anything where parallel hardware exists; a
    # single-core container can at best tie (and pays pool overhead).
    if cpus >= 2:
        assert max(timings[1] / timings[w] for w in WORKER_COUNTS[1:]) >= 1.0
