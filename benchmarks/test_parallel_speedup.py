"""Micro-benchmark: shm-arena parallel multi-source BFS vs the serial engine.

Times :func:`all_sources_levels` over the largest catalog dataset at the
benchmark scale for ``workers ∈ {1, 2, 4}`` (the pooled runs attach the
CSR arrays from a shared-memory arena instead of unpickling them),
asserts the level matrices are bit-identical, and reports the speedup.
Two provenance measurements ride along:

* **batch** — the bit-parallel kernel's win in isolation: one
  64-sources-per-sweep :func:`~repro.graph.msbfs.msbfs_levels` pass
  against the per-source :func:`~repro.graph.csr.bfs_levels` loop.
* **shm** — the arena's zero-copy accounting: segment bytes actually
  published, and the pickled graph-state bytes the pool no longer ships
  (pickled state minus the tiny manifest payload, per worker).

With ``REPRO_WRITE_BENCH`` set, writes the ``bench-parallel/v2``
``BENCH_parallel.json`` baseline at the repository root, stamped with
host provenance (CPU count, platform, start method).  The CI gate
(``scripts/check_bench.py``) requires the committed baseline to be
measured on a multi-core host and to clear a 1.3× best-worker floor —
there is no single-core exemption in v2.
"""

import json
import os
import pickle
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from repro.datasets import dataset_names, eval_snapshots, load
from repro.graph.csr import CSRGraph, all_sources_levels, bfs_levels
from repro.graph.msbfs import DEFAULT_BATCH, msbfs_levels
from repro.parallel import SharedCsrArena, available_start_method, derive_run_id

from conftest import emit

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"
WORKER_COUNTS = (1, 2, 4)
ROUNDS = 3


@pytest.fixture(scope="module")
def largest(config):
    """(name, g1) for the biggest catalog dataset at the bench scale."""
    picked = max(
        ((name, eval_snapshots(load(name, scale=config.scale))[0])
         for name in dataset_names()),
        key=lambda pair: pair[1].num_nodes,
    )
    return picked


def _best_of(fn, rounds=ROUNDS):
    times = []
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return result, min(times)


def _shm_accounting(csr):
    """(segment_bytes, pickled_bytes_avoided) for the APSP worker state."""
    state = {"csr": csr, "batch": DEFAULT_BATCH}
    arena = SharedCsrArena.maybe_publish(
        state, run_id=derive_run_id("bench.parallel", csr.num_nodes)
    )
    assert arena is not None
    try:
        segment_bytes = arena.segment_bytes
        payload_bytes = len(pickle.dumps(arena.worker_payload()))
    finally:
        arena.destroy()
    pickled_bytes = len(pickle.dumps(state))
    # What one worker no longer receives by value; every pool worker
    # saves this again, but the committed number stays per-worker so it
    # is independent of the worker count used on the recording host.
    return segment_bytes, max(1, pickled_bytes - payload_bytes)


def test_parallel_speedup(config, largest):
    name, g1 = largest
    csr = CSRGraph.from_graph(g1)
    n = csr.num_nodes

    # Bit-parallel kernel in isolation: batched sweep vs per-source loop.
    per_source, per_source_s = _best_of(
        lambda: np.stack([bfs_levels(csr, i) for i in range(n)])
    )
    batched, batched_s = _best_of(
        lambda: msbfs_levels(csr, range(n), batch_size=DEFAULT_BATCH)
    )
    assert batched.tobytes() == per_source.tobytes()
    batch_speedup = per_source_s / batched_s

    timings = {}
    matrices = {}
    for workers in WORKER_COUNTS:
        matrices[workers], timings[workers] = _best_of(
            lambda w=workers: all_sources_levels(csr, workers=w)
        )
    for workers in WORKER_COUNTS[1:]:
        assert np.array_equal(matrices[workers], matrices[1])

    segment_bytes, pickled_avoided = _shm_accounting(csr)
    cpus = os.cpu_count() or 1
    speedup = {
        f"workers{w}": round(timings[1] / timings[w], 3)
        for w in WORKER_COUNTS[1:]
    }
    lines = [
        f"Parallel multi-source BFS — {name} @ scale {config.scale} "
        f"({n} nodes, {g1.num_edges} edges, {cpus} cpus):",
        f"  bit-parallel batch ({DEFAULT_BATCH} lanes): "
        f"{batched_s * 1e3:8.1f} ms vs per-source "
        f"{per_source_s * 1e3:8.1f} ms  ({batch_speedup:.2f}x)",
        f"  shm arena: {segment_bytes} B published, "
        f"{pickled_avoided} B/worker unpickled",
    ]
    for w in WORKER_COUNTS:
        note = "" if w == 1 else f"  ({timings[1] / timings[w]:.2f}x)"
        lines.append(f"  workers={w}: {timings[w] * 1e3:8.1f} ms{note}")
    emit("\n".join(lines))

    if os.environ.get("REPRO_WRITE_BENCH"):
        baseline = {
            "schema": "bench-parallel/v2",
            "dataset": name,
            "scale": config.scale,
            "nodes": n,
            "edges": g1.num_edges,
            "host": {
                "cpus": cpus,
                "platform": platform.system().lower(),
                "start_method": available_start_method(),
            },
            "timings_s": {
                f"workers{w}": round(timings[w], 6) for w in WORKER_COUNTS
            },
            "speedup": speedup,
            "shm": {
                "segment_bytes": segment_bytes,
                "pickled_bytes_avoided": pickled_avoided,
            },
            "batch": {
                "width": DEFAULT_BATCH,
                "speedup": round(batch_speedup, 3),
            },
        }
        BASELINE_PATH.write_text(
            json.dumps(baseline, indent=2) + "\n", encoding="utf-8"
        )
        emit(f"wrote {BASELINE_PATH}")

    # v2 has teeth: on parallel hardware the arena + kernel must clear
    # the same floor the committed baseline is held to.
    if cpus >= 2:
        assert max(timings[1] / timings[w] for w in WORKER_COUNTS[1:]) >= 1.3
