"""Bench E-T3 — regenerate Table 3 (pair-graph characteristics).

Computes the exact ``G^p_k`` at δ = Δmax, Δmax−1, Δmax−2 for every
dataset plus its greedy vertex cover, and asserts the paper's structural
headline: the top-k pairs are covered by far fewer nodes than they have
endpoints.
"""

from repro.experiments import table3

from conftest import emit


def test_table3_pairgraph_and_cover(benchmark, config):
    rows = benchmark.pedantic(
        table3.run, args=(config,), rounds=1, iterations=1
    )
    emit(table3.render(rows))

    assert len(rows) == len(config.datasets) * len(config.delta_offsets)
    compressions = []
    for r in rows:
        assert r.maxcover <= r.endpoints <= 2 * r.pairs
        if r.pairs >= 20:
            compressions.append(r.maxcover / r.endpoints)
    # The paper's Table 3 shape: covers are a small fraction of the
    # endpoints once the pair set is non-trivial (DBLP: 68 endpoints,
    # 12-node cover).
    assert compressions, "no dataset produced a nontrivial pair set"
    assert min(compressions) < 0.5
