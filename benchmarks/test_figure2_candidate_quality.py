"""Bench E-F2 — regenerate Figure 2 (candidate-quality diagnostics).

On the Facebook-like dataset: the fraction of generated candidates that
are (a) endpoints of ``G^p_k`` and (b) members of the greedy cover, as
the budget grows.
"""

import numpy as np

from repro.experiments import figure2

from conftest import emit


def test_figure2_candidate_quality(benchmark, config):
    result = benchmark.pedantic(
        figure2.run, args=(config,), rounds=1, iterations=1
    )
    emit(figure2.render(result))

    for curves in (result.endpoint_curves, result.cover_curves):
        for name, series in curves.items():
            assert len(series) == len(config.budget_sweep)
            assert all(0.0 <= v <= 1.0 for _, v in series)

    # Cover membership implies endpoint membership, so panel (b) can
    # never exceed panel (a) at the same budget.
    for name in result.endpoint_curves:
        for (m1, a), (m2, b) in zip(
            result.endpoint_curves[name], result.cover_curves[name]
        ):
            assert m1 == m2
            assert b <= a + 1e-9

    # Paper shape: algorithms that find candidates at all do place some
    # of them inside the pair graph.
    best_endpoint = max(
        np.mean([v for _, v in series])
        for series in result.endpoint_curves.values()
    )
    assert best_endpoint > 0.0
