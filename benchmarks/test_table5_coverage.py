"""Bench E-T5 — regenerate Table 5 (coverage of every algorithm).

The paper's main results table.  Asserts its ordering findings as shape
checks (averaged across columns, so single-cell noise cannot flip them):

* Degree is the weakest family on average;
* SumDiff >= MaxDiff on average;
* the hybrids and SumDiff sit at the top;
* the budgeted Incidence rankers do not beat the best landmark method.
"""

import numpy as np

from repro.experiments import table5

from conftest import emit


def _avg(result, algo):
    return float(
        np.mean([
            result.coverage[(algo, ds, off)]
            for ds, off, _, _ in result.columns
        ])
    )


def test_table5_single_feature_coverage(benchmark, config):
    result = benchmark.pedantic(
        table5.run, args=(config,), rounds=1, iterations=1
    )
    emit(table5.render(result))

    averages = {algo: _avg(result, algo) for algo in result.algorithms}
    emit(
        "average coverage: "
        + ", ".join(f"{a}={100 * v:.1f}%" for a, v in sorted(
            averages.items(), key=lambda kv: -kv[1]
        ))
    )

    # Paper shapes.
    assert averages["Degree"] < averages["SumDiff"]
    assert averages["Degree"] < averages["MMSD"]
    assert averages["SumDiff"] >= averages["MaxDiff"] - 0.05
    best = max(averages.values())
    assert max(averages["MMSD"], averages["MASD"], averages["SumDiff"]) >= (
        best - 0.10
    )
    assert averages["IncDeg"] <= best
    # Every algorithm must at least run everywhere.
    assert all(0.0 <= v <= 1.0 for v in result.coverage.values())
