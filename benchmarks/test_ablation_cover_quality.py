"""Bench A-5 — greedy cover vs the exact minimum vertex cover.

The vertex-cover reformulation leans on greedy's logarithmic guarantee
"that works well in practice"; this bench computes the true optimum
(branch and bound) on every catalog ``G^p_k`` small enough and reports
the actual ratio.
"""

from repro.experiments import ablations

from conftest import emit


def test_ablation_cover_quality(benchmark, config):
    rows = benchmark.pedantic(
        ablations.run_cover_quality, args=(config,), rounds=1, iterations=1
    )
    emit(ablations.render_cover_quality(rows))

    assert rows, "no G^p_k instance was small enough for the exact solver"
    for r in rows:
        assert r.exact_size <= r.greedy_size
        # Greedy's observed gap on these instances is tiny — far inside
        # the ln(k) guarantee.
        assert r.greedy_size <= 2 * max(r.exact_size, 1)
