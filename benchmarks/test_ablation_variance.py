"""Bench A-6 — seed stability of the randomised selectors.

The paper reports point estimates per algorithm; this bench quantifies
how much landmark-sampling randomness moves coverage at the fixed
budget.  The actionable shape: the best selectors are *stable* — their
spread is small relative to the gaps between algorithm families.
"""

import numpy as np

from repro.experiments import ablations

from conftest import emit


def test_ablation_seed_variance(benchmark, config):
    rows = benchmark.pedantic(
        ablations.run_seed_variance,
        args=(config,),
        kwargs={"num_seeds": 8},
        rounds=1,
        iterations=1,
    )
    emit(ablations.render_seed_variance(rows))

    assert rows
    for r in rows:
        assert 0.0 <= r.minimum <= r.mean <= r.maximum <= 1.0
        assert r.std >= 0.0
    # Median spread stays moderate: randomness does not dominate the
    # algorithm comparisons the tables rest on.
    spreads = sorted(r.maximum - r.minimum for r in rows)
    assert spreads[len(spreads) // 2] <= 0.5
