"""Service load benchmark: latency, coalescing, and shed under burst.

Drives an in-process :class:`~repro.service.server.ConvergenceService`
(the same object ``repro serve`` runs, minus the socket) through three
workloads:

* **Cold latency** — distinct, uncacheable queries; reports the p50/p99
  request latency of the full parse → admit → compute → encode path.
* **Cache and coalescing** — the cached-answer speedup over a cold
  compute, and a burst of identical queries that must collapse to one
  computation (hit rate = (N-1)/N).
* **Shed under burst** — a burst past the admission bound; every
  over-capacity arrival is rejected *before* compute and the queue
  depth never exceeds the configured capacity.

With ``REPRO_WRITE_BENCH`` set, writes the ``BENCH_service.json``
baseline at the repository root (schema ``bench-service/v1``) with host
provenance.  ``scripts/check_bench.py`` enforces a 1.5x floor on the
best recorded speedup — serving a version-keyed cached answer must beat
recomputing it on any host, or the cache is dead weight.
"""

import asyncio
import json
import os
import platform
import time
from pathlib import Path

from repro.datasets import load
from repro.parallel import available_start_method
from repro.runtime import RuntimeConfig, StreamRuntime
from repro.service import ConvergenceService

from conftest import emit

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"
ROUNDS = 3
COLD_REQUESTS = 40
BURST = 64
CAPACITY = 16


def percentile(samples, q):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def make_service(tmp_path, scale, *, capacity=64, name="wal"):
    stream = load("facebook", scale=scale, seed=23)
    events = sum(1 for _ in stream.events())
    runtime = StreamRuntime(
        stream,
        tmp_path / name,
        RuntimeConfig(k=10, batch_size=max(20, events // 12),
                      checkpoint_every=2),
    )
    runtime.run()
    return ConvergenceService(runtime, capacity=capacity)


async def timed_request(service, line):
    start = time.perf_counter()
    response = await service.handle_line(line)
    elapsed = time.perf_counter() - start
    return json.loads(response), elapsed


async def cold_latency(service):
    """Distinct node/topk queries: every request is a cache miss."""
    service.start_worker()
    nodes = sorted(service.runtime.window_snapshots(0)[1].nodes(),
                   key=repr)
    samples = []
    for i in range(COLD_REQUESTS):
        if i % 2:
            line = json.dumps({"verb": "topk", "args": {"k": 1 + i}})
        else:
            u = nodes[i % len(nodes)]
            line = json.dumps({"verb": "node", "args": {"u": u, "k": 5}})
        response, elapsed = await timed_request(service, line)
        assert response["ok"], response
        samples.append(elapsed)
    return samples


async def cache_speedup(service):
    """Best-of cold compute time vs best-of cached serve time."""
    line = json.dumps({"verb": "topk", "args": {"k": 7}})
    service.start_worker()
    cold = []
    for _ in range(ROUNDS):
        service.cache.invalidate(service.cache.version + 1)
        _, elapsed = await timed_request(service, line)
        cold.append(elapsed)
    service.cache.invalidate(service.runtime.state_version)
    warm = []
    await timed_request(service, line)  # prime at the real version
    for _ in range(ROUNDS):
        _, elapsed = await timed_request(service, line)
        warm.append(elapsed)
    return min(cold), min(warm)


async def coalesced_burst(service):
    """A burst of identical queries shares one computation."""
    line = json.dumps({"verb": "topk", "args": {"k": 9}})
    tasks = [
        asyncio.ensure_future(service.handle_line(line))
        for _ in range(BURST)
    ]
    await asyncio.sleep(0)
    start = time.perf_counter()
    service.start_worker()
    responses = [json.loads(await t) for t in tasks]
    elapsed = time.perf_counter() - start
    assert all(r["ok"] for r in responses)
    assert len({json.dumps(r, sort_keys=True) for r in responses}) == 1
    return elapsed


async def shed_burst(service):
    """Arrivals past the admission bound are rejected pre-compute."""
    tasks = [
        asyncio.ensure_future(service.handle_line(
            json.dumps({"verb": "topk", "args": {"k": 1 + i}})
        ))
        for i in range(BURST)
    ]
    await asyncio.sleep(0)
    depth = service.controller.depth
    assert depth <= CAPACITY
    service.start_worker()
    responses = [json.loads(await t) for t in tasks]
    ok = sum(1 for r in responses if r["ok"])
    rejected = sum(
        1 for r in responses
        if not r["ok"] and r["error"]["code"] == "over_capacity"
    )
    assert ok == CAPACITY and ok + rejected == BURST
    return depth, ok, rejected


def test_service_load(config, tmp_path):
    async def run_all():
        latency_svc = make_service(tmp_path, config.scale, name="lat")
        samples = await cold_latency(latency_svc)
        await latency_svc.drain()

        cache_svc = make_service(tmp_path, config.scale, name="cache")
        cold_s, warm_s = await cache_speedup(cache_svc)
        await cache_svc.drain()

        co_svc = make_service(tmp_path, config.scale, name="co")
        burst_s = await coalesced_burst(co_svc)
        hit_rate = co_svc.counters.coalesced / BURST
        computations = co_svc.counters.cache_misses
        await co_svc.drain()

        shed_svc = make_service(
            tmp_path, config.scale, capacity=CAPACITY, name="shed"
        )
        depth, ok, rejected = await shed_burst(shed_svc)
        await shed_svc.drain()

        return {
            "samples": samples,
            "cold_s": cold_s, "warm_s": warm_s,
            "burst_s": burst_s,
            "hit_rate": hit_rate, "computations": computations,
            "depth": depth, "ok": ok, "rejected": rejected,
        }

    m = asyncio.run(run_all())

    p50 = percentile(m["samples"], 0.50)
    p99 = percentile(m["samples"], 0.99)
    cached = m["cold_s"] / m["warm_s"]
    # One computation serving a BURST-wide fan-in: the per-request cost
    # of the coalesced burst against the cold single-request cost.
    coalesced = m["cold_s"] / (m["burst_s"] / BURST)
    shed_rate = m["rejected"] / BURST

    baseline = {
        "schema": "bench-service/v1",
        "scale": config.scale,
        "host": {
            "cpus": os.cpu_count() or 1,
            "platform": platform.system().lower(),
            "start_method": available_start_method(),
        },
        "latency_ms": {
            "p50": round(p50 * 1e3, 3),
            "p99": round(p99 * 1e3, 3),
            "requests": COLD_REQUESTS,
        },
        "coalescing": {
            "burst": BURST,
            "computations": m["computations"],
            "hit_rate": round(m["hit_rate"], 4),
        },
        "burst": {
            "requests": BURST,
            "capacity": CAPACITY,
            "served": m["ok"],
            "rejected": m["rejected"],
            "max_depth": m["depth"],
            "shed_rate": round(shed_rate, 4),
        },
        "speedup": {
            "cached_answer": round(cached, 3),
            "coalesced_burst": round(coalesced, 3),
        },
    }

    emit(
        "service load @ scale {scale}\n"
        "  cold latency     p50 {p50:.3f} ms   p99 {p99:.3f} ms\n"
        "  cached answer    {cached:.1f}x over cold compute\n"
        "  coalesced burst  {n} requests -> {c} computation(s), "
        "hit rate {hr:.0%}, {co:.1f}x per request\n"
        "  shed under burst {rej}/{n} rejected pre-compute, "
        "queue depth max {depth}/{cap}".format(
            scale=config.scale, p50=p50 * 1e3, p99=p99 * 1e3,
            cached=cached, n=BURST, c=m["computations"],
            hr=m["hit_rate"], co=coalesced, rej=m["rejected"],
            depth=m["depth"], cap=CAPACITY,
        )
    )

    assert m["hit_rate"] >= (BURST - 1) / BURST
    assert m["computations"] == 1
    assert m["depth"] <= CAPACITY

    if os.environ.get("REPRO_WRITE_BENCH"):
        BASELINE_PATH.write_text(
            json.dumps(baseline, indent=2) + "\n", encoding="utf-8"
        )
        emit(f"wrote {BASELINE_PATH}")
