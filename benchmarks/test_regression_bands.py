"""Regression bands: the reproduction's findings must stay put.

``expected_shapes.json`` (written by ``scripts/update_regression_bands.py``
after deliberate changes) records each algorithm's average Table 5
coverage with a tolerance band at the reference benchmark scale.  This
bench re-runs the experiment and fails on drift — the guard that keeps
refactors from silently degrading the reproduction.

Skipped automatically when ``REPRO_BENCH_SCALE`` differs from the scale
the bands were recorded at.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.experiments import table5

from conftest import emit

BANDS_PATH = Path(__file__).resolve().parent / "expected_shapes.json"


def test_regression_bands(benchmark, config):
    if not BANDS_PATH.exists():
        pytest.skip("no expected_shapes.json recorded yet")
    expected = json.loads(BANDS_PATH.read_text(encoding="utf-8"))
    if abs(expected["scale"] - config.scale) > 1e-9:
        pytest.skip(
            f"bands recorded at scale {expected['scale']}, "
            f"running at {config.scale}"
        )

    result = benchmark.pedantic(
        table5.run, args=(config,), rounds=1, iterations=1
    )

    failures = []
    lines = []
    for algo, band in expected["average_coverage"].items():
        values = [
            result.coverage[(algo, ds, off)]
            for ds, off, _, _ in result.columns
        ]
        mean = float(np.mean(values))
        status = "ok"
        if not band["low"] <= mean <= band["high"]:
            status = "DRIFT"
            failures.append(
                f"{algo}: mean {mean:.3f} outside "
                f"[{band['low']:.3f}, {band['high']:.3f}]"
            )
        lines.append(
            f"  {algo:10s} mean={100 * mean:5.1f}%  band="
            f"[{100 * band['low']:.1f}%, {100 * band['high']:.1f}%]  {status}"
        )
    emit("Regression bands (Table 5 averages):\n" + "\n".join(lines))
    assert not failures, (
        "coverage drifted outside the recorded bands — if the change was "
        "deliberate, rerun scripts/update_regression_bands.py:\n"
        + "\n".join(failures)
    )
