"""Bench A-3 — ablation: IncBet's betweenness estimator fidelity.

The paper grants IncBet the *exact* edge betweenness ("giving an
advantage to the Incidence algorithm"); the original work used sampled
shortest-path trees.  This ablation quantifies what the sampled-pivot
estimator changes at the same budget.
"""

from repro.experiments import ablations

from conftest import emit


def test_ablation_incbet_pivots(benchmark, config):
    result = benchmark.pedantic(
        ablations.run_incbet_pivots,
        args=(config,),
        kwargs={"pivot_counts": (16, 64, 256)},
        rounds=1,
        iterations=1,
    )
    emit(ablations.render_incbet_pivots(result))

    assert "exact" in result.coverage
    assert all(0.0 <= v <= 1.0 for v in result.coverage.values())
    # All estimator fidelities must select only active nodes, so none can
    # exceed the coverage of the full active set; nothing stronger is
    # asserted — the paper itself shows rank policy barely rescues the
    # active-node approach under tight budgets.
