"""Unit tests for the synthetic temporal generators."""

import numpy as np
import pytest

from repro.datasets.generators import (
    collaboration_stream,
    community_bridge_stream,
    hub_spoke_stream,
    preferential_attachment_stream,
)
from repro.graph.components import largest_component
from repro.graph.validation import check_snapshot_pair


ALL_GENERATORS = [
    lambda seed: preferential_attachment_stream(120, 2, seed=seed),
    lambda seed: collaboration_stream(150, seed=seed),
    lambda seed: community_bridge_stream(150, num_communities=5, seed=seed),
    lambda seed: hub_spoke_stream(150, seed=seed),
]


@pytest.mark.parametrize("builder", ALL_GENERATORS)
class TestCommonProperties:
    def test_deterministic_given_seed(self, builder):
        a = builder(7)
        b = builder(7)
        assert a.events() == b.events()

    def test_different_seeds_differ(self, builder):
        a = builder(1)
        b = builder(2)
        assert a.events() != b.events()

    def test_simple_graph(self, builder):
        g = builder(3).snapshot()
        seen = set()
        for u, v in g.edges():
            assert u != v
            key = (min(u, v, key=repr), max(u, v, key=repr))
            assert key not in seen
            seen.add(key)

    def test_snapshot_pair_is_insertion_only(self, builder):
        tg = builder(4)
        g1, g2 = tg.snapshot_pair(0.8, 1.0)
        check_snapshot_pair(g1, g2)

    def test_times_are_event_indices(self, builder):
        events = builder(5).events()
        assert [ev.time for ev in events] == list(range(len(events)))


class TestPreferentialAttachment:
    def test_node_count(self):
        tg = preferential_attachment_stream(100, 2, seed=0)
        assert tg.snapshot().num_nodes == 100

    def test_edges_per_node(self):
        tg = preferential_attachment_stream(100, 3, seed=0)
        g = tg.snapshot()
        # seed clique C(4,2)=6 plus 3 per additional node.
        assert g.num_edges == 6 + 3 * 96

    def test_connected(self):
        g = preferential_attachment_stream(100, 2, seed=1).snapshot()
        assert len(largest_component(g)) == 100

    def test_degree_skew(self):
        g = preferential_attachment_stream(400, 2, seed=2).snapshot()
        degrees = sorted(g.degrees().values(), reverse=True)
        assert degrees[0] > 5 * (sum(degrees) / len(degrees))

    def test_validation(self):
        with pytest.raises(ValueError):
            preferential_attachment_stream(2, 2)
        with pytest.raises(ValueError):
            preferential_attachment_stream(10, 0)


class TestCollaboration:
    def test_dense_teams_make_dense_graph(self):
        dense = collaboration_stream(
            200, team_size_range=(5, 8), newcomer_rate=0.2, seed=0
        ).snapshot()
        sparse = collaboration_stream(
            200, team_size_range=(2, 3), newcomer_rate=0.5, seed=0
        ).snapshot()
        assert dense.density() > sparse.density()

    def test_teams_form_cliques(self):
        tg = collaboration_stream(1, team_size_range=(4, 4),
                                  newcomer_rate=1.0, seed=0)
        g = tg.snapshot()
        assert g.num_nodes <= 4
        n = g.num_nodes
        assert g.num_edges == n * (n - 1) // 2

    def test_validation(self):
        with pytest.raises(ValueError):
            collaboration_stream(10, team_size_range=(1, 3))
        with pytest.raises(ValueError):
            collaboration_stream(10, newcomer_rate=1.5)
        with pytest.raises(ValueError):
            collaboration_stream(10, recurrence_bias=-0.1)


class TestCommunityBridge:
    def test_bridges_in_tail(self):
        tg = community_bridge_stream(
            200, num_communities=6, bridge_fraction=0.15,
            late_bridge_share=1.0, seed=0,
        )
        g1, g2 = tg.snapshot_pair(0.8, 1.0)
        # With all bridges held to the tail, the early snapshot's edges
        # should be (almost) all intra-community; the late ones add the
        # shortcuts, so distances must collapse for some pairs.
        from repro.core.pairs import max_delta

        assert max_delta(g1, g2, validate=False) >= 3

    def test_each_community_connected_early(self):
        tg = community_bridge_stream(120, num_communities=4, seed=1)
        g = tg.snapshot()
        assert len(largest_component(g)) > 100

    def test_validation(self):
        with pytest.raises(ValueError):
            community_bridge_stream(5, num_communities=4)
        with pytest.raises(ValueError):
            community_bridge_stream(100, bridge_fraction=1.0)
        with pytest.raises(ValueError):
            community_bridge_stream(100, late_bridge_share=2.0)


class TestHubSpoke:
    def test_core_is_densest(self):
        tg = hub_spoke_stream(200, core_size=10, seed=0)
        g = tg.snapshot()
        core_degrees = [g.degree(u) for u in range(10)]
        other_degrees = [g.degree(u) for u in range(10, 200) if u in g]
        assert min(core_degrees) > np.mean(other_degrees)

    def test_late_peering_creates_convergence(self):
        tg = hub_spoke_stream(250, late_peering_share=1.0, seed=2)
        g1, g2 = tg.snapshot_pair(0.8, 1.0)
        from repro.core.pairs import max_delta

        assert max_delta(g1, g2, validate=False) >= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            hub_spoke_stream(5, core_size=10)
        with pytest.raises(ValueError):
            hub_spoke_stream(100, provider_fraction=0.0)


class TestForestFire:
    def test_connected(self):
        from repro.datasets.generators import forest_fire_stream
        from repro.graph.components import is_connected

        g = forest_fire_stream(200, seed=0).snapshot()
        assert g.num_nodes == 200
        assert is_connected(g)

    def test_densification_with_forward_prob(self):
        from repro.datasets.generators import forest_fire_stream

        cold = forest_fire_stream(200, forward_prob=0.05, seed=1).snapshot()
        hot = forest_fire_stream(200, forward_prob=0.5, seed=1).snapshot()
        assert hot.num_edges > cold.num_edges

    def test_deterministic(self):
        from repro.datasets.generators import forest_fire_stream

        a = forest_fire_stream(100, seed=9)
        b = forest_fire_stream(100, seed=9)
        assert a.events() == b.events()

    def test_snapshot_pair_valid(self):
        from repro.datasets.generators import forest_fire_stream
        from repro.graph.validation import check_snapshot_pair

        tg = forest_fire_stream(150, seed=2)
        check_snapshot_pair(*tg.snapshot_pair(0.8, 1.0))

    def test_validation(self):
        from repro.datasets.generators import forest_fire_stream

        with pytest.raises(ValueError):
            forest_fire_stream(1)
        with pytest.raises(ValueError):
            forest_fire_stream(10, forward_prob=1.0)
        with pytest.raises(ValueError):
            forest_fire_stream(10, ambassador_links=0)

    def test_clustering_exceeds_pa_baseline(self):
        from repro.datasets.generators import (
            forest_fire_stream,
            preferential_attachment_stream,
        )
        from repro.graph.stats import average_clustering

        ff = forest_fire_stream(300, forward_prob=0.4, seed=3).snapshot()
        pa = preferential_attachment_stream(
            300, max(1, ff.num_edges // 300), seed=3
        ).snapshot()
        # Burning neighborhoods closes triangles; PA barely does.
        assert average_clustering(ff) > average_clustering(pa)
