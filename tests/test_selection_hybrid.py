"""Unit tests for the hybrid selectors (MMSD / MMMD / MASD / MAMD)."""

import numpy as np
import pytest

from repro.core.budget import SPBudget
from repro.selection import get_selector

from conftest import path_graph

HYBRIDS = ["MMSD", "MMMD", "MASD", "MAMD"]


@pytest.fixture
def chord_pair():
    g1 = path_graph(10)
    g2 = g1.copy()
    g2.add_edge(0, 9)
    return g1, g2


def run(name, g1, g2, m, l=3, seed=0):
    selector = get_selector(name, num_landmarks=l)
    budget = SPBudget(2 * m)
    result = selector.select(g1, g2, m, budget, rng=np.random.default_rng(seed))
    return result, budget


class TestHybrids:
    @pytest.mark.parametrize("name", HYBRIDS)
    def test_budget_split_matches_table1(self, name, chord_pair):
        g1, g2 = chord_pair
        result, budget = run(name, g1, g2, m=6, l=3)
        assert budget.spent == 6  # 2l
        assert budget.by_snapshot() == {"g1": 3, "g2": 3}

    @pytest.mark.parametrize("name", HYBRIDS)
    def test_landmark_rows_cached_in_both_snapshots(self, name, chord_pair):
        result, _ = run(name, *chord_pair, m=6, l=3)
        assert len(result.d1_rows) == 3
        assert set(result.d1_rows) == set(result.d2_rows)
        assert set(result.candidates[:3]) == set(result.d1_rows)

    @pytest.mark.parametrize("name", HYBRIDS)
    def test_full_m_candidates(self, name, chord_pair):
        result, _ = run(name, *chord_pair, m=6, l=3)
        assert len(result.candidates) == 6
        assert len(set(result.candidates)) == 6

    def test_landmarks_are_dispersed_not_random(self, chord_pair):
        """MaxMin-seeded landmarks on the 10-path must be well spread.

        Whatever the random start, the greedy's second pick is a path
        endpoint and three picks are pairwise >= 3 hops apart (a uniform
        random triple violates this most of the time).
        """
        g1, g2 = chord_pair
        for seed in range(5):
            result, _ = run("MMSD", g1, g2, m=6, l=3, seed=seed)
            landmarks = result.candidates[:3]
            assert any(u in (0, 9) for u in landmarks)
            spacing = min(
                abs(a - b)
                for i, a in enumerate(landmarks)
                for b in landmarks[i + 1 :]
            )
            assert spacing >= 3

    def test_hybrid_total_spend_through_algorithm(self, chord_pair):
        from repro.core.algorithm import find_top_k_converging_pairs

        g1, g2 = chord_pair
        result = find_top_k_converging_pairs(
            g1, g2, k=3, m=6, selector=get_selector("MMSD", num_landmarks=3),
            seed=0,
        )
        assert result.budget.spent == 12  # exactly 2m
        assert result.budget.by_phase() == {"generation": 6, "topk": 6}

    def test_finds_the_chord_pair(self, chord_pair):
        from repro.core.algorithm import find_top_k_converging_pairs

        g1, g2 = chord_pair
        hits = 0
        for seed in range(5):
            result = find_top_k_converging_pairs(
                g1, g2, k=1, m=6,
                selector=get_selector("MMSD", num_landmarks=3), seed=seed,
            )
            hits += bool(result.pairs and result.pairs[0].pair == (0, 9))
        assert hits >= 4  # dispersion reaches the path ends essentially always
