"""In-process service behaviour: caching, degradation, shed, drain."""

import asyncio
import json

import pytest

from repro.runtime import RuntimeConfig, StreamRuntime
from repro.runtime.breaker import CLOSED, CircuitBreaker
from repro.runtime.guards import ResourceGuard
from repro.runtime.supervisor import Supervisor
from repro.service import ConvergenceService
from repro.service.answers import compute_answer

from conftest import random_temporal_graph


def make_runtime(tmp_path, name="wal", batches=None):
    stream = random_temporal_graph(25, 90, seed=7)
    rt = StreamRuntime(
        stream, tmp_path / name,
        RuntimeConfig(k=4, batch_size=5, checkpoint_every=2),
    )
    if batches is not None:
        rt.run(max_batches=batches)
    return rt


async def served(service, *lines):
    """Start the worker, handle each line, drain, return decoded payloads."""
    service.start_worker()
    try:
        return [json.loads(await service.handle_line(line)) for line in lines]
    finally:
        await service.drain()


def run(coro):
    return asyncio.run(coro)


class TestQueries:
    def test_topk_envelope_matches_direct_compute(self, tmp_path):
        runtime = make_runtime(tmp_path, batches=6)
        service = ConvergenceService(runtime)
        (resp,) = run(served(service, '{"verb": "topk", "id": "q1"}'))
        assert resp["ok"] is True
        assert resp["id"] == "q1"
        assert resp["stale"] is False
        assert resp["version"] == runtime.state_version
        assert resp["result"] == compute_answer(runtime, "topk", {})

    def test_repeated_query_hits_the_cache(self, tmp_path):
        service = ConvergenceService(make_runtime(tmp_path, batches=6))
        line = '{"verb": "topk", "args": {"k": 2}}'
        r1, r2 = run(served(service, line, line))
        assert r1 == r2
        assert service.counters.cache_misses == 1
        assert service.counters.cache_hits == 1

    def test_advance_invalidates_the_cache(self, tmp_path):
        runtime = make_runtime(tmp_path, batches=4)
        service = ConvergenceService(runtime, advance_batches=4)

        async def scenario():
            service.start_worker()
            first = json.loads(await service.handle_line('{"verb": "topk"}'))
            adv = json.loads(await service.handle_line('{"verb": "advance"}'))
            second = json.loads(await service.handle_line('{"verb": "topk"}'))
            await service.drain()
            return first, adv, second

        first, adv, second = run(scenario())
        assert adv["ok"] is True
        assert adv["result"]["windows"] == len(runtime.windows)
        assert second["version"] > first["version"]
        assert second["version"] == runtime.state_version
        # Both topk computations were misses: the advance dropped v1.
        assert service.counters.cache_misses == 2
        assert service.counters.cache_hits == 0
        assert service.counters.advances >= 1

    def test_health_is_deterministic_across_twin_services(self, tmp_path):
        payloads = []
        for name in ("a", "b"):
            service = ConvergenceService(make_runtime(tmp_path, name, batches=4))
            (resp,) = run(served(service, '{"verb": "health"}'))
            payloads.append(json.dumps(resp, sort_keys=True))
        assert payloads[0] == payloads[1]

    def test_health_carries_no_wallclock_fields(self, tmp_path):
        service = ConvergenceService(make_runtime(tmp_path, batches=4))
        (resp,) = run(served(service, '{"verb": "health"}'))
        flat = json.dumps(resp)
        for needle in ("time", "stamp", "elapsed", "age"):
            assert needle not in flat


class TestAdmissionPath:
    def test_bad_request_rejected_before_admission(self, tmp_path):
        service = ConvergenceService(make_runtime(tmp_path, batches=4))

        async def scenario():
            # No worker running: a queued request would hang, so a
            # completed response proves the reject happened at parse.
            resp = json.loads(
                await service.handle_line('{"verb": "topk", "args": {"k": 0}}')
            )
            unknown = json.loads(
                await service.handle_line('{"verb": "nope", "id": "x"}')
            )
            return resp, unknown

        resp, unknown = run(scenario())
        assert resp["ok"] is False
        assert resp["error"]["code"] == "bad_request"
        assert unknown["error"]["code"] == "unknown_verb"
        assert unknown["id"] == "x"
        assert service.counters.rejected_bad_request == 2
        assert service.counters.admitted == 0
        assert service.counters.cache_misses == 0  # nothing computed

    def test_over_capacity_burst_never_exceeds_the_bound(self, tmp_path):
        service = ConvergenceService(make_runtime(tmp_path, batches=4), capacity=3)

        async def scenario():
            # Submit a burst of distinct queries before the worker runs.
            lines = [
                json.dumps({"verb": "topk", "args": {"k": k}, "id": f"q{k}"})
                for k in range(1, 8)
            ]
            tasks = [
                asyncio.ensure_future(service.handle_line(line))
                for line in lines
            ]
            await asyncio.sleep(0)  # let every submit land
            assert service.controller.depth <= 3
            service.start_worker()
            responses = [json.loads(await t) for t in tasks]
            await service.drain()
            return responses

        responses = run(scenario())
        rejected = [r for r in responses if not r["ok"]]
        servedok = [r for r in responses if r["ok"]]
        assert len(servedok) == 3
        assert len(rejected) == 4
        assert {r["error"]["code"] for r in rejected} == {"over_capacity"}
        assert service.counters.rejected_over_capacity == 4

    def test_over_deadline_rejected_without_compute(self, tmp_path):
        clock = [100.0]
        service = ConvergenceService(
            make_runtime(tmp_path, batches=4), clock=lambda: clock[0]
        )

        async def scenario():
            task = asyncio.ensure_future(
                service.handle_line(
                    '{"verb": "topk", "deadline_ms": 10, "id": "late"}'
                )
            )
            await asyncio.sleep(0)
            clock[0] += 1.0  # 1s passes while queued; deadline was 10ms
            service.start_worker()
            resp = json.loads(await task)
            await service.drain()
            return resp

        resp = run(scenario())
        assert resp["ok"] is False
        assert resp["error"]["code"] == "over_deadline"
        assert resp["id"] == "late"
        assert service.counters.cache_misses == 0  # no traversal ran
        assert service.counters.rejected_over_deadline == 1

    def test_coalesced_burst_shares_one_computation(self, tmp_path):
        service = ConvergenceService(make_runtime(tmp_path, batches=6))

        async def scenario():
            line = '{"verb": "topk", "args": {"k": 3}}'
            tasks = [
                asyncio.ensure_future(service.handle_line(line))
                for _ in range(5)
            ]
            await asyncio.sleep(0)
            assert service.controller.depth == 1
            service.start_worker()
            responses = [json.loads(await t) for t in tasks]
            await service.drain()
            return responses

        responses = run(scenario())
        assert all(r["ok"] for r in responses)
        assert len({json.dumps(r, sort_keys=True) for r in responses}) == 1
        assert service.counters.coalesced == 4
        assert service.counters.cache_misses == 1
        assert service.counters.cache_hits == 0  # shared, not recomputed


class TestDegradedMode:
    def make_failing_service(self, tmp_path):
        runtime = make_runtime(tmp_path, batches=4)

        def boom(max_batches=None):
            raise RuntimeError("ingest wedged")

        runtime.run = boom
        return ConvergenceService(
            runtime,
            breaker=CircuitBreaker(failure_threshold=1, seed=3),
            supervisor=Supervisor(max_restarts=0),
        )

    def test_failed_advance_opens_breaker_and_serves_stale(self, tmp_path):
        service = self.make_failing_service(tmp_path)
        adv, query = run(
            served(service, '{"verb": "advance"}', '{"verb": "topk"}')
        )
        assert adv["ok"] is False
        assert adv["error"]["code"] == "advance_failed"
        assert service.breaker.state != CLOSED
        # Queries keep working, flagged as degraded.
        assert query["ok"] is True
        assert query["stale"] is True
        assert query["version"] == service.runtime.state_version

    def test_open_breaker_fails_advances_fast(self, tmp_path):
        service = self.make_failing_service(tmp_path)
        first, second = run(
            served(service, '{"verb": "advance"}', '{"verb": "advance"}')
        )
        assert first["error"]["code"] == "advance_failed"
        assert second["error"]["code"] == "advance_failed"
        assert "breaker" in second["error"]["message"]

    def test_stale_answers_match_fresh_compute_at_same_version(self, tmp_path):
        service = self.make_failing_service(tmp_path)
        _, query = run(
            served(service, '{"verb": "advance"}', '{"verb": "topk"}')
        )
        assert query["result"] == compute_answer(service.runtime, "topk", {})


class TestGuardShed:
    def test_breach_sheds_the_queue_before_checkpointing(self, tmp_path):
        guard = ResourceGuard(
            soft_time_s=0.5, clock=iter([0.0, 9.0]).__next__
        )
        service = ConvergenceService(
            make_runtime(tmp_path, batches=4), guard=guard
        )

        async def scenario():
            lines = [
                json.dumps({"verb": "topk", "args": {"k": k}})
                for k in (1, 2, 3)
            ]
            tasks = [
                asyncio.ensure_future(service.handle_line(line))
                for line in lines
            ]
            await asyncio.sleep(0)
            service.start_worker()
            responses = [json.loads(await t) for t in tasks]
            await service.drain()
            return responses

        responses = run(scenario())
        assert all(not r["ok"] for r in responses)
        assert {r["error"]["code"] for r in responses} == {"shed"}
        assert guard.breached == "time"
        assert service.counters.cache_misses == 0  # shed before compute


class TestDrain:
    def test_drain_finishes_queued_then_rejects_new(self, tmp_path):
        service = ConvergenceService(make_runtime(tmp_path, batches=4))

        async def scenario():
            task = asyncio.ensure_future(
                service.handle_line('{"verb": "topk", "id": "inflight"}')
            )
            await asyncio.sleep(0)
            service.request_drain()
            late = json.loads(
                await service.handle_line('{"verb": "topk", "id": "late"}')
            )
            service.start_worker()
            inflight = json.loads(await task)
            await service.drain()
            return inflight, late

        inflight, late = run(scenario())
        assert inflight["ok"] is True
        assert late["ok"] is False
        assert late["error"]["code"] == "draining"

    def test_drain_flushes_durable_state(self, tmp_path):
        runtime = make_runtime(tmp_path, batches=4)
        service = ConvergenceService(runtime)
        run(served(service, '{"verb": "topk"}'))
        # A fresh runtime over the same WAL dir recovers the exact state.
        recovered = StreamRuntime(
            random_temporal_graph(25, 90, seed=7), tmp_path / "wal",
            RuntimeConfig(k=4, batch_size=5, checkpoint_every=2),
        )
        assert recovered.state_version == runtime.state_version
        assert recovered.consumed == runtime.consumed
