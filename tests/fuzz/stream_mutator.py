"""Deterministic, seeded corruption of edge-stream bytes.

The fuzz harness (``test_loader_fuzz.py``) feeds the loaders mutated
variants of a known-clean corpus.  Every mutation is a pure function of
``(corpus bytes, class name, seed)`` — ``random.Random(seed)`` only, no
global randomness — so a failing case is reproducible from its seed
alone and the CI smoke job pins exactly the same inputs on every run.

Corruption classes (each models a real-world failure mode):

==================  ====================================================
``truncate``        the file is cut mid-byte (partial download)
``garbage-bytes``   random bytes spliced in, including invalid UTF-8
``field-swap``      two fields of a line exchanged (column confusion)
``huge-token``      a field replaced by a 5000-char token / ``1e999``
``drop-field``      a field deleted from a line (ragged row)
``dup-lines``       lines duplicated (doubled export)
``shuffle-times``   timestamps permuted across lines (disordered feed)
``sign-flip``       a weight negated (deletion events)
``crlf-and-blank``  CRLF endings plus blank/comment noise
==================  ====================================================
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List

Mutator = Callable[[bytes, random.Random], bytes]


def _lines(blob: bytes) -> List[bytes]:
    return blob.split(b"\n")


def _data_line_indices(lines: List[bytes]) -> List[int]:
    return [
        i for i, line in enumerate(lines)
        if line.strip() and not line.lstrip().startswith(b"#")
    ]


def mutate_truncate(blob: bytes, rng: random.Random) -> bytes:
    if len(blob) < 2:
        return blob
    return blob[: rng.randrange(1, len(blob))]


def mutate_garbage_bytes(blob: bytes, rng: random.Random) -> bytes:
    out = bytearray(blob)
    for _ in range(rng.randrange(1, 6)):
        pos = rng.randrange(0, len(out) + 1)
        junk = bytes(rng.randrange(0, 256) for _ in range(rng.randrange(1, 8)))
        out[pos:pos] = junk
    return bytes(out)


def mutate_field_swap(blob: bytes, rng: random.Random) -> bytes:
    lines = _lines(blob)
    targets = _data_line_indices(lines)
    if not targets:
        return blob
    i = rng.choice(targets)
    fields = lines[i].split(b"\t")
    if len(fields) >= 2:
        a, b = rng.sample(range(len(fields)), 2)
        fields[a], fields[b] = fields[b], fields[a]
        lines[i] = b"\t".join(fields)
    return b"\n".join(lines)


def mutate_huge_token(blob: bytes, rng: random.Random) -> bytes:
    lines = _lines(blob)
    targets = _data_line_indices(lines)
    if not targets:
        return blob
    i = rng.choice(targets)
    fields = lines[i].split(b"\t")
    j = rng.randrange(len(fields))
    fields[j] = rng.choice([b"9" * 5000, b"1e999", b"-1e999", b"nan"])
    lines[i] = b"\t".join(fields)
    return b"\n".join(lines)


def mutate_drop_field(blob: bytes, rng: random.Random) -> bytes:
    lines = _lines(blob)
    targets = _data_line_indices(lines)
    if not targets:
        return blob
    i = rng.choice(targets)
    fields = lines[i].split(b"\t")
    if len(fields) > 1:
        del fields[rng.randrange(len(fields))]
        lines[i] = b"\t".join(fields)
    return b"\n".join(lines)


def mutate_dup_lines(blob: bytes, rng: random.Random) -> bytes:
    lines = _lines(blob)
    targets = _data_line_indices(lines)
    if not targets:
        return blob
    for _ in range(rng.randrange(1, 4)):
        i = rng.choice(targets)
        lines.insert(rng.choice(targets), lines[i])
    return b"\n".join(lines)


def mutate_shuffle_times(blob: bytes, rng: random.Random) -> bytes:
    lines = _lines(blob)
    targets = _data_line_indices(lines)
    if len(targets) < 2:
        return blob
    firsts = [lines[i].split(b"\t")[0] for i in targets]
    rng.shuffle(firsts)
    for i, first in zip(targets, firsts):
        fields = lines[i].split(b"\t")
        fields[0] = first
        lines[i] = b"\t".join(fields)
    return b"\n".join(lines)


def mutate_sign_flip(blob: bytes, rng: random.Random) -> bytes:
    lines = _lines(blob)
    targets = _data_line_indices(lines)
    if not targets:
        return blob
    i = rng.choice(targets)
    fields = lines[i].split(b"\t")
    if len(fields) == 4:
        fields[3] = rng.choice([b"-", b"", b"0.0\t-"]) + fields[3]
        lines[i] = b"\t".join(fields)
    return b"\n".join(lines)


def mutate_crlf_and_blank(blob: bytes, rng: random.Random) -> bytes:
    lines = _lines(blob)
    for _ in range(rng.randrange(1, 4)):
        pos = rng.randrange(0, len(lines) + 1)
        lines.insert(pos, rng.choice([b"", b"   ", b"# injected comment"]))
    return b"\r\n".join(lines)


CORRUPTION_CLASSES: Dict[str, Mutator] = {
    "truncate": mutate_truncate,
    "garbage-bytes": mutate_garbage_bytes,
    "field-swap": mutate_field_swap,
    "huge-token": mutate_huge_token,
    "drop-field": mutate_drop_field,
    "dup-lines": mutate_dup_lines,
    "shuffle-times": mutate_shuffle_times,
    "sign-flip": mutate_sign_flip,
    "crlf-and-blank": mutate_crlf_and_blank,
}


def mutate(blob: bytes, klass: str, seed: int) -> bytes:
    """Apply corruption class ``klass`` to ``blob`` under ``seed``.

    Deterministic: the same triple always yields the same bytes.
    Roughly a third of seeds stack a second class on top, so compound
    corruption is exercised too.
    """
    rng = random.Random(seed)
    out = CORRUPTION_CLASSES[klass](blob, rng)
    if rng.random() < 0.35:
        other = rng.choice(sorted(CORRUPTION_CLASSES))
        out = CORRUPTION_CLASSES[other](out, rng)
    return out
