"""Corpus-driven fuzz harness for the edge-stream loaders.

Contract under test (the "hardened boundary" guarantees):

1. the **strict** loaders never crash *ungracefully* — any rejection of
   corrupt bytes is a located :class:`ValueError` (which covers
   :class:`~repro.ingest.rules.IngestError` and
   :class:`~repro.graph.validation.GraphValidationError`), never an
   ``IndexError`` / ``UnicodeDecodeError`` / anything else;
2. a **sanitized** read never raises at all under default policies, and
   its report obeys the conservation law — every line is accounted for
   exactly once;
3. whatever survives sanitization is a *valid* stream: snapshot pairs
   satisfy the insertion-only model;
4. strict and repair agree: if an all-strict pass accepts a file, the
   default repair pass finds zero issues on it;
5. everything is deterministic: the same mutated bytes produce the same
   events, report, and quarantine decisions on every run.

Every mutation is pinned by ``(corruption class, seed)`` through
``stream_mutator.mutate`` — over 500 mutations across 9 corruption
classes run in tier-1 and in the CI fuzz smoke job.
"""

import json

import pytest

from stream_mutator import CORRUPTION_CLASSES, mutate

from repro.datasets.io import ReadStats, read_edge_list, read_edge_stream
from repro.graph.validation import check_snapshot_pair
from repro.ingest import RULE_NAMES, IngestError, Sanitizer

#: Seeds per corruption class; 9 classes x 60 = 540 mutations >= 500.
SEEDS_PER_CLASS = 60


def _base_stream_corpus() -> bytes:
    """A clean timestamped-TSV corpus (fixed, no randomness)."""
    rows = ["# time\tu\tv\tweight"]
    for i in range(40):
        u, v = i % 7, (i * 3 + 1) % 11 + 7
        rows.append(f"{i}\t{u}\t{v}\t{1.0 + (i % 5)}")
    return ("\n".join(rows) + "\n").encode()


def _base_list_corpus() -> bytes:
    """A clean plain edge-list corpus."""
    rows = [f"{i % 9} {(i * 5 + 2) % 13 + 9}" for i in range(30)]
    return ("\n".join(rows) + "\n").encode()


def _strict_load_is_graceful(path, loader):
    """Strict loading either works or fails with a ValueError."""
    try:
        loader(path)
    except ValueError:
        return False
    except Exception as exc:  # pragma: no cover - the bug being hunted
        pytest.fail(
            f"strict loader crashed ungracefully on {path.name}: "
            f"{type(exc).__name__}: {exc}"
        )
    return True


def _check_conservation(report):
    assert report.lines == report.parsed + report.malformed
    assert report.parsed == (
        report.emitted
        + sum(report.dropped.values())
        + sum(report.quarantined.values())
    )
    assert report.malformed == sum(report.parse_errors.values())


def _sanitized_checks(path, loader):
    """Invariants 2-4 for one mutated file."""
    sanitizer = Sanitizer()
    temporal = loader(path, sanitizer=sanitizer)
    report = sanitizer.report
    _check_conservation(report)
    assert temporal.num_events == report.emitted

    # Whatever survived sanitization is a valid insertion-only stream.
    g1, g2 = temporal.snapshot_pair(0.5, 1.0)
    check_snapshot_pair(g1, g2)

    # Strict/repair consistency: an all-strict pass accepting the file
    # means the repair pass had nothing to do.
    all_strict = {name: "strict" for name in RULE_NAMES}
    try:
        loader(path, sanitizer=Sanitizer(all_strict))
    except IngestError:
        assert not report.clean
    else:
        assert report.clean
    return report


@pytest.mark.parametrize("klass", sorted(CORRUPTION_CLASSES))
def test_fuzzed_stream_loader(klass, tmp_path):
    corpus = _base_stream_corpus()
    for seed in range(SEEDS_PER_CLASS):
        blob = mutate(corpus, klass, seed)
        path = tmp_path / f"{klass}-{seed}.tsv"
        path.write_bytes(blob)

        strict_ok = _strict_load_is_graceful(path, read_edge_stream)
        report = _sanitized_checks(path, read_edge_stream)

        if strict_ok:
            # The unsanitized strict read accepted every line, so the
            # sanitizer must have parsed exactly as many.
            stats = ReadStats()
            read_edge_stream(path, stats=stats)
            assert report.parsed == stats.parsed
            assert report.malformed == 0


@pytest.mark.parametrize("klass", sorted(CORRUPTION_CLASSES))
def test_fuzzed_list_loader(klass, tmp_path):
    corpus = _base_list_corpus()
    # The list loader shares the line-handling core; a third of the
    # stream budget keeps total fuzz volume high without redundancy.
    for seed in range(SEEDS_PER_CLASS // 3):
        blob = mutate(corpus, klass, seed)
        path = tmp_path / f"{klass}-{seed}.txt"
        path.write_bytes(blob)
        _strict_load_is_graceful(path, read_edge_list)
        _sanitized_checks(path, read_edge_list)


class TestHarnessContract:
    def test_coverage_floor(self):
        """The acceptance floor: >= 6 classes, >= 500 mutations."""
        assert len(CORRUPTION_CLASSES) >= 6
        total = (
            len(CORRUPTION_CLASSES) * SEEDS_PER_CLASS
            + len(CORRUPTION_CLASSES) * (SEEDS_PER_CLASS // 3)
        )
        assert total >= 500

    def test_mutations_are_deterministic(self):
        corpus = _base_stream_corpus()
        for klass in CORRUPTION_CLASSES:
            for seed in (0, 17):
                assert mutate(corpus, klass, seed) == mutate(
                    corpus, klass, seed
                )

    def test_mutations_actually_mutate(self):
        corpus = _base_stream_corpus()
        changed = sum(
            mutate(corpus, klass, seed) != corpus
            for klass in CORRUPTION_CLASSES
            for seed in range(10)
        )
        # Nearly every (class, seed) must alter the bytes, or the
        # harness is fuzzing nothing.
        assert changed >= 0.9 * len(CORRUPTION_CLASSES) * 10

    def test_sanitization_is_deterministic(self, tmp_path):
        corpus = _base_stream_corpus()
        for klass in sorted(CORRUPTION_CLASSES)[:4]:
            blob = mutate(corpus, klass, seed=3)
            path = tmp_path / f"det-{klass}.tsv"
            path.write_bytes(blob)
            runs = []
            for _ in range(2):
                sanitizer = Sanitizer()
                temporal = read_edge_stream(path, sanitizer=sanitizer)
                runs.append((
                    [(e.time, e.u, e.v, e.weight) for e in temporal],
                    json.dumps(sanitizer.report.to_payload(),
                               sort_keys=True),
                    [r.to_payload() for r in sanitizer.records],
                ))
            assert runs[0] == runs[1]
