"""Admission control: bounds, deadlines, coalescing, shedding, cache."""

import asyncio

import pytest

from repro.service.admission import (
    AdmissionController,
    AdmissionReject,
    ResultCache,
    ServiceCounters,
)
from repro.service.protocol import (
    E_DRAINING,
    E_OVER_CAPACITY,
    E_OVER_DEADLINE,
    E_SHED,
    Request,
)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def run(coro):
    return asyncio.run(coro)


def controller(capacity=3, clock=None):
    return AdmissionController(
        capacity, clock=clock if clock is not None else FakeClock()
    )


class TestCapacity:
    def test_bound_is_enforced_at_submit(self):
        async def scenario():
            ctl = controller(capacity=2)
            ctl.submit(Request(verb="topk", args={"k": 1}))
            ctl.submit(Request(verb="topk", args={"k": 2}))
            assert ctl.depth == 2
            with pytest.raises(AdmissionReject) as err:
                ctl.submit(Request(verb="topk", args={"k": 3}))
            assert err.value.code == E_OVER_CAPACITY
            assert ctl.depth == 2  # the rejected request never queued
            assert ctl.counters.rejected_over_capacity == 1
            assert ctl.counters.admitted == 2

        run(scenario())

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            AdmissionController(0)


class TestCoalescing:
    def test_identical_queries_share_one_future(self):
        async def scenario():
            ctl = controller()
            f1 = ctl.submit(Request(verb="topk", args={"k": 5}))
            f2 = ctl.submit(Request(verb="topk", args={"k": 5}))
            assert f1 is f2
            assert ctl.depth == 1  # the follower took no queue slot
            assert ctl.counters.coalesced == 1
            ticket = await ctl.next_ticket()
            ctl.resolve(ticket, "answer")
            assert await f1 == "answer"
            assert await f2 == "answer"

        run(scenario())

    def test_arg_order_does_not_defeat_coalescing(self):
        async def scenario():
            ctl = controller()
            f1 = ctl.submit(Request(verb="node", args={"u": 1, "k": 2}))
            f2 = ctl.submit(Request(verb="node", args={"k": 2, "u": 1}))
            assert f1 is f2

        run(scenario())

    def test_different_args_do_not_coalesce(self):
        async def scenario():
            ctl = controller()
            f1 = ctl.submit(Request(verb="topk", args={"k": 5}))
            f2 = ctl.submit(Request(verb="topk", args={"k": 6}))
            assert f1 is not f2
            assert ctl.depth == 2

        run(scenario())

    def test_control_verbs_never_coalesce(self):
        async def scenario():
            ctl = controller()
            f1 = ctl.submit(Request(verb="advance"))
            f2 = ctl.submit(Request(verb="advance"))
            assert f1 is not f2
            assert ctl.counters.coalesced == 0

        run(scenario())

    def test_settled_future_is_not_reused(self):
        async def scenario():
            ctl = controller()
            f1 = ctl.submit(Request(verb="topk", args={}))
            ticket = await ctl.next_ticket()
            ctl.resolve(ticket, "old")
            f2 = ctl.submit(Request(verb="topk", args={}))
            assert f1 is not f2

        run(scenario())


class TestDeadlines:
    def test_expired_while_queued_is_rejected_before_compute(self):
        async def scenario():
            clock = FakeClock()
            ctl = controller(clock=clock)
            expired = ctl.submit(
                Request(verb="topk", args={"k": 1}, deadline_ms=50)
            )
            live = ctl.submit(
                Request(verb="topk", args={"k": 2}, deadline_ms=5000)
            )
            clock.now += 0.2  # 200ms pass; the 50ms deadline is gone
            ticket = await ctl.next_ticket()
            # The worker never saw the expired request.
            assert ticket.request.args == {"k": 2}
            assert ctl.counters.rejected_over_deadline == 1
            with pytest.raises(AdmissionReject) as err:
                await expired
            assert err.value.code == E_OVER_DEADLINE
            ctl.resolve(ticket, "ok")
            assert await live == "ok"

        run(scenario())

    def test_no_deadline_never_expires(self):
        async def scenario():
            clock = FakeClock()
            ctl = controller(clock=clock)
            future = ctl.submit(Request(verb="topk", args={}))
            clock.now += 1e6
            ticket = await ctl.next_ticket()
            ctl.resolve(ticket, "ok")
            assert await future == "ok"

        run(scenario())


class TestShedAndDrain:
    def test_shed_rejects_everything_queued(self):
        async def scenario():
            ctl = controller(capacity=5)
            futures = [
                ctl.submit(Request(verb="topk", args={"k": i}))
                for i in range(1, 4)
            ]
            assert ctl.shed("memory") == 3
            assert ctl.depth == 0
            assert ctl.counters.shed == 3
            for future in futures:
                with pytest.raises(AdmissionReject) as err:
                    await future
                assert err.value.code == E_SHED

        run(scenario())

    def test_drain_rejects_new_but_finishes_queued(self):
        async def scenario():
            ctl = controller()
            queued = ctl.submit(Request(verb="topk", args={}))
            ctl.begin_drain()
            with pytest.raises(AdmissionReject) as err:
                ctl.submit(Request(verb="topk", args={"k": 9}))
            assert err.value.code == E_DRAINING
            assert ctl.counters.rejected_draining == 1
            ticket = await ctl.next_ticket()
            ctl.resolve(ticket, "finished")
            assert await queued == "finished"

        run(scenario())

    def test_close_releases_the_worker_after_the_queue_empties(self):
        async def scenario():
            ctl = controller()
            ctl.submit(Request(verb="topk", args={}))
            ctl.close()
            ticket = await ctl.next_ticket()
            assert ticket is not None  # queued work still served
            ctl.resolve(ticket, "ok")
            assert await ctl.next_ticket() is None

        run(scenario())


class TestResultCache:
    def test_hit_and_miss_counters(self):
        counters = ServiceCounters()
        cache = ResultCache(counters)
        key = ("topk", "{}")
        assert cache.get(1, key) is None
        cache.put(1, key, {"pairs": []})
        assert cache.get(1, key) == {"pairs": []}
        assert counters.cache_misses == 1
        assert counters.cache_hits == 1

    def test_invalidate_drops_old_versions(self):
        counters = ServiceCounters()
        cache = ResultCache(counters)
        key = ("topk", "{}")
        cache.put(1, key, "v1-answer")
        cache.invalidate(2)
        assert len(cache) == 0
        assert cache.get(2, key) is None
        cache.put(2, key, "v2-answer")
        # Asking at a stale version never returns the new entry.
        assert cache.get(1, key) is None

    def test_counters_payload_is_sorted_and_integer(self):
        payload = ServiceCounters(admitted=3, shed=1).to_payload()
        assert list(payload) == sorted(payload)
        assert all(isinstance(v, int) for v in payload.values())
