"""Unit tests for the centrality-based selectors."""

import numpy as np
import pytest

from repro.core.budget import SPBudget
from repro.graph.graph import Graph
from repro.selection import get_selector

from conftest import star_graph


@pytest.fixture
def degree_pair():
    """t1: star on 0 plus pendant chain; t2 adds edges at node 5.

    Degrees t1: 0 -> 4 (hub), 5 -> 1.  t2 adds (5,6),(5,7),(5,8):
    deg(5) goes 1 -> 4 (diff 3, rel 3.0); hub stays 4 (diff 0).
    """
    g1 = star_graph(4)  # 0 hub, leaves 1..4
    g1.add_edge(4, 5)
    g2 = g1.copy()
    for leaf in (6, 7, 8):
        g2.add_edge(5, leaf)
    return g1, g2


def run(selector_name, g1, g2, m, **kwargs):
    selector = get_selector(selector_name, **kwargs)
    budget = SPBudget(2 * m)
    result = selector.select(g1, g2, m, budget, rng=np.random.default_rng(0))
    return result, budget


class TestDegree:
    def test_picks_hub_first(self, degree_pair):
        g1, g2 = degree_pair
        result, _ = run("Degree", g1, g2, 1)
        assert result.candidates == [0]

    def test_ranking_is_by_t1_degree(self, degree_pair):
        g1, g2 = degree_pair
        result, _ = run("Degree", g1, g2, 3)
        degrees = [g1.degree(u) for u in result.candidates]
        assert degrees == sorted(degrees, reverse=True)

    def test_no_generation_cost(self, degree_pair):
        _, budget = run("Degree", *degree_pair, 3)
        assert budget.spent == 0

    def test_candidates_at_most_m(self, degree_pair):
        result, _ = run("Degree", *degree_pair, 100)
        assert len(result.candidates) == degree_pair[0].num_nodes

    def test_invalid_m(self, degree_pair):
        with pytest.raises(ValueError):
            run("Degree", *degree_pair, 0)


class TestDegDiff:
    def test_picks_grower_first(self, degree_pair):
        g1, g2 = degree_pair
        result, _ = run("DegDiff", g1, g2, 1)
        assert result.candidates == [5]

    def test_only_t1_nodes_returned(self, degree_pair):
        g1, g2 = degree_pair
        result, _ = run("DegDiff", g1, g2, 20)
        assert all(u in g1 for u in result.candidates)
        assert 6 not in result.candidates  # new node, not in V_t1

    def test_no_generation_cost(self, degree_pair):
        _, budget = run("DegDiff", *degree_pair, 3)
        assert budget.spent == 0


class TestDegRel:
    def test_relative_growth_beats_absolute_degree(self, degree_pair):
        g1, g2 = degree_pair
        result, _ = run("DegRel", g1, g2, 1)
        assert result.candidates == [5]  # 3/1 beats hub's 0/4

    def test_relative_vs_absolute_ordering(self):
        # u grows 10 -> 12 (rel 0.2); v grows 1 -> 2 (rel 1.0).
        g1 = Graph((("u", f"x{i}") for i in range(10)))
        g1.add_edge("v", "w")
        g2 = g1.copy()
        g2.add_edge("u", "y1")
        g2.add_edge("u", "y2")
        g2.add_edge("v", "z")
        result, _ = run("DegRel", g1, g2, 2)
        assert result.candidates[0] == "v"

    def test_isolated_t1_node_scored_finitely(self):
        g1 = Graph([(0, 1)])
        g1.add_node(9)
        g2 = g1.copy()
        g2.add_edge(9, 0)
        g2.add_edge(9, 1)
        result, _ = run("DegRel", g1, g2, 1)
        assert result.candidates == [9]  # (2-0)/max(0,1) = 2

    def test_deterministic_tie_break(self, degree_pair):
        g1, g2 = degree_pair
        a, _ = run("DegRel", g1, g2, 5)
        b, _ = run("DegRel", g1, g2, 5)
        assert a.candidates == b.candidates
