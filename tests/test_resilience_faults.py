"""Fault-injector unit tests and monitor chaos tests (-m faults)."""

import pytest

from repro.core.monitoring import ConvergenceMonitor
from repro.resilience import (
    CheckpointStore,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    RetryPolicy,
    SocketCutFault,
    SocketFaultInjector,
    SocketFaultPlan,
    capture_events,
    run_guarded,
)
from repro.selection import get_selector

from conftest import random_temporal_graph

pytestmark = pytest.mark.faults


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(fail_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(latency_s=-1)
        with pytest.raises(ValueError):
            FaultPlan(fail_nth=(0,))

    def test_fail_nth_is_exact(self):
        injector = FaultInjector(FaultPlan(fail_nth=(2, 4)))
        outcomes = []
        fn = injector.wrap(lambda: "ok")
        for _ in range(5):
            try:
                outcomes.append(fn())
            except InjectedFault:
                outcomes.append("fault")
        assert outcomes == ["ok", "fault", "ok", "fault", "ok"]
        assert injector.calls == 5
        assert injector.faults == 2

    def test_fail_rate_is_deterministic_per_seed(self):
        def decisions(seed):
            injector = FaultInjector(FaultPlan(fail_rate=0.3, seed=seed))
            fn = injector.wrap(lambda: True)
            out = []
            for _ in range(50):
                try:
                    fn()
                    out.append(False)
                except InjectedFault:
                    out.append(True)
            return out

        assert decisions(5) == decisions(5)
        assert decisions(5) != decisions(6)
        assert any(decisions(5))  # 50 draws at 30% fail at least once

    def test_counter_is_shared_across_wrapped_callables(self):
        injector = FaultInjector(FaultPlan(fail_nth=(3,)))
        a = injector.wrap(lambda: "a")
        b = injector.wrap(lambda: "b")
        assert a() == "a"
        assert b() == "b"
        with pytest.raises(InjectedFault):
            a()

    def test_latency_spike_uses_sleep_hook(self):
        slept = []
        injector = FaultInjector(
            FaultPlan(latency_s=2.5, latency_nth=(2,)), sleep=slept.append
        )
        fn = injector.wrap(lambda: None)
        fn()
        fn()
        fn()
        assert slept == [2.5]

    def test_latency_every_call_when_nth_empty(self):
        slept = []
        injector = FaultInjector(FaultPlan(latency_s=1.0), sleep=slept.append)
        fn = injector.wrap(lambda: None)
        fn()
        fn()
        assert slept == [1.0, 1.0]


class TestDiskFaultInjector:
    def _injector(self, **kwargs):
        from repro.resilience.faults import DiskFaultInjector, DiskFaultPlan

        return DiskFaultInjector(DiskFaultPlan(**kwargs))

    def test_plan_validation(self):
        from repro.resilience.faults import DiskFaultPlan

        with pytest.raises(ValueError):
            DiskFaultPlan(torn_fraction=1.0)
        with pytest.raises(ValueError):
            DiskFaultPlan(enospc_nth=(0,))
        with pytest.raises(ValueError):
            DiskFaultPlan(fsync_nth=(-1,))

    def test_enospc_drops_the_whole_write(self, tmp_path):
        from repro.resilience.faults import DiskFullFault

        injector = self._injector(enospc_nth=(2,))
        path = tmp_path / "f.bin"
        with path.open("wb") as fh:
            injector.write(fh, b"first|")
            with pytest.raises(DiskFullFault):
                injector.write(fh, b"second|")
            injector.write(fh, b"third|")
        # The failed write left no bytes at all — ENOSPC rejects whole.
        assert path.read_bytes() == b"first|third|"
        assert injector.faults == 1

    def test_torn_write_lands_a_strict_prefix(self, tmp_path):
        from repro.resilience.faults import TornWriteFault

        injector = self._injector(torn_nth=(1,), torn_fraction=0.5)
        path = tmp_path / "f.bin"
        payload = b"0123456789"
        with path.open("wb") as fh:
            with pytest.raises(TornWriteFault):
                injector.write(fh, payload)
        landed = path.read_bytes()
        assert landed == payload[: len(landed)]  # a prefix...
        assert 0 < len(landed) < len(payload)  # ...and strictly torn

    def test_fsync_failure_after_write(self, tmp_path):
        from repro.resilience.faults import FsyncFault

        injector = self._injector(fsync_nth=(1,))
        with (tmp_path / "f.bin").open("wb") as fh:
            injector.write(fh, b"data")
            with pytest.raises(FsyncFault):
                injector.fsync(fh)
            injector.fsync(fh)  # second fsync follows the schedule
        assert injector.fsyncs == 2

    def test_counters_are_independent_per_operation_kind(self, tmp_path):
        from repro.resilience.faults import DiskFullFault

        # Write #2 fails; fsync #2 would too, but only one fsync happens.
        injector = self._injector(enospc_nth=(2,), fsync_nth=(2,))
        with (tmp_path / "f.bin").open("wb") as fh:
            injector.write(fh, b"a")
            injector.fsync(fh)
            with pytest.raises(DiskFullFault):
                injector.write(fh, b"b")
        assert (injector.writes, injector.fsyncs) == (2, 1)

    def test_disk_faults_are_injected_faults(self):
        from repro.resilience.faults import (
            DiskFault,
            DiskFullFault,
            FsyncFault,
            TornWriteFault,
        )

        for cls in (DiskFullFault, TornWriteFault, FsyncFault):
            assert issubclass(cls, DiskFault)
            assert issubclass(cls, InjectedFault)


class TestRunGuardedWithFaults:
    def test_retry_rides_through_injected_fault(self):
        injector = FaultInjector(FaultPlan(fail_nth=(1,)))
        fn = injector.wrap(lambda: 42)
        value, error = run_guarded(
            fn, unit="u",
            retry_policy=RetryPolicy(max_retries=1, base_delay=0.0),
        )
        assert (value, error) == (42, None)
        assert injector.calls == 2

    def test_skip_mode_records_error(self):
        injector = FaultInjector(FaultPlan(fail_nth=(1, 2)))
        fn = injector.wrap(lambda: 42)
        value, error = run_guarded(fn, unit="u", on_error="skip")
        assert value is None
        assert error.startswith("InjectedFault")

    def test_fail_mode_propagates(self):
        injector = FaultInjector(FaultPlan(fail_nth=(1,)))
        with pytest.raises(InjectedFault):
            run_guarded(injector.wrap(lambda: 42), unit="u", on_error="fail")

    def test_bad_on_error_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            run_guarded(lambda: 1, unit="u", on_error="retry")


# ----------------------------------------------------------------------
# Monitor chaos: faults injected into the selector factory.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def stream():
    return random_temporal_graph(60, 240, seed=91)


def make_monitor(stream, injector=None, **kwargs):
    def factory():
        if injector is not None:
            injector.check("selector")
        return get_selector("SumDiff", num_landmarks=3)

    defaults = dict(k=10, m=8, seed=0)
    defaults.update(kwargs)
    return ConvergenceMonitor(stream, selector_factory=factory, **defaults)


class TestMonitorDegradation:
    def test_skip_records_failed_window_and_continues(self, stream):
        injector = FaultInjector(FaultPlan(fail_nth=(2,)))
        monitor = make_monitor(stream, injector, on_error="skip")
        reports = monitor.run([0.4, 0.6, 0.8, 1.0])
        assert [r.ok for r in reports] == [True, False, True]
        failed = monitor.failed_windows()
        assert len(failed) == 1
        assert failed[0].start_fraction == 0.6
        assert failed[0].error.startswith("InjectedFault")
        assert failed[0].pairs == []
        assert failed[0].sp_spent == 0
        # Summaries still work over the surviving windows.
        monitor.recurrent_nodes(min_windows=1)

    def test_fail_mode_propagates(self, stream):
        injector = FaultInjector(FaultPlan(fail_nth=(1,)))
        monitor = make_monitor(stream, injector, on_error="fail")
        with pytest.raises(InjectedFault):
            monitor.run([0.5, 1.0])

    def test_retry_heals_transient_window_fault(self, stream):
        injector = FaultInjector(FaultPlan(fail_nth=(2,)))
        healthy = make_monitor(stream).run([0.5, 0.75, 1.0])
        monitor = make_monitor(
            stream, injector,
            retry_policy=RetryPolicy(max_retries=1, base_delay=0.0),
        )
        reports = monitor.run([0.5, 0.75, 1.0])
        assert all(r.ok for r in reports)
        # Retried output is identical to a fault-free run (same seed).
        for healed, clean in zip(reports, healthy):
            assert [p.pair for p in healed.pairs] == [p.pair for p in clean.pairs]

    def test_checkpointed_windows_resume_without_recompute(self, stream, tmp_path):
        store = CheckpointStore(tmp_path / "mon")
        first = make_monitor(stream, checkpoint_store=store)
        reports = first.run([0.5, 0.75, 1.0])

        # "New process": a fresh monitor whose selector factory must
        # never be called if resume works.
        bomb = FaultInjector(FaultPlan(fail_rate=1.0))
        second = make_monitor(stream, bomb, checkpoint_store=store)
        resumed = second.run([0.5, 0.75, 1.0])
        assert bomb.calls == 0
        assert all(r.resumed for r in resumed)
        for new, old in zip(resumed, reports):
            assert [p.pair for p in new.pairs] == [p.pair for p in old.pairs]
            assert new.sp_spent == old.sp_spent
            assert new.result.budget.by_phase() == old.result.budget.by_phase()
            assert new.result.candidates == old.result.candidates

    def test_resume_false_ignores_existing_checkpoints(self, stream, tmp_path):
        store = CheckpointStore(tmp_path / "mon")
        make_monitor(stream, checkpoint_store=store).run([0.5, 1.0])
        counter = FaultInjector(FaultPlan())  # counts, never fails
        fresh = make_monitor(
            stream, counter, checkpoint_store=store, resume=False
        )
        reports = fresh.run([0.5, 1.0])
        assert counter.calls == 1
        assert not reports[0].resumed


class TestSocketFaultInjector:
    def test_plan_validation(self):
        with pytest.raises(ValueError):
            SocketFaultPlan(chunk_size=-1)
        with pytest.raises(ValueError):
            SocketFaultPlan(stall_s=-0.1)
        with pytest.raises(ValueError):
            SocketFaultPlan(cut_after_bytes=-1)

    def test_whole_payload_by_default(self):
        sent = []
        injector = SocketFaultInjector(SocketFaultPlan())
        delivered = injector.send(sent.append, b"hello world\n")
        assert sent == [b"hello world\n"]
        assert delivered == 12
        assert injector.chunks == 1
        assert injector.stalls == 0

    def test_chunked_send_stalls_between_chunks(self):
        sent, naps = [], []
        injector = SocketFaultInjector(
            SocketFaultPlan(chunk_size=4, stall_s=0.25), sleep=naps.append
        )
        delivered = injector.send(sent.append, b"0123456789")
        assert sent == [b"0123", b"4567", b"89"]
        assert delivered == 10
        assert injector.chunks == 3
        assert injector.stalls == 2  # between chunks, not before the first
        assert naps == [0.25, 0.25]

    def test_cut_delivers_the_prefix_then_half_closes(self):
        sent, closed = [], []
        injector = SocketFaultInjector(
            SocketFaultPlan(chunk_size=4, cut_after_bytes=6)
        )
        with pytest.raises(SocketCutFault):
            injector.send(
                sent.append, b"0123456789",
                unit="req-1", shutdown=lambda: closed.append(True),
            )
        assert b"".join(sent) == b"012345"  # exactly the byte budget
        assert injector.cut
        assert injector.sent_bytes == 6
        assert closed == [True]

    def test_cut_budget_spans_multiple_sends(self):
        sent = []
        injector = SocketFaultInjector(SocketFaultPlan(cut_after_bytes=10))
        assert injector.send(sent.append, b"12345678") == 8
        with pytest.raises(SocketCutFault):
            injector.send(sent.append, b"abcdef")
        assert b"".join(sent) == b"12345678ab"

    def test_cut_connection_stays_dead(self):
        injector = SocketFaultInjector(SocketFaultPlan(cut_after_bytes=0))
        with pytest.raises(SocketCutFault):
            injector.send(lambda _: None, b"x")
        with pytest.raises(SocketCutFault, match="already half-open"):
            injector.send(lambda _: None, b"y")

    def test_cut_emits_an_audit_event(self):
        injector = SocketFaultInjector(SocketFaultPlan(cut_after_bytes=2))
        with capture_events() as events:
            with pytest.raises(SocketCutFault):
                injector.send(lambda _: None, b"abcdef", unit="svc")
        cuts = [
            fields for kind, fields in events
            if kind == "fault.socket" and fields.get("fault") == "cut"
        ]
        assert cuts and cuts[0]["unit"] == "svc"

    def test_same_plan_same_byte_sequence(self):
        def drive():
            sent = []
            injector = SocketFaultInjector(
                SocketFaultPlan(chunk_size=3, cut_after_bytes=7),
            )
            try:
                injector.send(sent.append, b"abcdefghij")
            except SocketCutFault:
                pass
            return sent

        assert drive() == drive()
