"""reprolint rule fixtures: each rule must catch its breach and stay
quiet on the compliant twin, suppressions must waive precisely, and the
baseline must round-trip.  Fast suite — pure AST work, no graphs."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    Baseline,
    Violation,
    all_rules,
    get_rule,
    lint_paths,
    lint_source,
)
from repro.lint.suppress import parse_suppressions, unjustified


def lint(code: str, path: str = "repro/example.py"):
    return lint_source(textwrap.dedent(code), path=path)


def codes(violations) -> list:
    return [v.code for v in violations]


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_all_fourteen_rules_registered():
    assert [r.code for r in all_rules()] == [
        "R001", "R002", "R003", "R004", "R005", "R006", "R007", "R008",
        "R009", "R010", "R011", "R012", "R013", "R014",
    ]
    for r in all_rules():
        assert r.invariant  # every rule documents what it protects
    scopes = {r.code: r.scope for r in all_rules()}
    assert all(
        scopes[code] == "project" for code in ("R010", "R011", "R012", "R013")
    )
    assert all(
        scopes[code] == "file"
        for code in ("R001", "R002", "R003", "R004", "R005", "R006", "R007",
                     "R008", "R009", "R014")
    )


def test_unknown_rule_code_raises():
    with pytest.raises(KeyError):
        get_rule("R999")


# ----------------------------------------------------------------------
# R001 — unseeded randomness
# ----------------------------------------------------------------------
def test_r001_flags_global_random_module():
    found = lint("""
        import random
        def pick(items):
            return random.choice(items)
    """)
    assert codes(found) == ["R001"]


def test_r001_flags_unseeded_default_rng_and_alias():
    found = lint("""
        import numpy as np
        rng = np.random.default_rng()
        x = np.random.rand(3)
    """)
    assert codes(found) == ["R001", "R001"]


def test_r001_passes_seeded_rng():
    found = lint("""
        import random
        import numpy as np
        rng = np.random.default_rng(42)
        r2 = np.random.default_rng(seed)
        r3 = random.Random(7)
        value = rng.random()
    """.replace("seed)", "0)"))
    assert found == []


# ----------------------------------------------------------------------
# R002 — wall-clock reads
# ----------------------------------------------------------------------
def test_r002_flags_clock_calls_and_references():
    found = lint("""
        import time
        from datetime import datetime
        def stamp():
            return time.time(), datetime.now()
        DEFAULT_CLOCK = time.monotonic
    """)
    assert codes(found) == ["R002", "R002", "R002"]


def test_r002_passes_injected_clock_and_allowlisted_file():
    clean = lint("""
        def elapsed(clock):
            t0 = clock()
            return clock() - t0
    """)
    assert clean == []
    allowlisted = lint(
        """
        import time
        def now() -> float:
            return time.monotonic()
        """,
        path="repro/resilience/policy.py",
    )
    assert allowlisted == []


# ----------------------------------------------------------------------
# R003 — networkx outside tests
# ----------------------------------------------------------------------
def test_r003_flags_networkx_import():
    assert codes(lint("import networkx as nx")) == ["R003"]
    assert codes(lint("from networkx.algorithms import bipartite")) == ["R003"]


def test_r003_passes_runtime_dependencies():
    assert lint("import numpy\nimport scipy.sparse\n") == []


# ----------------------------------------------------------------------
# R004 — uncharged SSSP
# ----------------------------------------------------------------------
def test_r004_flags_uncharged_traversal():
    found = lint("""
        from repro.graph.traversal import single_source_distances
        def distances(g, source):
            return single_source_distances(g, source)
    """)
    assert codes(found) == ["R004"]


def test_r004_passes_charging_function_and_engine_module():
    charged = lint("""
        from repro.graph.traversal import single_source_distances
        def charged_row(g, source, budget):
            budget.charge("topk", "g1", 1)
            return single_source_distances(g, source)
    """)
    assert charged == []
    engine = lint(
        """
        from repro.graph.traversal import bfs_distances
        def helper(g: object, s: int) -> dict:
            return bfs_distances(g, s)
        """,
        path="repro/graph/landmarks.py",
    )
    assert engine == []


def test_r004_guards_pruned_entry_points():
    """The pruning layer must not become an uncharged SSSP side door."""
    from repro.lint.rules.budget import SSSP_ENTRY_POINTS

    # Registration pin: a new pruned entry point silently dropped from
    # the allowlist would let pruned traversals dodge the budget audit.
    assert {"bounded_bfs_levels", "csr_top_k_rows"} <= SSSP_ENTRY_POINTS
    # Same pin for the batched multi-source kernels: one source in a
    # batch is one budgeted SSSP, so they must stay on the allowlist.
    assert {
        "msbfs_levels", "iter_msbfs_rows", "bfs_distances_many"
    } <= SSSP_ENTRY_POINTS

    cut_bfs = lint("""
        from repro.graph.prune import bounded_bfs_levels
        def cheap_row(csr, i):
            return bounded_bfs_levels(csr, i, 3)
    """)
    assert codes(cut_bfs) == ["R004"]
    pruned_engine = lint("""
        from repro.core.fastpairs import csr_top_k_rows
        def shortcut(g1, g2):
            return csr_top_k_rows(g1, g2, 10)
    """)
    assert codes(pruned_engine) == ["R004"]
    charged = lint("""
        from repro.graph.prune import bounded_bfs_levels
        def charged_row(csr, i, budget):
            budget.charge("topk", "g2", 1)
            return bounded_bfs_levels(csr, i, 3)
    """)
    assert charged == []


# ----------------------------------------------------------------------
# R005 — mutable default arguments
# ----------------------------------------------------------------------
def test_r005_flags_mutable_defaults():
    found = lint("""
        def accumulate(item, seen=[]):
            seen.append(item)
            return seen
        def tally(counts={}):
            return counts
    """)
    assert codes(found) == ["R005", "R005"]


def test_r005_passes_none_and_immutable_defaults():
    found = lint("""
        def accumulate(item, seen=None, limit=10, name="x", pair=(1, 2)):
            seen = [] if seen is None else seen
            return seen
    """)
    assert found == []


def test_r005_flags_call_expression_defaults():
    found = lint("""
        def a(seen=list()):
            return seen
        def b(counts=dict()):
            return counts
        def c(bag=set()):
            return bag
        def d(order=sorted([])):
            return order
        def e(table=dict.fromkeys("ab")):
            return table
        def f(snapshot=[].copy()):
            return snapshot
    """)
    assert codes(found) == ["R005"] * 6


def test_r005_resolves_aliased_constructors():
    found = lint("""
        from builtins import list as mklist

        def g(seen=mklist()):
            return seen
    """)
    assert codes(found) == ["R005"]


def test_r005_passes_frozen_call_defaults():
    found = lint("""
        def h(pair=tuple(), names=frozenset(), n=int(), s=str()):
            return pair, names, n, s
    """)
    assert found == []


# ----------------------------------------------------------------------
# R006 — swallowed broad except
# ----------------------------------------------------------------------
def test_r006_flags_silent_broad_except():
    found = lint("""
        def load(path):
            try:
                return open(path).read()
            except Exception:
                return None
    """)
    assert codes(found) == ["R006"]
    assert codes(lint("""
        def load(path):
            try:
                return open(path).read()
            except:
                return None
    """)) == ["R006"]


def test_r006_passes_reraise_or_event_routing():
    found = lint("""
        from repro.resilience.events import log_event
        def guarded(fn, unit):
            try:
                return fn()
            except Exception as exc:
                log_event("skip", unit=unit, error=type(exc).__name__)
                return None
        def loud(fn):
            try:
                return fn()
            except Exception:
                raise
        def narrow(path):
            try:
                return open(path).read()
            except FileNotFoundError:
                return None
    """)
    assert found == []


def test_r006_flags_tuple_and_base_exception_forms():
    found = lint("""
        def tupled(fn):
            try:
                return fn()
            except (ValueError, Exception):
                return None
        def based(fn):
            try:
                return fn()
            except BaseException:
                return None
    """)
    assert codes(found) == ["R006", "R006"]
    narrow_tuple = lint("""
        def tupled(fn):
            try:
                return fn()
            except (ValueError, KeyError):
                return None
    """)
    assert narrow_tuple == []


def test_r006_nested_def_raise_does_not_route():
    # The raise/log_event must belong to the handler itself — one
    # buried in a nested function the handler merely *defines* runs
    # later (or never) and still swallows the failure.
    found = lint("""
        def sneaky(fn):
            try:
                return fn()
            except Exception:
                def later():
                    raise
                return later
    """)
    assert codes(found) == ["R006"]


# ----------------------------------------------------------------------
# R007 — execution-only config in checkpoint keys
# ----------------------------------------------------------------------
def test_r007_flags_workers_in_key_builder():
    found = lint("""
        def _cell_key(config, dataset):
            return ["cell", dataset, config.seed, config.workers]
    """)
    assert codes(found) == ["R007"]


def test_r007_flags_execution_field_in_store_put():
    found = lint("""
        def persist(store, config, value):
            store.put(["cell", config.max_retries], value)
    """)
    assert codes(found) == ["R007"]


def test_r007_passes_value_determining_key():
    found = lint("""
        def _cell_key(config, dataset, delta):
            return ["cell", dataset, delta, config.seed, config.repeats]
        def uses_workers_elsewhere(config):
            return config.workers * 2
    """)
    assert found == []


# ----------------------------------------------------------------------
# R008 — unpicklable parallel tasks
# ----------------------------------------------------------------------
def test_r008_flags_lambda_task():
    found = lint("""
        from repro.parallel import ParallelExecutor
        def run(items):
            executor = ParallelExecutor(4)
            return executor.map(lambda x: x + 1, items)
    """)
    assert codes(found) == ["R008"]


def test_r008_flags_closure_task():
    found = lint("""
        from repro.parallel import ParallelExecutor
        def run(items, offset):
            def shifted(x):
                return x + offset
            executor = ParallelExecutor(4)
            return executor.map(shifted, items)
    """)
    assert codes(found) == ["R008"]


def test_r008_passes_module_level_task():
    found = lint("""
        from repro.parallel import ParallelExecutor
        def _task(x):
            return x + 1
        def run(items):
            executor = ParallelExecutor(4)
            return executor.map(_task, items)
    """)
    assert found == []


# ----------------------------------------------------------------------
# R014 — nondeterministic shm segment names (R008's shm companion)
# ----------------------------------------------------------------------
def test_r014_flags_clock_derived_shm_run_id():
    found = lint("""
        import time
        from repro.parallel import ParallelExecutor
        def run(state):
            run_id = f"run-{time.time()}"
            return ParallelExecutor(4, state=state, shm_run_id=run_id)
    """)
    # R002 independently flags the clock read; R014 flags the flow into
    # the segment identity.
    assert "R014" in codes(found)


def test_r014_flags_pid_in_derive_run_id():
    found = lint("""
        import os
        from repro.parallel import derive_run_id
        def run(seed):
            return derive_run_id("topk", seed, os.getpid())
    """)
    assert codes(found) == ["R014"]


def test_r014_flags_pid_named_shared_memory():
    found = lint("""
        import os
        from multiprocessing import shared_memory
        def open_segment():
            return shared_memory.SharedMemory(
                name=f"repro_{os.getpid()}", create=True, size=64
            )
    """)
    assert codes(found) == ["R014"]


def test_r014_flags_uuid_in_arena_publish():
    found = lint("""
        import uuid
        from repro.parallel import SharedCsrArena
        def publish(state):
            arena = SharedCsrArena.maybe_publish(
                state, run_id=uuid.uuid4().hex
            )
            return arena
    """)
    assert codes(found) == ["R014"]


def test_r014_passes_seeded_run_id():
    found = lint("""
        from repro.parallel import ParallelExecutor, SharedCsrArena, derive_run_id
        def run(state, seed, k):
            rid = derive_run_id("topk.sssp", seed, k)
            arena = SharedCsrArena.maybe_publish(state, run_id=rid)
            return ParallelExecutor(4, state=state, shm_run_id=rid), arena
    """)
    assert found == []


def test_r014_taint_propagates_through_assignment_chain():
    found = lint("""
        import os
        from repro.parallel import ParallelExecutor
        def run(state):
            pid = os.getpid()
            run_id = f"run-{pid}"
            return ParallelExecutor(4, state=state, shm_run_id=run_id)
    """)
    assert codes(found) == ["R014"]


# ----------------------------------------------------------------------
# R009 — untyped defs in strict-profile packages
# ----------------------------------------------------------------------
UNTYPED = """
    def helper(x, y):
        return x + y
"""

PARTIALLY_TYPED = """
    def helper(x: int, y) -> int:
        return x + y
"""

FULLY_TYPED = """
    class Gate:
        def __init__(self, limit: int):
            self.limit = limit

        @staticmethod
        def of(limit: int) -> "Gate":
            return Gate(limit)

        def admit(self, n: int, *rest: int, cap: int = 0,
                  **extra: object) -> bool:
            return n <= self.limit
"""


def test_r009_flags_untyped_def_in_strict_package():
    found = lint(UNTYPED, path="repro/ingest/helpers.py")
    # Two unannotated parameters plus the missing return annotation.
    assert codes(found) == ["R009", "R009", "R009"]


def test_r009_flags_incomplete_annotations():
    found = lint(PARTIALLY_TYPED, path="repro/graph/util.py")
    assert codes(found) == ["R009"]
    assert "parameter 'y'" in found[0].message


def test_r009_ignores_non_strict_packages():
    assert lint(UNTYPED, path="repro/datasets/helpers.py") == []
    assert lint(UNTYPED, path="repro/lint/rules/example.py") == []


def test_r009_passes_fully_typed_code():
    # self/cls are excused, __init__ may omit its return annotation,
    # *args/**kwargs count as parameters, staticmethods get no excuse.
    assert lint(FULLY_TYPED, path="repro/ingest/gate.py") == []


def test_r009_flags_untyped_staticmethod_first_param():
    found = lint("""
        class C:
            @staticmethod
            def make(cls) -> "C":
                return C()
    """, path="repro/core/c.py")
    assert codes(found) == ["R009"]


def test_r009_strict_packages_match_pyproject():
    """The AST gate and the mypy override list enforce the same set."""
    tomllib = pytest.importorskip("tomllib")  # stdlib from 3.11

    from repro.lint.rules.typing_gate import STRICT_PACKAGES

    pyproject = Path(__file__).resolve().parent.parent / "pyproject.toml"
    config = tomllib.loads(pyproject.read_text())
    strict_modules = set()
    for override in config["tool"]["mypy"]["overrides"]:
        if override.get("disallow_untyped_defs"):
            strict_modules.update(override["module"])
    assert "repro.ingest.*" in strict_modules
    from_rule = {
        prefix.rstrip("/").replace("/", ".") + ".*"
        for prefix in STRICT_PACKAGES
    }
    assert from_rule == strict_modules


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
def test_suppression_waives_only_listed_code_on_line():
    code = """
        import networkx  # reprolint: disable=R003 -- fixture exercising the oracle import
    """
    assert lint(code) == []
    # A different rule's code does not waive it.
    still = lint("""
        import networkx  # reprolint: disable=R001 -- wrong code
    """)
    assert codes(still) == ["R003"]


def test_suppression_comment_above_line():
    found = lint("""
        # reprolint: disable=R003 -- oracle import, fixture only
        import networkx
    """)
    assert found == []


def test_suppression_does_not_leak_to_other_lines():
    found = lint("""
        import networkx  # reprolint: disable=R003 -- first import only
        import networkx.algorithms
    """)
    assert codes(found) == ["R003"]


def test_unjustified_suppressions_detected():
    sups = parse_suppressions([
        "import networkx  # reprolint: disable=R003",
        "import networkx  # reprolint: disable=R003 -- has a reason",
    ])
    assert len(sups) == 2
    assert [s.comment_line for s in unjustified(sups)] == [1]


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
def _violation(code="R003", path="repro/x.py", line=3,
               line_text="import networkx") -> Violation:
    return Violation(path=path, line=line, col=0, code=code,
                     message="m", line_text=line_text)


def test_baseline_roundtrip_and_partition(tmp_path):
    legacy = _violation()
    baseline = Baseline.from_violations([legacy])
    target = tmp_path / "baseline.json"
    baseline.save(target)
    loaded = Baseline.load(target)
    assert loaded.entries() == baseline.entries()

    # Same fingerprint on a shifted line is still baselined; a new
    # violation is not.
    shifted = _violation(line=30)
    fresh = _violation(path="repro/y.py")
    new, stale = loaded.partition([shifted, fresh])
    assert new == [fresh]
    assert stale == []

    # Fixing the legacy violation leaves a stale entry behind.
    new, stale = loaded.partition([])
    assert new == []
    assert stale == [legacy.fingerprint()]


def test_baseline_missing_file_is_empty(tmp_path):
    assert len(Baseline.load(tmp_path / "absent.json")) == 0


def test_baseline_rejects_unknown_version(tmp_path):
    target = tmp_path / "baseline.json"
    target.write_text(json.dumps({"version": 99, "entries": []}))
    with pytest.raises(ValueError):
        Baseline.load(target)


# ----------------------------------------------------------------------
# Repo gate: the linter stays green on the shipped sources
# ----------------------------------------------------------------------
def test_repo_sources_are_lint_clean():
    src = Path(__file__).resolve().parent.parent / "src"
    result = lint_paths([src])
    assert result.parse_errors == []
    assert result.new_violations == [], "\n".join(
        f"{v.path}:{v.line} {v.code} {v.message}"
        for v in result.new_violations
    )
    # Every in-repo suppression carries a justification (strict gate).
    assert result.unjustified_suppressions == []
