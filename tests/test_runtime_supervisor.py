"""Supervisor: bounded lifetime restarts, escalation, heartbeats."""

import pytest

from repro.resilience import RetryPolicy, capture_events
from repro.resilience.policy import BudgetRunTimeout
from repro.runtime.supervisor import (
    Heartbeat,
    HeartbeatMonitor,
    Supervisor,
    SupervisorGivingUp,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class Flaky:
    """Fails the first ``failures`` calls, then returns ``value``."""

    def __init__(self, failures, value="ok", error=RuntimeError):
        self.remaining = failures
        self.value = value
        self.error = error
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise self.error("boom")
        return self.value


class TestSupervisor:
    def test_success_first_try_uses_no_budget(self):
        sup = Supervisor(max_restarts=3)
        assert sup.run(lambda: 42) == 42
        assert sup.restarts_used == 0
        assert sup.restarts_remaining == 3

    def test_restarts_until_success(self):
        sup = Supervisor(max_restarts=3)
        flaky = Flaky(failures=2)
        assert sup.run(flaky) == "ok"
        assert flaky.calls == 3
        assert sup.restarts_used == 2

    def test_gives_up_when_budget_spent(self):
        sup = Supervisor(max_restarts=2)
        flaky = Flaky(failures=5)
        with pytest.raises(SupervisorGivingUp) as exc_info:
            sup.run(flaky, unit="window:0")
        assert flaky.calls == 3  # initial try + 2 restarts
        assert exc_info.value.restarts == 2
        assert exc_info.value.unit == "window:0"
        assert isinstance(exc_info.value.last_error, RuntimeError)

    def test_budget_is_lifetime_not_per_call(self):
        """Failures spread across units still converge on escalation."""
        sup = Supervisor(max_restarts=2)
        assert sup.run(Flaky(failures=1)) == "ok"
        assert sup.run(Flaky(failures=1)) == "ok"
        with pytest.raises(SupervisorGivingUp):
            sup.run(Flaky(failures=1))

    @pytest.mark.parametrize("interrupt", [KeyboardInterrupt, SystemExit])
    def test_interrupts_are_never_restarted(self, interrupt):
        sup = Supervisor(max_restarts=5)

        def fn():
            raise interrupt()

        with pytest.raises(interrupt):
            sup.run(fn)
        assert sup.restarts_used == 0

    def test_deadline_timeouts_are_never_restarted(self):
        sup = Supervisor(max_restarts=5)

        def fn():
            raise BudgetRunTimeout("unit", 2.0, 1.0)

        with pytest.raises(BudgetRunTimeout):
            sup.run(fn)
        assert sup.restarts_used == 0

    def test_backoff_delays_follow_policy_schedule(self):
        policy = RetryPolicy(
            max_retries=0, base_delay=1.0, multiplier=2.0,
            max_delay=100.0, jitter=0.0, seed=0,
        )
        slept = []
        sup = Supervisor(max_restarts=3, backoff=policy, sleep=slept.append)
        with pytest.raises(SupervisorGivingUp):
            sup.run(Flaky(failures=9))
        assert slept == [1.0, 2.0, 4.0]

    def test_no_sleep_hook_means_no_sleeping(self):
        sup = Supervisor(
            max_restarts=2,
            backoff=RetryPolicy(max_retries=0, base_delay=5.0, jitter=0.0),
        )
        # Would sleep 5s per restart if the hook existed; returns fast.
        assert sup.run(Flaky(failures=2)) == "ok"

    def test_restart_and_giveup_events(self):
        sup = Supervisor(max_restarts=1)
        with capture_events() as events:
            with pytest.raises(SupervisorGivingUp):
                sup.run(Flaky(failures=3), unit="w")
        kinds = [kind for kind, _ in events]
        assert kinds.count("supervisor.restart") == 1
        assert kinds.count("supervisor.giveup") == 1

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Supervisor(max_restarts=-1)


class TestHeartbeat:
    def test_beat_refreshes_age(self):
        clock = FakeClock()
        beat = Heartbeat("w0", clock=clock)
        clock.advance(10.0)
        assert beat.age() == 10.0
        beat.beat()
        assert beat.age() == 0.0
        assert beat.beats == 1

    def test_monitor_flags_only_stale_workers(self):
        clock = FakeClock()
        monitor = HeartbeatMonitor(timeout=5.0, clock=clock)
        a = monitor.register("a")
        monitor.register("b")
        clock.advance(6.0)
        a.beat()
        clock.advance(1.0)
        stale = monitor.stale()
        assert list(stale) == ["b"]
        assert stale["b"] == 7.0
        assert not monitor.healthy()

    def test_fresh_monitor_is_healthy(self):
        monitor = HeartbeatMonitor(timeout=5.0, clock=FakeClock())
        monitor.register("a")
        assert monitor.healthy()

    def test_register_is_idempotent(self):
        monitor = HeartbeatMonitor(timeout=5.0, clock=FakeClock())
        assert monitor.register("a") is monitor.register("a")

    def test_stale_emits_event(self):
        clock = FakeClock()
        monitor = HeartbeatMonitor(timeout=1.0, clock=clock)
        monitor.register("a")
        clock.advance(2.0)
        with capture_events() as events:
            monitor.stale()
        assert any(kind == "heartbeat.stale" for kind, _ in events)

    def test_bad_timeout_rejected(self):
        with pytest.raises(ValueError):
            HeartbeatMonitor(timeout=0.0)


class TestParallelChunkBeacon:
    def test_executor_emits_chunk_done_events(self):
        """The parallel layer beats once per completed chunk, so a
        heartbeat monitor can track pool liveness from events alone."""
        from repro.parallel import ParallelExecutor

        executor = ParallelExecutor(workers=2, chunk_size=2)
        with capture_events() as events:
            result = executor.map(_square, [1, 2, 3, 4, 5], unit="beat")
        assert result == [1, 4, 9, 16, 25]
        done = [f for kind, f in events if kind == "parallel.chunk_done"]
        assert [d["chunk"] for d in done] == [0, 1, 2]
        assert sum(d["items"] for d in done) == 5


def _square(x):
    return x * x
