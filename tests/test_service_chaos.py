"""Chaos acceptance for the query service (``pytest -m faults``).

SIGKILLs a real ``repro serve`` daemon mid-request and mid-advance
(``REPRO_CHAOS_KILL``), restarts it over the surviving state directory,
and requires the restarted service's answers to be byte-identical to
the batch oracle (``repro query``).  Socket-level misuse — one byte at
a time, half-open shutdowns — is driven through the same client code
path via :class:`~repro.resilience.faults.SocketFaultInjector`.
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.datasets import io
from repro.resilience.faults import SocketFaultInjector, SocketFaultPlan
from repro.service import ServiceClient, ServiceClientError, canonical_json

from conftest import random_temporal_graph

pytestmark = pytest.mark.faults

SRC = Path(__file__).resolve().parents[1] / "src"

RUNTIME_FLAGS = ("--k", "5", "--batch-size", "8", "--checkpoint-every", "2")


def repro_env(kill_at=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    if kill_at is None:
        env.pop("REPRO_CHAOS_KILL", None)
    else:
        env["REPRO_CHAOS_KILL"] = kill_at
    return env


def run_cli(*argv):
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True, text=True, env=repro_env(), timeout=120,
    )
    assert proc.returncode == 0, (proc.stdout, proc.stderr)
    return proc


def assert_killed(proc):
    assert proc.returncode in (-signal.SIGKILL, 128 + signal.SIGKILL), (
        proc.returncode,
    )


@pytest.fixture(scope="module")
def stream_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("svc-chaos") / "stream.tsv"
    io.write_edge_stream(random_temporal_graph(35, 160, seed=19), path)
    return path


def start_serve(stream_file, wal_dir, socket_path, *extra, kill_at=None):
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", str(stream_file),
            "--wal-dir", str(wal_dir), "--socket", str(socket_path),
            *RUNTIME_FLAGS, *extra,
        ],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True, env=repro_env(kill_at),
    )
    ready = proc.stdout.readline()
    assert ready, proc.stderr.read()
    assert json.loads(ready)["event"] == "ready"
    return proc


def stop_serve(proc):
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
    try:
        proc.communicate(timeout=60)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.communicate(timeout=30)


def batch_topk(stream_file, wal_dir, k):
    proc = run_cli(
        "query", "topk", str(stream_file), "--wal-dir", str(wal_dir),
        *RUNTIME_FLAGS, "--query-k", str(k),
    )
    return proc.stdout.rstrip("\n")


def projection(response):
    return canonical_json({
        "result": response["result"], "version": response["version"],
    })


class TestKillMidRequest:
    def test_restart_reserves_byte_identical_answers(
        self, stream_file, tmp_path
    ):
        wal_dir = tmp_path / "wal"
        run_cli("advance", str(stream_file), "--wal-dir", str(wal_dir),
                *RUNTIME_FLAGS)
        oracle = batch_topk(stream_file, wal_dir, 3)

        # Generation 1: dies by its own hand mid-request.
        victim = start_serve(
            stream_file, wal_dir, tmp_path / "v1.sock",
            kill_at="service.request.mid:1",
        )
        client = ServiceClient(("unix", str(tmp_path / "v1.sock")))
        try:
            with pytest.raises((ServiceClientError, OSError)):
                client.request("topk", {"k": 3})
        finally:
            client.close()
        victim.communicate(timeout=60)
        assert_killed(victim)

        # Generation 2: same state directory, no chaos.
        survivor = start_serve(stream_file, wal_dir, tmp_path / "v2.sock")
        try:
            with ServiceClient(("unix", str(tmp_path / "v2.sock"))) as c:
                response = c.request("topk", {"k": 3})
        finally:
            stop_serve(survivor)
        assert response["ok"] is True
        assert response["stale"] is False
        assert projection(response) == oracle


class TestKillMidAdvance:
    def test_version_identity_after_checkpoint_kill(
        self, stream_file, tmp_path
    ):
        wal_dir = tmp_path / "wal"
        # Leave most of the stream for the service to ingest.
        run_cli("advance", str(stream_file), "--wal-dir", str(wal_dir),
                *RUNTIME_FLAGS, "--max-batches", "4")

        victim = start_serve(
            stream_file, wal_dir, tmp_path / "v1.sock",
            "--advance-batches", "8", kill_at="checkpoint.mid:1",
        )
        client = ServiceClient(("unix", str(tmp_path / "v1.sock")))
        try:
            with pytest.raises((ServiceClientError, OSError)):
                client.request("advance")
        finally:
            client.close()
        victim.communicate(timeout=60)
        assert_killed(victim)

        # The batch oracle recovers the surviving directory the same way
        # the restarted service does: answers and version must agree.
        oracle = batch_topk(stream_file, wal_dir, 5)
        survivor = start_serve(stream_file, wal_dir, tmp_path / "v2.sock")
        try:
            with ServiceClient(("unix", str(tmp_path / "v2.sock"))) as c:
                response = c.request("topk", {"k": 5})
                health = c.request("health")
        finally:
            stop_serve(survivor)
        assert projection(response) == oracle
        assert health["result"]["version"] == response["version"]
        assert response["version"] == json.loads(oracle)["version"]


class TestSocketFaults:
    @pytest.fixture
    def serving(self, stream_file, tmp_path):
        wal_dir = tmp_path / "wal"
        run_cli("advance", str(stream_file), "--wal-dir", str(wal_dir),
                *RUNTIME_FLAGS)
        proc = start_serve(stream_file, wal_dir, tmp_path / "svc.sock")
        yield ("unix", str(tmp_path / "svc.sock"))
        stop_serve(proc)

    def test_slow_client_one_byte_at_a_time(self, serving):
        """A request dribbled in single bytes is served normally."""
        injector = SocketFaultInjector(
            SocketFaultPlan(chunk_size=1, stall_s=0.001)
        )
        request = b'{"verb": "topk", "args": {"k": 2}, "id": "slow"}\n'
        with ServiceClient(serving) as fast, ServiceClient(serving) as slow:
            injector.send(slow.send_bytes, request, unit="slow-client")
            assert injector.chunks == len(request)
            expected = fast.request("topk", {"k": 2}, request_id="slow")
            response = slow.recv_response()
        assert response == expected

    def test_half_open_client_does_not_wedge_the_service(self, serving):
        """A write-shutdown client still gets its answer; others unaffected."""
        plan = SocketFaultPlan(cut_after_bytes=10_000)  # never cuts here
        injector = SocketFaultInjector(plan)
        request = b'{"verb": "health", "id": "half"}\n'
        with ServiceClient(serving) as half:
            injector.send(
                half.send_bytes, request,
                unit="half-open", shutdown=half.shutdown_write,
            )
            half.shutdown_write()
            response = half.recv_response()
            assert response["ok"] is True
            assert response["id"] == "half"
        # The service survives the half-open hangup: a fresh client works.
        with ServiceClient(serving) as fresh:
            assert fresh.request("topk", {"k": 1})["ok"] is True

    def test_cut_mid_request_leaves_the_service_serving(self, serving):
        """A connection cut mid-line never poisons the accept loop."""
        from repro.resilience.faults import SocketCutFault

        injector = SocketFaultInjector(
            SocketFaultPlan(chunk_size=4, cut_after_bytes=8)
        )
        torn = ServiceClient(serving)
        try:
            with pytest.raises(SocketCutFault):
                injector.send(
                    torn.send_bytes,
                    b'{"verb": "topk", "args": {"k": 2}}\n',
                    unit="torn-client",
                    shutdown=torn.shutdown_write,
                )
            assert injector.cut
        finally:
            torn.close()
        with ServiceClient(serving) as fresh:
            assert fresh.request("topk", {"k": 2})["ok"] is True
