"""Unit tests for retry policies and deadlines (no wall-clock sleeps)."""

import pytest

from repro.resilience import (
    BudgetRunTimeout,
    Deadline,
    RetriesExhausted,
    RetryPolicy,
    capture_events,
)


class FakeClock:
    """A manually-advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class Flaky:
    """Fails the first ``failures`` calls, then returns ``value``."""

    def __init__(self, failures: int, value="ok", exc=RuntimeError):
        self.failures = failures
        self.value = value
        self.exc = exc
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc(f"boom {self.calls}")
        return self.value


class TestBackoffSequence:
    def test_deterministic_under_fixed_seed(self):
        policy = RetryPolicy(max_retries=5, base_delay=0.1, seed=7)
        assert list(policy.delays()) == list(policy.delays())
        assert list(policy.delays()) == list(
            RetryPolicy(max_retries=5, base_delay=0.1, seed=7).delays()
        )

    def test_different_seeds_differ(self):
        a = list(RetryPolicy(max_retries=5, jitter=0.5, seed=1).delays())
        b = list(RetryPolicy(max_retries=5, jitter=0.5, seed=2).delays())
        assert a != b

    def test_exponential_envelope_with_jitter_bounds(self):
        policy = RetryPolicy(
            max_retries=4, base_delay=1.0, multiplier=2.0, jitter=0.25,
            max_delay=100.0, seed=0,
        )
        for i, delay in enumerate(policy.delays()):
            base = 2.0**i
            assert base <= delay <= base * 1.25

    def test_max_delay_caps_the_base(self):
        policy = RetryPolicy(
            max_retries=6, base_delay=1.0, multiplier=10.0, jitter=0.0,
            max_delay=5.0,
        )
        assert list(policy.delays())[-1] == 5.0

    def test_zero_base_delay_never_sleeps(self):
        sleeps = []
        policy = RetryPolicy(max_retries=3, base_delay=0.0)
        assert policy.call(Flaky(2), sleep=sleeps.append) == "ok"
        assert sleeps == []

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


class TestUnboundedSchedule:
    def test_huge_attempt_counts_stay_finite_at_the_ceiling(self):
        """Regression: the naive ``multiplier**(i-1)`` overflows float
        around attempt 1024; the clamped running product must not."""
        import itertools
        import math

        policy = RetryPolicy(
            max_retries=0, base_delay=1.0, multiplier=2.0,
            max_delay=30.0, jitter=0.0,
        )
        delays = list(itertools.islice(policy.delays_unbounded(), 5000))
        assert len(delays) == 5000
        assert all(math.isfinite(d) for d in delays)
        # Pinned head: exponential until the ceiling, then flat forever.
        assert delays[:7] == [1.0, 2.0, 4.0, 8.0, 16.0, 30.0, 30.0]
        assert set(delays[5:]) == {30.0}

    def test_huge_retry_budget_does_not_overflow(self):
        policy = RetryPolicy(
            max_retries=2048, base_delay=0.5, multiplier=10.0,
            max_delay=60.0, jitter=0.0,
        )
        delays = list(policy.delays())
        assert len(delays) == 2048
        assert delays[-1] == 60.0
        assert max(delays) == 60.0

    def test_bounded_delays_are_a_prefix_of_unbounded(self):
        import itertools

        policy = RetryPolicy(max_retries=8, base_delay=0.1, jitter=0.3, seed=5)
        assert list(policy.delays()) == list(
            itertools.islice(policy.delays_unbounded(), 8)
        )

    def test_jitter_stream_is_seeded_per_iterator(self):
        policy = RetryPolicy(max_retries=0, base_delay=1.0, jitter=0.5, seed=9)
        import itertools

        first = list(itertools.islice(policy.delays_unbounded(), 10))
        second = list(itertools.islice(policy.delays_unbounded(), 10))
        assert first == second


class TestCall:
    def test_recovers_within_budget(self):
        sleeps = []
        fn = Flaky(2)
        policy = RetryPolicy(max_retries=2, base_delay=0.1, seed=3)
        assert policy.call(fn, sleep=sleeps.append) == "ok"
        assert fn.calls == 3
        assert sleeps == list(policy.delays())

    def test_exhaustion_raises_typed_error_with_cause(self):
        fn = Flaky(10)
        policy = RetryPolicy(max_retries=2, base_delay=0.0)
        with pytest.raises(RetriesExhausted) as info:
            policy.call(fn, unit="demo")
        assert info.value.attempts == 3
        assert info.value.unit == "demo"
        assert isinstance(info.value.last_error, RuntimeError)
        assert isinstance(info.value.__cause__, RuntimeError)
        assert fn.calls == 3

    def test_zero_retries_fails_immediately(self):
        fn = Flaky(1)
        with pytest.raises(RetriesExhausted):
            RetryPolicy(max_retries=0).call(fn)
        assert fn.calls == 1

    def test_retry_on_filters_exception_types(self):
        fn = Flaky(1, exc=KeyError)
        policy = RetryPolicy(max_retries=3, base_delay=0.0)
        with pytest.raises(KeyError):
            policy.call(fn, retry_on=(OSError,))
        assert fn.calls == 1

    def test_events_logged_per_retry(self):
        policy = RetryPolicy(max_retries=1, base_delay=0.0)
        with capture_events() as events:
            policy.call(Flaky(1), unit="cell:demo", sleep=lambda s: None)
        kinds = [kind for kind, _ in events]
        assert kinds == ["retry"]
        assert events[0][1]["unit"] == "cell:demo"


class TestDeadline:
    def test_remaining_and_expiry(self):
        clock = FakeClock()
        deadline = Deadline(10.0, clock=clock)
        assert deadline.remaining() == 10.0
        clock.advance(9.0)
        assert not deadline.expired()
        clock.advance(2.0)
        assert deadline.expired()

    def test_check_raises_typed_timeout(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        deadline.check("unit-x")  # fine
        clock.advance(2.0)
        with pytest.raises(BudgetRunTimeout) as info:
            deadline.check("unit-x")
        assert info.value.unit == "unit-x"
        assert info.value.limit == 1.0
        assert info.value.elapsed >= 2.0

    def test_unlimited_never_expires(self):
        clock = FakeClock()
        deadline = Deadline(None, clock=clock)
        clock.advance(1e9)
        assert deadline.remaining() is None
        deadline.check()

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            Deadline(0.0)

    def test_deadline_stops_retry_loop_and_is_not_retried(self):
        clock = FakeClock()
        deadline = Deadline(5.0, clock=clock)
        fn = Flaky(100)

        def ticking_sleep(seconds):
            clock.advance(10.0)  # the first backoff blows the deadline

        policy = RetryPolicy(max_retries=50, base_delay=0.1)
        with pytest.raises(BudgetRunTimeout):
            policy.call(fn, deadline=deadline, sleep=ticking_sleep)
        assert fn.calls == 1
