"""End-to-end resilience: sweep checkpoint/resume, degraded cells, and
the kill-and-resume acceptance demo (byte-identical output, strictly
fewer budgeted top-k computations)."""

import math

import pytest

from repro.cli import main
from repro.experiments import ExperimentConfig, clear_context_cache, topk_run_count
from repro.experiments import runner
from repro.experiments.report import percent
from repro.experiments.runner import coverage_cell, get_context
from repro.resilience import FaultInjector, FaultPlan, InjectedFault

pytestmark = pytest.mark.faults

SELECTORS = ("SumDiff", "MMSD")
BUDGETS = (5, 10)


@pytest.fixture(autouse=True)
def fresh_caches():
    """Each test simulates separate processes; start and end clean."""
    clear_context_cache()
    yield
    clear_context_cache()


def make_config(**overrides) -> ExperimentConfig:
    base = dict(
        scale=0.15, datasets=("actors",), repeats=1, num_landmarks=3,
        experiment="itest",
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def run_sweep(config) -> dict:
    ctx = get_context("actors", config.scale)
    return {
        (s, m): coverage_cell(ctx, s, m, 1, config)
        for s in SELECTORS
        for m in BUDGETS
    }


class TestSweepResume:
    def test_resumed_sweep_never_recomputes_completed_cells(
        self, tmp_path, monkeypatch
    ):
        config = make_config(
            checkpoint_dir=str(tmp_path / "ckpt"), resume=True
        )
        first = run_sweep(config)
        assert topk_run_count() == len(SELECTORS) * len(BUDGETS)

        # "New process": caches gone, checkpoints on disk.  A counting
        # selector factory proves no cell is recomputed.
        clear_context_cache()
        builds = {"n": 0}
        real_build = runner.build_selector

        def counting_build(name, cfg, context=None):
            builds["n"] += 1
            return real_build(name, cfg, context)

        monkeypatch.setattr(runner, "build_selector", counting_build)
        second = run_sweep(config)
        assert builds["n"] == 0
        assert topk_run_count() == 0
        assert second == first

    def test_without_resume_flag_checkpoints_are_not_read(self, tmp_path):
        config = make_config(checkpoint_dir=str(tmp_path / "ckpt"))
        run_sweep(config)
        clear_context_cache()
        run_sweep(config)
        assert topk_run_count() == len(SELECTORS) * len(BUDGETS)


class TestDegradedCells:
    def fail_selector(self, monkeypatch, name, plan=None):
        """Make build_selector fail (per plan) for one selector name."""
        injector = FaultInjector(plan or FaultPlan(fail_rate=1.0))
        real_build = runner.build_selector

        def flaky_build(selector_name, cfg, context=None):
            if selector_name.lower() == name.lower():
                injector.check(f"selector:{selector_name}")
            return real_build(selector_name, cfg, context)

        monkeypatch.setattr(runner, "build_selector", flaky_build)
        return injector

    def test_on_error_skip_matches_clean_run_on_surviving_cells(
        self, monkeypatch
    ):
        clean = run_sweep(make_config())
        clear_context_cache()
        self.fail_selector(monkeypatch, "SumDiff")
        partial = run_sweep(make_config(on_error="skip"))
        for key, value in partial.items():
            selector, _ = key
            if selector == "SumDiff":
                assert math.isnan(value)
                assert percent(value) == "—"
            else:
                assert value == clean[key]

    def test_on_error_fail_propagates(self, monkeypatch):
        self.fail_selector(monkeypatch, "SumDiff")
        with pytest.raises(InjectedFault):
            run_sweep(make_config(on_error="fail"))

    def test_cell_retry_heals_transient_fault(self, monkeypatch):
        clean = run_sweep(make_config())
        clear_context_cache()
        injector = self.fail_selector(
            monkeypatch, "SumDiff", FaultPlan(fail_nth=(1,))
        )
        healed = run_sweep(make_config(max_retries=2))
        assert healed == clean
        assert injector.faults == 1

    def test_failed_cells_are_not_checkpointed(self, tmp_path, monkeypatch):
        config = make_config(
            checkpoint_dir=str(tmp_path / "ckpt"), resume=True,
            on_error="skip",
        )
        real_build = runner.build_selector
        self.fail_selector(monkeypatch, "SumDiff")
        first = run_sweep(config)
        assert math.isnan(first[("SumDiff", 5)])

        # Fault fixed, same store: the NaN cells recompute, the good
        # cells resume.
        clear_context_cache()
        monkeypatch.setattr(runner, "build_selector", real_build)
        healed = run_sweep(make_config(
            checkpoint_dir=str(tmp_path / "ckpt"), resume=True,
        ))
        assert not any(math.isnan(v) for v in healed.values())
        assert topk_run_count() == len(BUDGETS)  # only SumDiff's cells


# ----------------------------------------------------------------------
# Acceptance: kill `repro experiment --checkpoint-dir` mid-sweep, rerun
# with --resume, get byte-identical output for strictly less top-k work.
# ----------------------------------------------------------------------
class TestKillAndResumeCLI:
    ARGS = ["experiment", "figure1", "--scale", "0.15", "--datasets", "actors"]

    def test_kill_and_resume_is_byte_identical_and_cheaper(
        self, tmp_path, monkeypatch, capsys
    ):
        # Reference: one uninterrupted run in a fresh "process".
        assert main(list(self.ARGS)) == 0
        clean_out = capsys.readouterr().out
        clean_runs = topk_run_count()
        assert clean_runs > 0

        # Interrupted run: the 10th budgeted top-k computation dies.
        clear_context_cache()
        ckpt = str(tmp_path / "ckpt")
        injector = FaultInjector(FaultPlan(fail_nth=(10,)))
        real_topk = runner.find_top_k_converging_pairs
        monkeypatch.setattr(
            runner,
            "find_top_k_converging_pairs",
            injector.wrap(real_topk, unit="topk"),
        )
        with pytest.raises(InjectedFault):
            main(self.ARGS + ["--checkpoint-dir", ckpt])
        capsys.readouterr()
        monkeypatch.setattr(runner, "find_top_k_converging_pairs", real_topk)

        # Resumed run in another fresh "process".
        clear_context_cache()
        assert main(self.ARGS + ["--checkpoint-dir", ckpt, "--resume"]) == 0
        resumed_out = capsys.readouterr().out
        resumed_runs = topk_run_count()

        assert resumed_out == clean_out
        assert resumed_runs < clean_runs
        # The 9 completed computations belonged to fully-checkpointed
        # cells; the resumed run must not repeat any of them.
        assert resumed_runs <= clean_runs - 9


class TestMonitorResumeCLI:
    def test_monitor_rerun_reports_resumed_windows(self, tmp_path, capsys):
        args = [
            "monitor", "dblp", "--scale", "0.15",
            "--checkpoints", "0.5,0.75,1.0", "--m", "10", "--k", "8",
            "--checkpoint-dir", str(tmp_path / "mon"),
        ]
        assert main(list(args)) == 0
        first = capsys.readouterr().out
        assert "[resumed]" not in first

        assert main(args + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert second.count("[resumed]") == 2
        assert second.replace(" [resumed]", "") == first
