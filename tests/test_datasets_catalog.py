"""Unit tests for the dataset catalog and splits."""

import pytest

from repro.datasets import (
    DATASETS,
    EVAL_SPLIT,
    TRAIN_SPLIT,
    characteristics,
    dataset_names,
    eval_snapshots,
    load,
    train_snapshots,
)
from repro.graph.validation import check_snapshot_pair


class TestCatalog:
    def test_catalog_names(self):
        names = dataset_names()
        assert names == [
            "actors", "internet", "internet-weighted", "facebook", "dblp",
        ]

    def test_weighted_variant_is_weighted(self):
        g1, g2 = eval_snapshots(load("internet-weighted", scale=0.1))
        assert g1.is_weighted() and g2.is_weighted()
        check_snapshot_pair(g1, g2)

    def test_specs_have_paper_counterparts(self):
        for spec in DATASETS.values():
            assert spec.paper_dataset
            assert spec.description

    def test_load_default_seed_is_stable(self):
        a = load("internet", scale=0.1)
        b = load("internet", scale=0.1)
        assert a.events() == b.events()

    def test_load_custom_seed_differs(self):
        a = load("internet", scale=0.1, seed=1)
        b = load("internet", scale=0.1, seed=2)
        assert a.events() != b.events()

    def test_load_case_insensitive(self):
        assert load("FACEBOOK", scale=0.1).num_events == load(
            "facebook", scale=0.1
        ).num_events

    def test_unknown_dataset(self):
        with pytest.raises(KeyError, match="known datasets"):
            load("twitter")

    def test_scale_controls_size(self):
        small = load("dblp", scale=0.1).snapshot()
        large = load("dblp", scale=0.3).snapshot()
        assert large.num_nodes > small.num_nodes

    @pytest.mark.parametrize("name", ["actors", "internet", "facebook", "dblp"])
    def test_eval_split_valid(self, name):
        tg = load(name, scale=0.1)
        g1, g2 = eval_snapshots(tg)
        check_snapshot_pair(g1, g2)
        assert g1.num_edges < g2.num_edges


class TestSplits:
    def test_constants(self):
        assert EVAL_SPLIT == (0.8, 1.0)
        assert TRAIN_SPLIT == (0.2, 0.4)

    def test_train_and_eval_are_disjoint_in_time(self):
        tg = load("facebook", scale=0.1)
        _, g2_train = train_snapshots(tg)
        g1_eval, _ = eval_snapshots(tg)
        # The training pair ends (40%) before the evaluation pair starts
        # (80%), so every training edge is in the eval G_t1.
        for u, v in g2_train.edges():
            assert g1_eval.has_edge(u, v)


class TestCharacteristics:
    def test_fields(self):
        tg = load("facebook", scale=0.1)
        chars = characteristics(tg)
        assert set(chars) == {
            "nodes_t1", "nodes_t2", "edges_t1", "edges_t2",
            "diameter_t1", "diameter_t2", "max_delta",
            "disconnected_pairs_t1",
        }
        assert chars["nodes_t1"] <= chars["nodes_t2"]
        assert chars["edges_t1"] < chars["edges_t2"]
        assert chars["max_delta"] > 0
        assert chars["diameter_t2"] <= chars["diameter_t1"] + chars["max_delta"]
