"""Unit tests for repro.core.evaluation metrics."""

import pytest

from repro.core.evaluation import (
    candidate_pair_coverage,
    cover_precision,
    coverage,
    coverage_curve,
    endpoint_precision,
)
from repro.core.pairgraph import PairGraph
from repro.core.pairs import ConvergingPair


TRUTH = [(0, 1), (2, 3), (4, 5)]


class TestCoverage:
    def test_full(self):
        assert coverage(TRUTH, TRUTH) == 1.0

    def test_partial(self):
        assert coverage([(0, 1)], TRUTH) == pytest.approx(1 / 3)

    def test_orientation_insensitive(self):
        assert coverage([(1, 0), (3, 2)], TRUTH) == pytest.approx(2 / 3)

    def test_extra_found_pairs_dont_hurt(self):
        assert coverage([(0, 1), (9, 9)], TRUTH) == pytest.approx(1 / 3)

    def test_empty_truth(self):
        assert coverage([(1, 2)], []) == 1.0

    def test_accepts_converging_pairs(self):
        found = [ConvergingPair(0, 1, 5, 2)]
        truth = [ConvergingPair(0, 1, 5, 2), ConvergingPair(2, 3, 4, 1)]
        assert coverage(found, truth) == pytest.approx(0.5)


class TestCandidateCoverage:
    def test_one_endpoint_suffices(self):
        assert candidate_pair_coverage([0, 2], TRUTH) == pytest.approx(2 / 3)

    def test_both_endpoints_count_once(self):
        assert candidate_pair_coverage([0, 1], TRUTH) == pytest.approx(1 / 3)

    def test_no_candidates(self):
        assert candidate_pair_coverage([], TRUTH) == 0.0

    def test_empty_truth(self):
        assert candidate_pair_coverage([0], []) == 1.0


class TestPrecisions:
    @pytest.fixture
    def pg(self):
        return PairGraph(TRUTH)

    def test_endpoint_precision(self, pg):
        assert endpoint_precision([0, 2, 99], pg) == pytest.approx(2 / 3)

    def test_endpoint_precision_empty(self, pg):
        assert endpoint_precision([], pg) == 0.0

    def test_cover_precision(self):
        assert cover_precision([0, 1, 9], [0, 2, 4]) == pytest.approx(1 / 3)

    def test_cover_precision_empty(self):
        assert cover_precision([], [0]) == 0.0


class TestCoverageCurve:
    def test_monotone_nondecreasing(self):
        ranked = [0, 2, 4, 99]
        curve = coverage_curve(ranked, TRUTH, budgets=[1, 2, 3, 4])
        values = [c for _, c in curve]
        assert values == sorted(values)
        assert curve[-1] == (4, 1.0)

    def test_prefix_semantics(self):
        curve = coverage_curve([0, 99, 2], TRUTH, budgets=[1, 2])
        assert curve == [(1, pytest.approx(1 / 3)), (2, pytest.approx(1 / 3))]
