"""Unit tests for the continuous-monitoring extension."""

import pytest

from repro.core.monitoring import ConvergenceMonitor
from repro.selection import get_selector

from conftest import random_temporal_graph


@pytest.fixture(scope="module")
def stream():
    return random_temporal_graph(60, 240, seed=91)


def make_monitor(stream, **kwargs):
    defaults = dict(k=10, m=8, seed=0)
    defaults.update(kwargs)
    return ConvergenceMonitor(
        stream, selector_factory=lambda: get_selector("SumDiff",
                                                      num_landmarks=3),
        **defaults,
    )


class TestRun:
    def test_window_count(self, stream):
        monitor = make_monitor(stream)
        reports = monitor.run([0.4, 0.6, 0.8, 1.0])
        assert len(reports) == 3
        assert [r.start_fraction for r in reports] == [0.4, 0.6, 0.8]
        assert [r.end_fraction for r in reports] == [0.6, 0.8, 1.0]

    def test_budget_isolated_per_window(self, stream):
        monitor = make_monitor(stream, m=8)
        reports = monitor.run([0.5, 0.75, 1.0])
        for r in reports:
            assert r.sp_spent <= 16
            assert r.result.budget.limit == 16
        assert monitor.total_sp_spent() == sum(r.sp_spent for r in reports)

    def test_pairs_have_positive_delta(self, stream):
        monitor = make_monitor(stream)
        for report in monitor.run([0.4, 0.7, 1.0]):
            for pair in report.pairs:
                assert pair.delta > 0

    def test_reports_accumulate_across_runs(self, stream):
        monitor = make_monitor(stream)
        monitor.run([0.4, 0.6])
        monitor.run([0.6, 0.8])
        assert len(monitor.reports) == 2

    def test_deterministic(self, stream):
        a = make_monitor(stream).run([0.5, 0.75, 1.0])
        b = make_monitor(stream).run([0.5, 0.75, 1.0])
        for ra, rb in zip(a, b):
            assert [p.pair for p in ra.pairs] == [p.pair for p in rb.pairs]


class TestValidation:
    def test_bad_k_m(self, stream):
        with pytest.raises(ValueError):
            make_monitor(stream, k=0)
        with pytest.raises(ValueError):
            make_monitor(stream, m=0)

    def test_too_few_checkpoints(self, stream):
        with pytest.raises(ValueError, match="two checkpoints"):
            make_monitor(stream).run([0.5])

    def test_non_increasing_checkpoints(self, stream):
        with pytest.raises(ValueError, match="increase"):
            make_monitor(stream).run([0.5, 0.5, 1.0])

    def test_out_of_range_fractions_rejected(self, stream):
        # 1.5 used to clamp silently via snapshot_at_fraction's caller;
        # fractions outside (0, 1] are now a hard error.
        with pytest.raises(ValueError, match=r"\(0, 1\]"):
            make_monitor(stream).run([0.5, 1.5])
        with pytest.raises(ValueError, match=r"\(0, 1\]"):
            make_monitor(stream).run([0.0, 0.5])
        with pytest.raises(ValueError, match=r"\(0, 1\]"):
            make_monitor(stream).run([-0.2, 0.5])

    def test_bad_on_error_rejected(self, stream):
        with pytest.raises(ValueError, match="on_error"):
            make_monitor(stream, on_error="explode")


class TestSummaries:
    def test_recurrent_nodes_counts_windows_not_pairs(self, stream):
        monitor = make_monitor(stream)
        monitor.run([0.4, 0.6, 0.8, 1.0])
        # min_windows=1 returns every node ever seen in a pair.
        everyone = set(monitor.recurrent_nodes(min_windows=1))
        seen = set()
        for report in monitor.reports:
            for p in report.pairs:
                seen.update(p.pair)
        assert everyone == seen
        # Stricter thresholds can only shrink the set.
        assert set(monitor.recurrent_nodes(min_windows=2)) <= everyone

    def test_recurrent_nodes_validation(self, stream):
        with pytest.raises(ValueError):
            make_monitor(stream).recurrent_nodes(min_windows=0)

    def test_failed_windows_empty_on_clean_run(self, stream):
        monitor = make_monitor(stream)
        monitor.run([0.5, 0.75, 1.0])
        assert monitor.failed_windows() == []
        assert all(r.ok for r in monitor.reports)

    def test_pair_timeline_rows(self, stream):
        monitor = make_monitor(stream)
        monitor.run([0.5, 0.75, 1.0])
        rows = monitor.pair_timeline()
        assert len(rows) == sum(len(r.pairs) for r in monitor.reports)
        for start, end, pair, delta in rows:
            assert start < end
            assert delta > 0
            assert len(pair) == 2


# ----------------------------------------------------------------------
# Property-based: checkpoint semantics
# ----------------------------------------------------------------------
from hypothesis import given, settings
from hypothesis import strategies as st


@settings(max_examples=15, deadline=None)
@given(
    st.lists(
        st.floats(min_value=0.2, max_value=1.0),
        min_size=2,
        max_size=5,
        unique=True,
    )
)
def test_monitor_windows_tile_the_checkpoints(checkpoints):
    checkpoints = sorted(checkpoints)
    stream = random_temporal_graph(40, 160, seed=7)
    monitor = ConvergenceMonitor(
        stream,
        selector_factory=lambda: get_selector("DegDiff"),
        k=5,
        m=5,
        seed=0,
    )
    reports = monitor.run(checkpoints)
    assert len(reports) == len(checkpoints) - 1
    for report, (a, b) in zip(reports, zip(checkpoints, checkpoints[1:])):
        assert report.start_fraction == a
        assert report.end_fraction == b
        assert report.sp_spent <= 10
        for pair in report.pairs:
            assert pair.delta > 0


# ----------------------------------------------------------------------
# Invalid windows: a deletion event sneaks into the stream.
# ----------------------------------------------------------------------
import json

from repro.graph.dynamic import EdgeEvent, TemporalGraph
from repro.graph.validation import GraphValidationError
from repro.resilience import capture_events


def _streams_with_and_without_deletion():
    """Two equal-length streams differing in ONE event.

    The dirty stream deletes an early edge late in the stream (inside
    the final monitoring window); the clean stream carries a harmless
    duplicate re-insertion at the same position instead, so every
    fraction cut selects the same event indices in both.
    """
    base = list(random_temporal_graph(60, 240, seed=91).events())
    target = base[10]
    inject_at = int(len(base) * 0.85)
    t = base[inject_at - 1].time
    deletion = EdgeEvent(time=t, u=target.u, v=target.v, weight=0.0)
    duplicate = EdgeEvent(time=t, u=target.u, v=target.v,
                          weight=target.weight)
    dirty = TemporalGraph(base[:inject_at] + [deletion] + base[inject_at:])
    clean = TemporalGraph(base[:inject_at] + [duplicate] + base[inject_at:])
    assert dirty.num_events == clean.num_events
    return dirty, clean


CHECKPOINTS = [0.25, 0.5, 0.75, 1.0]


class TestOnInvalidWindow:
    def test_fail_is_default_and_raises(self):
        dirty, _ = _streams_with_and_without_deletion()
        with pytest.raises(GraphValidationError, match="insertion-only"):
            make_monitor(dirty).run(CHECKPOINTS)

    def test_unknown_policy_rejected(self):
        _, clean = _streams_with_and_without_deletion()
        with pytest.raises(ValueError, match="on_invalid_window"):
            make_monitor(clean, on_invalid_window="ignore")

    def test_skip_and_log_completes_with_identical_clean_windows(self):
        """Acceptance: the sweep completes, the tainted window is
        skipped, and every window untouched by the dirt is
        byte-identical to the clean run's."""
        dirty, clean = _streams_with_and_without_deletion()
        with capture_events() as events:
            dirty_reports = make_monitor(
                dirty, on_invalid_window="skip-and-log"
            ).run(CHECKPOINTS)
        clean_reports = make_monitor(clean).run(CHECKPOINTS)

        assert len(dirty_reports) == len(clean_reports) == 3
        # The deletion lands inside the final window only.
        assert [r.ok for r in dirty_reports] == [True, True, False]
        assert "insertion-only" in dirty_reports[2].error

        for dr, cr in zip(dirty_reports[:2], clean_reports[:2]):
            assert json.dumps(dr.to_payload(), sort_keys=True) == \
                json.dumps(cr.to_payload(), sort_keys=True)

        invalid = [f for kind, f in events if kind == "window.invalid"]
        assert len(invalid) == 1
        assert invalid[0]["action"] == "skip"

    def test_skipped_window_counts_as_failed(self):
        dirty, _ = _streams_with_and_without_deletion()
        monitor = make_monitor(dirty, on_invalid_window="skip-and-log")
        monitor.run(CHECKPOINTS)
        assert len(monitor.failed_windows()) == 1

    def test_repair_completes_every_window(self):
        dirty, _ = _streams_with_and_without_deletion()
        with capture_events() as events:
            reports = make_monitor(
                dirty, on_invalid_window="repair"
            ).run(CHECKPOINTS)
        assert all(r.ok for r in reports)
        invalid = [f for kind, f in events if kind == "window.invalid"]
        assert len(invalid) == 1
        assert invalid[0]["action"] == "repair"
        assert "restored" in invalid[0]["detail"]

    def test_repaired_window_checkpoints_under_distinct_key(self, tmp_path):
        from repro.resilience import CheckpointStore

        dirty, _ = _streams_with_and_without_deletion()
        store = CheckpointStore(tmp_path / "ckpt")
        make_monitor(
            dirty, on_invalid_window="repair", checkpoint_store=store,
        ).run(CHECKPOINTS)
        # A later clean-policy run over the same fractions must not
        # resume from the repaired window's entry.
        monitor = make_monitor(
            dirty, on_invalid_window="skip-and-log",
            checkpoint_store=store,
        )
        reports = monitor.run(CHECKPOINTS)
        assert not reports[2].ok  # skipped, not resumed-from-repair
