"""Unit tests for the experiment runner's dispatch and caching."""

import pytest

from repro.experiments import smoke_config
from repro.experiments.runner import (
    build_selector,
    candidate_sets,
    coverage_cell,
    get_context,
)
from repro.selection import (
    CoordDiffSelector,
    GlobalClassifierSelector,
    IncBetSelector,
    LocalClassifierSelector,
    MMSDSelector,
)


@pytest.fixture(scope="module")
def config():
    return smoke_config()


@pytest.fixture(scope="module")
def ctx(config):
    return get_context("facebook", config.scale)


class TestBuildSelector:
    def test_landmark_family_gets_config_l(self, config, ctx):
        selector = build_selector("MMSD", config, ctx)
        assert isinstance(selector, MMSDSelector)
        assert selector.num_landmarks == config.num_landmarks

    def test_coorddiff_gets_config_l(self, config, ctx):
        selector = build_selector("CoordDiff", config, ctx)
        assert isinstance(selector, CoordDiffSelector)
        assert selector.num_landmarks == config.num_landmarks

    def test_incbet_gets_precomputed_scores_with_context(self, config, ctx):
        selector = build_selector("IncBet", config, ctx)
        assert isinstance(selector, IncBetSelector)
        assert selector.precomputed_scores is not None

    def test_incbet_without_context(self, config):
        selector = build_selector("IncBet", config, None)
        assert selector.precomputed_scores is None

    def test_local_classifier_requires_context(self, config):
        with pytest.raises(ValueError, match="context"):
            build_selector("L-Classifier", config, None)

    def test_local_classifier_trained_on_demand(self, config, ctx):
        selector = build_selector("L-Classifier", config, ctx)
        assert isinstance(selector, LocalClassifierSelector)
        # Training is cached: second build reuses the same model object.
        again = build_selector("L-Classifier", config, ctx)
        assert again.model is selector.model

    def test_global_classifier_trained_on_demand(self, config, ctx):
        selector = build_selector("G-Classifier", config, ctx)
        assert isinstance(selector, GlobalClassifierSelector)


class TestCandidateCache:
    def test_same_key_returns_same_object(self, config, ctx):
        a = candidate_sets(ctx, "SumDiff", 10, config)
        b = candidate_sets(ctx, "SumDiff", 10, config)
        assert a is b

    def test_repeats_respected(self, config, ctx):
        runs = candidate_sets(ctx, "SumDiff", 10, config)
        assert len(runs) == config.repeats
        deterministic = candidate_sets(ctx, "Degree", 10, config)
        assert len(deterministic) == 1

    def test_different_budgets_differ(self, config, ctx):
        a = candidate_sets(ctx, "Degree", 5, config)
        b = candidate_sets(ctx, "Degree", 10, config)
        assert len(a[0]) == 5
        assert len(b[0]) == 10
        # Degree's ranking is budget-independent, so prefixes must agree.
        assert b[0][:5] == a[0]

    def test_coverage_cell_consistent_with_cache(self, config, ctx):
        truth = ctx.truth_at_offset(1)
        cell = coverage_cell(ctx, "Degree", 10, 1, config)
        from repro.core.evaluation import candidate_pair_coverage

        manual = candidate_pair_coverage(
            candidate_sets(ctx, "Degree", 10, config)[0], truth.pairs
        )
        assert cell == pytest.approx(manual)


class TestIncidentBetCache:
    def test_scores_cached_per_pivots(self, ctx):
        a = ctx.incident_bet_scores(8)
        b = ctx.incident_bet_scores(8)
        assert a is b
        c = ctx.incident_bet_scores(16)
        assert c is not a
