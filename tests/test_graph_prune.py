"""Property and unit tests for the Δ-aware pruning layer.

:mod:`repro.graph.prune` promises that skipping and level-cutting
traversals never changes any observable output.  This suite pins the
primitives (bound validity, cut exactness, running k-th tracking) and
the end-to-end law — pruned == unpruned == networkx — under hypothesis,
including the adversarial shapes pruning could plausibly break: ties at
the k-th Δ, sources that exist only at t2, and disconnected pairs.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from conftest import path_graph, random_snapshot_pair, to_networkx
from repro.core.pairs import (
    ConvergingPair,
    canonical_pair,
    converging_pairs_at_threshold,
    top_k_converging_pairs,
)
from repro.graph.csr import CSRGraph, UNREACHED, bfs_levels
from repro.graph.graph import Graph
from repro.graph.incremental import SnapshotDelta, repair_levels
from repro.graph.prune import (
    NO_PAIRS,
    KthTracker,
    PrunePlan,
    PruneStats,
    bounded_bfs_levels,
    source_bound,
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
NODE = st.integers(min_value=0, max_value=14)


@st.composite
def edge_list(draw, max_edges=40):
    raw = draw(
        st.lists(st.tuples(NODE, NODE), min_size=1, max_size=max_edges)
    )
    edges = []
    seen = set()
    for u, v in raw:
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key not in seen:
            seen.add(key)
            edges.append(key)
    return edges or [(0, 1)]


@st.composite
def snapshot_pair(draw):
    """Insertion-only pair; t2-only nodes arise whenever an edge past the
    cut touches a node no earlier edge did."""
    edges = draw(edge_list())
    cut = draw(st.integers(min_value=1, max_value=len(edges)))
    g1 = Graph(edges[:cut])
    g2 = Graph(edges)
    return g1, g2


@st.composite
def tied_snapshot_pair(draw):
    """A snapshot pair engineered to tie many pairs at the k-th Δ.

    Several disjoint paths of the *same* length each gain the same
    end-to-end chord at t2, so every path contributes pairs at identical
    Δ values — any k cutting through them exercises the tie boundary.
    """
    length = draw(st.integers(min_value=3, max_value=6))
    copies = draw(st.integers(min_value=2, max_value=4))
    g1 = Graph()
    g2 = Graph()
    for c in range(copies):
        base = 100 * c
        for i in range(length):
            g1.add_edge(base + i, base + i + 1)
            g2.add_edge(base + i, base + i + 1)
        g2.add_edge(base, base + length)
    return g1, g2


def nx_top_k(g1, g2, k):
    """Independent networkx ground truth with the library's tie-break."""
    import networkx as nx

    nx1, nx2 = to_networkx(g1), to_networkx(g2)
    pairs = []
    nodes = list(g1.nodes())
    for i, u in enumerate(nodes):
        d1 = nx.single_source_shortest_path_length(nx1, u)
        d2 = nx.single_source_shortest_path_length(nx2, u)
        for v in nodes[i + 1:]:
            if v not in d1:
                continue  # disconnected at t1: never a converging pair
            if d1[v] - d2[v] > 0:
                cu, cv = canonical_pair(u, v)
                pairs.append(ConvergingPair(cu, cv, d1[v], d2[v]))
    pairs.sort(key=ConvergingPair.sort_key)
    return pairs[:k]


# ----------------------------------------------------------------------
# Primitives
# ----------------------------------------------------------------------
class TestBoundedBFS:
    def test_uncut_matches_full_bfs_modulo_sentinel(self):
        g1, g2 = random_snapshot_pair(seed=3)
        csr = CSRGraph.from_graph(g2)
        for i in range(csr.num_nodes):
            full = bfs_levels(csr, i)
            cut = bounded_bfs_levels(csr, i, None)
            expected = full.copy()
            expected[expected == UNREACHED] = csr.num_nodes
            assert np.array_equal(cut, expected)

    def test_levels_within_cut_are_exact(self):
        g1, g2 = random_snapshot_pair(seed=4)
        csr = CSRGraph.from_graph(g2)
        for i in range(0, csr.num_nodes, 7):
            full = bfs_levels(csr, i)
            for max_level in (0, 1, 2, 5):
                cut = bounded_bfs_levels(csr, i, max_level)
                within = cut <= max_level
                assert np.array_equal(cut[within], full[within])
                # Everything else is the above-any-level sentinel, never
                # UNREACHED: a -1 would fake a convergence downstream.
                assert (cut[~within] == csr.num_nodes).all()

    def test_source_out_of_range(self):
        csr = CSRGraph.from_graph(path_graph(3))
        with pytest.raises(IndexError):
            bounded_bfs_levels(csr, 3, 1)


class TestRepairLevelsCut:
    def test_none_is_bit_identical(self):
        g1, g2 = random_snapshot_pair(seed=5)
        delta = SnapshotDelta.from_graphs(g1, g2)
        for i in range(delta.csr1.num_nodes):
            lv1 = bfs_levels(delta.csr1, i)
            assert np.array_equal(
                repair_levels(delta, lv1),
                repair_levels(delta, lv1, max_level=None),
            )

    def test_values_within_cut_are_exact(self):
        g1, g2 = random_snapshot_pair(seed=6)
        delta = SnapshotDelta.from_graphs(g1, g2)
        for i in range(0, delta.csr1.num_nodes, 5):
            lv1 = bfs_levels(delta.csr1, i)
            exact = repair_levels(delta, lv1)
            for max_level in (0, 1, 3, 6):
                cut = repair_levels(delta, lv1, max_level=max_level)
                within = (cut != UNREACHED) & (cut <= max_level)
                assert np.array_equal(cut[within], exact[within])


class TestSourceBound:
    def test_bound_dominates_every_delta(self):
        g1, g2 = random_snapshot_pair(seed=7)
        delta = SnapshotDelta.from_graphs(g1, g2)
        plan = PrunePlan.from_delta(delta)
        for i in range(delta.csr1.num_nodes):
            lv1 = bfs_levels(delta.csr1, i)
            lv2 = repair_levels(delta, lv1)[delta.mapping]
            reached = lv1 != UNREACHED
            deltas = lv1[reached] - lv2[reached]
            best = int(deltas.max()) if deltas.size else 0
            bound = source_bound(lv1, plan)
            if bound == NO_PAIRS:
                assert best <= 0
            else:
                assert bound >= best

    def test_no_inserted_edges_means_no_pairs(self):
        g = path_graph(5)
        delta = SnapshotDelta.from_graphs(g, g.copy())
        plan = PrunePlan.from_delta(delta)
        assert plan.seed_idx1.size == 0
        lv1 = bfs_levels(delta.csr1, 0)
        assert source_bound(lv1, plan) == NO_PAIRS

    def test_unreachable_endpoints_mean_no_pairs(self):
        # Source component never touches the inserted edge: skippable.
        g1 = Graph([(0, 1), (10, 11), (11, 12)])
        g2 = g1.copy()
        g2.add_edge(10, 12)
        delta = SnapshotDelta.from_graphs(g1, g2)
        plan = PrunePlan.from_delta(delta)
        lv_source0 = bfs_levels(delta.csr1, delta.csr1.index[0])
        assert source_bound(lv_source0, plan) == NO_PAIRS
        lv_source10 = bfs_levels(delta.csr1, delta.csr1.index[10])
        assert source_bound(lv_source10, plan) >= 1


class TestKthTracker:
    def test_threshold_is_one_until_full(self):
        t = KthTracker(3)
        assert t.threshold == 1
        t.offer(np.array([5, 4]))
        assert t.threshold == 1
        t.offer(np.array([3]))
        assert t.threshold == 3

    def test_running_kth_over_batches(self):
        t = KthTracker(2)
        t.offer(np.array([1, 9, 2]))
        assert t.threshold == 2
        t.offer(np.array([7]))
        assert t.threshold == 7
        t.offer(np.array([3]))  # below the running 2nd: no change
        assert t.threshold == 7

    def test_nonpositive_values_ignored(self):
        t = KthTracker(1)
        t.offer(np.array([0, -4]))
        assert t.threshold == 1
        t.offer(np.array([2]))
        assert t.threshold == 2

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            KthTracker(0)

    @given(
        st.lists(
            st.integers(min_value=-3, max_value=20), min_size=0, max_size=40
        ),
        st.integers(min_value=1, max_value=6),
    )
    def test_matches_offline_kth(self, values, k):
        t = KthTracker(k)
        for v in values:
            t.offer(np.array([v]))
        positive = sorted((v for v in values if v > 0), reverse=True)
        expected = positive[k - 1] if len(positive) >= k else 1
        assert t.threshold == expected


class TestPruneStats:
    def test_counters_partition_sources(self):
        from repro.core.fastpairs import csr_top_k_rows

        g1, g2 = random_snapshot_pair(seed=8)
        stats = PruneStats()
        csr_top_k_rows(g1, g2, 5, stats=stats)
        assert stats.sources == g1.num_nodes
        assert stats.skipped + stats.cut + stats.full == stats.sources
        assert stats.as_dict() == {
            "sources": stats.sources,
            "skipped": stats.skipped,
            "cut": stats.cut,
            "full": stats.full,
        }


# ----------------------------------------------------------------------
# End-to-end equivalence laws
# ----------------------------------------------------------------------
SUPPRESS = [HealthCheck.too_slow]


class TestPrunedEquivalence:
    @settings(max_examples=60, deadline=None, suppress_health_check=SUPPRESS)
    @given(snapshot_pair(), st.integers(min_value=1, max_value=12))
    def test_top_k_pruned_equals_unpruned_equals_networkx(self, pair, k):
        g1, g2 = pair
        ref = top_k_converging_pairs(g1, g2, k)
        assert ref == nx_top_k(g1, g2, k)
        for engine in ("incremental", "csr"):
            assert (
                top_k_converging_pairs(g1, g2, k, engine=engine, prune=True)
                == ref
            )

    @settings(max_examples=40, deadline=None, suppress_health_check=SUPPRESS)
    @given(tied_snapshot_pair(), st.integers(min_value=1, max_value=10))
    def test_ties_at_the_kth_delta_survive_pruning(self, pair, k):
        g1, g2 = pair
        ref = top_k_converging_pairs(g1, g2, k)
        assert ref == nx_top_k(g1, g2, k)
        for engine in ("incremental", "csr"):
            assert (
                top_k_converging_pairs(g1, g2, k, engine=engine, prune=True)
                == ref
            )

    @settings(max_examples=40, deadline=None, suppress_health_check=SUPPRESS)
    @given(snapshot_pair(), st.integers(min_value=1, max_value=4))
    def test_threshold_collection_pruned_equals_unpruned(self, pair, dmin):
        g1, g2 = pair
        ref = converging_pairs_at_threshold(g1, g2, dmin)
        for engine in ("incremental", "csr"):
            assert (
                converging_pairs_at_threshold(
                    g1, g2, dmin, engine=engine, prune=True
                )
                == ref
            )

    def test_disconnected_pairs_never_surface(self):
        # Two t1 components; only one gains a shortcut.  Cross-component
        # pairs are disconnected at t1 and must not appear, pruned or not.
        g1 = Graph([(0, 1), (1, 2), (2, 3), (10, 11), (11, 12)])
        g2 = g1.copy()
        g2.add_edge(0, 3)
        ref = top_k_converging_pairs(g1, g2, 10)
        assert ref  # the shortcut does create converging pairs
        for p in ref:
            assert {p.u, p.v} <= {0, 1, 2, 3}
        assert top_k_converging_pairs(g1, g2, 10, prune=True) == ref

    def test_t2_only_sources_are_ignored_identically(self):
        # Node 99 exists only at t2; its pairs have no t1 distance and
        # are outside the problem.  Pruning must agree.
        g1 = path_graph(6)
        g2 = g1.copy()
        g2.add_edge(0, 5)
        g2.add_edge(99, 3)
        ref = top_k_converging_pairs(g1, g2, 8)
        assert all(99 not in (p.u, p.v) for p in ref)
        for engine in ("incremental", "csr"):
            assert (
                top_k_converging_pairs(g1, g2, 8, engine=engine, prune=True)
                == ref
            )

    def test_prune_rejects_dict_engine_and_weighted_graphs(self):
        g1, g2 = random_snapshot_pair(seed=9)
        with pytest.raises(ValueError, match="prune"):
            top_k_converging_pairs(g1, g2, 3, engine="dict", prune=True)
        with pytest.raises(ValueError, match="prune"):
            converging_pairs_at_threshold(
                g1, g2, 1, engine="dict", prune=True
            )
        w1 = Graph()
        w1.add_edge("a", "b", weight=2.0)
        w2 = w1.copy()
        w2.add_edge("a", "c", weight=1.0)
        with pytest.raises(ValueError, match="prune"):
            top_k_converging_pairs(w1, w2, 3, prune=True)
