"""Unit tests for repro.graph.dynamic (EdgeEvent / TemporalGraph)."""

import pytest

from repro.graph.dynamic import EdgeEvent, TemporalGraph


class TestEdgeEvent:
    def test_fields(self):
        ev = EdgeEvent(time=3.0, u="a", v="b", weight=2.0)
        assert ev.endpoints() == ("a", "b")
        assert ev.weight == 2.0

    def test_ordering_by_time(self):
        assert EdgeEvent(1, 5, 6) < EdgeEvent(2, 1, 2)

    def test_frozen(self):
        ev = EdgeEvent(0, 1, 2)
        with pytest.raises(AttributeError):
            ev.time = 9


class TestConstruction:
    def test_from_tuples(self):
        tg = TemporalGraph([(0, 1, 2), (1, 2, 3)])
        assert tg.num_events == 2

    def test_from_weighted_tuples(self):
        tg = TemporalGraph([(0, 1, 2, 5.0)])
        assert tg.events()[0].weight == 5.0

    def test_from_events(self):
        tg = TemporalGraph([EdgeEvent(0, "x", "y")])
        assert tg.num_events == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self loop"):
            TemporalGraph([(0, 1, 1)])

    def test_unsorted_events_are_sorted(self):
        tg = TemporalGraph([(5, 1, 2), (1, 3, 4), (3, 5, 6)])
        times = [ev.time for ev in tg.events()]
        assert times == [1, 3, 5]

    def test_stable_sort_preserves_tie_order(self):
        tg = TemporalGraph([(1, 1, 2), (0, 9, 8), (1, 3, 4)])
        events = tg.events()
        assert events[1].endpoints() == (1, 2)
        assert events[2].endpoints() == (3, 4)

    def test_len(self):
        assert len(TemporalGraph([(0, 1, 2)])) == 1


class TestSnapshots:
    @pytest.fixture
    def stream(self) -> TemporalGraph:
        return TemporalGraph([(i, i, i + 1) for i in range(10)])

    def test_full_snapshot(self, stream):
        g = stream.snapshot()
        assert g.num_edges == 10
        assert g.num_nodes == 11

    def test_snapshot_at_time(self, stream):
        g = stream.snapshot_at_time(4)
        assert g.num_edges == 5  # times 0..4 inclusive

    def test_snapshot_at_time_before_start(self, stream):
        assert stream.snapshot_at_time(-1).num_nodes == 0

    def test_snapshot_at_fraction(self, stream):
        assert stream.snapshot_at_fraction(0.5).num_edges == 5
        assert stream.snapshot_at_fraction(0.0).num_edges == 0
        assert stream.snapshot_at_fraction(1.0).num_edges == 10

    def test_snapshot_fraction_out_of_range(self, stream):
        with pytest.raises(ValueError):
            stream.snapshot_at_fraction(1.5)
        with pytest.raises(ValueError):
            stream.snapshot_at_fraction(-0.1)

    def test_snapshot_pair_subgraph_relation(self, stream):
        g1, g2 = stream.snapshot_pair(0.4, 0.8)
        for u, v in g1.edges():
            assert g2.has_edge(u, v)

    def test_snapshot_pair_bad_order(self, stream):
        with pytest.raises(ValueError, match="f1 <= f2"):
            stream.snapshot_pair(0.9, 0.5)

    def test_repeated_edge_insertions_collapse(self):
        tg = TemporalGraph([(0, 1, 2), (1, 1, 2), (2, 2, 3)])
        g = tg.snapshot()
        assert g.num_edges == 2

    def test_repeated_edge_keeps_first_weight(self):
        tg = TemporalGraph([(0, 1, 2, 3.0), (1, 1, 2, 9.0)])
        # First materialised weight wins: re-insertion must never make an
        # existing edge heavier (distances must not increase).
        assert tg.snapshot().weight(1, 2) == 3.0

    def test_events_between(self, stream):
        mid = stream.events_between(0.5, 0.8)
        assert [ev.time for ev in mid] == [5, 6, 7]

    def test_events_between_full_range(self, stream):
        assert len(stream.events_between(0.0, 1.0)) == 10

    def test_events_between_bad_range(self, stream):
        with pytest.raises(ValueError):
            stream.events_between(0.8, 0.5)

    def test_time_span(self, stream):
        assert stream.time_span() == (0, 9)

    def test_time_span_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            TemporalGraph().time_span()

    def test_incremental_add(self):
        tg = TemporalGraph()
        tg.add_edge(0, "a", "b")
        tg.add_edge(1, "b", "c", weight=2.0)
        g = tg.snapshot()
        assert g.num_edges == 2
        assert g.weight("b", "c") == 2.0

    def test_iteration(self, stream):
        assert sum(1 for _ in stream) == 10


class TestDeletionEvents:
    """Non-positive weight marks an edge deletion (dirty real streams)."""

    def test_is_deletion_flag(self):
        from repro.graph.dynamic import EdgeEvent

        assert EdgeEvent(0, 1, 2, 0.0).is_deletion
        assert EdgeEvent(0, 1, 2, -1.0).is_deletion
        assert not EdgeEvent(0, 1, 2, 1.0).is_deletion

    def test_deletion_removes_edge_from_snapshot(self):
        tg = TemporalGraph([(0, 1, 2), (1, 2, 3), (2, 1, 2, 0.0)])
        g = tg.snapshot()
        assert not g.has_edge(1, 2)
        assert g.has_edge(2, 3)
        # Endpoints survive as (possibly isolated) nodes.
        assert 1 in g

    def test_deletion_of_absent_edge_is_noop(self):
        tg = TemporalGraph([(0, 1, 2), (1, 8, 9, -2.0)])
        g = tg.snapshot()
        assert g.num_edges == 1
        assert 8 not in g

    def test_deletion_only_affects_later_snapshots(self):
        tg = TemporalGraph([(0, 1, 2), (1, 2, 3), (2, 1, 2, 0.0)])
        early = tg.snapshot_at_time(1)
        late = tg.snapshot_at_time(2)
        assert early.has_edge(1, 2)
        assert not late.has_edge(1, 2)

    def test_reinsertion_after_deletion(self):
        tg = TemporalGraph([(0, 1, 2, 3.0), (1, 1, 2, 0.0), (2, 1, 2, 5.0)])
        g = tg.snapshot()
        assert g.weight(1, 2) == 5.0
