"""Unit tests for the [-1, 1] min-max scaler."""

import numpy as np
import pytest

from repro.ml.scaling import MinMaxScaler


class TestFitTransform:
    def test_maps_to_unit_interval(self):
        X = np.array([[0.0, 10.0], [5.0, 20.0], [10.0, 30.0]])
        out = MinMaxScaler().fit_transform(X)
        assert out.min() == pytest.approx(-1.0)
        assert out.max() == pytest.approx(1.0)
        assert out[1] == pytest.approx([0.0, 0.0])

    def test_constant_column_maps_to_midpoint(self):
        X = np.array([[1.0, 3.0], [1.0, 5.0]])
        out = MinMaxScaler().fit_transform(X)
        assert out[:, 0] == pytest.approx([0.0, 0.0])

    def test_custom_range(self):
        X = np.array([[0.0], [1.0]])
        out = MinMaxScaler(feature_range=(0.0, 10.0)).fit_transform(X)
        assert list(out.ravel()) == [0.0, 10.0]

    def test_transform_extrapolates_outside_training_range(self):
        scaler = MinMaxScaler().fit(np.array([[0.0], [10.0]]))
        out = scaler.transform(np.array([[20.0]]))
        assert out[0, 0] == pytest.approx(3.0)

    def test_transform_preserves_order(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(50, 1))
        scaler = MinMaxScaler().fit(X)
        out = scaler.transform(X).ravel()
        assert (np.argsort(out) == np.argsort(X.ravel())).all()


class TestValidation:
    def test_bad_range(self):
        with pytest.raises(ValueError):
            MinMaxScaler(feature_range=(1.0, -1.0))

    def test_transform_before_fit(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            MinMaxScaler().transform(np.zeros((1, 2)))

    def test_fit_requires_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            MinMaxScaler().fit(np.zeros(5))

    def test_fit_empty_matrix(self):
        with pytest.raises(ValueError, match="empty"):
            MinMaxScaler().fit(np.zeros((0, 3)))

    def test_column_count_mismatch(self):
        scaler = MinMaxScaler().fit(np.zeros((2, 3)))
        with pytest.raises(ValueError, match="columns"):
            scaler.transform(np.zeros((2, 2)))
