"""Pure answer computation: topk merge, per-node partners, budgets."""

import pytest

from repro.core.pairs import pair_delta
from repro.runtime import RuntimeConfig, StreamRuntime
from repro.service.answers import (
    compute_answer,
    node_answer,
    topk_answer,
    validate_query_args,
)
from repro.service.protocol import E_BAD_REQUEST, ProtocolError

from conftest import random_temporal_graph


@pytest.fixture
def runtime(tmp_path):
    stream = random_temporal_graph(30, 120, seed=11)
    rt = StreamRuntime(
        stream, tmp_path / "wal",
        RuntimeConfig(k=5, batch_size=6, checkpoint_every=2),
    )
    rt.run()
    return rt


class TestValidation:
    @pytest.mark.parametrize(
        "verb,args",
        [
            ("topk", {"k": 0}),
            ("topk", {"k": True}),
            ("topk", {"k": "five"}),
            ("topk", {"u": 1}),
            ("node", {}),
            ("node", {"u": 1.5}),
            ("node", {"u": True}),
            ("node", {"u": 1, "extra": 2}),
        ],
    )
    def test_bad_args_rejected(self, verb, args):
        with pytest.raises(ProtocolError) as err:
            validate_query_args(verb, args)
        assert err.value.code == E_BAD_REQUEST

    def test_good_args_pass(self):
        validate_query_args("topk", {})
        validate_query_args("topk", {"k": 3})
        validate_query_args("node", {"u": 1})
        validate_query_args("node", {"u": "alice", "k": 2})


class TestTopK:
    def test_pairs_ranked_and_truncated(self, runtime):
        answer = topk_answer(runtime, k=3)
        assert answer["k"] == 3
        assert answer["consumed"] == runtime.consumed
        assert answer["windows"] == len(runtime.windows)
        assert len(answer["pairs"]) <= 3
        deltas = [row[4] for row in answer["pairs"]]
        assert deltas == sorted(deltas, reverse=True)

    def test_default_k_is_the_runtime_k(self, runtime):
        assert topk_answer(runtime)["k"] == runtime.config.k

    def test_keeps_best_delta_per_pair(self, runtime):
        answer = topk_answer(runtime, k=100)
        best = {}
        for window in runtime.windows:
            for p in window.pairs:
                key = p.pair
                if key not in best or p.delta > best[key]:
                    best[key] = p.delta
        for u, v, d1, d2, delta in answer["pairs"]:
            assert best[(u, v)] == delta
        # No pair appears twice.
        keys = [(row[0], row[1]) for row in answer["pairs"]]
        assert len(keys) == len(set(keys))

    def test_pure_function_of_state(self, runtime):
        assert topk_answer(runtime, k=5) == topk_answer(runtime, k=5)


class TestNode:
    def test_partners_are_positive_delta_and_ranked(self, runtime):
        top = topk_answer(runtime, k=1)["pairs"]
        assert top, "fixture stream should produce converging pairs"
        u = top[0][0]
        answer = node_answer(runtime, u, k=4)
        assert answer["present"] is True
        assert answer["u"] == u
        assert answer["sssp"] == 2  # one t1 BFS + one repair, charged
        assert answer["window"]["index"] == runtime.windows[-1].index
        assert 0 < len(answer["partners"]) <= 4
        deltas = [row[3] for row in answer["partners"]]
        assert deltas == sorted(deltas, reverse=True)
        assert all(d > 0 for d in deltas)

    def test_partner_deltas_match_the_snapshot_pair(self, runtime):
        u = topk_answer(runtime, k=1)["pairs"][0][0]
        answer = node_answer(runtime, u, k=3)
        g1, g2 = runtime.window_snapshots(runtime.windows[-1].index)
        for v, d1, d2, delta in answer["partners"]:
            assert delta == d1 - d2
            assert pair_delta(g1, g2, u, v) == delta

    def test_absent_node(self, runtime):
        answer = node_answer(runtime, "no-such-node", k=3)
        assert answer["present"] is False
        assert answer["partners"] == []
        assert answer["window"] is not None  # windows exist; node doesn't

    def test_no_windows_yet(self, tmp_path):
        stream = random_temporal_graph(10, 30, seed=3)
        rt = StreamRuntime(
            stream, tmp_path / "wal",
            RuntimeConfig(k=5, batch_size=6, checkpoint_every=2),
        )
        answer = node_answer(rt, 0, k=3)
        assert answer == {
            "u": 0, "k": 3, "present": False, "window": None, "partners": [],
        }


class TestComputeAnswer:
    def test_dispatch(self, runtime):
        assert compute_answer(runtime, "topk", {"k": 2}) == topk_answer(
            runtime, k=2
        )
        u = topk_answer(runtime, k=1)["pairs"][0][0]
        assert compute_answer(runtime, "node", {"u": u}) == node_answer(
            runtime, u
        )

    def test_validates_before_computing(self, runtime):
        with pytest.raises(ProtocolError):
            compute_answer(runtime, "topk", {"k": -1})
