"""Unit tests for repro.graph.components."""

import networkx as nx
import pytest

from repro.graph.components import (
    component_membership,
    connected_components,
    count_disconnected_pairs,
    is_connected,
    largest_component,
    same_component,
)
from repro.graph.graph import Graph

from conftest import path_graph, random_snapshot_pair, to_networkx


class TestConnectedComponents:
    def test_single_component(self, path5):
        comps = connected_components(path5)
        assert len(comps) == 1
        assert comps[0] == {0, 1, 2, 3, 4}

    def test_multiple_components_sorted_by_size(self, two_components):
        comps = connected_components(two_components)
        assert [len(c) for c in comps] == [3, 2]

    def test_isolated_nodes_are_components(self):
        g = Graph([(0, 1)])
        g.add_node(5)
        comps = connected_components(g)
        assert {5} in comps

    def test_empty_graph(self):
        assert connected_components(Graph()) == []

    @pytest.mark.parametrize("seed", [11, 12])
    def test_matches_networkx(self, seed):
        g, _ = random_snapshot_pair(num_nodes=40, num_edges=45, seed=seed)
        ours = {frozenset(c) for c in connected_components(g)}
        theirs = {frozenset(c) for c in nx.connected_components(to_networkx(g))}
        assert ours == theirs


class TestLargestComponent:
    def test_largest(self, two_components):
        assert largest_component(two_components) == {0, 1, 2}

    def test_empty(self):
        assert largest_component(Graph()) == set()


class TestMembership:
    def test_membership_indices(self, two_components):
        membership = component_membership(two_components)
        assert membership[0] == membership[1] == membership[2] == 0
        assert membership[10] == membership[11] == 1

    def test_same_component(self, two_components):
        membership = component_membership(two_components)
        assert same_component(membership, 0, 2)
        assert not same_component(membership, 0, 10)

    def test_same_component_unknown_node(self, two_components):
        membership = component_membership(two_components)
        assert not same_component(membership, 0, 999)
        assert not same_component(membership, 999, 998)


class TestIsConnected:
    def test_connected(self, path5):
        assert is_connected(path5)

    def test_disconnected(self, two_components):
        assert not is_connected(two_components)

    def test_empty_graph_not_connected(self):
        assert not is_connected(Graph())

    def test_singleton_connected(self):
        g = Graph()
        g.add_node(1)
        assert is_connected(g)


class TestDisconnectedPairs:
    def test_connected_graph_has_none(self, path5):
        assert count_disconnected_pairs(path5) == 0

    def test_two_components(self, two_components):
        # 3 + 2 nodes: total C(5,2)=10, within 3+1=4, across = 6.
        assert count_disconnected_pairs(two_components) == 6

    def test_all_isolated(self):
        g = Graph()
        for i in range(4):
            g.add_node(i)
        assert count_disconnected_pairs(g) == 6

    def test_empty(self):
        assert count_disconnected_pairs(Graph()) == 0

    @pytest.mark.parametrize("seed", [13])
    def test_matches_brute_force(self, seed):
        g, _ = random_snapshot_pair(num_nodes=25, num_edges=20, seed=seed)
        membership = component_membership(g)
        nodes = list(g.nodes())
        brute = sum(
            1
            for i, u in enumerate(nodes)
            for v in nodes[i + 1 :]
            if membership[u] != membership[v]
        )
        assert count_disconnected_pairs(g) == brute
