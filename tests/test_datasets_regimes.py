"""Calibration tests: each synthetic analogue sits in its paper regime.

These go beyond Table 2's size/density columns and check the structural
fingerprints that make each real dataset behave the way the paper
describes:

* collaboration graphs (Actors, DBLP) are *clique-projected* — very high
  clustering;
* the AS-Internet graph is *hub-and-spoke* — strongly disassortative
  with heavy-tailed degrees;
* the Facebook analogue carries *community structure* — clustering far
  above a degree-matched random baseline;
* preferential attachment yields degree concentration (Gini).
"""

import pytest

from repro.datasets import eval_snapshots, load
from repro.datasets.generators import preferential_attachment_stream
from repro.graph.stats import (
    average_clustering,
    degree_assortativity,
    degree_gini,
)

SCALE = 0.3


@pytest.fixture(scope="module")
def snapshots():
    return {
        name: eval_snapshots(load(name, scale=SCALE))
        for name in ("actors", "internet", "facebook", "dblp")
    }


class TestCollaborationRegime:
    def test_actors_clustering_is_extreme(self, snapshots):
        g1, _ = snapshots["actors"]
        # Casts project to cliques: clustering near the theoretical top.
        assert average_clustering(g1) > 0.5

    def test_dblp_clustering_high(self, snapshots):
        g1, _ = snapshots["dblp"]
        assert average_clustering(g1) > 0.3

    def test_collaboration_beats_internet_clustering(self, snapshots):
        internet = average_clustering(snapshots["internet"][0])
        assert average_clustering(snapshots["actors"][0]) > internet
        assert average_clustering(snapshots["dblp"][0]) > internet


class TestInternetRegime:
    def test_disassortative(self, snapshots):
        g1, _ = snapshots["internet"]
        assort = degree_assortativity(g1)
        assert assort is not None and assort < -0.1

    def test_heavy_tailed_degrees(self, snapshots):
        g1, _ = snapshots["internet"]
        assert degree_gini(g1) > 0.3
        assert g1.max_degree() > 5 * (2 * g1.num_edges / g1.num_nodes)


class TestFacebookRegime:
    def test_community_clustering_above_random_baseline(self, snapshots):
        g1, _ = snapshots["facebook"]
        # A degree-matched preferential-attachment graph has near-zero
        # clustering at this sparsity; community structure shows up as a
        # clear multiple of it.
        random_like = preferential_attachment_stream(
            g1.num_nodes, max(1, g1.num_edges // g1.num_nodes), seed=1
        ).snapshot()
        assert average_clustering(g1) > 2 * average_clustering(random_like)


class TestPreferentialAttachmentRegime:
    def test_degree_concentration(self):
        g = preferential_attachment_stream(600, 2, seed=4).snapshot()
        assert degree_gini(g) > 0.3
