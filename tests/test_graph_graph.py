"""Unit tests for repro.graph.graph.Graph."""

import pytest

from repro.graph.graph import Graph

from conftest import complete_graph, path_graph, star_graph


class TestConstruction:
    def test_empty_graph(self):
        g = Graph()
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert list(g.nodes()) == []
        assert list(g.edges()) == []

    def test_from_edge_tuples(self):
        g = Graph([(1, 2), (2, 3)])
        assert g.num_nodes == 3
        assert g.num_edges == 2

    def test_from_weighted_tuples(self):
        g = Graph([(1, 2, 2.5)])
        assert g.weight(1, 2) == 2.5

    def test_mixed_tuples(self):
        g = Graph([(1, 2), (2, 3, 0.5)])
        assert g.weight(1, 2) == 1.0
        assert g.weight(2, 3) == 0.5

    def test_len_is_node_count(self):
        assert len(Graph([(1, 2), (3, 4)])) == 4


class TestMutation:
    def test_add_node_idempotent(self):
        g = Graph()
        g.add_node("a")
        g.add_node("a")
        assert g.num_nodes == 1
        assert g.degree("a") == 0

    def test_add_edge_creates_nodes(self):
        g = Graph()
        g.add_edge(1, 2)
        assert 1 in g and 2 in g

    def test_add_edge_is_undirected(self):
        g = Graph([(1, 2)])
        assert g.has_edge(1, 2)
        assert g.has_edge(2, 1)

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(ValueError, match="self loop"):
            g.add_edge(3, 3)

    def test_nonpositive_weight_rejected(self):
        g = Graph()
        with pytest.raises(ValueError, match="positive"):
            g.add_edge(1, 2, 0.0)
        with pytest.raises(ValueError, match="positive"):
            g.add_edge(1, 2, -1.0)

    def test_readd_edge_updates_weight(self):
        g = Graph([(1, 2, 1.0)])
        g.add_edge(1, 2, 9.0)
        assert g.num_edges == 1
        assert g.weight(1, 2) == 9.0
        assert g.weight(2, 1) == 9.0

    def test_remove_edge(self):
        g = Graph([(1, 2), (2, 3)])
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g.num_edges == 1
        assert 1 in g  # node stays

    def test_remove_missing_edge_raises(self):
        g = Graph([(1, 2)])
        with pytest.raises(KeyError):
            g.remove_edge(1, 3)

    def test_remove_node_removes_incident_edges(self):
        g = star_graph(4)
        g.remove_node(0)
        assert g.num_edges == 0
        assert g.num_nodes == 4

    def test_remove_missing_node_raises(self):
        with pytest.raises(KeyError):
            Graph().remove_node("ghost")

    def test_add_edges_from(self):
        g = Graph()
        g.add_edges_from([(1, 2), (2, 3, 4.0)])
        assert g.num_edges == 2
        assert g.weight(2, 3) == 4.0


class TestQueries:
    def test_edges_yields_each_once(self):
        g = complete_graph(5)
        edges = list(g.edges())
        assert len(edges) == 10
        canonical = {tuple(sorted(e)) for e in edges}
        assert len(canonical) == 10

    def test_weighted_edges(self):
        g = Graph([(1, 2, 3.0), (2, 3, 4.0)])
        weights = {tuple(sorted((u, v))): w for u, v, w in g.weighted_edges()}
        assert weights == {(1, 2): 3.0, (2, 3): 4.0}

    def test_neighbors(self, path5):
        assert sorted(path5.neighbors(1)) == [0, 2]
        assert sorted(path5.neighbors(0)) == [1]

    def test_neighbors_missing_raises(self, path5):
        with pytest.raises(KeyError):
            list(path5.neighbors(99))

    def test_degree(self, path5):
        assert path5.degree(0) == 1
        assert path5.degree(2) == 2

    def test_degree_of_absent_node_is_zero(self, path5):
        assert path5.degree(99) == 0

    def test_degrees_map(self, path5):
        degs = path5.degrees()
        assert degs == {0: 1, 1: 2, 2: 2, 3: 2, 4: 1}

    def test_max_degree(self):
        assert star_graph(7).max_degree() == 7
        assert Graph().max_degree() == 0

    def test_density_complete(self):
        assert complete_graph(6).density() == pytest.approx(1.0)

    def test_density_small_graphs(self):
        assert Graph().density() == 0.0
        g = Graph()
        g.add_node(1)
        assert g.density() == 0.0

    def test_density_path(self):
        # 4 nodes, 3 edges: 2*3 / (4*3) = 0.5
        assert path_graph(4).density() == pytest.approx(0.5)

    def test_is_weighted(self):
        assert not path_graph(3).is_weighted()
        assert Graph([(1, 2, 2.0)]).is_weighted()

    def test_iteration_order_is_insertion_order(self):
        g = Graph([(5, 3), (1, 5)])
        assert list(g.nodes()) == [5, 3, 1]

    def test_weight_missing_raises(self, path5):
        with pytest.raises(KeyError):
            path5.weight(0, 4)


class TestDerivation:
    def test_copy_is_independent(self, path5):
        g = path5.copy()
        g.add_edge(0, 4)
        assert not path5.has_edge(0, 4)
        assert g.has_edge(0, 4)

    def test_copy_preserves_weights(self):
        g = Graph([(1, 2, 5.0)])
        assert g.copy().weight(1, 2) == 5.0

    def test_equality(self):
        assert Graph([(1, 2)]) == Graph([(2, 1)])
        assert Graph([(1, 2)]) != Graph([(1, 2, 2.0)])
        assert Graph([(1, 2)]) != Graph([(1, 3)])

    def test_equality_with_non_graph(self):
        assert Graph() != "not a graph"

    def test_subgraph_induced(self, path5):
        sub = path5.subgraph([0, 1, 2, 4])
        assert sub.num_nodes == 4
        assert sub.has_edge(0, 1)
        assert sub.has_edge(1, 2)
        assert not sub.has_edge(2, 3)
        assert sub.degree(4) == 0

    def test_subgraph_ignores_unknown_nodes(self, path5):
        sub = path5.subgraph([0, 1, 99])
        assert sub.num_nodes == 2

    def test_subgraph_preserves_weights(self):
        g = Graph([(1, 2, 7.0), (2, 3, 8.0)])
        sub = g.subgraph([1, 2])
        assert sub.weight(1, 2) == 7.0

    def test_hashable_node_types_mix(self):
        g = Graph([("a", 1), (1, (2, 3))])
        assert g.num_nodes == 3
        assert g.has_edge((2, 3), 1)
