"""Circuit breaker: pinned seeded transition sequences and round-trips."""

import pytest

from repro.resilience import capture_events
from repro.runtime.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


def drive(breaker, outcomes):
    """Feed a string of 's'/'f' request outcomes; returns engine choices.

    Each character is one request: ``allow()`` decides the path, and the
    outcome is recorded only when the protected path was taken (denied
    requests are the fallback's business, with nothing to record).
    """
    choices = []
    for outcome in outcomes:
        allowed = breaker.allow()
        choices.append("direct" if allowed else "fallback")
        if allowed:
            if outcome == "s":
                breaker.record_success()
            else:
                breaker.record_failure()
    return choices


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": 0},
            {"probe_after": 0},
            {"probe_after": 8, "max_probe_after": 4},
            {"jitter": -0.1},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CircuitBreaker(**kwargs)


class TestStateMachine:
    def test_stays_closed_on_successes(self):
        breaker = CircuitBreaker(seed=0)
        assert drive(breaker, "ssss") == ["direct"] * 4
        assert breaker.state == CLOSED
        assert breaker.transitions == []

    def test_nonconsecutive_failures_do_not_trip(self):
        breaker = CircuitBreaker(failure_threshold=3, seed=0)
        drive(breaker, "ffsffsff")
        assert breaker.state == CLOSED

    def test_threshold_trips_open(self):
        breaker = CircuitBreaker(failure_threshold=3, seed=0)
        drive(breaker, "fff")
        assert breaker.state == OPEN
        assert breaker.transitions == [(OPEN, "threshold")]

    def test_pinned_trip_probe_reclose_sequence(self):
        """The full seeded lifecycle, pinned exactly.

        seed=0, jitter=0: waits are deterministic powers of two, so the
        engine-choice sequence is a pure function of the outcome string.
        """
        breaker = CircuitBreaker(
            failure_threshold=2, probe_after=2, jitter=0.0, seed=0
        )
        # 2 failures trip it; wait=2 denials; probe fails -> re-open
        # with wait=4; probe succeeds -> closed again.
        choices = drive(breaker, "ff" + "xx" + "f" + "xxxx" + "s" + "ss")
        assert choices == [
            "direct", "direct",        # failures tripping the breaker
            "fallback", "fallback",    # OPEN: wait=2 denials
            "direct",                  # HALF_OPEN probe (fails)
            "fallback", "fallback", "fallback", "fallback",  # wait=4
            "direct",                  # HALF_OPEN probe (succeeds)
            "direct", "direct",        # CLOSED again
        ]
        assert breaker.transitions == [
            (OPEN, "threshold"),
            (HALF_OPEN, "probe_due"),
            (OPEN, "probe_failed"),
            (HALF_OPEN, "probe_due"),
            (CLOSED, "probe_succeeded"),
        ]
        assert breaker.state == CLOSED

    def test_pinned_jittered_waits_for_seed_7(self):
        """Seeded jitter: the exact wait counts for one seed, pinned so
        any change to the draw order is caught."""
        breaker = CircuitBreaker(
            failure_threshold=1, probe_after=2, max_probe_after=16,
            jitter=0.5, seed=7,
        )
        waits = []
        for _ in range(4):
            breaker.allow()
            breaker.record_failure()  # trip (or fail the probe)
            denied = 0
            while not breaker.allow():
                denied += 1
            waits.append(denied)
        assert waits == [2, 4, 10, 16]  # pinned for seed=7

    def test_wait_growth_is_clamped(self):
        breaker = CircuitBreaker(
            failure_threshold=1, probe_after=2, max_probe_after=4,
            jitter=0.0, seed=0,
        )
        waits = []
        for _ in range(5):
            breaker.allow()
            breaker.record_failure()
            denied = 0
            while not breaker.allow():
                denied += 1
            waits.append(denied)
        assert waits == [2, 4, 4, 4, 4]

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, seed=0)
        drive(breaker, "fsfsfs")
        assert breaker.state == CLOSED

    def test_reclose_resets_trip_count(self):
        """After a successful probe the next trip's wait starts over."""
        breaker = CircuitBreaker(
            failure_threshold=1, probe_after=2, jitter=0.0, seed=0
        )
        # Trip 1: wait 2, probe succeeds.
        drive(breaker, "f" + "xx" + "s")
        assert breaker.state == CLOSED
        # Trip 2 (after re-close): wait is back to 2, not 4.
        drive(breaker, "f")
        denied = 0
        while not breaker.allow():
            denied += 1
        assert denied == 2

    def test_transitions_are_logged(self):
        breaker = CircuitBreaker(failure_threshold=1, seed=0)
        with capture_events() as events:
            drive(breaker, "f")
        kinds = [kind for kind, _ in events]
        assert "breaker.transition" in kinds


class TestCheckpointRoundTrip:
    def test_payload_roundtrip_preserves_schedule(self):
        """A restored breaker draws the same future waits the original
        would have — the byte-identical-recovery requirement."""
        a = CircuitBreaker(
            failure_threshold=1, probe_after=2, jitter=0.5, seed=3
        )
        drive(a, "f" + "xxx")  # trip, spend some of the wait
        payload = a.to_payload()

        b = CircuitBreaker(
            failure_threshold=1, probe_after=2, jitter=0.5, seed=3
        )
        b.restore(payload)
        assert b.state == a.state
        assert b.denied_since_open == a.denied_since_open
        assert b.current_wait == a.current_wait

        # Both continue identically for a long outcome tape.
        tape = "fsxfxxsfxs" * 4
        assert drive(a, tape) == drive(b, tape)
        assert a.state == b.state

    def test_payload_is_json_stable(self):
        import json

        breaker = CircuitBreaker(seed=1)
        drive(breaker, "ff")
        payload = breaker.to_payload()
        assert json.loads(json.dumps(payload)) == json.loads(
            json.dumps(payload)
        )
        restored = CircuitBreaker(seed=1)
        restored.restore(json.loads(json.dumps(payload)))
        assert restored.consecutive_failures == breaker.consecutive_failures

    def test_schema_mismatch_rejected(self):
        breaker = CircuitBreaker(seed=0)
        payload = breaker.to_payload()
        payload["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            CircuitBreaker(seed=0).restore(payload)

    def test_unknown_state_rejected(self):
        breaker = CircuitBreaker(seed=0)
        payload = breaker.to_payload()
        payload["state"] = "exploded"
        with pytest.raises(ValueError, match="state"):
            CircuitBreaker(seed=0).restore(payload)
