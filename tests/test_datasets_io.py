"""Unit tests for edge-stream IO."""

import pytest

from repro.datasets.io import (
    ReadStats,
    read_edge_list,
    read_edge_stream,
    write_edge_stream,
)
from repro.graph.dynamic import TemporalGraph

from conftest import random_temporal_graph


class TestRoundTrip:
    def test_write_read_roundtrip(self, tmp_path):
        tg = random_temporal_graph(30, 60, seed=81)
        path = tmp_path / "stream.tsv"
        write_edge_stream(tg, path)
        back = read_edge_stream(path)
        assert back.num_events == tg.num_events
        assert back.snapshot() == tg.snapshot()

    def test_weights_preserved(self, tmp_path):
        tg = TemporalGraph([(0, "a", "b", 2.5), (1, "b", "c", 0.5)])
        path = tmp_path / "weighted.tsv"
        write_edge_stream(tg, path)
        back = read_edge_stream(path)
        assert back.snapshot().weight("a", "b") == 2.5

    def test_header_comment_written(self, tmp_path):
        tg = TemporalGraph([(0, 1, 2)])
        path = tmp_path / "s.tsv"
        write_edge_stream(tg, path)
        assert path.read_text().startswith("#")


class TestReadEdgeStream:
    def test_integer_ids_parsed_as_int(self, tmp_path):
        path = tmp_path / "s.tsv"
        path.write_text("0\t1\t2\n")
        g = read_edge_stream(path).snapshot()
        assert 1 in g and "1" not in g

    def test_string_ids_preserved(self, tmp_path):
        path = tmp_path / "s.tsv"
        path.write_text("0\talice\tbob\n")
        g = read_edge_stream(path).snapshot()
        assert g.has_edge("alice", "bob")

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "s.tsv"
        path.write_text("# header\n\n0\t1\t2\n")
        assert read_edge_stream(path).num_events == 1

    def test_malformed_line_reports_location(self, tmp_path):
        path = tmp_path / "s.tsv"
        path.write_text("0\t1\n")
        with pytest.raises(ValueError, match=":1:"):
            read_edge_stream(path)

    def test_bad_timestamp_reports_location(self, tmp_path):
        path = tmp_path / "s.tsv"
        path.write_text("0\t1\t2\nnope\t3\t4\n")
        with pytest.raises(ValueError, match=":2:"):
            read_edge_stream(path)

    def test_crlf_line_endings_tolerated(self, tmp_path):
        path = tmp_path / "s.tsv"
        path.write_bytes(b"# header\r\n0\t1\t2\r\n1\t2\t3\r\n")
        tg = read_edge_stream(path)
        assert tg.num_events == 2
        assert tg.snapshot().has_edge(1, 2)

    def test_missing_trailing_newline_tolerated(self, tmp_path):
        path = tmp_path / "s.tsv"
        path.write_text("0\t1\t2\n1\t2\t3")  # no final newline
        assert read_edge_stream(path).num_events == 2


class TestSkipMode:
    def test_strict_is_default_and_raises(self, tmp_path):
        path = tmp_path / "s.tsv"
        path.write_text("0\t1\t2\ngarbage line\n")
        with pytest.raises(ValueError):
            read_edge_stream(path)

    def test_skip_mode_counts_and_warns_once(self, tmp_path):
        path = tmp_path / "s.tsv"
        path.write_text("0\t1\t2\ngarbage\nbad\t9\n1\t2\t3\n")
        stats = ReadStats()
        with pytest.warns(UserWarning, match="skipped 2 malformed"):
            tg = read_edge_stream(path, errors="skip", stats=stats)
        assert tg.num_events == 2
        assert stats.skipped == 2
        assert stats.parsed == 2
        assert stats.lines == 4
        assert ":2:" in stats.first_error

    def test_skip_mode_clean_file_no_warning(self, tmp_path, recwarn):
        path = tmp_path / "s.tsv"
        path.write_text("0\t1\t2\n")
        stats = ReadStats()
        read_edge_stream(path, errors="skip", stats=stats)
        assert stats.skipped == 0
        assert not recwarn.list

    def test_unknown_errors_mode_rejected(self, tmp_path):
        path = tmp_path / "s.tsv"
        path.write_text("0\t1\t2\n")
        with pytest.raises(ValueError, match="errors must be"):
            read_edge_stream(path, errors="ignore")


class TestReadEdgeList:
    def test_line_order_is_time(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("5 6\n1 2\n3 4\n")
        events = read_edge_list(path).events()
        assert [ev.endpoints() for ev in events] == [(5, 6), (1, 2), (3, 4)]
        assert [ev.time for ev in events] == [0, 1, 2]

    def test_self_loops_skipped(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("1 1\n1 2\n")
        assert read_edge_list(path).num_events == 1

    def test_whitespace_separated(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("1\t2\n3   4\n")
        assert read_edge_list(path).num_events == 2

    def test_short_line_rejected(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("justone\n")
        with pytest.raises(ValueError, match="two fields"):
            read_edge_list(path)


# ----------------------------------------------------------------------
# Property-based: any stream survives a write/read cycle.
# ----------------------------------------------------------------------
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=20),
            st.integers(min_value=0, max_value=20),
        ),
        min_size=1,
        max_size=40,
    )
)
def test_roundtrip_preserves_snapshot_property(pairs):
    import tempfile
    from pathlib import Path

    events = [(t, u, v) for t, (u, v) in enumerate(pairs) if u != v]
    if not events:
        events = [(0, 0, 1)]
    tg = TemporalGraph(events)
    with tempfile.TemporaryDirectory() as d:
        path = Path(d) / "stream.tsv"
        write_edge_stream(tg, path)
        back = read_edge_stream(path)
    assert back.num_events == tg.num_events
    assert back.snapshot() == tg.snapshot()
    assert [ev.time for ev in back.events()] == [ev.time for ev in tg.events()]
