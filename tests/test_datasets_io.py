"""Unit tests for edge-stream IO."""

import pytest

from repro.datasets.io import (
    ReadStats,
    read_edge_list,
    read_edge_stream,
    write_edge_stream,
)
from repro.graph.dynamic import TemporalGraph

from conftest import random_temporal_graph


class TestRoundTrip:
    def test_write_read_roundtrip(self, tmp_path):
        tg = random_temporal_graph(30, 60, seed=81)
        path = tmp_path / "stream.tsv"
        write_edge_stream(tg, path)
        back = read_edge_stream(path)
        assert back.num_events == tg.num_events
        assert back.snapshot() == tg.snapshot()

    def test_weights_preserved(self, tmp_path):
        tg = TemporalGraph([(0, "a", "b", 2.5), (1, "b", "c", 0.5)])
        path = tmp_path / "weighted.tsv"
        write_edge_stream(tg, path)
        back = read_edge_stream(path)
        assert back.snapshot().weight("a", "b") == 2.5

    def test_header_comment_written(self, tmp_path):
        tg = TemporalGraph([(0, 1, 2)])
        path = tmp_path / "s.tsv"
        write_edge_stream(tg, path)
        assert path.read_text().startswith("#")


class TestReadEdgeStream:
    def test_integer_ids_parsed_as_int(self, tmp_path):
        path = tmp_path / "s.tsv"
        path.write_text("0\t1\t2\n")
        g = read_edge_stream(path).snapshot()
        assert 1 in g and "1" not in g

    def test_string_ids_preserved(self, tmp_path):
        path = tmp_path / "s.tsv"
        path.write_text("0\talice\tbob\n")
        g = read_edge_stream(path).snapshot()
        assert g.has_edge("alice", "bob")

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "s.tsv"
        path.write_text("# header\n\n0\t1\t2\n")
        assert read_edge_stream(path).num_events == 1

    def test_malformed_line_reports_location(self, tmp_path):
        path = tmp_path / "s.tsv"
        path.write_text("0\t1\n")
        with pytest.raises(ValueError, match=":1:"):
            read_edge_stream(path)

    def test_bad_timestamp_reports_location(self, tmp_path):
        path = tmp_path / "s.tsv"
        path.write_text("0\t1\t2\nnope\t3\t4\n")
        with pytest.raises(ValueError, match=":2:"):
            read_edge_stream(path)

    def test_crlf_line_endings_tolerated(self, tmp_path):
        path = tmp_path / "s.tsv"
        path.write_bytes(b"# header\r\n0\t1\t2\r\n1\t2\t3\r\n")
        tg = read_edge_stream(path)
        assert tg.num_events == 2
        assert tg.snapshot().has_edge(1, 2)

    def test_missing_trailing_newline_tolerated(self, tmp_path):
        path = tmp_path / "s.tsv"
        path.write_text("0\t1\t2\n1\t2\t3")  # no final newline
        assert read_edge_stream(path).num_events == 2


class TestSkipMode:
    def test_strict_is_default_and_raises(self, tmp_path):
        path = tmp_path / "s.tsv"
        path.write_text("0\t1\t2\ngarbage line\n")
        with pytest.raises(ValueError):
            read_edge_stream(path)

    def test_skip_mode_counts_and_warns_once(self, tmp_path):
        path = tmp_path / "s.tsv"
        path.write_text("0\t1\t2\ngarbage\nbad\t9\n1\t2\t3\n")
        stats = ReadStats()
        with pytest.warns(UserWarning, match="skipped 2 malformed"):
            tg = read_edge_stream(path, errors="skip", stats=stats)
        assert tg.num_events == 2
        assert stats.skipped == 2
        assert stats.parsed == 2
        assert stats.lines == 4
        assert ":2:" in stats.first_error

    def test_skip_mode_clean_file_no_warning(self, tmp_path, recwarn):
        path = tmp_path / "s.tsv"
        path.write_text("0\t1\t2\n")
        stats = ReadStats()
        read_edge_stream(path, errors="skip", stats=stats)
        assert stats.skipped == 0
        assert not recwarn.list

    def test_unknown_errors_mode_rejected(self, tmp_path):
        path = tmp_path / "s.tsv"
        path.write_text("0\t1\t2\n")
        with pytest.raises(ValueError, match="errors must be"):
            read_edge_stream(path, errors="ignore")


class TestErrorCategories:
    def test_counts_every_category_not_just_first(self, tmp_path):
        path = tmp_path / "s.tsv"
        path.write_text(
            "0\t1\t2\n"          # ok
            "too\tfew\n"          # fields
            "nope\t3\t4\n"        # time
            "1\t5\t6\tbad\n"      # weight
            "2\t\t7\n"            # node
            "inf\t8\t9\n"         # time (non-finite)
        )
        stats = ReadStats()
        with pytest.warns(UserWarning) as caught:
            read_edge_stream(path, errors="skip", stats=stats)
        assert stats.error_counts == {
            "fields": 1, "time": 2, "weight": 1, "node": 1,
        }
        assert stats.skipped == 5
        # The single warning surfaces the per-category breakdown.
        message = str(caught[0].message)
        assert "fields=1" in message and "time=2" in message
        # first_error still pins the first failure's location.
        assert ":2:" in stats.first_error

    def test_category_count_is_bounded(self):
        from repro.datasets.io import MAX_ERROR_CATEGORIES

        stats = ReadStats()
        for i in range(MAX_ERROR_CATEGORIES + 4):
            stats.record_error(f"cat{i}", f"err {i}")
        assert len(stats.error_counts) == MAX_ERROR_CATEGORIES + 1
        assert stats.error_counts["other"] == 4

    def test_non_finite_weight_rejected_strict(self, tmp_path):
        path = tmp_path / "s.tsv"
        path.write_text("0\t1\t2\tinf\n")
        with pytest.raises(ValueError, match="non-finite weight"):
            read_edge_stream(path)

    def test_undecodable_bytes_are_malformed_not_a_crash(self, tmp_path):
        path = tmp_path / "s.tsv"
        path.write_bytes(b"0\t1\t2\n\xff\xfe broken\n1\t3\t4\n")
        stats = ReadStats()
        with pytest.warns(UserWarning, match="encoding=1"):
            tg = read_edge_stream(path, errors="skip", stats=stats)
        assert tg.num_events == 2
        assert stats.error_counts == {"encoding": 1}

    def test_undecodable_bytes_strict_raises_located_valueerror(
        self, tmp_path
    ):
        path = tmp_path / "s.tsv"
        path.write_bytes(b"0\t1\t2\n\xff\xfe\n")
        with pytest.raises(ValueError, match=":2:"):
            read_edge_stream(path)


class TestWriteGuards:
    def test_tab_in_node_id_rejected(self, tmp_path):
        tg = TemporalGraph([(0, "a\tb", "c")])
        with pytest.raises(ValueError, match="tabs and newlines"):
            write_edge_stream(tg, tmp_path / "s.tsv")

    def test_newline_in_node_id_rejected(self, tmp_path):
        tg = TemporalGraph([(0, "a", "b\nc")])
        with pytest.raises(ValueError, match="tabs and newlines"):
            write_edge_stream(tg, tmp_path / "s.tsv")

    def test_carriage_return_in_node_id_rejected(self, tmp_path):
        tg = TemporalGraph([(0, "a", "b\rc")])
        with pytest.raises(ValueError):
            write_edge_stream(tg, tmp_path / "s.tsv")

    def test_empty_node_id_rejected(self, tmp_path):
        tg = TemporalGraph([(0, "", "b")])
        with pytest.raises(ValueError, match="empty node id"):
            write_edge_stream(tg, tmp_path / "s.tsv")

    def test_rejection_happens_before_any_write(self, tmp_path):
        path = tmp_path / "s.tsv"
        tg = TemporalGraph([(0, "ok", "fine"), (1, "bad\tid", "x")])
        with pytest.raises(ValueError):
            write_edge_stream(tg, path)
        assert not path.exists()

    def test_spaces_in_node_ids_roundtrip(self, tmp_path):
        tg = TemporalGraph([(0, "alice smith", "bob jones")])
        path = tmp_path / "s.tsv"
        write_edge_stream(tg, path)
        back = read_edge_stream(path)
        assert back.snapshot().has_edge("alice smith", "bob jones")


class TestSanitizedRead:
    def test_sanitizer_cleans_and_reports(self, tmp_path):
        from repro.ingest import Sanitizer

        path = tmp_path / "dirty.tsv"
        path.write_text("0\t1\t2\n1\t3\t3\ngarbage\n2\t4\t5\n")
        sanitizer = Sanitizer()
        tg = read_edge_stream(path, sanitizer=sanitizer)
        assert tg.num_events == 2
        assert sanitizer.report.dropped == {"self-loop": 1}
        assert sanitizer.report.parse_errors == {"fields": 1}
        assert sanitizer.report.source == str(path)

    def test_sanitizer_and_skip_mode_are_exclusive(self, tmp_path):
        from repro.ingest import Sanitizer

        path = tmp_path / "s.tsv"
        path.write_text("0\t1\t2\n")
        with pytest.raises(ValueError, match="mutually exclusive"):
            read_edge_stream(path, errors="skip", sanitizer=Sanitizer())

    def test_stats_mirror_report_on_sanitized_read(self, tmp_path):
        from repro.ingest import Sanitizer

        path = tmp_path / "s.tsv"
        path.write_text("0\t1\t2\nbad\n1\t1\t2\n")
        stats = ReadStats()
        read_edge_stream(path, stats=stats, sanitizer=Sanitizer())
        assert stats.lines == 3
        assert stats.parsed == 2
        assert stats.skipped == 1

    def test_edge_list_with_sanitizer_counts_self_loops(self, tmp_path):
        from repro.ingest import Sanitizer

        path = tmp_path / "edges.txt"
        path.write_text("1 1\n1 2\nshort\n2 1\n")
        sanitizer = Sanitizer()
        tg = read_edge_list(path, sanitizer=sanitizer)
        assert tg.num_events == 1
        assert sanitizer.report.dropped == {
            "self-loop": 1, "duplicate": 1,
        }
        assert sanitizer.report.parse_errors == {"fields": 1}


class TestReadEdgeList:
    def test_line_order_is_time(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("5 6\n1 2\n3 4\n")
        events = read_edge_list(path).events()
        assert [ev.endpoints() for ev in events] == [(5, 6), (1, 2), (3, 4)]
        assert [ev.time for ev in events] == [0, 1, 2]

    def test_self_loops_skipped(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("1 1\n1 2\n")
        assert read_edge_list(path).num_events == 1

    def test_whitespace_separated(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("1\t2\n3   4\n")
        assert read_edge_list(path).num_events == 2

    def test_short_line_rejected(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("justone\n")
        with pytest.raises(ValueError, match="two fields"):
            read_edge_list(path)


# ----------------------------------------------------------------------
# Property-based: any stream survives a write/read cycle.
# ----------------------------------------------------------------------
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=20),
            st.integers(min_value=0, max_value=20),
        ),
        min_size=1,
        max_size=40,
    )
)
def test_roundtrip_preserves_snapshot_property(pairs):
    import tempfile
    from pathlib import Path

    events = [(t, u, v) for t, (u, v) in enumerate(pairs) if u != v]
    if not events:
        events = [(0, 0, 1)]
    tg = TemporalGraph(events)
    with tempfile.TemporaryDirectory() as d:
        path = Path(d) / "stream.tsv"
        write_edge_stream(tg, path)
        back = read_edge_stream(path)
    assert back.num_events == tg.num_events
    assert back.snapshot() == tg.snapshot()
    assert [ev.time for ev in back.events()] == [ev.time for ev in tg.events()]
