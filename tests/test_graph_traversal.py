"""Unit tests for repro.graph.traversal, cross-checked against networkx."""

import networkx as nx
import pytest

from repro.graph.graph import Graph
from repro.graph.traversal import (
    bfs_distances,
    bfs_distances_bounded,
    bfs_tree,
    bidirectional_bfs,
    dijkstra_distances,
    dijkstra_tree,
    reconstruct_path,
    shortest_path_length,
    single_source_distances,
)

from conftest import (
    cycle_graph,
    grid_graph,
    path_graph,
    random_snapshot_pair,
    to_networkx,
)


class TestBFS:
    def test_path_distances(self):
        dist = bfs_distances(path_graph(5), 0)
        assert dist == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_source_distance_zero(self, triangle):
        assert bfs_distances(triangle, 1)[1] == 0

    def test_unreachable_nodes_absent(self, two_components):
        dist = bfs_distances(two_components, 0)
        assert 10 not in dist
        assert 11 not in dist

    def test_missing_source_raises(self, path5):
        with pytest.raises(KeyError):
            bfs_distances(path5, 99)

    def test_cycle(self):
        dist = bfs_distances(cycle_graph(6), 0)
        assert dist[3] == 3
        assert dist[5] == 1

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_networkx_on_random_graphs(self, seed):
        g, _ = random_snapshot_pair(seed=seed)
        nxg = to_networkx(g)
        source = next(iter(g.nodes()))
        expected = nx.single_source_shortest_path_length(nxg, source)
        assert bfs_distances(g, source) == dict(expected)


class TestBoundedBFS:
    def test_depth_zero(self, path5):
        assert bfs_distances_bounded(path5, 2, 0) == {2: 0}

    def test_depth_limits(self, path5):
        assert bfs_distances_bounded(path5, 0, 2) == {0: 0, 1: 1, 2: 2}

    def test_depth_beyond_diameter(self, path5):
        assert bfs_distances_bounded(path5, 0, 100) == bfs_distances(path5, 0)

    def test_negative_depth_raises(self, path5):
        with pytest.raises(ValueError):
            bfs_distances_bounded(path5, 0, -1)

    def test_missing_source_raises(self, path5):
        with pytest.raises(KeyError):
            bfs_distances_bounded(path5, 42, 1)


class TestBFSTree:
    def test_parent_chain(self, path5):
        dist, parent = bfs_tree(path5, 0)
        assert parent[4] == 3
        assert parent[1] == 0
        assert 0 not in parent

    def test_path_reconstruction(self, path5):
        _, parent = bfs_tree(path5, 0)
        assert reconstruct_path(parent, 0, 4) == [0, 1, 2, 3, 4]

    def test_reconstruct_to_source(self, path5):
        _, parent = bfs_tree(path5, 0)
        assert reconstruct_path(parent, 0, 0) == [0]

    def test_reconstruct_unreachable(self, two_components):
        _, parent = bfs_tree(two_components, 0)
        assert reconstruct_path(parent, 0, 11) is None

    def test_missing_source_raises(self, path5):
        with pytest.raises(KeyError):
            bfs_tree(path5, 77)

    def test_path_length_matches_distance(self):
        g = grid_graph(4, 5)
        dist, parent = bfs_tree(g, 0)
        for target, d in dist.items():
            path = reconstruct_path(parent, 0, target)
            assert len(path) == d + 1


class TestDijkstra:
    def test_weighted_shortcut(self):
        # direct edge weight 10 vs two-hop route weight 3.
        g = Graph([(0, 1, 10.0), (0, 2, 1.0), (2, 1, 2.0)])
        assert dijkstra_distances(g, 0)[1] == pytest.approx(3.0)

    def test_unweighted_matches_bfs(self):
        g = grid_graph(3, 4)
        bfs = bfs_distances(g, 0)
        dij = dijkstra_distances(g, 0)
        assert dij == {k: float(v) for k, v in bfs.items()}

    def test_missing_source_raises(self):
        with pytest.raises(KeyError):
            dijkstra_distances(Graph([(1, 2)]), 9)

    @pytest.mark.parametrize("seed", [5, 6])
    def test_matches_networkx_weighted(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        g = Graph()
        for _ in range(120):
            u, v = int(rng.integers(30)), int(rng.integers(30))
            if u != v:
                g.add_edge(u, v, float(rng.uniform(0.1, 5.0)))
        nxg = to_networkx(g)
        source = next(iter(g.nodes()))
        expected = nx.single_source_dijkstra_path_length(nxg, source)
        got = dijkstra_distances(g, source)
        assert set(got) == set(expected)
        for node, d in expected.items():
            assert got[node] == pytest.approx(d)

    def test_dijkstra_tree_path(self):
        g = Graph([(0, 1, 10.0), (0, 2, 1.0), (2, 1, 2.0)])
        dist, parent = dijkstra_tree(g, 0)
        assert reconstruct_path(parent, 0, 1) == [0, 2, 1]
        assert dist[1] == pytest.approx(3.0)

    def test_dijkstra_tree_missing_source(self):
        with pytest.raises(KeyError):
            dijkstra_tree(Graph([(1, 2)]), 3)

    def test_heterogeneous_nodes_no_comparison_error(self):
        g = Graph([("a", 1, 1.0), (1, (2, 2), 1.0), ("a", (2, 2), 5.0)])
        dist = dijkstra_distances(g, "a")
        assert dist[(2, 2)] == pytest.approx(2.0)


class TestBidirectionalBFS:
    def test_same_node(self, path5):
        assert bidirectional_bfs(path5, 3, 3) == 0

    def test_adjacent(self, path5):
        assert bidirectional_bfs(path5, 0, 1) == 1

    def test_path_ends(self, path5):
        assert bidirectional_bfs(path5, 0, 4) == 4

    def test_unreachable_returns_none(self, two_components):
        assert bidirectional_bfs(two_components, 0, 10) is None

    def test_missing_endpoints_raise(self, path5):
        with pytest.raises(KeyError):
            bidirectional_bfs(path5, 99, 0)
        with pytest.raises(KeyError):
            bidirectional_bfs(path5, 0, 99)

    @pytest.mark.parametrize("seed", [7, 8, 9])
    def test_matches_bfs_on_random_graphs(self, seed):
        g, _ = random_snapshot_pair(seed=seed)
        nodes = list(g.nodes())
        source = nodes[0]
        full = bfs_distances(g, source)
        for target in nodes[1:20]:
            assert bidirectional_bfs(g, source, target) == full.get(target)


class TestDispatch:
    def test_single_source_unweighted_uses_hops(self, path5):
        assert single_source_distances(path5, 0)[4] == 4

    def test_single_source_weighted_uses_weights(self):
        g = Graph([(0, 1, 0.5), (1, 2, 0.5)])
        assert single_source_distances(g, 0)[2] == pytest.approx(1.0)

    def test_shortest_path_length_unweighted(self, path5):
        assert shortest_path_length(path5, 0, 3) == 3

    def test_shortest_path_length_weighted(self):
        g = Graph([(0, 1, 10.0), (0, 2, 1.0), (2, 1, 2.0)])
        assert shortest_path_length(g, 0, 1) == pytest.approx(3.0)

    def test_shortest_path_length_disconnected(self, two_components):
        assert shortest_path_length(two_components, 0, 11) is None
