"""Unit tests for the stream sanitizer: rules, policies, determinism."""

import json

import pytest

from repro.datasets.io import read_edge_stream, write_edge_stream
from repro.ingest import (
    DEFAULT_POLICIES,
    RULE_CHAIN,
    RULE_NAMES,
    IngestError,
    SanitizationError,
    Sanitizer,
    check_policies,
)
from repro.ingest.report import (
    MAX_ERROR_CATEGORIES,
    OVERFLOW_CATEGORY,
    StreamHealthReport,
)
from repro.resilience import capture_events


class TestPolicies:
    def test_defaults_repair_everything_repairable(self):
        merged = check_policies(None)
        for rule in RULE_CHAIN:
            assert merged[rule] == "repair"
        assert merged["parse"] == "quarantine"

    def test_override_merges_over_defaults(self):
        merged = check_policies({"deletion": "strict"})
        assert merged["deletion"] == "strict"
        assert merged["duplicate"] == "repair"

    def test_base_merge_preserves_non_overridden(self):
        base = dict(DEFAULT_POLICIES, deletion="quarantine")
        merged = check_policies({"duplicate": "strict"}, base=base)
        assert merged["deletion"] == "quarantine"
        assert merged["duplicate"] == "strict"

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError, match="unknown sanitizer rule"):
            check_policies({"typo": "repair"})

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="must be one of"):
            check_policies({"deletion": "maybe"})

    def test_parse_cannot_repair(self):
        with pytest.raises(ValueError, match="cannot repair"):
            check_policies({"parse": "repair"})

    def test_rule_names_cover_chain(self):
        assert set(RULE_CHAIN) < set(RULE_NAMES)
        assert "parse" in RULE_NAMES


class TestRepairPolicies:
    """Default policies: every dirty event is repaired or dropped."""

    def test_self_loop_dropped(self):
        s = Sanitizer()
        out = s.sanitize_events([(0, 1, 1), (1, 1, 2)])
        assert [(e.u, e.v) for e in out] == [(1, 2)]
        assert s.report.dropped == {"self-loop": 1}

    def test_deletion_dropped(self):
        s = Sanitizer()
        out = s.sanitize_events([(0, 1, 2, 1.0), (1, 3, 4, 0.0), (2, 5, 6, -2.0)])
        assert [(e.u, e.v) for e in out] == [(1, 2)]
        assert s.report.dropped == {"deletion": 2}

    def test_duplicate_collapsed_first_wins(self):
        s = Sanitizer()
        out = s.sanitize_events([(0, 1, 2, 3.0), (1, 2, 1, 3.0), (2, 1, 2, 3.0)])
        assert len(out) == 1
        assert out[0].weight == 3.0
        assert s.report.dropped == {"duplicate": 2}

    def test_weight_increase_clamped_then_collapsed(self):
        s = Sanitizer()
        out = s.sanitize_events([(0, 1, 2, 2.0), (1, 1, 2, 9.0)])
        assert len(out) == 1
        assert s.report.repaired == {"weight-increase": 1}
        assert s.report.dropped == {"duplicate": 1}

    def test_weight_decrease_is_still_a_duplicate(self):
        s = Sanitizer()
        out = s.sanitize_events([(0, 1, 2, 5.0), (1, 1, 2, 1.0)])
        assert len(out) == 1
        assert s.report.repaired == {}
        assert s.report.dropped == {"duplicate": 1}

    def test_out_of_order_reordered_within_buffer(self):
        s = Sanitizer(buffer_size=4)
        out = s.sanitize_events([(0, 1, 2), (5, 3, 4), (2, 5, 6)])
        assert [e.time for e in out] == [0.0, 2.0, 5.0]
        assert s.report.repaired == {"out-of-order": 1}

    def test_out_of_order_clamped_past_buffer_horizon(self):
        s = Sanitizer(buffer_size=0)
        out = s.sanitize_events([(0, 1, 2), (5, 3, 4), (2, 5, 6)])
        # With no buffer, the late event cannot be reordered; its
        # timestamp is clamped up to the last emitted time.
        assert [e.time for e in out] == [0.0, 5.0, 5.0]
        assert (e.u for e in out)  # stream kept every edge
        assert s.report.repaired == {"out-of-order": 1}

    def test_emitted_times_always_non_decreasing(self):
        s = Sanitizer(buffer_size=2)
        times = [7, 3, 9, 1, 4, 8, 2, 6, 5, 0]
        out = s.sanitize_events(
            [(t, 2 * i, 2 * i + 1) for i, t in enumerate(times)]
        )
        emitted = [e.time for e in out]
        assert emitted == sorted(emitted)
        assert len(out) == len(times)

    def test_negative_buffer_rejected(self):
        with pytest.raises(ValueError, match="buffer_size"):
            Sanitizer(buffer_size=-1)


class TestStrictPolicy:
    def test_strict_raises_with_rule_and_line(self):
        s = Sanitizer({"self-loop": "strict"})
        s.feed(0.0, 1, 2)
        with pytest.raises(SanitizationError, match=r"line 7: \[self-loop\]"):
            s.feed(1.0, 3, 3, lineno=7)

    def test_strict_parse_raises(self):
        s = Sanitizer({"parse": "strict"})
        with pytest.raises(SanitizationError, match=r"\[parse\]"):
            s.feed_parse_error(3, "garbage", "bad fields", "fields")

    def test_error_carries_rule_and_lineno(self):
        s = Sanitizer({"deletion": "strict"})
        try:
            s.feed(0.0, 1, 2, 0.0, lineno=12)
        except SanitizationError as exc:
            assert exc.rule == "deletion"
            assert exc.lineno == 12
        else:
            pytest.fail("expected SanitizationError")


class TestQuarantinePolicy:
    def test_diverted_event_keeps_provenance(self):
        s = Sanitizer({"deletion": "quarantine"})
        out = s.sanitize_events([(0, 1, 2, 1.0), (1, 3, 4, 0.0)])
        assert len(out) == 1
        assert s.report.quarantined == {"deletion": 1}
        (rec,) = s.records
        assert rec.rule == "deletion"
        assert (rec.u, rec.v, rec.weight) == (3, 4, 0.0)
        assert rec.seq == 1

    def test_quarantined_event_does_not_claim_edge_state(self):
        # A quarantined duplicate-with-higher-weight must not update the
        # first-seen weight; the next clean observation still collapses
        # against the original.
        s = Sanitizer({"weight-increase": "quarantine"})
        out = s.sanitize_events([(0, 1, 2, 1.0), (1, 1, 2, 9.0), (2, 1, 2, 1.0)])
        assert len(out) == 1
        assert out[0].weight == 1.0
        assert s.report.quarantined == {"weight-increase": 1}
        assert s.report.dropped == {"duplicate": 1}


class TestLifecycle:
    def test_finalize_without_flush_raises(self):
        s = Sanitizer(buffer_size=8)
        s.feed(0.0, 1, 2)
        with pytest.raises(IngestError, match="flush"):
            s.finalize()

    def test_feed_after_finalize_raises(self):
        s = Sanitizer()
        s.sanitize_events([(0, 1, 2)])
        with pytest.raises(IngestError, match="finalized"):
            s.feed(1.0, 3, 4)

    def test_double_finalize_raises(self):
        s = Sanitizer()
        s.sanitize_events([(0, 1, 2)])
        with pytest.raises(IngestError, match="finalized"):
            s.finalize()

    def test_finalize_emits_health_event(self):
        with capture_events() as events:
            s = Sanitizer()
            s.sanitize_events([(0, 1, 2), (1, 3, 3)])
        health = [fields for kind, fields in events
                  if kind == "ingest.health"]
        assert len(health) == 1
        assert health[0]["dropped"] == 1
        assert health[0]["clean"] is False


class TestReport:
    def test_clean_report(self):
        s = Sanitizer()
        s.sanitize_events([(0, 1, 2), (1, 2, 3)])
        assert s.report.clean
        assert s.report.total_issues() == 0
        assert "clean" in s.report.summary()

    def test_parse_error_categories_bounded(self):
        report = StreamHealthReport()
        for i in range(MAX_ERROR_CATEGORIES + 5):
            report.record_parse_error(f"cat{i}")
        assert len(report.parse_errors) == MAX_ERROR_CATEGORIES + 1
        assert report.parse_errors[OVERFLOW_CATEGORY] == 5
        assert report.malformed == MAX_ERROR_CATEGORIES + 5

    def test_payload_is_json_stable(self):
        s = Sanitizer()
        s.sanitize_events([(0, 1, 2), (1, 1, 2), (2, 3, 3)])
        a = json.dumps(s.report.to_payload(), sort_keys=True)
        t = Sanitizer()
        t.sanitize_events([(0, 1, 2), (1, 1, 2), (2, 3, 3)])
        b = json.dumps(t.report.to_payload(), sort_keys=True)
        assert a == b


DIRTY = (
    "# time\tu\tv\tweight\n"
    "0\t1\t2\t5.0\n"
    "1\t3\t3\t1.0\n"
    "not a data line\n"
    "2\t1\t2\t9.0\n"
    "1.5\t4\t5\t2.0\n"
    "3\t6\t7\t0.0\n"
    "4\t8\t9\t1.0\n"
)

#: Pinned golden output: sanitizing DIRTY under default policies must
#: produce exactly these bytes, on every platform, forever.  If a code
#: change alters this, that change broke byte-determinism (or
#: deliberately changed the format and must update the pin).
GOLDEN_SANITIZED = (
    "# time\tu\tv\tweight\n"
    "0.0\t1\t2\t5.0\n"
    "1.5\t4\t5\t2.0\n"
    "4.0\t8\t9\t1.0\n"
)


class TestByteDeterminism:
    def _sanitize_file(self, tmp_path, name):
        src = tmp_path / f"{name}.tsv"
        src.write_text(DIRTY)
        out = tmp_path / f"{name}.clean.tsv"
        sanitizer = Sanitizer()
        temporal = read_edge_stream(src, sanitizer=sanitizer)
        write_edge_stream(temporal, out)
        return out.read_bytes(), sanitizer.report.to_payload()

    def test_sanitized_stream_matches_golden_bytes(self, tmp_path):
        data, payload = self._sanitize_file(tmp_path, "a")
        assert data == GOLDEN_SANITIZED.encode()
        assert payload["lines"] == 7
        assert payload["parsed"] == 6
        assert payload["emitted"] == 3
        assert payload["malformed"] == 1
        assert payload["repaired"] == {"weight-increase": 1}
        assert payload["dropped"] == {
            "deletion": 1, "duplicate": 1, "self-loop": 1,
        }
        assert payload["parse_errors"] == {"fields": 1}

    def test_same_bytes_same_everything(self, tmp_path):
        data_a, payload_a = self._sanitize_file(tmp_path, "a")
        data_b, payload_b = self._sanitize_file(tmp_path, "b")
        assert data_a == data_b
        payload_a.pop("source"), payload_b.pop("source")
        assert payload_a == payload_b
