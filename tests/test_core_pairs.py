"""Unit tests for repro.core.pairs — the ground-truth machinery."""

import math

import pytest

from repro.core.pairs import (
    ConvergingPair,
    canonical_pair,
    converging_pairs_at_threshold,
    delta_histogram,
    k_for_delta_threshold,
    max_delta,
    pair_delta,
    pairs_as_set,
    top_k_converging_pairs,
)
from repro.graph.graph import Graph
from repro.graph.validation import GraphValidationError

from conftest import path_graph, random_snapshot_pair


class TestCanonicalPair:
    def test_orders_comparable(self):
        assert canonical_pair(5, 2) == (2, 5)
        assert canonical_pair(2, 5) == (2, 5)

    def test_orders_incomparable_by_repr(self):
        a, b = canonical_pair("x", 1)
        assert {a, b} == {"x", 1}
        assert canonical_pair("x", 1) == canonical_pair(1, "x")


class TestConvergingPair:
    def test_delta(self):
        p = ConvergingPair(1, 2, d1=5, d2=2)
        assert p.delta == 3
        assert p.pair == (1, 2)

    def test_sort_key_orders_by_delta_then_id(self):
        a = ConvergingPair(1, 2, 5, 1)  # delta 4
        b = ConvergingPair(0, 3, 5, 2)  # delta 3
        c = ConvergingPair(0, 9, 4, 1)  # delta 3
        assert sorted([c, b, a], key=ConvergingPair.sort_key) == [a, b, c]

    def test_frozen(self):
        p = ConvergingPair(1, 2, 5, 2)
        with pytest.raises(AttributeError):
            p.d1 = 7


class TestPairDelta:
    def test_shortcut(self, shortcut_pair):
        g1, g2 = shortcut_pair
        assert pair_delta(g1, g2, 0, 5) == 4
        assert pair_delta(g1, g2, 1, 5) == 2
        assert pair_delta(g1, g2, 2, 3) == 0

    def test_disconnected_pair_is_none(self, two_components):
        g2 = two_components.copy()
        g2.add_edge(2, 10)
        assert pair_delta(two_components, g2, 0, 10) is None


class TestDeltaHistogram:
    def test_shortcut_histogram(self, shortcut_pair):
        g1, g2 = shortcut_pair
        hist = delta_histogram(g1, g2)
        # Path 0..5 + chord (0,5): pair deltas are
        # (0,5):4, (0,4):2, (1,5):2, (0,3):0... let's check the totals.
        assert hist[4] == 1
        assert hist[2] == 2
        assert sum(hist.values()) == 15  # C(6,2) connected pairs

    def test_total_equals_connected_pairs(self):
        g1, g2 = random_snapshot_pair(seed=41)
        hist = delta_histogram(g1, g2)
        from repro.graph.components import count_disconnected_pairs

        n = g1.num_nodes
        connected = n * (n - 1) // 2 - count_disconnected_pairs(g1)
        assert sum(hist.values()) == connected

    def test_no_change_all_zero(self, path5):
        hist = delta_histogram(path5, path5)
        assert set(hist) == {0}

    def test_validation_runs(self):
        g1 = path_graph(4)
        g2 = path_graph(3)
        with pytest.raises(GraphValidationError):
            delta_histogram(g1, g2)

    def test_validation_skippable(self, shortcut_pair):
        g1, g2 = shortcut_pair
        assert delta_histogram(g1, g2, validate=False) == delta_histogram(g1, g2)


class TestMaxDelta:
    def test_shortcut(self, shortcut_pair):
        assert max_delta(*shortcut_pair) == 4

    def test_no_change(self, path5):
        assert max_delta(path5, path5) == 0

    def test_empty_graph(self):
        assert max_delta(Graph(), Graph()) == 0.0


class TestKForThreshold:
    def test_counts(self, shortcut_pair):
        hist = delta_histogram(*shortcut_pair)
        assert k_for_delta_threshold(hist, 4) == 1
        assert k_for_delta_threshold(hist, 2) == 3
        assert k_for_delta_threshold(hist, 1) == 3
        assert k_for_delta_threshold(hist, 5) == 0


class TestPairsAtThreshold:
    def test_exact_set(self, shortcut_pair):
        g1, g2 = shortcut_pair
        pairs = converging_pairs_at_threshold(g1, g2, 2)
        assert pairs_as_set(pairs) == {(0, 5), (0, 4), (1, 5)}

    def test_sorted_by_delta(self, shortcut_pair):
        pairs = converging_pairs_at_threshold(*shortcut_pair, 2)
        deltas = [p.delta for p in pairs]
        assert deltas == sorted(deltas, reverse=True)

    def test_threshold_must_be_positive(self, shortcut_pair):
        with pytest.raises(ValueError, match="positive"):
            converging_pairs_at_threshold(*shortcut_pair, 0)

    def test_endpoints_canonical(self, shortcut_pair):
        for p in converging_pairs_at_threshold(*shortcut_pair, 1):
            assert (p.u, p.v) == canonical_pair(p.u, p.v)

    def test_distances_recorded(self, shortcut_pair):
        pairs = converging_pairs_at_threshold(*shortcut_pair, 4)
        assert pairs[0].d1 == 5 and pairs[0].d2 == 1


class TestTopK:
    def test_exact_top_one(self, shortcut_pair):
        g1, g2 = shortcut_pair
        top = top_k_converging_pairs(g1, g2, k=1)
        assert top[0].pair == (0, 5)
        assert top[0].delta == 4

    def test_top_three(self, shortcut_pair):
        top = top_k_converging_pairs(*shortcut_pair, k=3)
        assert pairs_as_set(top) == {(0, 5), (0, 4), (1, 5)}

    def test_k_larger_than_positive_pairs(self, shortcut_pair):
        top = top_k_converging_pairs(*shortcut_pair, k=100)
        assert len(top) == 3  # only pairs with delta > 0

    def test_no_converging_pairs(self, path5):
        assert top_k_converging_pairs(path5, path5, k=5) == []

    def test_k_must_be_positive(self, shortcut_pair):
        with pytest.raises(ValueError):
            top_k_converging_pairs(*shortcut_pair, k=0)

    def test_deterministic_under_ties(self):
        g1, g2 = random_snapshot_pair(seed=42)
        a = top_k_converging_pairs(g1, g2, k=10)
        b = top_k_converging_pairs(g1, g2, k=10)
        assert [p.pair for p in a] == [p.pair for p in b]

    def test_tie_break_order_pinned_across_engines_and_prune(self):
        """Regression pin: the exact ordering of equal-Δ pairs.

        Two disjoint path-plus-chord gadgets produce tied Δ groups
        (Δ = 3 twice, Δ = 1 four times).  The ranking inside each group
        is fixed by ``sort_key``'s ``(−Δ, repr(u), repr(v))`` — pinned
        here literally so no engine (and in particular no pruned
        engine, whose collection order differs) can silently reorder
        ties at or below the k-th Δ.
        """
        from repro.graph.graph import Graph

        g1, g2 = Graph(), Graph()
        for base in (0, 100):
            for i in range(4):
                g1.add_edge(base + i, base + i + 1)
                g2.add_edge(base + i, base + i + 1)
            g2.add_edge(base, base + 4)
        expected = [
            (0, 4), (100, 104),            # Δ = 3, tied: "0" < "100"
            (0, 3), (1, 4),                # Δ = 1, tied: repr order
            (100, 103), (101, 104),
        ]
        for engine in ("incremental", "csr", "dict"):
            for prune in (False, True):
                if prune and engine == "dict":
                    continue
                for k in range(1, len(expected) + 1):
                    top = top_k_converging_pairs(
                        g1, g2, k=k, engine=engine, prune=prune
                    )
                    assert [p.pair for p in top] == expected[:k], (
                        f"engine={engine} prune={prune} k={k}"
                    )

    def test_matches_brute_force(self):
        g1, g2 = random_snapshot_pair(num_nodes=25, num_edges=60, seed=43)
        from repro.graph.apsp import all_pairs_distances

        nodes = list(g1.nodes())
        dm1 = all_pairs_distances(g1)
        dm2 = all_pairs_distances(g2, nodes=nodes)
        brute = []
        for i, u in enumerate(nodes):
            for v in nodes[i + 1 :]:
                d1 = dm1.distance(u, v)
                if math.isinf(d1):
                    continue
                delta = d1 - dm2.distance(u, v)
                if delta > 0:
                    cu, cv = canonical_pair(u, v)
                    brute.append(ConvergingPair(cu, cv, d1, dm2.distance(u, v)))
        brute.sort(key=ConvergingPair.sort_key)
        k = min(10, len(brute))
        top = top_k_converging_pairs(g1, g2, k=k)
        assert [p.pair for p in top] == [p.pair for p in brute[:k]]

    def test_prefix_property(self):
        g1, g2 = random_snapshot_pair(seed=44)
        top10 = top_k_converging_pairs(g1, g2, k=10)
        top5 = top_k_converging_pairs(g1, g2, k=5)
        assert [p.pair for p in top5] == [p.pair for p in top10[:5]]
