"""Unit tests for repro.ml.features."""

import numpy as np
import pytest

from repro.core.budget import SPBudget
from repro.ml.features import (
    GRAPH_FEATURE_NAMES,
    NODE_FEATURE_NAMES,
    append_graph_features,
    extract_node_features,
    graph_level_features,
)

from conftest import path_graph


@pytest.fixture
def chord_pair():
    g1 = path_graph(8)
    g2 = g1.copy()
    g2.add_edge(0, 7)
    return g1, g2


class TestNodeFeatures:
    def test_shape_and_row_order(self, chord_pair):
        g1, g2 = chord_pair
        feats = extract_node_features(g1, g2, 2, np.random.default_rng(0))
        assert feats.matrix.shape == (8, len(NODE_FEATURE_NAMES))
        assert feats.nodes == list(g1.nodes())

    def test_degree_columns(self, chord_pair):
        g1, g2 = chord_pair
        feats = extract_node_features(g1, g2, 2, np.random.default_rng(0))
        idx = {u: i for i, u in enumerate(feats.nodes)}
        row0 = feats.matrix[idx[0]]
        assert row0[0] == 1  # deg_t1
        assert row0[1] == 2  # deg_t2 (chord added)
        assert row0[2] == 1  # diff
        assert row0[3] == 1.0  # rel = 1/1
        row3 = feats.matrix[idx[3]]
        assert row3[2] == 0

    def test_budget_charged_6l(self, chord_pair):
        g1, g2 = chord_pair
        budget = SPBudget(100)
        extract_node_features(g1, g2, 3, np.random.default_rng(0), budget=budget)
        assert budget.spent == 18
        assert budget.by_phase() == {"generation": 18}

    def test_landmark_rows_cached_for_both_snapshots(self, chord_pair):
        g1, g2 = chord_pair
        feats = extract_node_features(g1, g2, 2, np.random.default_rng(0))
        assert set(feats.d1_rows) == set(feats.d2_rows)
        assert set(feats.landmark_nodes) == set(feats.d1_rows)
        assert 1 <= len(feats.landmark_nodes) <= 6

    def test_landmark_delta_columns_nonnegative(self, chord_pair):
        g1, g2 = chord_pair
        feats = extract_node_features(g1, g2, 3, np.random.default_rng(1))
        assert (feats.matrix[:, 4:] >= 0).all()

    def test_no_change_gives_zero_delta_columns(self, path5):
        feats = extract_node_features(path5, path5, 2, np.random.default_rng(0))
        assert (feats.matrix[:, 4:] == 0).all()

    def test_invalid_landmark_count(self, chord_pair):
        with pytest.raises(ValueError):
            extract_node_features(*chord_pair, 0, np.random.default_rng(0))

    def test_deterministic_given_rng_seed(self, chord_pair):
        g1, g2 = chord_pair
        a = extract_node_features(g1, g2, 2, np.random.default_rng(7))
        b = extract_node_features(g1, g2, 2, np.random.default_rng(7))
        assert (a.matrix == b.matrix).all()
        assert a.landmark_nodes == b.landmark_nodes


class TestGraphFeatures:
    def test_values(self, chord_pair):
        g1, g2 = chord_pair
        gf = graph_level_features(g1, g2)
        assert gf.shape == (len(GRAPH_FEATURE_NAMES),)
        assert gf[0] == pytest.approx(g1.density())
        assert gf[3] == g2.max_degree()

    def test_append_broadcasts(self, chord_pair):
        g1, g2 = chord_pair
        matrix = np.zeros((5, 3))
        out = append_graph_features(matrix, graph_level_features(g1, g2))
        assert out.shape == (5, 7)
        assert (out[0, 3:] == out[4, 3:]).all()

    def test_append_requires_2d(self):
        with pytest.raises(ValueError):
            append_graph_features(np.zeros(3), np.zeros(4))
