"""Shared fixtures and helpers for the test suite.

Conventions:

* ``networkx`` is used strictly as an *oracle* — every nontrivial graph
  algorithm in :mod:`repro.graph` is cross-checked against it on random
  instances, but the library itself never imports it.
* Random graphs are built through :func:`random_temporal_graph` so that
  snapshot pairs are insertion-only by construction.
"""

from __future__ import annotations

from typing import Tuple

import networkx as nx
import numpy as np
import pytest

from repro.graph.dynamic import TemporalGraph
from repro.graph.graph import Graph


# ----------------------------------------------------------------------
# Graph construction helpers (importable via the fixtures below)
# ----------------------------------------------------------------------
def path_graph(n: int) -> Graph:
    """0 - 1 - 2 - ... - (n-1)."""
    return Graph((i, i + 1) for i in range(n - 1))


def cycle_graph(n: int) -> Graph:
    """A simple n-cycle."""
    g = path_graph(n)
    g.add_edge(n - 1, 0)
    return g


def star_graph(n: int) -> Graph:
    """Hub 0 with n leaves 1..n."""
    return Graph((0, i) for i in range(1, n + 1))


def complete_graph(n: int) -> Graph:
    """K_n on nodes 0..n-1."""
    return Graph((i, j) for i in range(n) for j in range(i + 1, n))


def grid_graph(rows: int, cols: int) -> Graph:
    """rows x cols lattice; node (r, c) is r * cols + c."""
    g = Graph()
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            if c + 1 < cols:
                g.add_edge(u, u + 1)
            if r + 1 < rows:
                g.add_edge(u, u + cols)
    return g


def random_temporal_graph(
    num_nodes: int, num_edges: int, seed: int
) -> TemporalGraph:
    """A uniformly random simple temporal graph (insertion-only)."""
    rng = np.random.default_rng(seed)
    seen = set()
    tg = TemporalGraph()
    t = 0
    attempts = 0
    while t < num_edges and attempts < 100 * num_edges:
        attempts += 1
        u = int(rng.integers(num_nodes))
        v = int(rng.integers(num_nodes))
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in seen:
            continue
        seen.add(key)
        tg.add_edge(t, *key)
        t += 1
    return tg


def random_snapshot_pair(
    num_nodes: int = 60, num_edges: int = 150, seed: int = 0,
    fraction: float = 0.7,
) -> Tuple[Graph, Graph]:
    """An insertion-only random snapshot pair ``(G_t1, G_t2)``."""
    tg = random_temporal_graph(num_nodes, num_edges, seed)
    return tg.snapshot_pair(fraction, 1.0)


def to_networkx(g: Graph) -> nx.Graph:
    """Convert to a networkx graph for oracle comparisons."""
    nxg = nx.Graph()
    nxg.add_nodes_from(g.nodes())
    nxg.add_weighted_edges_from(g.weighted_edges())
    return nxg


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------
@pytest.fixture
def path5() -> Graph:
    """A 5-node path graph."""
    return path_graph(5)


@pytest.fixture
def triangle() -> Graph:
    """K_3."""
    return complete_graph(3)


@pytest.fixture
def two_components() -> Graph:
    """Two disjoint paths: 0-1-2 and 10-11."""
    g = Graph([(0, 1), (1, 2), (10, 11)])
    return g


@pytest.fixture
def shortcut_pair() -> Tuple[Graph, Graph]:
    """A canonical converging-pair fixture.

    ``G_t1`` is the path 0-1-2-3-4-5; ``G_t2`` adds the chord (0, 5).
    The pair (0, 5) converges by Δ = 5 − 1 = 4, (0, 4) and (1, 5) by 2,
    and (1, 4) by 0 ... actually d(1,4): t1 = 3, t2 = min(3, 1+1+1) = 3.
    """
    g1 = path_graph(6)
    g2 = g1.copy()
    g2.add_edge(0, 5)
    return g1, g2
