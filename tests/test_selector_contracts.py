"""Contract tests: every registered selector obeys the selection protocol.

Property-based over random insertion-only snapshot pairs: for any graph
and budget, a selector must (1) stay within the SSSP budget, (2) return
at most m candidates, (3) return only ``G_t1`` nodes without duplicates,
(4) only hand back cached rows for nodes it nominates or used as
landmarks, and (5) be deterministic given the RNG seed.

The classifier selectors need a trained model, so they are exercised
with a model fitted once on a fixture stream; the oracle is exercised
with the truth pair graph.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.budget import SPBudget
from repro.graph.graph import Graph
from repro.selection import SINGLE_FEATURE_SELECTORS, get_selector

from conftest import random_temporal_graph

#: Selectors constructible without external state, incl. the extension.
PLAIN_SELECTORS = [n for n in SINGLE_FEATURE_SELECTORS if n != "IncBet"] + [
    "CoordDiff"
]


@st.composite
def snapshot_pair_strategy(draw):
    seed = draw(st.integers(min_value=0, max_value=50))
    num_nodes = draw(st.integers(min_value=8, max_value=30))
    num_edges = draw(st.integers(min_value=8, max_value=60))
    fraction = draw(st.sampled_from([0.5, 0.7, 0.9]))
    tg = random_temporal_graph(num_nodes, num_edges, seed)
    return tg.snapshot_pair(fraction, 1.0)


def _build(name):
    if name == "IncBet":
        return get_selector(name, pivots=8)
    return get_selector(name)


@pytest.mark.parametrize("name", PLAIN_SELECTORS)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(pair=snapshot_pair_strategy(), m=st.integers(min_value=2, max_value=12))
def test_selector_contract(name, pair, m):
    g1, g2 = pair
    selector = _build(name)
    budget = SPBudget(2 * m)
    result = selector.select(g1, g2, m, budget, rng=np.random.default_rng(7))

    # (1) never exceeds the budget minus the top-k phase's future needs
    #     in total terms — at worst all 2m is spent after the algorithm.
    uncached = sum(
        (1 if c not in result.d1_rows else 0)
        + (1 if c not in result.d2_rows else 0)
        for c in result.candidates
    )
    assert budget.spent + uncached <= 2 * m

    # (2) at most m candidates, (3) all distinct G_t1 nodes.
    assert len(result.candidates) <= m
    assert len(set(result.candidates)) == len(result.candidates)
    assert all(u in g1 for u in result.candidates)

    # (4) cached rows are genuine distance rows (source at distance 0).
    for source, row in list(result.d1_rows.items()):
        assert row[source] == 0
    for source, row in list(result.d2_rows.items()):
        assert row[source] == 0


@pytest.mark.parametrize("name", PLAIN_SELECTORS)
def test_selector_deterministic_given_seed(name):
    tg = random_temporal_graph(25, 60, seed=3)
    g1, g2 = tg.snapshot_pair(0.7, 1.0)
    selector = _build(name)
    runs = []
    for _ in range(2):
        result = selector.select(
            g1, g2, 8, SPBudget(16), rng=np.random.default_rng(11)
        )
        runs.append(result.candidates)
    assert runs[0] == runs[1]


def test_incbet_contract_once():
    """IncBet is too slow for the hypothesis loop; one contract check."""
    tg = random_temporal_graph(25, 60, seed=5)
    g1, g2 = tg.snapshot_pair(0.7, 1.0)
    selector = get_selector("IncBet", pivots=8)
    budget = SPBudget(16)
    result = selector.select(g1, g2, 8, budget, rng=np.random.default_rng(0))
    assert budget.spent == 0
    assert len(result.candidates) <= 8
    assert all(u in g1 for u in result.candidates)
