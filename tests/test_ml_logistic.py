"""Unit tests for the from-scratch logistic regression."""

import numpy as np
import pytest

from repro.ml.logistic import LogisticRegression, _sigmoid


def linearly_separable(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 2))
    y = (X[:, 0] + 2 * X[:, 1] > 0).astype(float)
    return X, y


class TestSigmoid:
    def test_midpoint(self):
        assert _sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_extremes_are_stable(self):
        z = np.array([-1000.0, 1000.0])
        out = _sigmoid(z)
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(1.0, abs=1e-12)

    def test_symmetry(self):
        z = np.linspace(-5, 5, 11)
        assert _sigmoid(z) + _sigmoid(-z) == pytest.approx(np.ones(11))


class TestFit:
    def test_separable_data_high_accuracy(self):
        X, y = linearly_separable()
        model = LogisticRegression(l2=0.1).fit(X, y)
        acc = (model.predict(X) == y).mean()
        assert acc > 0.97

    def test_probabilities_in_unit_interval(self):
        X, y = linearly_separable(seed=1)
        model = LogisticRegression().fit(X, y)
        p = model.predict_proba(X)
        assert (p >= 0).all() and (p <= 1).all()

    def test_probability_ranking_correlates_with_margin(self):
        from scipy.stats import spearmanr

        X, y = linearly_separable(seed=2)
        model = LogisticRegression().fit(X, y)
        margin = X[:, 0] + 2 * X[:, 1]
        p = model.predict_proba(X)
        # Rank correlation: the sigmoid saturates, so Pearson would
        # understate how faithfully probabilities order the margin.
        assert spearmanr(margin, p).statistic > 0.97

    def test_regularisation_shrinks_weights(self):
        X, y = linearly_separable(seed=3)
        w_small = LogisticRegression(l2=0.01).fit(X, y).coef_
        w_large = LogisticRegression(l2=100.0).fit(X, y).coef_
        assert np.linalg.norm(w_large) < np.linalg.norm(w_small)

    def test_intercept_learned(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(300, 1))
        y = (X[:, 0] > 1.0).astype(float)  # shifted boundary
        model = LogisticRegression(l2=0.01, class_weight=None).fit(X, y)
        # Decision boundary approx at x = 1 -> intercept/coef ≈ -1.
        boundary = -model.intercept_ / model.coef_[0]
        assert boundary == pytest.approx(1.0, abs=0.3)

    def test_balanced_weights_help_rare_class(self):
        rng = np.random.default_rng(5)
        X = np.vstack([rng.normal(-1, 1, (500, 1)), rng.normal(1.5, 1, (20, 1))])
        y = np.concatenate([np.zeros(500), np.ones(20)])
        balanced = LogisticRegression(class_weight="balanced").fit(X, y)
        plain = LogisticRegression(class_weight=None).fit(X, y)
        recall_b = balanced.predict(X[y == 1]).mean()
        recall_p = plain.predict(X[y == 1]).mean()
        assert recall_b >= recall_p

    def test_constant_features_ok(self):
        X = np.ones((50, 2))
        y = np.concatenate([np.zeros(25), np.ones(25)])
        model = LogisticRegression().fit(X, y)
        p = model.predict_proba(X)
        assert p == pytest.approx(np.full(50, 0.5), abs=0.05)


class TestValidation:
    def test_requires_2d_x(self):
        with pytest.raises(ValueError, match="2-D"):
            LogisticRegression().fit(np.zeros(5), np.zeros(5))

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="labels"):
            LogisticRegression().fit(np.zeros((5, 2)), np.zeros(4))

    def test_nonbinary_labels(self):
        with pytest.raises(ValueError, match="0/1"):
            LogisticRegression().fit(np.zeros((3, 1)), np.array([0, 1, 2]))

    def test_bad_l2(self):
        with pytest.raises(ValueError):
            LogisticRegression(l2=-1.0)

    def test_bad_class_weight(self):
        with pytest.raises(ValueError):
            LogisticRegression(class_weight="boosted")

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            LogisticRegression().predict_proba(np.zeros((1, 2)))

    def test_decision_function_matches_manual_logit(self):
        X, y = linearly_separable(seed=6)
        model = LogisticRegression().fit(X, y)
        manual = X @ model.coef_ + model.intercept_
        assert model.decision_function(X) == pytest.approx(manual)
