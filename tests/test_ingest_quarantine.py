"""Unit tests for the quarantine store and policy replay."""

import json

import pytest

from repro.datasets.io import read_edge_stream, write_edge_stream
from repro.ingest import (
    QuarantineError,
    QuarantineRecord,
    QuarantineStore,
    Sanitizer,
    replay_quarantine,
)


def _record(i=0):
    return QuarantineRecord(
        rule="deletion", reason=f"r{i}", seq=i, lineno=i + 1,
        raw=f"line{i}", time=float(i), u=i, v=i + 1, weight=0.0,
    )


class TestStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = QuarantineStore(tmp_path / "q")
        records = [_record(0), _record(1)]
        store.save(records, source="s.tsv", source_sha256="ab" * 32,
                   policies={"deletion": "quarantine"}, buffer_size=8)
        run = store.load()
        assert run.source == "s.tsv"
        assert run.buffer_size == 8
        assert run.policies == {"deletion": "quarantine"}
        assert run.records == records

    def test_exists(self, tmp_path):
        store = QuarantineStore(tmp_path / "q")
        assert not store.exists()
        store.save([], source="s", source_sha256="x",
                   policies={}, buffer_size=0)
        assert store.exists()

    def test_missing_run_raises(self, tmp_path):
        with pytest.raises(QuarantineError, match="no quarantine run"):
            QuarantineStore(tmp_path / "empty").load()

    def test_tampered_records_detected(self, tmp_path):
        store = QuarantineStore(tmp_path / "q")
        store.save([_record()], source="s", source_sha256="x",
                   policies={}, buffer_size=0)
        blob = store.records_path.read_bytes()
        store.records_path.write_bytes(blob.replace(b"r0", b"rX"))
        with pytest.raises(QuarantineError, match="checksum"):
            store.load()

    def test_corrupt_manifest_detected(self, tmp_path):
        store = QuarantineStore(tmp_path / "q")
        store.save([], source="s", source_sha256="x",
                   policies={}, buffer_size=0)
        store.manifest_path.write_text("{not json")
        with pytest.raises(QuarantineError, match="unreadable"):
            store.load()

    def test_schema_mismatch_detected(self, tmp_path):
        store = QuarantineStore(tmp_path / "q")
        store.save([], source="s", source_sha256="x",
                   policies={}, buffer_size=0)
        manifest = json.loads(store.manifest_path.read_text())
        manifest["schema"] = 999
        store.manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(QuarantineError, match="schema"):
            store.load()

    def test_no_leftover_temp_files(self, tmp_path):
        store = QuarantineStore(tmp_path / "q")
        store.save([_record()], source="s", source_sha256="x",
                   policies={}, buffer_size=0)
        names = {p.name for p in store.directory.iterdir()}
        assert names == {"manifest.json", "records.jsonl"}

    def test_exotic_node_ids_serialised_as_repr(self, tmp_path):
        store = QuarantineStore(tmp_path / "q")
        rec = QuarantineRecord(
            rule="self-loop", reason="r", seq=0, lineno=1, raw="",
            u=(1, 2), v=(1, 2), weight=1.0,
        )
        store.save([rec], source="s", source_sha256="x",
                   policies={}, buffer_size=0)
        loaded = store.load().records[0]
        assert loaded.u == "(1, 2)"


DIRTY = (
    "0\t1\t2\t5.0\n"
    "1\t3\t3\t1.0\n"
    "2\t6\t7\t0.0\n"
    "3\t1\t2\t9.0\n"
    "4\t8\t9\t1.0\n"
)


def _sanitized_read(path, policies, qdir=None):
    store = QuarantineStore(qdir) if qdir is not None else None
    sanitizer = Sanitizer(policies, quarantine=store)
    temporal = read_edge_stream(path, sanitizer=sanitizer)
    return temporal, sanitizer


class TestReplay:
    def test_replay_equals_direct_ingestion(self, tmp_path):
        """The acceptance contract: quarantine a rule, flip it to
        repair, replay — the result is byte-identical to having
        ingested with repair in the first place."""
        src = tmp_path / "dirty.tsv"
        src.write_text(DIRTY)

        quarantined, _ = _sanitized_read(
            src, {"deletion": "quarantine"}, qdir=tmp_path / "q"
        )
        replayed, replay_sanitizer = replay_quarantine(
            tmp_path / "q", {"deletion": "repair"}
        )
        direct, direct_sanitizer = _sanitized_read(
            src, {"deletion": "repair"}
        )

        out_replayed = tmp_path / "replayed.tsv"
        out_direct = tmp_path / "direct.tsv"
        write_edge_stream(replayed, out_replayed)
        write_edge_stream(direct, out_direct)
        assert out_replayed.read_bytes() == out_direct.read_bytes()

        pr = replay_sanitizer.report.to_payload()
        pd = direct_sanitizer.report.to_payload()
        assert pr == pd

    def test_replay_preserves_recorded_policies(self, tmp_path):
        # A rule configured in the original run but absent from the
        # overrides keeps its recorded policy on replay.
        src = tmp_path / "dirty.tsv"
        src.write_text(DIRTY)
        _sanitized_read(
            src,
            {"deletion": "quarantine", "self-loop": "quarantine"},
            qdir=tmp_path / "q",
        )
        _, sanitizer = replay_quarantine(tmp_path / "q",
                                         {"deletion": "repair"})
        assert sanitizer.policies["deletion"] == "repair"
        assert sanitizer.policies["self-loop"] == "quarantine"
        assert sanitizer.report.quarantined == {"self-loop": 1}

    def test_replay_refuses_changed_source(self, tmp_path):
        src = tmp_path / "dirty.tsv"
        src.write_text(DIRTY)
        _sanitized_read(src, {"deletion": "quarantine"},
                        qdir=tmp_path / "q")
        src.write_text(DIRTY + "5\t10\t11\t1.0\n")
        with pytest.raises(QuarantineError, match="changed since"):
            replay_quarantine(tmp_path / "q")

    def test_replay_refuses_missing_source(self, tmp_path):
        src = tmp_path / "dirty.tsv"
        src.write_text(DIRTY)
        _sanitized_read(src, {"deletion": "quarantine"},
                        qdir=tmp_path / "q")
        src.unlink()
        with pytest.raises(QuarantineError, match="no longer exists"):
            replay_quarantine(tmp_path / "q")

    def test_append_during_replay_is_detected(self, tmp_path, monkeypatch):
        """A writer racing the replay — appending after the pre-read SHA
        check passed — must not slip events into the result: the source
        is re-verified once the stream has been read."""
        src = tmp_path / "dirty.tsv"
        src.write_text(DIRTY)
        _sanitized_read(src, {"deletion": "quarantine"},
                        qdir=tmp_path / "q")

        import repro.datasets.io as io_mod

        real_read = io_mod.read_edge_stream

        def racing_read(path, **kwargs):
            # The concurrent writer lands between verification and read.
            with open(path, "a") as fh:
                fh.write("9\t20\t21\t1.0\n")
            return real_read(path, **kwargs)

        monkeypatch.setattr(io_mod, "read_edge_stream", racing_read)
        with pytest.raises(QuarantineError, match="during replay"):
            replay_quarantine(tmp_path / "q")

    def test_replay_is_idempotent(self, tmp_path):
        """Two replays of one store apply each recorded event exactly
        once each — byte-identical outputs, nothing doubled or skipped."""
        src = tmp_path / "dirty.tsv"
        src.write_text(DIRTY)
        _sanitized_read(src, {"deletion": "quarantine"},
                        qdir=tmp_path / "q")
        first, _ = replay_quarantine(tmp_path / "q", {"deletion": "repair"})
        second, _ = replay_quarantine(tmp_path / "q", {"deletion": "repair"})
        out_a, out_b = tmp_path / "a.tsv", tmp_path / "b.tsv"
        write_edge_stream(first, out_a)
        write_edge_stream(second, out_b)
        assert out_a.read_bytes() == out_b.read_bytes()

    def test_interleaved_saves_resolve_to_the_last_writer(self, tmp_path):
        """Two writers saving into one store: the loser is replaced
        atomically, so a load sees one complete run, never a blend."""
        store_a = QuarantineStore(tmp_path / "q")
        store_b = QuarantineStore(tmp_path / "q")
        store_a.save([_record(0)], source="s", source_sha256="x",
                     policies={}, buffer_size=0)
        store_b.save([_record(1), _record(2)], source="s",
                     source_sha256="x", policies={}, buffer_size=0)
        run = store_a.load()
        assert [r.reason for r in run.records] == ["r1", "r2"]

    def test_spliced_manifest_and_records_refuse_to_load(self, tmp_path):
        """The torn interleaving — one run's manifest next to another
        run's records — fails the pinned records checksum instead of
        replaying a mixture."""
        store_a = QuarantineStore(tmp_path / "a")
        store_b = QuarantineStore(tmp_path / "b")
        store_a.save([_record(0)], source="s", source_sha256="x",
                     policies={}, buffer_size=0)
        store_b.save([_record(1), _record(2)], source="s",
                     source_sha256="x", policies={}, buffer_size=0)
        store_a.records_path.write_bytes(store_b.records_path.read_bytes())
        with pytest.raises(QuarantineError, match="checksum"):
            store_a.load()

    def test_replay_can_quarantine_into_new_store(self, tmp_path):
        src = tmp_path / "dirty.tsv"
        src.write_text(DIRTY)
        _sanitized_read(src, {"deletion": "quarantine"},
                        qdir=tmp_path / "q1")
        _, sanitizer = replay_quarantine(
            tmp_path / "q1",
            quarantine=QuarantineStore(tmp_path / "q2"),
        )
        # Same policy as the original run: the deletion is diverted
        # again, now into the second store.
        run2 = QuarantineStore(tmp_path / "q2").load()
        assert [r.rule for r in run2.records] == ["deletion"]
        assert sanitizer.report.quarantined == {"deletion": 1}
