"""Bit-parallel multi-source BFS: byte-identity with the per-source engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import (
    cycle_graph,
    grid_graph,
    path_graph,
    random_snapshot_pair,
    star_graph,
    to_networkx,
)
from repro.graph.csr import CSRGraph, UNREACHED, bfs_levels
from repro.graph.graph import Graph
from repro.graph.msbfs import (
    DEFAULT_BATCH,
    WORD_BITS,
    iter_msbfs_rows,
    msbfs_levels,
)
from repro.graph.traversal import bfs_distances, bfs_distances_many


def _reference(csr: CSRGraph, sources) -> np.ndarray:
    if not len(sources):
        return np.empty((0, csr.num_nodes), dtype=np.int32)
    return np.stack([bfs_levels(csr, int(s)) for s in sources])


def _fixture_graphs():
    yield path_graph(12)
    yield cycle_graph(9)
    yield star_graph(8)
    yield grid_graph(4, 5)
    disconnected = Graph()
    for i in range(10):
        disconnected.add_node(i)
    for a, b in ((0, 1), (1, 2), (4, 5), (7, 8)):
        disconnected.add_edge(a, b)
    yield disconnected
    g1, g2 = random_snapshot_pair(80, 200, seed=3)
    yield g1
    yield g2


class TestBitIdentity:
    @pytest.mark.parametrize("batch_size", [1, 3, WORD_BITS, 200])
    def test_matches_per_source_bfs_on_fixtures(self, batch_size):
        for g in _fixture_graphs():
            csr = CSRGraph.from_graph(g)
            sources = range(csr.num_nodes)
            got = msbfs_levels(csr, sources, batch_size=batch_size)
            ref = _reference(csr, list(sources))
            assert got.dtype == ref.dtype == np.int32
            assert got.tobytes() == ref.tobytes()

    def test_arbitrary_and_duplicate_source_orders(self):
        g1, _ = random_snapshot_pair(60, 150, seed=11)
        csr = CSRGraph.from_graph(g1)
        rng = np.random.default_rng(5)
        sources = rng.integers(0, csr.num_nodes, size=90)  # dups guaranteed
        got = msbfs_levels(csr, sources)
        assert got.tobytes() == _reference(csr, sources).tobytes()

    def test_matches_networkx_oracle(self):
        g1, _ = random_snapshot_pair(50, 120, seed=7)
        csr = CSRGraph.from_graph(g1)
        nxg = to_networkx(g1)
        import networkx as nx

        levels = msbfs_levels(csr, range(csr.num_nodes))
        for i, u in enumerate(csr.nodes):
            oracle = nx.single_source_shortest_path_length(nxg, u)
            row = {
                csr.nodes[j]: int(levels[i, j])
                for j in np.flatnonzero(levels[i] != UNREACHED)
            }
            assert row == dict(oracle)


class TestBatchWidthProperty:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        num_nodes=st.integers(2, 40),
        num_edges=st.integers(1, 120),
    )
    def test_batch_width_never_changes_output_bytes(
        self, seed, num_nodes, num_edges
    ):
        g1, _ = random_snapshot_pair(num_nodes, num_edges, seed=seed)
        csr = CSRGraph.from_graph(g1)
        sources = range(csr.num_nodes)
        reference = msbfs_levels(csr, sources, batch_size=WORD_BITS)
        for batch_size in (1, 3, WORD_BITS):
            assert (
                msbfs_levels(csr, sources, batch_size=batch_size).tobytes()
                == reference.tobytes()
            )


class TestRowIterator:
    def test_rows_in_source_order(self):
        g1, _ = random_snapshot_pair(40, 100, seed=2)
        csr = CSRGraph.from_graph(g1)
        sources = [5, 0, 5, 17]
        rows = list(iter_msbfs_rows(csr, sources, batch_size=3))
        assert [s for s, _ in rows] == sources
        for s, row in rows:
            assert row.tobytes() == bfs_levels(csr, s).tobytes()

    def test_rows_are_independently_mutable(self):
        """The documented _row_stream contract: consumers may mutate rows."""
        csr = CSRGraph.from_graph(path_graph(10))
        stream = iter_msbfs_rows(csr, range(10), batch_size=4)
        for s, row in stream:
            row[: s + 1] = UNREACHED  # the fastpairs masking pattern
            # Mutation stays confined to this row: the next yielded row
            # still matches the per-source engine bit for bit.
            expect = bfs_levels(csr, s)
            expect[: s + 1] = UNREACHED
            assert row.tobytes() == expect.tobytes()


class TestValidation:
    def test_out_of_range_source_rejected(self):
        csr = CSRGraph.from_graph(path_graph(5))
        with pytest.raises(IndexError):
            msbfs_levels(csr, [0, 5])
        with pytest.raises(IndexError):
            msbfs_levels(csr, [-1])

    def test_bad_batch_size_rejected(self):
        csr = CSRGraph.from_graph(path_graph(5))
        with pytest.raises(ValueError):
            msbfs_levels(csr, [0], batch_size=0)
        with pytest.raises(ValueError):
            list(iter_msbfs_rows(csr, [0], batch_size=-1))

    def test_empty_sources(self):
        csr = CSRGraph.from_graph(path_graph(5))
        assert msbfs_levels(csr, []).shape == (0, 5)
        assert list(iter_msbfs_rows(csr, [])) == []


class TestDistancesMany:
    def test_matches_single_source_dicts(self):
        g1, _ = random_snapshot_pair(50, 120, seed=9)
        sources = list(g1.nodes())[::5]
        assert bfs_distances_many(g1, sources) == [
            bfs_distances(g1, s) for s in sources
        ]

    def test_missing_source_rejected(self):
        g = path_graph(4)
        with pytest.raises(KeyError):
            bfs_distances_many(g, ["nope"])

    def test_empty_sources(self):
        assert bfs_distances_many(path_graph(4), []) == []


def test_default_batch_is_one_word():
    assert DEFAULT_BATCH == WORD_BITS == 64
