"""Documentation honesty checks.

``docs/extending.md`` promises its code blocks are executed by the test
suite; this module keeps that promise by extracting every fenced
``python`` block and running them in one shared namespace, in order.
The remaining docs are spot-checked for the cross-references they make.
"""

import re
from pathlib import Path

import pytest

DOCS_DIR = Path(__file__).resolve().parent.parent / "docs"

FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def python_blocks(name: str):
    text = (DOCS_DIR / name).read_text(encoding="utf-8")
    return FENCE.findall(text)


class TestExtendingGuide:
    def test_code_blocks_execute(self):
        blocks = python_blocks("extending.md")
        assert len(blocks) >= 4
        namespace: dict = {}
        for block in blocks:
            exec(compile(block, "docs/extending.md", "exec"), namespace)
        # The guide's selector ended up registered and usable.
        from repro.selection import available_selectors

        assert "TriDiff" in available_selectors()


class TestBudgetGuide:
    def test_inline_snippet_matches_reality(self):
        """The budget-model doc shows concrete ledger outputs; re-run them."""
        from repro.core.budget import SPBudget

        budget = SPBudget(limit=2 * 40)
        budget.charge("generation", "g1", 10)
        budget.charge("topk", "g2", 30)
        assert budget.by_phase() == {"generation": 10, "topk": 30}
        assert budget.by_snapshot() == {"g1": 10, "g2": 30}
        assert budget.remaining == 40


class TestCrossReferences:
    @pytest.mark.parametrize(
        "doc,needles",
        [
            ("architecture.md", ["SPBudget.charge", "engine=\"auto\""]),
            ("budget-model.md", ["BudgetExceededError", "2m"]),
            ("datasets.md", ["read_edge_list", "anchor_rate"]),
            ("extending.md", ["register_selector", "SelectionResult"]),
        ],
    )
    def test_docs_mention_the_apis_they_describe(self, doc, needles):
        text = (DOCS_DIR / doc).read_text(encoding="utf-8")
        for needle in needles:
            assert needle in text, f"{doc} no longer mentions {needle}"

    def test_referenced_modules_exist(self):
        """Every `repro.x.y` dotted path mentioned in docs must import."""
        import importlib

        pattern = re.compile(r"`repro\.([a-z_.]+)`")
        for doc in DOCS_DIR.glob("*.md"):
            for match in pattern.finditer(doc.read_text(encoding="utf-8")):
                dotted = "repro." + match.group(1).rstrip(".")
                try:
                    importlib.import_module(dotted)
                except ImportError:
                    # May be an attribute reference like repro.graph.stats
                    parent, _, attr = dotted.rpartition(".")
                    module = importlib.import_module(parent)
                    assert hasattr(module, attr), f"{doc.name}: {dotted}"


class TestCliDoc:
    def test_every_subcommand_documented(self):
        """docs/cli.md must document exactly the parser's subcommands."""
        from repro.cli import build_parser

        parser = build_parser()
        subparsers = next(
            a for a in parser._actions
            if isinstance(a, type(parser._subparsers._group_actions[0]))
        )
        registered = set(subparsers.choices)
        text = (DOCS_DIR / "cli.md").read_text(encoding="utf-8")
        for command in registered:
            assert f"### `{command}`" in text, (
                f"subcommand {command!r} is undocumented in docs/cli.md"
            )

    def test_documented_commands_exist(self):
        import re as _re

        from repro.cli import build_parser

        parser = build_parser()
        subparsers = next(
            a for a in parser._actions
            if isinstance(a, type(parser._subparsers._group_actions[0]))
        )
        registered = set(subparsers.choices)
        text = (DOCS_DIR / "cli.md").read_text(encoding="utf-8")
        documented = set(_re.findall(r"^### `(\w+)`", text, _re.MULTILINE))
        assert documented <= registered
