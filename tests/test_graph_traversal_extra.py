"""Additional traversal coverage: weighted trees, path reconstruction
on weighted graphs, and cross-engine consistency on larger instances."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.graph import Graph
from repro.graph.traversal import (
    bfs_tree,
    dijkstra_distances,
    dijkstra_tree,
    reconstruct_path,
    shortest_path_length,
)

from conftest import random_snapshot_pair, to_networkx


def random_weighted_graph(num_nodes: int, num_edges: int, seed: int) -> Graph:
    rng = np.random.default_rng(seed)
    g = Graph()
    # Spanning chain keeps it connected, then random weighted extras.
    for i in range(num_nodes - 1):
        g.add_edge(i, i + 1, float(rng.uniform(0.5, 2.0)))
    added = 0
    while added < num_edges:
        u, v = int(rng.integers(num_nodes)), int(rng.integers(num_nodes))
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v, float(rng.uniform(0.1, 3.0)))
            added += 1
    return g


class TestWeightedTrees:
    @pytest.mark.parametrize("seed", [201, 202])
    def test_dijkstra_tree_paths_have_correct_length(self, seed):
        g = random_weighted_graph(30, 50, seed)
        dist, parent = dijkstra_tree(g, 0)
        for target, d in dist.items():
            path = reconstruct_path(parent, 0, target)
            assert path is not None
            assert path[0] == 0 and path[-1] == target
            length = sum(
                g.weight(a, b) for a, b in zip(path, path[1:])
            )
            assert length == pytest.approx(d)

    @pytest.mark.parametrize("seed", [203])
    def test_dijkstra_tree_distances_match_plain_dijkstra(self, seed):
        g = random_weighted_graph(25, 40, seed)
        dist_tree, _ = dijkstra_tree(g, 0)
        dist_plain = dijkstra_distances(g, 0)
        assert set(dist_tree) == set(dist_plain)
        for node in dist_plain:
            assert dist_tree[node] == pytest.approx(dist_plain[node])

    def test_bfs_tree_paths_are_shortest(self):
        g, _ = random_snapshot_pair(num_nodes=40, num_edges=90, seed=204)
        dist, parent = bfs_tree(g, next(iter(g.nodes())))
        nxg = to_networkx(g)
        source = next(iter(g.nodes()))
        expected = nx.single_source_shortest_path_length(nxg, source)
        for node, d in expected.items():
            assert dist[node] == d


class TestPointToPoint:
    @pytest.mark.parametrize("seed", [205, 206])
    def test_weighted_point_to_point_matches_networkx(self, seed):
        g = random_weighted_graph(25, 40, seed)
        nxg = to_networkx(g)
        nodes = list(g.nodes())
        for target in nodes[1:8]:
            expected = nx.shortest_path_length(
                nxg, nodes[0], target, weight="weight"
            )
            assert shortest_path_length(g, nodes[0], target) == pytest.approx(
                expected
            )

    def test_reconstruct_path_wrong_root_is_garbage_in(self):
        # reconstruct_path trusts its parent map; from the wrong source
        # the walk terminates at the *actual* root, which is detectable.
        g = Graph([(0, 1), (1, 2)])
        _, parent = bfs_tree(g, 0)
        path = reconstruct_path(parent, 0, 2)
        assert path == [0, 1, 2]
