"""Chaos tests for the parallel execution layer (``pytest -m faults``).

A worker-chunk failure — injected deterministically through
:class:`FaultInjector`, or a real worker crash — must degrade to serial
recomputation of just that chunk, produce output equal to a clean serial
run, and report the failure (``failed_chunks`` + ``parallel.degraded``
events).  The retry-backoff regression tests pin event payloads exactly:
every delay comes from the seeded policy, never the wall clock, and
checkpoint keys stay pure functions of the experiment config.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from conftest import random_snapshot_pair
from repro.experiments import ExperimentConfig
from repro.experiments import runner
from repro.experiments.runner import coverage_cells
from repro.graph import apsp
from repro.graph.apsp import all_pairs_distances
from repro.parallel import ParallelExecutor, in_worker
from repro.resilience import (
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    capture_events,
)

pytestmark = pytest.mark.faults


# ----------------------------------------------------------------------
# Module-level task functions (picklable)
# ----------------------------------------------------------------------
def _plus_one(x: int) -> int:
    return x + 1


def _crash_worker_on_seven(x: int) -> int:
    if x == 7 and in_worker():
        os._exit(13)  # simulate a hard worker death (OOM-killer style)
    return x + 1


def _refuse_in_worker(x: int) -> int:
    if in_worker():
        raise RuntimeError("worker refuses")
    _PARENT_CALLS["n"] += 1
    if _PARENT_CALLS["n"] == 1:
        raise RuntimeError("transient parent failure")
    return x * 3


_PARENT_CALLS = {"n": 0}


# ----------------------------------------------------------------------
# Executor degradation
# ----------------------------------------------------------------------
class TestChunkDegradation:
    def test_injected_chunk_failure_degrades_to_serial(self):
        items = list(range(12))
        injector = FaultInjector(FaultPlan(fail_nth=(2,)))
        executor = ParallelExecutor(
            2, chunk_size=3, fault_injector=injector
        )
        with capture_events() as events:
            result = executor.map(_plus_one, items, unit="chaos")
        assert result == [x + 1 for x in items]
        assert executor.failed_chunks == [
            {
                "chunk": 1,
                "items": 3,
                "error": (
                    "InjectedFault: injected fault on call 2 of "
                    "'chaos[chunk=1]'"
                ),
            }
        ]
        degraded = [e for e in events if e[0] == "parallel.degraded"]
        assert degraded == [
            (
                "parallel.degraded",
                {"unit": "chaos", "chunk": 1, "items": 3,
                 "error": "InjectedFault"},
            )
        ]

    def test_real_worker_crash_degrades_to_serial(self):
        items = list(range(12))
        executor = ParallelExecutor(2, chunk_size=3)
        with capture_events() as events:
            result = executor.map(_crash_worker_on_seven, items, unit="crash")
        assert result == [x + 1 for x in items]
        assert executor.failed_chunks  # the crashed chunk is reported
        assert any(e[0] == "parallel.degraded" for e in events)

    def test_seeded_fail_rate_is_reproducible(self):
        items = list(range(20))
        outcomes = []
        for _ in range(2):
            injector = FaultInjector(FaultPlan(fail_rate=0.5, seed=3))
            executor = ParallelExecutor(
                2, chunk_size=4, fault_injector=injector
            )
            result = executor.map(_plus_one, items, unit="rate")
            outcomes.append((result, executor.failed_chunks))
        assert outcomes[0] == outcomes[1]
        assert outcomes[0][0] == [x + 1 for x in items]


class TestAPSPUnderFaults:
    def test_degraded_apsp_matches_serial(self):
        g, _ = random_snapshot_pair(num_nodes=30, num_edges=70, seed=20)
        serial = all_pairs_distances(g)
        universe = list(g.nodes())
        executor = ParallelExecutor(
            2,
            state={
                "graph": g, "universe": universe,
                "index": {u: i for i, u in enumerate(universe)},
                "weighted": False,
            },
            chunk_size=5,
            fault_injector=FaultInjector(FaultPlan(fail_nth=(1, 3))),
        )
        rows = executor.map(
            apsp._apsp_row_task, range(len(universe)), unit="apsp.rows"
        )
        assert len(executor.failed_chunks) == 2
        assert np.array_equal(np.stack(rows), serial.matrix)


# ----------------------------------------------------------------------
# Coverage-cell sweeps under faults
# ----------------------------------------------------------------------
def _cell_config(**overrides) -> ExperimentConfig:
    defaults = dict(
        scale=0.15, budget=8, budget_sweep=(4, 8), delta_offsets=(0,),
        repeats=1, datasets=("facebook",), incbet_pivots=16,
        experiment="chaos",
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


CELL_SPECS = [
    ("facebook", "Degree", 8, 0),
    ("facebook", "SumDiff", 8, 0),
    ("facebook", "Degree", 4, 0),
    ("facebook", "SumDiff", 4, 0),
]


class TestCoverageCellsUnderFaults:
    def test_degraded_sweep_equals_serial_and_reports_chunks(self):
        serial = coverage_cells(CELL_SPECS, _cell_config(workers=1))
        injector = FaultInjector(FaultPlan(fail_nth=(2,)))
        with capture_events() as events:
            values = coverage_cells(
                CELL_SPECS, _cell_config(workers=2),
                chunk_size=2, fault_injector=injector,
            )
        assert values == serial
        degraded = [f for k, f in events if k == "parallel.degraded"]
        assert degraded == [
            {"unit": "cells:chaos", "chunk": 1, "items": 2,
             "error": "InjectedFault"}
        ]


# ----------------------------------------------------------------------
# Seeded-backoff regression: no wall clock in events or checkpoint keys
# ----------------------------------------------------------------------
class TestSeededBackoffRegression:
    def test_degraded_chunk_retry_events_are_pinned(self):
        """The whole degradation transcript is a pure function of seeds."""
        _PARENT_CALLS["n"] = 0
        policy = RetryPolicy(max_retries=2, base_delay=0.5, seed=9)
        expected_delay = round(next(iter(policy.delays())), 6)
        sleeps = []
        executor = ParallelExecutor(
            2, chunk_size=1, retry_policy=policy, sleep=sleeps.append
        )
        with capture_events() as events:
            result = executor.map(_refuse_in_worker, [5], unit="pin")
        assert result == [15]
        assert events == [
            (
                "parallel.degraded",
                {"unit": "pin", "chunk": 0, "items": 1,
                 "error": "RuntimeError"},
            ),
            (
                "retry",
                {"unit": "pin[chunk=0]", "attempt": 1,
                 "delay": expected_delay, "error": "RuntimeError"},
            ),
        ]
        assert sleeps == pytest.approx([expected_delay], abs=1e-6)

    def test_cell_retry_payloads_and_checkpoint_keys(self, tmp_path, monkeypatch):
        """Retries inside a cell leave only seeded values behind: the
        retry event's delay comes from the config's seed, and the
        checkpoint key written afterwards is exactly the config-derived
        cell identity (no timestamps, no worker fields)."""
        from repro.resilience import CheckpointStore

        config = _cell_config(
            workers=1, max_retries=1, retry_backoff_s=0.001, seed=5,
            checkpoint_dir=str(tmp_path / "ckpt"),
        )
        real = runner.candidate_pair_coverage
        calls = {"n": 0}

        def flaky(candidates, truth_pairs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient cell failure")
            return real(candidates, truth_pairs)

        monkeypatch.setattr(runner, "candidate_pair_coverage", flaky)
        context = runner.get_context("facebook", config.scale)
        with capture_events() as events:
            value = runner.coverage_cell(context, "Degree", 8, 0, config)
        assert value == value  # not NaN: the retry recovered the cell

        expected_delay = round(
            next(iter(RetryPolicy(
                max_retries=1, base_delay=0.001, seed=5
            ).delays())),
            6,
        )
        retries = [f for k, f in events if k == "retry"]
        assert len(retries) == 1
        assert retries[0]["delay"] == expected_delay
        assert retries[0]["error"] == "RuntimeError"

        delta = context.delta_for_offset(0)
        expected_key = runner._cell_key(context, "Degree", 8, delta, config)
        store = CheckpointStore(config.checkpoint_dir)
        keys = list(store.keys())
        assert keys == [json.loads(json.dumps(expected_key))]
