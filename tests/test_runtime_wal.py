"""Write-ahead log: framing, torn tails, interior corruption, compaction."""

import pytest

from repro.resilience import capture_events
from repro.resilience.faults import (
    DiskFaultInjector,
    DiskFaultPlan,
    DiskFullFault,
    FsyncFault,
    TornWriteFault,
)
from repro.runtime.wal import WALError, WriteAheadLog


@pytest.fixture
def wal(tmp_path):
    return WriteAheadLog(tmp_path / "wal", fsync=False)


BATCHES = [
    [[0.0, "a", "b", 1.0]],
    [[1.0, "b", "c", 1.0], [2.0, "c", "d", 1.0]],
    [[3.0, "a", "d", 1.0]],
]


class TestAppendReplay:
    def test_fresh_log_is_empty(self, wal):
        assert wal.last_seq == 0
        assert wal.compacted_upto == 0
        assert wal.replay() == []
        assert wal.path.exists()  # header written eagerly

    def test_append_assigns_consecutive_seqs(self, wal):
        assert [wal.append(b) for b in BATCHES] == [1, 2, 3]
        assert wal.last_seq == 3

    def test_replay_roundtrips_events(self, wal):
        for batch in BATCHES:
            wal.append(batch)
        records = wal.replay()
        assert [rec.seq for rec in records] == [1, 2, 3]
        assert [rec.events for rec in records] == BATCHES

    def test_replay_after_seq_skips_prefix(self, wal):
        for batch in BATCHES:
            wal.append(batch)
        assert [rec.seq for rec in wal.replay(after_seq=2)] == [3]

    def test_reopen_preserves_records(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", fsync=False)
        for batch in BATCHES:
            wal.append(batch)
        reopened = WriteAheadLog(tmp_path / "wal", fsync=False)
        assert reopened.last_seq == 3
        assert [rec.events for rec in reopened.replay()] == BATCHES
        assert not reopened.torn_tail_recovered


class TestTornWrites:
    def _truncated(self, tmp_path, drop: int) -> WriteAheadLog:
        wal = WriteAheadLog(tmp_path / "wal", fsync=False)
        for batch in BATCHES:
            wal.append(batch)
        raw = wal.path.read_bytes()
        wal.path.write_bytes(raw[:-drop])
        return WriteAheadLog(tmp_path / "wal", fsync=False)

    @pytest.mark.parametrize("drop", [1, 5, 20])
    def test_torn_tail_is_truncated(self, tmp_path, drop):
        reopened = self._truncated(tmp_path, drop)
        assert reopened.torn_tail_recovered
        assert reopened.last_seq == 2
        assert [rec.events for rec in reopened.replay()] == BATCHES[:2]

    def test_torn_tail_emits_event(self, tmp_path):
        with capture_events() as events:
            self._truncated(tmp_path, 5)
        assert any(kind == "wal.torn_tail" for kind, _ in events)

    def test_appending_after_torn_recovery_continues_sequence(self, tmp_path):
        reopened = self._truncated(tmp_path, 5)
        assert reopened.append([[9.0, "x", "y", 1.0]]) == 3
        # The re-appended record must parse on the next open.
        third = WriteAheadLog(tmp_path / "wal", fsync=False)
        assert third.last_seq == 3
        assert third.replay(after_seq=2)[0].events == [[9.0, "x", "y", 1.0]]

    def test_mid_append_crash_leaves_recoverable_tail(self, tmp_path):
        """A chaos hook aborting between the two append halves leaves
        exactly the torn tail the next open tolerates."""

        class Abort(RuntimeError):
            pass

        def chaos(point):
            if point == "wal.append.mid":
                raise Abort()

        wal = WriteAheadLog(tmp_path / "wal", fsync=False, chaos=chaos)
        with pytest.raises(Abort):
            wal.append(BATCHES[0])
        reopened = WriteAheadLog(tmp_path / "wal", fsync=False)
        assert reopened.torn_tail_recovered
        assert reopened.last_seq == 0


class TestInteriorCorruption:
    def test_corrupt_interior_record_refuses_recovery(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", fsync=False)
        for batch in BATCHES:
            wal.append(batch)
        lines = wal.path.read_text(encoding="utf-8").splitlines(keepends=True)
        lines[2] = "W1 2 deadbeefdeadbeef {garbage\n"
        wal.path.write_text("".join(lines), encoding="utf-8")
        with pytest.raises(WALError, match="modified, not torn"):
            WriteAheadLog(tmp_path / "wal", fsync=False)

    def test_sequence_gap_refuses_recovery(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", fsync=False)
        for batch in BATCHES:
            wal.append(batch)
        lines = wal.path.read_text(encoding="utf-8").splitlines(keepends=True)
        del lines[2]  # drop record 2; records 1 and 3 remain
        wal.path.write_text("".join(lines), encoding="utf-8")
        with pytest.raises(WALError, match="sequence gap"):
            WriteAheadLog(tmp_path / "wal", fsync=False)

    def test_missing_header_refuses_recovery(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", fsync=False)
        wal.append(BATCHES[0])
        lines = wal.path.read_text(encoding="utf-8").splitlines(keepends=True)
        wal.path.write_text("".join(lines[1:]), encoding="utf-8")
        with pytest.raises(WALError, match="header"):
            WriteAheadLog(tmp_path / "wal", fsync=False)


class TestCompaction:
    def test_compact_drops_prefix_and_survives_reopen(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", fsync=False)
        for batch in BATCHES:
            wal.append(batch)
        assert wal.compact(2) == 2
        assert wal.compacted_upto == 2
        assert [rec.seq for rec in wal.replay(after_seq=2)] == [3]
        reopened = WriteAheadLog(tmp_path / "wal", fsync=False)
        assert reopened.compacted_upto == 2
        assert reopened.last_seq == 3

    def test_append_after_compaction_continues_sequence(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", fsync=False)
        for batch in BATCHES:
            wal.append(batch)
        wal.compact(3)
        assert wal.append([[4.0, "d", "e", 1.0]]) == 4

    def test_compact_past_head_raises(self, wal):
        wal.append(BATCHES[0])
        with pytest.raises(WALError, match="past the log head"):
            wal.compact(5)

    def test_compact_is_idempotent(self, wal):
        for batch in BATCHES:
            wal.append(batch)
        assert wal.compact(2) == 2
        assert wal.compact(2) == 0
        assert wal.compact(1) == 0

    def test_replay_before_compaction_point_raises(self, wal):
        for batch in BATCHES:
            wal.append(batch)
        wal.compact(2)
        with pytest.raises(WALError, match="compacted away"):
            wal.replay(after_seq=0)


class TestDiskFaults:
    # Write/fsync indices are 1-based across the injector's lifetime;
    # opening a fresh log performs one write (the header rewrite), so
    # the second *append* is operation 3.

    def test_enospc_append_is_not_acknowledged(self, tmp_path):
        disk = DiskFaultInjector(DiskFaultPlan(enospc_nth=(3,)))
        wal = WriteAheadLog(tmp_path / "wal", fsync=False, disk=disk)
        wal.append(BATCHES[0])
        with pytest.raises(DiskFullFault):
            wal.append(BATCHES[1])
        assert wal.last_seq == 1
        # ENOSPC wrote nothing: the log is clean on reopen.
        reopened = WriteAheadLog(tmp_path / "wal", fsync=False)
        assert reopened.last_seq == 1
        assert not reopened.torn_tail_recovered

    def test_torn_write_fault_leaves_recoverable_tail(self, tmp_path):
        disk = DiskFaultInjector(DiskFaultPlan(torn_nth=(3,)))
        wal = WriteAheadLog(tmp_path / "wal", fsync=False, disk=disk)
        wal.append(BATCHES[0])
        with pytest.raises(TornWriteFault):
            wal.append(BATCHES[1])
        assert wal.last_seq == 1
        reopened = WriteAheadLog(tmp_path / "wal", fsync=False)
        assert reopened.torn_tail_recovered
        assert reopened.last_seq == 1
        assert [rec.events for rec in reopened.replay()] == BATCHES[:1]

    def test_fsync_fault_is_not_acknowledged(self, tmp_path):
        disk = DiskFaultInjector(DiskFaultPlan(fsync_nth=(3,)))
        wal = WriteAheadLog(tmp_path / "wal", fsync=True, disk=disk)
        wal.append(BATCHES[0])
        with pytest.raises(FsyncFault):
            wal.append(BATCHES[1])
        assert wal.last_seq == 1
