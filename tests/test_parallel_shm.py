"""Shared-memory arena lifecycle: publish, attach, degrade, crash, unlink.

The crash-safety claims in ``docs/parallel.md`` are pinned here: a
kill-9'd worker never takes the segment (or the run) down with it, a
kill-9'd parent leaks nothing (the resource tracker reaps its
registration), and every normal run — fork or spawn, any worker count —
ends with zero ``/dev/shm/repro_*`` survivors.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np
import pytest

from conftest import random_snapshot_pair
from repro.graph.csr import bfs_levels
from repro.graph.incremental import SnapshotDelta
from repro.graph.prune import PrunePlan
from repro.parallel import (
    ParallelExecutor,
    SharedCsrArena,
    attach_state,
    derive_run_id,
    in_worker,
    leaked_segments,
    worker_state,
)
from repro.parallel.shm import segment_name
from repro.resilience import FaultInjector, FaultPlan, capture_events

SRC = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """Every test in this module must end segment-clean."""
    before = leaked_segments()
    yield
    assert leaked_segments() == before == []


def _arena_state():
    g1, g2 = random_snapshot_pair(40, 100, seed=4)
    delta = SnapshotDelta.from_graphs(g1, g2)
    return {
        "delta": delta,
        "plan": PrunePlan.from_delta(delta),
        "csr": delta.csr1,
        "weights": np.arange(8, dtype=np.float64),
        "label": "plain-value",
        "k": 5,
    }


# ----------------------------------------------------------------------
# Module-level task functions (picklable)
# ----------------------------------------------------------------------
def _row_via_shared_csr(i: int) -> bytes:
    return bfs_levels(worker_state()["csr"], i).tobytes()


def _state_probe(_: int) -> tuple:
    state = worker_state()
    return (
        in_worker(),
        state["label"],
        state["k"],
        bool(state["csr"].indptr.flags.writeable),
    )


def _kill_worker_on_three(i: int) -> bytes:
    if i == 3 and in_worker():
        os.kill(os.getpid(), signal.SIGKILL)
    return bfs_levels(worker_state()["csr"], i).tobytes()


# ----------------------------------------------------------------------
# Identity
# ----------------------------------------------------------------------
class TestRunId:
    def test_derive_run_id_is_deterministic(self):
        assert derive_run_id("topk", 7, None) == derive_run_id("topk", 7, None)
        assert derive_run_id("topk", 7) != derive_run_id("topk", 8)
        rid = derive_run_id("apsp", 1090, 2948, 64)
        assert len(rid) == 12 and segment_name(rid).startswith("repro_")

    def test_bad_run_ids_rejected(self):
        for bad in ("", "a" * 65, "has space", "sl/ash", "nul\x00"):
            with pytest.raises(ValueError):
                segment_name(bad)


# ----------------------------------------------------------------------
# Publish / attach / recompose
# ----------------------------------------------------------------------
class TestArenaRoundtrip:
    def test_parent_state_recomposes_every_kind(self):
        state = _arena_state()
        arena = SharedCsrArena.maybe_publish(state, run_id="roundtrip-test")
        assert arena is not None
        try:
            got = arena.parent_state()
            assert got["label"] == "plain-value" and got["k"] == 5
            assert np.array_equal(got["weights"], state["weights"])
            assert got["csr"].nodes == state["csr"].nodes
            assert np.array_equal(got["csr"].indptr, state["csr"].indptr)
            assert np.array_equal(got["csr"].indices, state["csr"].indices)
            d0, d1 = state["delta"], got["delta"]
            assert np.array_equal(d0.mapping, d1.mapping)
            assert np.array_equal(d0.edge_tails, d1.edge_tails)
            assert d0.csr2.nodes == d1.csr2.nodes
            assert np.array_equal(
                got["plan"].seed_idx1, state["plan"].seed_idx1
            )
            # Views are read-only: shared pages must never be mutable.
            with pytest.raises(ValueError):
                got["csr"].indptr[0] = 99
            with pytest.raises(ValueError):
                got["weights"][0] = 1.0
        finally:
            arena.destroy()

    def test_attach_state_matches_parent_state(self):
        state = _arena_state()
        arena = SharedCsrArena.maybe_publish(state, run_id="attach-test")
        assert arena is not None
        try:
            attached = attach_state(arena.worker_payload())
            assert attached["label"] == "plain-value"
            assert np.array_equal(attached["csr"].indptr, state["csr"].indptr)
            assert not attached["csr"].indices.flags.writeable
        finally:
            arena.destroy()

    def test_maybe_publish_returns_none_without_arrays(self):
        assert SharedCsrArena.maybe_publish(
            {"label": "x", "k": 3}, run_id="nothing-shared"
        ) is None

    def test_publish_requires_shareable_state(self):
        with pytest.raises(ValueError):
            SharedCsrArena.publish({"k": 3}, run_id="nothing-shared")

    def test_destroy_is_idempotent(self):
        arena = SharedCsrArena.maybe_publish(
            {"a": np.arange(4)}, run_id="destroy-twice"
        )
        assert arena is not None
        arena.destroy()
        arena.destroy()
        with pytest.raises(ValueError):
            arena.parent_state()

    def test_name_collision_resolves_by_deterministic_probing(self):
        taken = shared_memory.SharedMemory(
            name=segment_name("collide-me"), create=True, size=64
        )
        try:
            arena = SharedCsrArena.maybe_publish(
                {"a": np.arange(4)}, run_id="collide-me"
            )
            assert arena is not None
            try:
                assert arena.segment != taken.name
                assert arena.segment.startswith(segment_name("collide-me"))
                assert np.array_equal(
                    arena.parent_state()["a"], np.arange(4)
                )
            finally:
                arena.destroy()
            # The stale squatter is untouched — never unlinked by probing.
            assert leaked_segments() == [taken.name]
        finally:
            taken.close()
            taken.unlink()


# ----------------------------------------------------------------------
# Executor integration: fork × spawn, degradation via attached views
# ----------------------------------------------------------------------
class TestExecutorShm:
    @pytest.mark.parametrize("method", ["fork", "spawn"])
    @pytest.mark.parametrize("workers", [2, 4])
    def test_pool_rows_bit_identical(self, method, workers):
        if method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"{method} unavailable")
        state = _arena_state()
        csr = state["csr"]
        serial = [bfs_levels(csr, i).tobytes() for i in range(csr.num_nodes)]
        with capture_events() as events:
            executor = ParallelExecutor(
                workers,
                state=state,
                start_method=method,
                shm_run_id=derive_run_id("shm-oracle", method, workers),
            )
            rows = executor.map(
                _row_via_shared_csr, range(csr.num_nodes), unit="shm.oracle"
            )
        assert rows == serial
        published = [f for k, f in events if k == "parallel.shm_published"]
        assert len(published) == 1 and published[0]["bytes"] > 0

    def test_workers_see_plain_state_and_readonly_views(self):
        executor = ParallelExecutor(
            2,
            state=_arena_state(),
            shm_run_id=derive_run_id("probe"),
        )
        probes = executor.map(_state_probe, range(4), unit="shm.probe")
        assert all(
            probe == (True, "plain-value", 5, False) for probe in probes
        )

    def test_env_start_method_is_respected(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_START_METHOD", "spawn")
        executor = ParallelExecutor(2, state={"x": 1})
        assert executor.start_method == "spawn"
        monkeypatch.delenv("REPRO_PARALLEL_START_METHOD")
        assert ParallelExecutor(2).start_method is None

    def test_degraded_chunk_recomputes_over_attached_views(self):
        state = _arena_state()
        csr = state["csr"]
        serial = [bfs_levels(csr, i).tobytes() for i in range(csr.num_nodes)]
        with capture_events() as events:
            executor = ParallelExecutor(
                2,
                state=state,
                chunk_size=5,
                fault_injector=FaultInjector(FaultPlan(fail_nth=(2,))),
                shm_run_id=derive_run_id("degraded-views"),
            )
            rows = executor.map(
                _row_via_shared_csr, range(csr.num_nodes), unit="shm.degrade"
            )
        assert rows == serial
        assert len(executor.failed_chunks) == 1
        assert any(k == "parallel.degraded" for k, _ in events)
        # The degraded recomputation read the arena's read-only views —
        # the same pages the workers mapped, not a fresh copy.
        assert not worker_state()["csr"].indptr.flags.writeable


# ----------------------------------------------------------------------
# Chaos: hard kills on either side of the pool
# ----------------------------------------------------------------------
@pytest.mark.faults
class TestCrashSafety:
    def test_kill9_worker_mid_chunk_degrades_and_unlinks(self):
        state = _arena_state()
        csr = state["csr"]
        serial = [bfs_levels(csr, i).tobytes() for i in range(csr.num_nodes)]
        with capture_events() as events:
            executor = ParallelExecutor(
                2,
                state=state,
                chunk_size=4,
                shm_run_id=derive_run_id("kill9-worker"),
            )
            rows = executor.map(
                _kill_worker_on_three, range(csr.num_nodes), unit="shm.kill9"
            )
        # The run completed via degradation, output equal to serial…
        assert rows == serial
        assert executor.failed_chunks  # BrokenProcessPool chunks degraded
        assert any(k == "parallel.degraded" for k, _ in events)
        # …and the autouse fixture asserts the parent unlinked everything.

    def test_kill9_parent_leaks_nothing(self, tmp_path):
        """The creator's resource tracker reaps segments on parent death."""
        script = tmp_path / "parent.py"
        script.write_text(
            "import json, os, signal, sys\n"
            "import numpy as np\n"
            "from repro.parallel import SharedCsrArena\n"
            "arena = SharedCsrArena.maybe_publish(\n"
            "    {'a': np.arange(1024)}, run_id='parent-kill9'\n"
            ")\n"
            "print(json.dumps({'segment': arena.segment}), flush=True)\n"
            "sys.stdout.close()\n"
            "signal.pause()\n"
        )
        env = dict(os.environ, PYTHONPATH=SRC)
        proc = subprocess.Popen(
            [sys.executable, str(script)],
            stdout=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            line = proc.stdout.readline()
            segment = json.loads(line)["segment"]
            assert segment in leaked_segments()
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)
            # The resource tracker survives the SIGKILL briefly; give it
            # a moment to notice the pipe closed and unlink.
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if segment not in leaked_segments():
                    break
                time.sleep(0.05)
            assert segment not in leaked_segments()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
