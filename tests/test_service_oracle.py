"""Differential oracle: a served answer is byte-identical to batch.

``repro serve`` and ``repro query`` share one compute path
(:func:`repro.service.answers.compute_answer`) and one canonical JSON
encoding, so at the same ``state_version`` a service response's
``{"result": ..., "version": ...}`` projection must equal the batch
CLI's stdout *byte for byte* — across restarts and in degraded mode.
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.datasets import io
from repro.runtime import RuntimeConfig, StreamRuntime
from repro.runtime.breaker import CircuitBreaker
from repro.runtime.supervisor import Supervisor
from repro.service import (
    ConvergenceService,
    ServiceClient,
    canonical_json,
    compute_answer,
)

from conftest import random_temporal_graph

SRC = Path(__file__).resolve().parents[1] / "src"

RUNTIME_FLAGS = ("--k", "5", "--batch-size", "8", "--checkpoint-every", "2")
CONFIG = RuntimeConfig(k=5, batch_size=8, checkpoint_every=2)


def repro_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_CHAOS_KILL", None)
    return env


def run_cli(*argv, check=True):
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True, text=True, env=repro_env(), timeout=120,
    )
    if check:
        assert proc.returncode == 0, (proc.stdout, proc.stderr)
    return proc


@pytest.fixture(scope="module")
def stream_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("oracle-stream") / "stream.tsv"
    io.write_edge_stream(
        random_temporal_graph(35, 160, seed=13), path
    )
    return path


@pytest.fixture(scope="module")
def wal_dir(stream_file, tmp_path_factory):
    """A fully advanced state directory, shared by every oracle case."""
    wal = tmp_path_factory.mktemp("oracle-state") / "wal"
    run_cli("advance", str(stream_file), "--wal-dir", str(wal),
            *RUNTIME_FLAGS)
    return wal


def batch_query(wal_dir, stream_file, verb, *extra):
    """One ``repro query`` stdout line — the oracle's ground truth."""
    proc = run_cli(
        "query", verb, str(stream_file), "--wal-dir", str(wal_dir),
        *RUNTIME_FLAGS, *extra,
    )
    return proc.stdout.rstrip("\n")


def projection(response):
    """The comparable core of a service response envelope."""
    return canonical_json({
        "result": response["result"], "version": response["version"],
    })


class ServeProcess:
    """A real ``repro serve`` daemon on a UNIX socket."""

    def __init__(self, stream_file, wal_dir, socket_path, *extra):
        self.socket_path = socket_path
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", str(stream_file),
                "--wal-dir", str(wal_dir), "--socket", str(socket_path),
                *RUNTIME_FLAGS, *extra,
            ],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=repro_env(),
        )
        ready = self.proc.stdout.readline()
        assert ready, self.proc.stderr.read()
        event = json.loads(ready)
        assert event["event"] == "ready"
        self.address = ("unix", str(socket_path))

    def drain(self):
        """SIGTERM, await graceful exit, return the drained event."""
        self.proc.send_signal(signal.SIGTERM)
        stdout, stderr = self.proc.communicate(timeout=60)
        assert self.proc.returncode == 0, (stdout, stderr)
        lines = [ln for ln in stdout.splitlines() if ln.strip()]
        event = json.loads(lines[-1])
        assert event["event"] == "drained"
        return event

    def kill(self):
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.communicate(timeout=30)


@pytest.fixture
def serve(stream_file, wal_dir, tmp_path):
    server = ServeProcess(stream_file, wal_dir, tmp_path / "svc.sock")
    yield server
    server.kill()


class TestServedEqualsBatch:
    def test_topk_byte_identity(self, serve, stream_file, wal_dir):
        with ServiceClient(serve.address) as client:
            response = client.request("topk", {"k": 3}, request_id="o1")
        assert response["ok"] is True
        assert response["stale"] is False
        oracle = batch_query(wal_dir, stream_file, "topk", "--query-k", "3")
        assert projection(response) == oracle

    def test_node_byte_identity(self, serve, stream_file, wal_dir):
        with ServiceClient(serve.address) as client:
            top = client.request("topk", {"k": 1})
            u = top["result"]["pairs"][0][0]
            response = client.request("node", {"u": u, "k": 4})
        oracle = batch_query(
            wal_dir, stream_file, "node", "--u", str(u), "--query-k", "4",
        )
        assert projection(response) == oracle

    def test_coalesced_answers_are_the_served_bytes(self, serve):
        """Two clients asking the same question get identical envelopes."""
        with ServiceClient(serve.address) as a, \
                ServiceClient(serve.address) as b:
            a.send_line('{"verb": "topk", "args": {"k": 2}}')
            b.send_line('{"verb": "topk", "args": {"k": 2}}')
            ra = a.recv_line()
            rb = b.recv_line()
        assert ra == rb

    def test_status_roundtrip_and_drain(self, serve, stream_file, wal_dir):
        status = run_cli(
            "serve", "--status", "--socket", str(serve.socket_path),
        )
        health = json.loads(status.stdout)
        assert health["ok"] is True
        assert health["result"]["version"] == health["version"]
        drained = serve.drain()
        assert drained["version"] == health["version"]


class TestRestartIdentity:
    def test_reserve_after_drain_is_byte_identical(
        self, stream_file, wal_dir, tmp_path
    ):
        answers = []
        for generation in ("first", "second"):
            server = ServeProcess(
                stream_file, wal_dir, tmp_path / f"{generation}.sock"
            )
            try:
                with ServiceClient(server.address) as client:
                    answers.append(
                        projection(client.request("topk", {"k": 5}))
                    )
                server.drain()
            finally:
                server.kill()
        assert answers[0] == answers[1]


class TestDegradedOracle:
    def test_stale_answer_matches_batch_at_the_same_version(
        self, stream_file, wal_dir
    ):
        """Degraded serving still returns the batch bytes for its version."""
        runtime = StreamRuntime(
            io.read_edge_stream(stream_file), wal_dir, CONFIG
        )

        def boom(max_batches=None):
            raise RuntimeError("ingest source gone")

        runtime.run = boom
        service = ConvergenceService(
            runtime,
            breaker=CircuitBreaker(failure_threshold=1, seed=9),
            supervisor=Supervisor(max_restarts=0),
        )

        import asyncio

        async def scenario():
            service.start_worker()
            await service.handle_line('{"verb": "advance"}')
            response = json.loads(
                await service.handle_line('{"verb": "topk", "args": {"k": 3}}')
            )
            await service.drain()
            return response

        response = asyncio.run(scenario())
        assert response["stale"] is True
        fresh = StreamRuntime(
            io.read_edge_stream(stream_file), wal_dir, CONFIG
        )
        assert response["version"] == fresh.state_version
        assert projection(response) == canonical_json({
            "result": compute_answer(fresh, "topk", {"k": 3}),
            "version": fresh.state_version,
        })
