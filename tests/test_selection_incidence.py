"""Unit tests for the Incidence family (budgeted and unbudgeted)."""

import numpy as np
import pytest

from repro.core.budget import SPBudget
from repro.core.pairs import converging_pairs_at_threshold
from repro.graph.graph import Graph
from repro.selection import get_selector
from repro.selection.incidence import (
    active_nodes,
    incident_betweenness_increase,
    new_edges,
    run_incidence_algorithm,
    run_selective_expansion,
)

from conftest import path_graph, random_snapshot_pair


@pytest.fixture
def chord_pair():
    g1 = path_graph(8)
    g2 = g1.copy()
    g2.add_edge(0, 7)
    g2.add_edge(3, 8)  # new node 8 attached to 3
    return g1, g2


class TestActiveNodes:
    def test_new_edges(self, chord_pair):
        g1, g2 = chord_pair
        assert set(new_edges(g1, g2)) == {(0, 7), (3, 8)}

    def test_active_nodes_restricted_to_v1(self, chord_pair):
        g1, g2 = chord_pair
        assert active_nodes(g1, g2) == {0, 7, 3}  # 8 is not in V_t1

    def test_no_new_edges(self, path5):
        assert active_nodes(path5, path5) == set()

    def test_identical_graph_no_new_edges(self, path5):
        assert new_edges(path5, path5) == []


class TestIncDeg:
    def test_candidates_are_active(self, chord_pair):
        g1, g2 = chord_pair
        selector = get_selector("IncDeg")
        result = selector.select(g1, g2, 3, SPBudget(6),
                                 rng=np.random.default_rng(0))
        assert set(result.candidates) <= {0, 7, 3}

    def test_ranked_by_degree_diff(self, chord_pair):
        g1, g2 = chord_pair
        selector = get_selector("IncDeg")
        result = selector.select(g1, g2, 3, SPBudget(6),
                                 rng=np.random.default_rng(0))
        diffs = [g2.degree(u) - g1.degree(u) for u in result.candidates]
        assert diffs == sorted(diffs, reverse=True)

    def test_no_generation_cost(self, chord_pair):
        budget = SPBudget(10)
        get_selector("IncDeg").select(*chord_pair, 3, budget)
        assert budget.spent == 0

    def test_fewer_active_than_m(self, chord_pair):
        result = get_selector("IncDeg").select(*chord_pair, 50, SPBudget(100))
        assert len(result.candidates) == 3


class TestIncBet:
    def test_scores_reflect_new_shortcut(self, chord_pair):
        g1, g2 = chord_pair
        scores = incident_betweenness_increase(g1, g2)
        # The chord endpoints gained a high-betweenness edge.
        assert scores[0] > scores[4]

    def test_exact_selector_runs(self, chord_pair):
        result = get_selector("IncBet").select(*chord_pair, 2, SPBudget(4))
        assert len(result.candidates) == 2
        assert set(result.candidates) <= {0, 7, 3}

    def test_sampled_selector_runs(self, chord_pair):
        selector = get_selector("IncBet", pivots=4)
        result = selector.select(*chord_pair, 2, SPBudget(4),
                                 rng=np.random.default_rng(0))
        assert len(result.candidates) == 2

    def test_invalid_pivots(self):
        with pytest.raises(ValueError):
            get_selector("IncBet", pivots=0)


class TestUnbudgetedIncidence:
    def test_full_coverage_from_active_set(self, chord_pair):
        g1, g2 = chord_pair
        truth = converging_pairs_at_threshold(g1, g2, 2)
        result = run_incidence_algorithm(g1, g2, k=len(truth))
        assert {p.pair for p in result.pairs} >= {
            p.pair for p in truth if p.u in result.active or p.v in result.active
        }
        # The chord pair must be found: 0 is active.
        assert (0, 7) in {p.pair for p in result.pairs}

    def test_sp_cost_is_two_per_active(self, chord_pair):
        g1, g2 = chord_pair
        result = run_incidence_algorithm(g1, g2, k=3)
        assert result.sp_computations == 2 * len(result.active)

    def test_active_fraction(self, chord_pair):
        g1, g2 = chord_pair
        result = run_incidence_algorithm(g1, g2, k=3)
        assert result.active_fraction(g1) == pytest.approx(3 / 8)

    def test_bad_k(self, chord_pair):
        with pytest.raises(ValueError):
            run_incidence_algorithm(*chord_pair, k=0)

    def test_matches_truth_on_random_instance(self):
        g1, g2 = random_snapshot_pair(num_nodes=30, num_edges=70, seed=71)
        truth = converging_pairs_at_threshold(g1, g2, 1)
        if not truth:
            pytest.skip("degenerate instance")
        result = run_incidence_algorithm(g1, g2, k=len(truth))
        # Every converging pair has at least one endpoint incident to a
        # new edge?  Not guaranteed in general — but found pairs must be
        # genuine and ranked.
        truth_set = {p.pair for p in truth}
        for p in result.pairs:
            if p.delta >= truth[0].delta:
                assert p.pair in truth_set


class TestSelectiveExpansion:
    def test_runs_and_improves_or_matches(self, chord_pair):
        g1, g2 = chord_pair
        base = run_incidence_algorithm(g1, g2, k=5)
        expanded = run_selective_expansion(
            g1, g2, k=5, expansion_per_round=2, max_rounds=3
        )
        assert expanded.rounds >= 1
        assert len(expanded.active) >= len(base.active)

    def test_bad_args(self, chord_pair):
        with pytest.raises(ValueError):
            run_selective_expansion(*chord_pair, k=0)
        with pytest.raises(ValueError):
            run_selective_expansion(*chord_pair, k=1, expansion_per_round=0)

    def test_terminates_when_no_new_pairs(self, path5):
        result = run_selective_expansion(path5, path5, k=3, max_rounds=10)
        assert result.rounds <= 2
        assert result.pairs == []


class TestIncDeg2:
    def test_candidates_are_active_ranked_by_t2_degree(self, chord_pair):
        g1, g2 = chord_pair
        selector = get_selector("IncDeg2")
        result = selector.select(g1, g2, 3, SPBudget(6),
                                 rng=np.random.default_rng(0))
        assert set(result.candidates) <= {0, 7, 3}
        degrees = [g2.degree(u) for u in result.candidates]
        assert degrees == sorted(degrees, reverse=True)

    def test_no_generation_cost(self, chord_pair):
        budget = SPBudget(10)
        get_selector("IncDeg2").select(*chord_pair, 3, budget)
        assert budget.spent == 0


class TestIncRecv:
    def test_scores_only_received_edges(self, chord_pair):
        g1, g2 = chord_pair
        selector = get_selector("IncRecv")
        result = selector.select(g1, g2, 3, SPBudget(6),
                                 rng=np.random.default_rng(0))
        assert set(result.candidates) <= {0, 7, 3}
        # The chord (0, 7) has far higher betweenness than the pendant
        # (3, 8), so the chord endpoints must rank above node 3.
        assert set(result.candidates[:2]) == {0, 7}

    def test_sampled_pivots(self, chord_pair):
        selector = get_selector("IncRecv", pivots=8)
        result = selector.select(*chord_pair, 2, SPBudget(4),
                                 rng=np.random.default_rng(0))
        assert len(result.candidates) == 2

    def test_invalid_pivots(self):
        with pytest.raises(ValueError):
            get_selector("IncRecv", pivots=0)

    def test_precomputed_edge_bc(self, chord_pair):
        g1, g2 = chord_pair
        from repro.graph.betweenness import edge_betweenness

        bc2 = edge_betweenness(g2, normalized=False)
        selector = get_selector("IncRecv", precomputed_edge_bc=bc2)
        result = selector.select(g1, g2, 3, SPBudget(6))
        assert set(result.candidates[:2]) == {0, 7}
