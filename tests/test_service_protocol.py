"""Wire protocol: parsing, canonical encoding, structured error codes."""

import json

import pytest

from repro.service.protocol import (
    CONTROL_VERBS,
    E_BAD_REQUEST,
    E_UNKNOWN_VERB,
    ERROR_CODES,
    QUERY_VERBS,
    ProtocolError,
    Request,
    canonical_args,
    canonical_json,
    encode_error,
    encode_response,
    parse_request,
)


class TestParseRequest:
    def test_minimal_request(self):
        req = parse_request('{"verb": "topk"}')
        assert req.verb == "topk"
        assert req.args == {}
        assert req.request_id is None
        assert req.deadline_ms is None

    def test_full_request(self):
        req = parse_request(
            '{"verb": "node", "args": {"u": 3, "k": 5}, '
            '"id": "c-17", "deadline_ms": 250}'
        )
        assert req.verb == "node"
        assert req.args == {"u": 3, "k": 5}
        assert req.request_id == "c-17"
        assert req.deadline_ms == 250

    @pytest.mark.parametrize(
        "line",
        [
            "not json at all",
            "[1, 2, 3]",
            '"just a string"',
            "{}",
            '{"verb": 7}',
            '{"verb": "topk", "args": [1]}',
            '{"verb": "topk", "extra": true}',
            '{"verb": "topk", "deadline_ms": 0}',
            '{"verb": "topk", "deadline_ms": -5}',
            '{"verb": "topk", "deadline_ms": true}',
            '{"verb": "topk", "deadline_ms": "soon"}',
        ],
    )
    def test_malformed_requests_are_bad_request(self, line):
        with pytest.raises(ProtocolError) as err:
            parse_request(line)
        assert err.value.code == E_BAD_REQUEST

    def test_unknown_verb_has_its_own_code(self):
        with pytest.raises(ProtocolError) as err:
            parse_request('{"verb": "frobnicate"}')
        assert err.value.code == E_UNKNOWN_VERB
        # The message teaches the vocabulary.
        assert "topk" in str(err.value)

    def test_verbs_are_disjoint(self):
        assert not set(QUERY_VERBS) & set(CONTROL_VERBS)


class TestCanonicalEncoding:
    def test_one_byte_representation(self):
        a = canonical_json({"b": 1, "a": [2, {"d": 3, "c": 4}]})
        b = canonical_json(json.loads(a))
        assert a == b
        assert " " not in a  # compact separators

    def test_request_key_ignores_arg_order(self):
        r1 = Request(verb="node", args={"u": 1, "k": 5})
        r2 = Request(verb="node", args={"k": 5, "u": 1})
        assert r1.key == r2.key
        assert r1.key == ("node", canonical_args({"k": 5, "u": 1}))

    def test_different_args_different_key(self):
        r1 = Request(verb="topk", args={"k": 5})
        r2 = Request(verb="topk", args={"k": 6})
        assert r1.key != r2.key


class TestResponses:
    def test_response_envelope(self):
        line = encode_response("c1", version=3, stale=False, result={"x": 1})
        payload = json.loads(line)
        assert payload == {
            "id": "c1", "ok": True, "version": 3, "stale": False,
            "result": {"x": 1},
        }
        assert line == canonical_json(payload)

    def test_error_envelope(self):
        line = encode_error("c1", E_BAD_REQUEST, "nope")
        payload = json.loads(line)
        assert payload == {
            "id": "c1", "ok": False,
            "error": {"code": "bad_request", "message": "nope"},
        }

    def test_unknown_error_code_is_refused(self):
        with pytest.raises(ValueError):
            encode_error(None, "made_up_code", "boom")

    def test_error_codes_are_distinct(self):
        assert len(ERROR_CODES) == len(set(ERROR_CODES))
