"""Unit tests for the dispersion-based selectors (MaxMin / MaxAvg)."""

import numpy as np
import pytest

from repro.core.budget import BudgetExceededError, SPBudget
from repro.graph.graph import Graph
from repro.selection import get_selector
from repro.selection.dispersion import greedy_dispersion

from conftest import path_graph


def run(name, g1, g2, m, seed=0):
    selector = get_selector(name)
    budget = SPBudget(2 * m)
    result = selector.select(g1, g2, m, budget, rng=np.random.default_rng(seed))
    return result, budget


class TestGreedyDispersion:
    def test_selects_requested_count(self, path5):
        budget = SPBudget(None)
        nodes, rows = greedy_dispersion(
            path5, 3, "min", budget, np.random.default_rng(0)
        )
        assert len(nodes) == 3
        assert len(set(nodes)) == 3

    def test_rows_returned_for_every_pick(self, path5):
        budget = SPBudget(None)
        nodes, rows = greedy_dispersion(
            path5, 3, "avg", budget, np.random.default_rng(0)
        )
        assert set(rows) == set(nodes)
        for u, row in rows.items():
            assert row[u] == 0

    def test_charges_one_sssp_per_pick(self, path5):
        budget = SPBudget(10)
        greedy_dispersion(path5, 4, "min", budget, np.random.default_rng(0))
        assert budget.spent == 4
        assert budget.by_snapshot() == {"g1": 4}

    def test_count_clamped_to_node_count(self, path5):
        budget = SPBudget(None)
        nodes, _ = greedy_dispersion(
            path5, 50, "min", budget, np.random.default_rng(0)
        )
        assert len(nodes) == 5

    def test_zero_count(self, path5):
        nodes, rows = greedy_dispersion(
            path5, 0, "min", SPBudget(None), np.random.default_rng(0)
        )
        assert nodes == [] and rows == {}

    def test_invalid_mode(self, path5):
        with pytest.raises(ValueError, match="mode"):
            greedy_dispersion(path5, 2, "median", SPBudget(None),
                              np.random.default_rng(0))

    def test_maxmin_second_pick_is_farthest(self):
        # On a long path, whatever the random start s, the second pick
        # must be the endpoint farthest from s.
        g = path_graph(9)
        for seed in range(5):
            nodes, _ = greedy_dispersion(
                g, 2, "min", SPBudget(None), np.random.default_rng(seed)
            )
            s, t = nodes
            assert abs(s - t) == max(s, 8 - s)

    def test_maxmin_spreads_over_components(self, two_components):
        nodes, _ = greedy_dispersion(
            two_components, 2, "min", SPBudget(None), np.random.default_rng(1)
        )
        comp = lambda u: 0 if u in (0, 1, 2) else 1
        assert comp(nodes[0]) != comp(nodes[1])

    def test_budget_enforced(self, path5):
        with pytest.raises(BudgetExceededError):
            greedy_dispersion(path5, 4, "min", SPBudget(2),
                              np.random.default_rng(0))


class TestDispersionSelectors:
    @pytest.mark.parametrize("name", ["MaxMin", "MaxAvg"])
    def test_budget_split_matches_table1(self, name, shortcut_pair):
        g1, g2 = shortcut_pair
        result, budget = run(name, g1, g2, 4)
        assert budget.spent == 4  # generation only; topk pays the rest
        assert budget.by_snapshot() == {"g1": 4}
        assert len(result.candidates) == 4
        assert set(result.d1_rows) == set(result.candidates)
        assert not result.d2_rows

    @pytest.mark.parametrize("name", ["MaxMin", "MaxAvg"])
    def test_candidates_distinct_and_in_g1(self, name, shortcut_pair):
        g1, g2 = shortcut_pair
        result, _ = run(name, g1, g2, 5)
        assert len(set(result.candidates)) == len(result.candidates)
        assert all(u in g1 for u in result.candidates)

    def test_maxavg_second_pick_is_farthest_from_first(self):
        # For a single selected node, avg distance = distance, so the
        # second pick must be at maximum distance from the first.
        g = Graph([(0, i) for i in range(1, 6)])
        g.add_edge(5, 6)
        g.add_edge(6, 7)
        from repro.graph.traversal import bfs_distances

        for seed in range(5):
            result, _ = run("MaxAvg", g, g, 2, seed=seed)
            first, second = result.candidates
            dist = bfs_distances(g, first)
            assert dist[second] == max(dist.values())

    def test_seeded_determinism(self, shortcut_pair):
        g1, g2 = shortcut_pair
        a, _ = run("MaxMin", g1, g2, 3, seed=9)
        b, _ = run("MaxMin", g1, g2, 3, seed=9)
        assert a.candidates == b.candidates
