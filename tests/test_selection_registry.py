"""Unit tests for the selector registry and shared base utilities."""

import pytest

from repro.selection import SINGLE_FEATURE_SELECTORS, available_selectors, get_selector
from repro.selection.base import (
    CandidateSelector,
    SelectionResult,
    rank_take,
    register_selector,
)


class TestRegistry:
    def test_all_paper_algorithms_registered(self):
        names = set(available_selectors())
        expected = {
            "Degree", "DegDiff", "DegRel", "MaxMin", "MaxAvg", "SumDiff",
            "MaxDiff", "MMSD", "MMMD", "MASD", "MAMD", "IncDeg", "IncBet",
            "L-Classifier", "G-Classifier",
        }
        assert expected <= names

    def test_single_feature_list_is_registered_subset(self):
        names = set(available_selectors())
        assert set(SINGLE_FEATURE_SELECTORS) <= names

    def test_lookup_is_case_insensitive(self):
        assert type(get_selector("mmsd")) is type(get_selector("MMSD"))

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="known selectors"):
            get_selector("NotAnAlgorithm")

    def test_each_lookup_returns_fresh_instance(self):
        assert get_selector("Degree") is not get_selector("Degree")

    def test_kwargs_forwarded(self):
        selector = get_selector("SumDiff", num_landmarks=7)
        assert selector.num_landmarks == 7

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_selector("Degree")
            class Clone(CandidateSelector):  # pragma: no cover
                def select(self, g1, g2, m, budget, rng=None):
                    return SelectionResult(candidates=[])

    def test_selector_name_attribute(self):
        assert get_selector("MMSD").name == "MMSD"


class TestRankTake:
    def test_orders_by_score_desc(self):
        assert rank_take({1: 2.0, 2: 5.0, 3: 1.0}, 2) == [2, 1]

    def test_ties_broken_by_repr(self):
        assert rank_take({"b": 1.0, "a": 1.0}, 2) == ["a", "b"]

    def test_m_larger_than_population(self):
        assert rank_take({1: 1.0}, 10) == [1]

    def test_empty_scores(self):
        assert rank_take({}, 3) == []
