"""Unit tests for repro.graph.betweenness against the networkx oracle."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.betweenness import (
    approximate_edge_betweenness,
    edge_betweenness,
    node_betweenness,
)
from repro.graph.graph import Graph

from conftest import (
    complete_graph,
    path_graph,
    random_snapshot_pair,
    star_graph,
    to_networkx,
)


def _canon(d):
    return {tuple(sorted(k)): v for k, v in d.items()}


class TestNodeBetweenness:
    def test_path_center_dominates(self):
        bc = node_betweenness(path_graph(5), normalized=False)
        assert bc[2] > bc[1] > bc[0]
        assert bc[0] == 0.0

    def test_star_hub(self):
        bc = node_betweenness(star_graph(5), normalized=False)
        # Hub lies on all C(5,2) = 10 leaf pairs.
        assert bc[0] == pytest.approx(10.0)
        assert bc[1] == 0.0

    def test_complete_graph_all_zero(self):
        bc = node_betweenness(complete_graph(5), normalized=False)
        assert all(v == pytest.approx(0.0) for v in bc.values())

    @pytest.mark.parametrize("seed", [31, 32])
    @pytest.mark.parametrize("normalized", [True, False])
    def test_matches_networkx(self, seed, normalized):
        g, _ = random_snapshot_pair(num_nodes=25, num_edges=50, seed=seed)
        ours = node_betweenness(g, normalized=normalized)
        theirs = nx.betweenness_centrality(
            to_networkx(g), normalized=normalized, weight=None
        )
        for node, value in theirs.items():
            assert ours[node] == pytest.approx(value, abs=1e-9)


class TestEdgeBetweenness:
    def test_bridge_dominates(self):
        # Two triangles joined by a bridge (2, 3).
        g = Graph([(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
        bc = edge_betweenness(g, normalized=False)
        assert max(bc, key=bc.get) == (2, 3)
        assert bc[(2, 3)] == pytest.approx(9.0)  # all 3x3 cross pairs

    def test_path_edges(self):
        bc = edge_betweenness(path_graph(4), normalized=False)
        # Middle edge (1,2) carries pairs {0,1}x{2,3} = 4.
        assert bc[(1, 2)] == pytest.approx(4.0)
        assert bc[(0, 1)] == pytest.approx(3.0)

    @pytest.mark.parametrize("seed", [33, 34])
    @pytest.mark.parametrize("normalized", [True, False])
    def test_matches_networkx(self, seed, normalized):
        g, _ = random_snapshot_pair(num_nodes=25, num_edges=50, seed=seed)
        ours = edge_betweenness(g, normalized=normalized)
        theirs = _canon(
            nx.edge_betweenness_centrality(
                to_networkx(g), normalized=normalized, weight=None
            )
        )
        assert set(ours) == set(theirs)
        for edge, value in theirs.items():
            assert ours[edge] == pytest.approx(value, abs=1e-9)


class TestApproximateEdgeBetweenness:
    def test_all_pivots_equals_exact(self):
        g = path_graph(6)
        exact = edge_betweenness(g, normalized=False)
        approx = approximate_edge_betweenness(
            g, num_pivots=100, rng=np.random.default_rng(0), normalized=False
        )
        assert approx == exact

    def test_estimator_is_close_on_average(self):
        g, _ = random_snapshot_pair(num_nodes=40, num_edges=100, seed=35)
        exact = edge_betweenness(g, normalized=False)
        estimates = [
            approximate_edge_betweenness(
                g, num_pivots=20, rng=np.random.default_rng(s), normalized=False
            )
            for s in range(30)
        ]
        for edge, value in exact.items():
            mean = float(np.mean([e[edge] for e in estimates]))
            assert mean == pytest.approx(value, rel=0.35, abs=2.0)

    def test_invalid_pivots(self):
        with pytest.raises(ValueError):
            approximate_edge_betweenness(path_graph(3), num_pivots=0)

    def test_deterministic_given_rng(self):
        g, _ = random_snapshot_pair(seed=36)
        a = approximate_edge_betweenness(g, 5, rng=np.random.default_rng(1))
        b = approximate_edge_betweenness(g, 5, rng=np.random.default_rng(1))
        assert a == b
