"""Pruning-equivalence differential harness.

The Δ-aware pruning layer promises two things: byte-identical output
across the whole engine matrix (prune × incremental × worker count ×
CLI), and an untouched budget ledger — a skipped or level-cut traversal
charges exactly like the unpruned traversal it replaces, because the
paper's budget counts SSSP *results obtained*, not edges scanned.  This
suite pins both, cell by cell.
"""

from __future__ import annotations

import pytest

from conftest import path_graph, random_snapshot_pair
from repro.cli import main
from repro.core.algorithm import find_top_k_converging_pairs
from repro.core.pairs import (
    converging_pairs_at_threshold,
    top_k_converging_pairs,
)
from repro.graph.graph import Graph
from repro.selection import get_selector

WORKER_COUNTS = (1, 2, 4)


# ----------------------------------------------------------------------
# Ground-truth engines: prune × engine matrix
# ----------------------------------------------------------------------
class TestGroundTruthMatrix:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("k", [1, 5, 25])
    def test_top_k_identical_across_the_matrix(self, seed, k):
        g1, g2 = random_snapshot_pair(num_nodes=50, num_edges=120, seed=seed)
        ref = top_k_converging_pairs(g1, g2, k)
        for engine in ("incremental", "csr"):
            for prune in (False, True):
                assert (
                    top_k_converging_pairs(
                        g1, g2, k, engine=engine, prune=prune
                    )
                    == ref
                ), f"engine={engine} prune={prune}"

    @pytest.mark.parametrize("seed", [4, 5])
    @pytest.mark.parametrize("delta_min", [1, 2, 2.5])
    def test_threshold_identical_across_the_matrix(self, seed, delta_min):
        g1, g2 = random_snapshot_pair(num_nodes=50, num_edges=120, seed=seed)
        ref = converging_pairs_at_threshold(g1, g2, delta_min)
        for engine in ("incremental", "csr"):
            for prune in (False, True):
                assert (
                    converging_pairs_at_threshold(
                        g1, g2, delta_min, engine=engine, prune=prune
                    )
                    == ref
                ), f"engine={engine} prune={prune}"

    def test_no_inserted_edges_fully_pruned_run(self):
        # Identical snapshots: every source is provably skippable, so the
        # pruned pass does no t2 work at all — and must still agree.
        g = path_graph(30)
        assert top_k_converging_pairs(g, g.copy(), 5, prune=True) == []
        assert top_k_converging_pairs(g, g.copy(), 5) == []


# ----------------------------------------------------------------------
# Budgeted path: prune × workers, pairs and ledger identical
# ----------------------------------------------------------------------
def _outcome(result):
    return (
        result.pairs,
        result.candidates,
        result.budget.spent,
        result.budget.by_phase(),
    )


class TestBudgetedMatrix:
    @pytest.mark.parametrize("selector_name", ["Degree", "MMSD", "SumDiff"])
    def test_identical_across_prune_and_worker_counts(self, selector_name):
        g1, g2 = random_snapshot_pair(num_nodes=60, num_edges=140, seed=6)
        outcomes = set()
        for prune in (False, True):
            for workers in WORKER_COUNTS:
                result = find_top_k_converging_pairs(
                    g1, g2, k=12, m=10,
                    selector=get_selector(selector_name),
                    seed=11, workers=workers, prune=prune,
                )
                outcomes.add(repr(_outcome(result)))
        assert len(outcomes) == 1

    @pytest.mark.parametrize("k", [1, 3, 20])
    def test_small_k_prunes_hard_but_stays_identical(self, k):
        # Small k fills the tracker fast, maximising skips/cuts — the
        # regime where an unsound bound would actually bite.
        g1, g2 = random_snapshot_pair(num_nodes=60, num_edges=150, seed=7)
        base = find_top_k_converging_pairs(
            g1, g2, k=k, m=12, selector=get_selector("Degree"), seed=5
        )
        pruned = find_top_k_converging_pairs(
            g1, g2, k=k, m=12, selector=get_selector("Degree"), seed=5,
            prune=True,
        )
        assert _outcome(pruned) == _outcome(base)

    def test_skipped_traversals_still_charge_the_ledger(self):
        # Identical snapshots: with prune=True every candidate's t2
        # traversal is skipped outright, yet the ledger must not move by
        # a single charge — the budget counts SSSP results, and the
        # skipped traversal's result (all Δ ≤ 0) was still obtained.
        g = path_graph(40)
        base = find_top_k_converging_pairs(
            g, g.copy(), k=5, m=8, selector=get_selector("Degree"), seed=1
        )
        for workers in WORKER_COUNTS:
            pruned = find_top_k_converging_pairs(
                g, g.copy(), k=5, m=8, selector=get_selector("Degree"),
                seed=1, workers=workers, prune=True,
            )
            assert pruned.pairs == [] == base.pairs
            assert pruned.budget.spent == base.budget.spent
            assert pruned.budget.by_phase() == base.budget.by_phase()

    def test_cached_selector_rows_stay_free_under_prune(self):
        # Selectors that pre-pay rows (MMSD caches d1/d2 rows during
        # generation) keep them free in phase 2; pruning must not
        # re-charge or un-charge them.
        g1, g2 = random_snapshot_pair(num_nodes=50, num_edges=120, seed=8)
        base = find_top_k_converging_pairs(
            g1, g2, k=6, m=10, selector=get_selector("MMSD"), seed=2
        )
        pruned = find_top_k_converging_pairs(
            g1, g2, k=6, m=10, selector=get_selector("MMSD"), seed=2,
            prune=True,
        )
        assert pruned.budget.by_phase() == base.budget.by_phase()
        assert pruned.budget.spent == base.budget.spent
        assert pruned.pairs == base.pairs

    def test_prune_rejects_weighted_snapshots(self):
        g1 = Graph()
        g1.add_edge("a", "b", weight=2.0)
        g2 = g1.copy()
        g2.add_edge("b", "c", weight=3.0)
        with pytest.raises(ValueError, match="prune"):
            find_top_k_converging_pairs(
                g1, g2, k=2, m=2, selector=get_selector("Degree"),
                prune=True,
            )


# ----------------------------------------------------------------------
# CLI truth path: --prune output is byte-identical
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def stream_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("prune-cli") / "stream.tsv"
    rc = main(["generate", "facebook", "--scale", "0.2",
               "--out", str(path)])
    assert rc == 0
    return path


class TestCLIByteIdentity:
    @pytest.mark.parametrize("engine", ["auto", "incremental", "csr"])
    def test_truth_top_k_identical(self, engine, stream_path, capsys):
        capsys.readouterr()
        outputs = {}
        for flags in ((), ("--prune",)):
            rc = main(["truth", str(stream_path), "--k", "15",
                       "--engine", engine, *flags])
            assert rc == 0
            outputs[flags] = capsys.readouterr().out
        assert outputs[("--prune",)] == outputs[()]

    def test_truth_threshold_identical(self, stream_path, capsys):
        capsys.readouterr()
        outputs = {}
        for flags in ((), ("--prune",)):
            rc = main(["truth", str(stream_path), "--delta-offset", "2",
                       *flags])
            assert rc == 0
            outputs[flags] = capsys.readouterr().out
        assert outputs[("--prune",)] == outputs[()]

    def test_prune_with_dict_engine_is_a_usage_error(
        self, stream_path, capsys
    ):
        rc = main(["truth", str(stream_path), "--k", "5",
                   "--engine", "dict", "--prune"])
        assert rc == 2
        assert "--prune" in capsys.readouterr().err
