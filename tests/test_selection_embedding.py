"""Unit tests for the Orion-style coordinate-embedding extension."""

import numpy as np
import pytest

from repro.core.budget import SPBudget
from repro.selection import get_selector
from repro.selection.embedding import classical_mds, trilaterate

from conftest import path_graph


class TestClassicalMDS:
    def test_recovers_line_geometry(self):
        # Points on a line at 0, 3, 7: MDS must reproduce the distances.
        d = np.array([[0.0, 3.0, 7.0], [3.0, 0.0, 4.0], [7.0, 4.0, 0.0]])
        coords = classical_mds(d, 2)
        for i in range(3):
            for j in range(3):
                got = np.linalg.norm(coords[i] - coords[j])
                assert got == pytest.approx(d[i, j], abs=1e-8)

    def test_recovers_triangle(self):
        d = np.array([[0.0, 1.0, 1.0], [1.0, 0.0, 1.0], [1.0, 1.0, 0.0]])
        coords = classical_mds(d, 2)
        for i in range(3):
            for j in range(i + 1, 3):
                assert np.linalg.norm(coords[i] - coords[j]) == pytest.approx(
                    1.0, abs=1e-8
                )

    def test_output_shape(self):
        d = np.zeros((4, 4))
        assert classical_mds(d, 3).shape == (4, 3)

    def test_validation(self):
        with pytest.raises(ValueError, match="square"):
            classical_mds(np.zeros((2, 3)), 2)
        with pytest.raises(ValueError, match="dimensions"):
            classical_mds(np.zeros((2, 2)), 0)


class TestTrilateration:
    def test_exact_recovery_in_2d(self):
        landmarks = np.array([[0.0, 0.0], [4.0, 0.0], [0.0, 3.0]])
        point = np.array([2.0, 1.0])
        dists = np.linalg.norm(landmarks - point, axis=1)
        got = trilaterate(landmarks, dists)
        assert got == pytest.approx(point, abs=1e-8)

    def test_infinite_distances_ignored(self):
        landmarks = np.array([[0.0, 0.0], [4.0, 0.0], [0.0, 3.0], [9.0, 9.0]])
        point = np.array([2.0, 1.0])
        dists = np.append(np.linalg.norm(landmarks[:3] - point, axis=1), np.inf)
        got = trilaterate(landmarks, dists)
        assert got == pytest.approx(point, abs=1e-8)

    def test_underdetermined_falls_back_to_centroid(self):
        landmarks = np.array([[0.0, 0.0], [4.0, 0.0]])
        got = trilaterate(landmarks, np.array([1.0, np.inf]))
        assert got == pytest.approx([0.0, 0.0])

    def test_all_unreachable_gives_origin(self):
        landmarks = np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
        got = trilaterate(landmarks, np.full(3, np.inf))
        assert got == pytest.approx([0.0, 0.0])


class TestCoordDiffSelector:
    @pytest.fixture
    def chord_pair(self):
        g1 = path_graph(12)
        g2 = g1.copy()
        g2.add_edge(0, 11)
        return g1, g2

    def test_budget_split_matches_hybrids(self, chord_pair):
        g1, g2 = chord_pair
        selector = get_selector("CoordDiff", num_landmarks=3)
        budget = SPBudget(2 * 6)
        result = selector.select(g1, g2, 6, budget, np.random.default_rng(0))
        assert budget.spent == 6  # 2l
        assert len(result.candidates) == 6
        assert set(result.candidates[:3]) == set(result.d1_rows)

    def test_displaced_nodes_rank_high(self, chord_pair):
        g1, g2 = chord_pair
        # The chord ends move the most in the embedding; over several
        # seeds they should regularly appear among the ranked picks.
        hits = 0
        for seed in range(6):
            selector = get_selector("CoordDiff", num_landmarks=3)
            result = selector.select(
                g1, g2, 6, SPBudget(None), np.random.default_rng(seed)
            )
            hits += any(u in (0, 11) for u in result.candidates)
        assert hits >= 5

    @pytest.mark.parametrize("policy", ["maxmin", "maxavg", "random"])
    def test_all_landmark_policies_run(self, policy, chord_pair):
        g1, g2 = chord_pair
        selector = get_selector(
            "CoordDiff", num_landmarks=3, landmark_policy=policy
        )
        result = selector.select(
            g1, g2, 5, SPBudget(10), np.random.default_rng(1)
        )
        assert len(result.candidates) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            get_selector("CoordDiff", num_landmarks=0)
        with pytest.raises(ValueError):
            get_selector("CoordDiff", dimensions=0)
        with pytest.raises(ValueError):
            get_selector("CoordDiff", landmark_policy="orion")

    def test_no_change_scores_zero_everywhere(self, path5):
        selector = get_selector("CoordDiff", num_landmarks=2)
        result = selector.select(
            path5, path5, 4, SPBudget(None), np.random.default_rng(0)
        )
        assert len(result.candidates) == 4
