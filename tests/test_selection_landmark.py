"""Unit tests for the landmark-based selectors (SumDiff / MaxDiff)."""

import numpy as np
import pytest

from repro.core.budget import SPBudget
from repro.graph.graph import Graph
from repro.selection import get_selector
from repro.selection.landmark import (
    assemble_candidates,
    effective_num_landmarks,
    sample_landmarks,
)

from conftest import path_graph


def run(name, g1, g2, m, l=2, seed=0):
    selector = get_selector(name, num_landmarks=l)
    budget = SPBudget(2 * m)
    result = selector.select(g1, g2, m, budget, rng=np.random.default_rng(seed))
    return result, budget


class TestHelpers:
    def test_effective_num_landmarks_clamps(self):
        assert effective_num_landmarks(10, 100) == 10
        assert effective_num_landmarks(10, 12) == 6
        assert effective_num_landmarks(10, 100, tables=3) == 10
        assert effective_num_landmarks(10, 30, tables=3) == 5
        assert effective_num_landmarks(10, 2) == 1

    def test_effective_num_landmarks_rejects_tiny_budget(self):
        with pytest.raises(ValueError, match="m >= 2"):
            effective_num_landmarks(10, 1)

    def test_sample_landmarks_distinct(self, path5):
        lms = sample_landmarks(path5, 3, np.random.default_rng(0))
        assert len(set(lms)) == 3
        assert all(u in path5 for u in lms)

    def test_sample_landmarks_too_many(self, path5):
        with pytest.raises(ValueError):
            sample_landmarks(path5, 6, np.random.default_rng(0))

    def test_sample_deterministic(self, path5):
        a = sample_landmarks(path5, 2, np.random.default_rng(5))
        b = sample_landmarks(path5, 2, np.random.default_rng(5))
        assert a == b

    def test_assemble_candidates_landmarks_first(self):
        scores = {0: 0.0, 1: 9.0, 2: 5.0, 3: 1.0}
        out = assemble_candidates([2, 0], scores, 3)
        assert out == [2, 0, 1]

    def test_assemble_respects_m(self):
        scores = {i: float(i) for i in range(10)}
        out = assemble_candidates([0, 1, 2], scores, 2)
        assert out == [0, 1]


class TestSumDiffMaxDiff:
    @pytest.fixture
    def chord_pair(self):
        """Path 0..7; t2 adds chord (0, 7)."""
        g1 = path_graph(8)
        g2 = g1.copy()
        g2.add_edge(0, 7)
        return g1, g2

    @pytest.mark.parametrize("name", ["SumDiff", "MaxDiff"])
    def test_budget_split(self, name, chord_pair):
        g1, g2 = chord_pair
        result, budget = run(name, g1, g2, m=5, l=2)
        # 2l generation; landmarks cached in both snapshots.
        assert budget.spent == 4
        assert budget.by_phase() == {"generation": 4}
        assert len(result.d1_rows) == 2
        assert len(result.d2_rows) == 2

    @pytest.mark.parametrize("name", ["SumDiff", "MaxDiff"])
    def test_candidate_count_is_m(self, name, chord_pair):
        result, _ = run(name, *chord_pair, m=5, l=2)
        assert len(result.candidates) == 5
        assert len(set(result.candidates)) == 5

    @pytest.mark.parametrize("name", ["SumDiff", "MaxDiff"])
    def test_landmarks_lead_the_candidate_list(self, name, chord_pair):
        result, _ = run(name, *chord_pair, m=5, l=2)
        assert set(result.candidates[:2]) == set(result.d1_rows)

    def test_high_scoring_nodes_selected(self, chord_pair):
        g1, g2 = chord_pair
        # With enough repetitions over random landmark draws, the chord
        # endpoints 0/7 (the nodes that actually converged) must appear
        # among the score-ranked candidates almost always.
        hits = 0
        for seed in range(10):
            result, _ = run("SumDiff", g1, g2, m=4, l=2, seed=seed)
            ranked_part = result.candidates[2:]
            hits += any(u in (0, 7) for u in ranked_part)
        assert hits >= 8

    def test_num_landmarks_validation(self):
        with pytest.raises(ValueError):
            get_selector("SumDiff", num_landmarks=0)

    def test_small_budget_clamps_landmarks(self, chord_pair):
        g1, g2 = chord_pair
        result, budget = run("SumDiff", g1, g2, m=2, l=10)
        # effective l = 1: 2 generation SSSPs, 1 landmark + 1 ranked.
        assert budget.by_phase() == {"generation": 2}
        assert len(result.candidates) == 2

    def test_identical_snapshots_give_zero_scores(self, path5):
        result, _ = run("SumDiff", path5, path5, m=3, l=1)
        # All scores zero -> ranked part falls back to deterministic order.
        assert len(result.candidates) == 3

    def test_rng_default_when_not_provided(self, chord_pair):
        g1, g2 = chord_pair
        selector = get_selector("SumDiff", num_landmarks=2)
        result = selector.select(g1, g2, 4, SPBudget(None))
        assert len(result.candidates) == 4
