"""Unit tests for repro.core.algorithm (Algorithm 1)."""

import pytest

from repro.core.algorithm import find_top_k_converging_pairs
from repro.core.budget import BudgetExceededError, SPBudget
from repro.core.pairgraph import PairGraph
from repro.core.pairs import converging_pairs_at_threshold, top_k_converging_pairs
from repro.graph.graph import Graph
from repro.graph.validation import GraphValidationError
from repro.selection.base import CandidateSelector, SelectionResult
from repro.selection.oracle import GreedyCoverOracle

from conftest import path_graph, random_snapshot_pair


class FixedSelector(CandidateSelector):
    """Test double returning a fixed candidate list (no generation cost)."""

    name = "Fixed"

    def __init__(self, candidates, d1_rows=None, d2_rows=None,
                 generation_cost=0):
        self.candidates = candidates
        self.d1_rows = d1_rows or {}
        self.d2_rows = d2_rows or {}
        self.generation_cost = generation_cost

    def select(self, g1, g2, m, budget, rng=None):
        if self.generation_cost:
            budget.charge("generation", "g1", self.generation_cost)
        return SelectionResult(
            candidates=list(self.candidates),
            d1_rows=dict(self.d1_rows),
            d2_rows=dict(self.d2_rows),
        )


class TestBasicOperation:
    def test_finds_pair_via_candidate(self, shortcut_pair):
        g1, g2 = shortcut_pair
        result = find_top_k_converging_pairs(
            g1, g2, k=1, m=1, selector=FixedSelector([0])
        )
        assert result.pairs[0].pair == (0, 5)
        assert result.pairs[0].delta == 4

    def test_misses_pair_without_covering_candidate(self, shortcut_pair):
        g1, g2 = shortcut_pair
        result = find_top_k_converging_pairs(
            g1, g2, k=1, m=1, selector=FixedSelector([2])
        )
        # Node 2's best converging partner is weaker than (0, 5).
        assert result.pairs == [] or result.pairs[0].pair != (0, 5)

    def test_no_duplicate_pairs_when_both_endpoints_selected(self, shortcut_pair):
        g1, g2 = shortcut_pair
        result = find_top_k_converging_pairs(
            g1, g2, k=10, m=2, selector=FixedSelector([0, 5])
        )
        assert len({p.pair for p in result.pairs}) == len(result.pairs)

    def test_pairs_ranked_by_delta(self, shortcut_pair):
        g1, g2 = shortcut_pair
        result = find_top_k_converging_pairs(
            g1, g2, k=10, m=2, selector=FixedSelector([0, 5])
        )
        deltas = [p.delta for p in result.pairs]
        assert deltas == sorted(deltas, reverse=True)

    def test_zero_delta_pairs_excluded(self, path5):
        result = find_top_k_converging_pairs(
            path5, path5, k=5, m=2, selector=FixedSelector([0, 1])
        )
        assert result.pairs == []

    def test_candidates_recorded(self, shortcut_pair):
        g1, g2 = shortcut_pair
        result = find_top_k_converging_pairs(
            g1, g2, k=1, m=2, selector=FixedSelector([0, 3])
        )
        assert result.candidates == [0, 3]

    def test_found_pair_set(self, shortcut_pair):
        g1, g2 = shortcut_pair
        result = find_top_k_converging_pairs(
            g1, g2, k=3, m=1, selector=FixedSelector([0])
        )
        assert (0, 5) in result.found_pair_set()


class TestArgumentValidation:
    def test_bad_k(self, shortcut_pair):
        with pytest.raises(ValueError, match="k"):
            find_top_k_converging_pairs(
                *shortcut_pair, k=0, m=1, selector=FixedSelector([0])
            )

    def test_bad_m(self, shortcut_pair):
        with pytest.raises(ValueError, match="m"):
            find_top_k_converging_pairs(
                *shortcut_pair, k=1, m=0, selector=FixedSelector([0])
            )

    def test_snapshot_validation_on_by_default(self):
        g1, g2 = path_graph(4), path_graph(3)
        with pytest.raises(GraphValidationError):
            find_top_k_converging_pairs(
                g1, g2, k=1, m=1, selector=FixedSelector([0])
            )

    def test_selector_overreturning_candidates_rejected(self, shortcut_pair):
        with pytest.raises(ValueError, match="candidates"):
            find_top_k_converging_pairs(
                *shortcut_pair, k=1, m=1, selector=FixedSelector([0, 1, 2])
            )


class TestBudget:
    def test_budget_spent_is_two_per_candidate(self, shortcut_pair):
        result = find_top_k_converging_pairs(
            *shortcut_pair, k=1, m=3, selector=FixedSelector([0, 2, 4])
        )
        assert result.budget.spent == 6
        assert result.budget.by_phase() == {"topk": 6}

    def test_cached_rows_not_recharged(self, shortcut_pair):
        g1, g2 = shortcut_pair
        from repro.graph.traversal import bfs_distances

        selector = FixedSelector(
            [0],
            d1_rows={0: dict(bfs_distances(g1, 0))},
            d2_rows={0: dict(bfs_distances(g2, 0))},
        )
        result = find_top_k_converging_pairs(g1, g2, k=1, m=1, selector=selector)
        assert result.budget.spent == 0
        assert result.pairs[0].pair == (0, 5)

    def test_generation_cost_counts_against_budget(self, shortcut_pair):
        selector = FixedSelector([0], generation_cost=1)
        result = find_top_k_converging_pairs(
            *shortcut_pair, k=1, m=2, selector=selector
        )
        assert result.budget.spent == 3  # 1 generation + 2 topk

    def test_budget_overdraft_raises(self, shortcut_pair):
        # Generation eats the whole 2m budget; candidate SSSPs overdraw.
        selector = FixedSelector([0], generation_cost=2)
        with pytest.raises(BudgetExceededError):
            find_top_k_converging_pairs(
                *shortcut_pair, k=1, m=1, selector=selector
            )

    def test_budget_limit_override(self, shortcut_pair):
        result = find_top_k_converging_pairs(
            *shortcut_pair, k=1, m=1, selector=FixedSelector([0]),
            budget_limit=None,
        )
        assert result.budget.limit is None


class TestWithOracle:
    def test_oracle_recovers_full_truth(self):
        g1, g2 = random_snapshot_pair(seed=61)
        truth = converging_pairs_at_threshold(g1, g2, 1)
        if not truth:
            pytest.skip("degenerate random instance")
        pg = PairGraph(truth)
        cover_size = len(
            find_top_k_converging_pairs(
                g1, g2, k=len(truth), m=pg.num_endpoints,
                selector=GreedyCoverOracle(pg), validate=False,
            ).candidates
        )
        result = find_top_k_converging_pairs(
            g1, g2, k=len(truth), m=max(cover_size, 1),
            selector=GreedyCoverOracle(pg), validate=False,
        )
        assert result.found_pair_set() == {p.pair for p in truth}

    def test_oracle_matches_exact_top_k(self, shortcut_pair):
        g1, g2 = shortcut_pair
        truth = top_k_converging_pairs(g1, g2, k=3)
        pg = PairGraph(truth)
        result = find_top_k_converging_pairs(
            g1, g2, k=3, m=3, selector=GreedyCoverOracle(pg)
        )
        assert result.found_pair_set() == {p.pair for p in truth}


class TestCSRScoringPath:
    """The vectorised top-k phase must handle every cache mix exactly
    like the dict path (which the weighted branch still uses)."""

    def _run_both(self, g1, g2, selector, k=5, m=5):
        from repro.core import algorithm as alg

        fast = find_top_k_converging_pairs(g1, g2, k=k, m=m,
                                           selector=selector, seed=0)
        original = alg._score_candidates_csr
        alg._score_candidates_csr = alg._score_candidates_dict
        try:
            ref = find_top_k_converging_pairs(g1, g2, k=k, m=m,
                                              selector=selector, seed=0)
        finally:
            alg._score_candidates_csr = original
        return fast, ref

    def test_no_cached_rows(self, shortcut_pair):
        g1, g2 = shortcut_pair
        fast, ref = self._run_both(g1, g2, FixedSelector([0, 3]))
        assert [(p.pair, p.d1, p.d2) for p in fast.pairs] == [
            (p.pair, p.d1, p.d2) for p in ref.pairs
        ]
        assert fast.budget.spent == ref.budget.spent == 4

    def test_d1_cached_only(self, shortcut_pair):
        g1, g2 = shortcut_pair
        from repro.graph.traversal import bfs_distances

        selector = FixedSelector(
            [0], d1_rows={0: dict(bfs_distances(g1, 0))}
        )
        fast, ref = self._run_both(g1, g2, selector)
        assert fast.budget.spent == ref.budget.spent == 1
        assert fast.found_pair_set() == ref.found_pair_set()

    def test_d2_cached_only(self, shortcut_pair):
        g1, g2 = shortcut_pair
        from repro.graph.traversal import bfs_distances

        selector = FixedSelector(
            [0], d2_rows={0: dict(bfs_distances(g2, 0))}
        )
        fast, ref = self._run_both(g1, g2, selector)
        assert fast.budget.spent == ref.budget.spent == 1
        assert fast.found_pair_set() == ref.found_pair_set()

    def test_both_cached(self, shortcut_pair):
        g1, g2 = shortcut_pair
        from repro.graph.traversal import bfs_distances

        selector = FixedSelector(
            [0],
            d1_rows={0: dict(bfs_distances(g1, 0))},
            d2_rows={0: dict(bfs_distances(g2, 0))},
        )
        fast, ref = self._run_both(g1, g2, selector)
        assert fast.budget.spent == ref.budget.spent == 0
        assert fast.pairs[0].pair == (0, 5)

    def test_new_t2_nodes_do_not_confuse_alignment(self):
        # G_t2 gains nodes; level arrays must align on V_t1 only.
        g1 = Graph([(0, 1), (1, 2), (2, 3)])
        g2 = g1.copy()
        g2.add_edge(3, 9)   # new node 9
        g2.add_edge(9, 0)   # ... closing a cycle through it
        fast, ref = self._run_both(g1, g2, FixedSelector([0, 3]), k=5, m=2)
        assert fast.found_pair_set() == ref.found_pair_set()
        assert (0, 3) in fast.found_pair_set()  # 3 -> 2 via node 9

    def test_weighted_pair_uses_dict_path(self):
        g1 = Graph([(0, 1, 2.0), (1, 2, 2.0)])
        g2 = g1.copy()
        g2.add_edge(0, 2, 0.5)
        result = find_top_k_converging_pairs(
            g1, g2, k=2, m=2, selector=FixedSelector([0, 2])
        )
        assert result.pairs[0].delta == pytest.approx(3.5)
