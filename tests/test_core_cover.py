"""Unit tests for repro.core.cover (greedy vertex cover / max coverage)."""

import itertools

import pytest

from repro.core.cover import greedy_max_coverage, greedy_vertex_cover
from repro.core.pairgraph import PairGraph

from conftest import random_snapshot_pair


def brute_force_min_cover(pg: PairGraph) -> int:
    """Size of a true minimum vertex cover (exponential; small inputs only)."""
    nodes = sorted(pg.endpoints(), key=repr)
    for size in range(len(nodes) + 1):
        for combo in itertools.combinations(nodes, size):
            if pg.is_vertex_cover(combo):
                return size
    return 0


class TestGreedyVertexCover:
    def test_star_covered_by_hub(self):
        pg = PairGraph([(0, i) for i in range(1, 6)])
        assert greedy_vertex_cover(pg) == [0]

    def test_result_is_a_cover(self):
        pg = PairGraph([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
        cover = greedy_vertex_cover(pg)
        assert pg.is_vertex_cover(cover)

    def test_empty_pairgraph(self):
        assert greedy_vertex_cover(PairGraph([])) == []

    def test_single_pair(self):
        cover = greedy_vertex_cover(PairGraph([(7, 9)]))
        assert len(cover) == 1
        assert cover[0] in (7, 9)

    def test_pick_order_is_most_covering_first(self):
        # Node 5 covers 4 pairs, others cover <= 2.
        pg = PairGraph([(5, 1), (5, 2), (5, 3), (5, 4), (1, 2)])
        cover = greedy_vertex_cover(pg)
        assert cover[0] == 5

    def test_deterministic(self):
        g1, g2 = random_snapshot_pair(seed=51)
        from repro.core.pairs import converging_pairs_at_threshold

        pairs = converging_pairs_at_threshold(g1, g2, 1)
        pg = PairGraph(pairs)
        assert greedy_vertex_cover(pg) == greedy_vertex_cover(pg)

    @pytest.mark.parametrize("seed", [52, 53, 54])
    def test_within_log_factor_of_optimum(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        pairs = set()
        while len(pairs) < 10:
            u, v = int(rng.integers(8)), int(rng.integers(8))
            if u != v:
                pairs.add((min(u, v), max(u, v)))
        pg = PairGraph(pairs)
        greedy = greedy_vertex_cover(pg)
        optimum = brute_force_min_cover(pg)
        assert pg.is_vertex_cover(greedy)
        # ln(10) ≈ 2.3; the greedy guarantee is H(d_max) * OPT.
        assert len(greedy) <= 3 * optimum

    def test_lazy_greedy_equals_plain_greedy(self):
        """The heap-based implementation must match naive greedy exactly."""
        g1, g2 = random_snapshot_pair(num_nodes=40, num_edges=100, seed=55)
        from repro.core.pairs import converging_pairs_at_threshold, canonical_pair

        pg = PairGraph(converging_pairs_at_threshold(g1, g2, 1))
        # Naive reference implementation.
        uncovered = pg.pairs()
        naive = []
        while uncovered:
            best = min(
                pg.endpoints(),
                key=lambda u: (
                    -sum(
                        1
                        for v in pg.partners(u)
                        if canonical_pair(u, v) in uncovered
                    ),
                    repr(u),
                ),
            )
            gain = sum(
                1 for v in pg.partners(best) if canonical_pair(best, v) in uncovered
            )
            if gain == 0:
                break
            naive.append(best)
            for v in pg.partners(best):
                uncovered.discard(canonical_pair(best, v))
        assert greedy_vertex_cover(pg) == naive


class TestGreedyMaxCoverage:
    def test_prefix_of_full_cover(self):
        pg = PairGraph([(0, 1), (0, 2), (0, 3), (3, 4), (5, 6)])
        full = greedy_vertex_cover(pg)
        assert greedy_max_coverage(pg, 2) == full[:2]

    def test_budget_zero(self):
        pg = PairGraph([(0, 1)])
        assert greedy_max_coverage(pg, 0) == []

    def test_negative_budget_raises(self):
        with pytest.raises(ValueError):
            greedy_max_coverage(PairGraph([]), -1)

    def test_budget_exceeding_cover_size(self):
        pg = PairGraph([(0, 1), (0, 2)])
        assert greedy_max_coverage(pg, 10) == [0]

    def test_greedy_is_competitive_with_best_single(self):
        pg = PairGraph([(0, 1), (0, 2), (1, 2), (3, 0)])
        picked = greedy_max_coverage(pg, 1)
        best_single = max(pg.endpoints(), key=pg.pair_degree)
        assert pg.pair_degree(picked[0]) == pg.pair_degree(best_single)


class TestExactMinVertexCover:
    def test_matches_brute_force(self):
        import numpy as np

        from repro.core.cover import exact_min_vertex_cover

        rng = np.random.default_rng(61)
        for _ in range(8):
            pairs = set()
            while len(pairs) < 9:
                u, v = int(rng.integers(7)), int(rng.integers(7))
                if u != v:
                    pairs.add((min(u, v), max(u, v)))
            pg = PairGraph(pairs)
            exact = exact_min_vertex_cover(pg)
            assert pg.is_vertex_cover(exact)
            assert len(exact) == brute_force_min_cover(pg)

    def test_never_worse_than_greedy(self):
        from repro.core.cover import exact_min_vertex_cover

        from conftest import random_snapshot_pair
        from repro.core.pairs import converging_pairs_at_threshold

        g1, g2 = random_snapshot_pair(num_nodes=30, num_edges=70, seed=62)
        pairs = converging_pairs_at_threshold(g1, g2, 2)
        pg = PairGraph(pairs)
        if pg.num_pairs == 0:
            pytest.skip("degenerate instance")
        exact = exact_min_vertex_cover(pg)
        assert len(exact) <= len(greedy_vertex_cover(pg))
        assert pg.is_vertex_cover(exact)

    def test_known_greedy_gap_instance(self):
        """A crown-like instance where greedy overshoots the optimum."""
        from repro.core.cover import exact_min_vertex_cover

        # Star center a covers 4 pairs; but {b1..b4} also must be covered
        # pairwise... construct: center a paired to b1..b3, and b1-b2,
        # b2-b3: optimum {a, b2} (2) vs greedy could pick a then two more.
        pg = PairGraph([("a", "b1"), ("a", "b2"), ("a", "b3"),
                        ("b1", "b2"), ("b2", "b3")])
        exact = exact_min_vertex_cover(pg)
        assert len(exact) == 2
        assert set(exact) == {"a", "b2"}

    def test_empty(self):
        from repro.core.cover import exact_min_vertex_cover

        assert exact_min_vertex_cover(PairGraph([])) == []

    def test_size_guard(self):
        from repro.core.cover import exact_min_vertex_cover

        pg = PairGraph([(i, i + 1) for i in range(0, 600, 2)])
        with pytest.raises(ValueError, match="limited"):
            exact_min_vertex_cover(pg)
        # Explicit opt-in raises the cap.
        result = exact_min_vertex_cover(pg, max_pairs=1000)
        assert pg.is_vertex_cover(result)
