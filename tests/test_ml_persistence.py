"""Unit tests for model save/load."""

import numpy as np
import pytest

from repro.datasets.generators import community_bridge_stream
from repro.ml.persistence import (
    ModelPersistenceError,
    load_model,
    save_model,
)
from repro.ml.training import (
    TrainedModel,
    train_global_classifier,
    train_local_classifier,
)


@pytest.fixture(scope="module")
def local_model():
    stream = community_bridge_stream(150, num_communities=5, seed=3)
    return train_local_classifier(stream, num_landmarks=3, seed=0)


@pytest.fixture(scope="module")
def global_model():
    streams = {
        "a": community_bridge_stream(150, num_communities=5, seed=3),
        "b": community_bridge_stream(120, num_communities=4, seed=4),
    }
    return train_global_classifier(streams, num_landmarks=3, seed=0)


class TestRoundTrip:
    @pytest.mark.parametrize("fixture", ["local_model", "global_model"])
    def test_roundtrip_preserves_predictions(self, fixture, request, tmp_path):
        model = request.getfixturevalue(fixture)
        path = tmp_path / "model.npz"
        save_model(model, path)
        loaded = load_model(path)

        X = np.random.default_rng(0).normal(
            size=(20, len(model.feature_names))
        )
        assert loaded.score_nodes(X) == pytest.approx(model.score_nodes(X))

    def test_metadata_preserved(self, local_model, tmp_path):
        path = tmp_path / "model.npz"
        save_model(local_model, path)
        loaded = load_model(path)
        assert loaded.feature_names == local_model.feature_names
        assert loaded.uses_graph_features == local_model.uses_graph_features
        assert loaded.num_landmarks == local_model.num_landmarks
        assert loaded.positive_fraction == pytest.approx(
            local_model.positive_fraction
        )

    def test_loaded_model_drives_selector(self, local_model, tmp_path):
        from repro.selection import LocalClassifierSelector

        path = tmp_path / "model.npz"
        save_model(local_model, path)
        selector = LocalClassifierSelector(load_model(path))
        assert selector.model.num_landmarks == local_model.num_landmarks

    def test_extension_appended_automatically(self, local_model, tmp_path):
        # np.savez appends .npz when missing; load must find the file.
        bare = tmp_path / "model"
        save_model(local_model, bare)
        loaded = load_model(bare)
        assert loaded.feature_names == local_model.feature_names


class TestValidation:
    def test_unfitted_model_rejected(self, tmp_path):
        from repro.ml.logistic import LogisticRegression
        from repro.ml.scaling import MinMaxScaler

        bundle = TrainedModel(
            model=LogisticRegression(),
            scaler=MinMaxScaler(),
            feature_names=("a",),
            uses_graph_features=False,
            num_landmarks=1,
            positive_fraction=0.0,
        )
        with pytest.raises(ModelPersistenceError, match="unfitted"):
            save_model(bundle, tmp_path / "m.npz")

    def test_missing_field_rejected(self, local_model, tmp_path):
        path = tmp_path / "model.npz"
        save_model(local_model, path)
        with np.load(path) as archive:
            data = {k: archive[k] for k in archive if k != "coef"}
        np.savez(path, **data)
        with pytest.raises(ModelPersistenceError, match="coef"):
            load_model(path)

    def test_wrong_version_rejected(self, local_model, tmp_path):
        path = tmp_path / "model.npz"
        save_model(local_model, path)
        with np.load(path) as archive:
            data = {k: archive[k] for k in archive}
        data["format_version"] = np.array(99)
        np.savez(path, **data)
        with pytest.raises(ModelPersistenceError, match="version"):
            load_model(path)

    def test_shape_mismatch_rejected(self, local_model, tmp_path):
        path = tmp_path / "model.npz"
        save_model(local_model, path)
        with np.load(path) as archive:
            data = {k: archive[k] for k in archive}
        data["coef"] = np.zeros(3)
        np.savez(path, **data)
        with pytest.raises(ModelPersistenceError, match="does not match"):
            load_model(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_model(tmp_path / "nope.npz")
