"""Edge-case hardening: trivial, degenerate, and adversarial inputs.

Production users feed pipelines empty streams, single-edge graphs, and
already-converged snapshots; none of those should crash or mis-report.
"""

import pytest

from repro.core.algorithm import find_top_k_converging_pairs
from repro.core.pairs import (
    converging_pairs_at_threshold,
    delta_histogram,
    top_k_converging_pairs,
)
from repro.graph.dynamic import TemporalGraph
from repro.graph.graph import Graph
from repro.selection import get_selector
from repro.selection.base import CandidateSelector, SelectionResult

from conftest import path_graph


class TestTrivialGraphs:
    def test_single_edge_pipeline(self):
        g1 = Graph([(0, 1)])
        g2 = g1.copy()
        result = find_top_k_converging_pairs(
            g1, g2, k=1, m=1, selector=get_selector("Degree")
        )
        assert result.pairs == []

    def test_two_node_stream(self):
        tg = TemporalGraph([(0, "a", "b")])
        g1, g2 = tg.snapshot_pair(1.0, 1.0)
        assert delta_histogram(g1, g2) == {0: 1}

    def test_identical_snapshots_no_pairs(self, path5):
        assert top_k_converging_pairs(path5, path5, k=10) == []
        result = find_top_k_converging_pairs(
            path5, path5, k=5, m=3, selector=get_selector("DegRel")
        )
        assert result.pairs == []

    def test_m_exceeding_node_count(self, shortcut_pair):
        g1, g2 = shortcut_pair
        result = find_top_k_converging_pairs(
            g1, g2, k=3, m=50, selector=get_selector("Degree")
        )
        # All 6 nodes become candidates; budget covers them comfortably.
        assert len(result.candidates) == 6
        assert result.pairs[0].pair == (0, 5)

    def test_star_collapse(self):
        # Everything at distance 2 through the hub; adding rim edges
        # converges rim pairs by exactly 1.
        g1 = Graph([(0, i) for i in range(1, 6)])
        g2 = g1.copy()
        g2.add_edge(1, 2)
        pairs = converging_pairs_at_threshold(g1, g2, 1)
        assert {p.pair for p in pairs} == {(1, 2)}


class TestMisbehavedSelectors:
    class Duplicates(CandidateSelector):
        name = "Dup"

        def select(self, g1, g2, m, budget, rng=None):
            first = next(iter(g1.nodes()))
            return SelectionResult(candidates=[first, first])

    class Foreign(CandidateSelector):
        name = "Foreign"

        def select(self, g1, g2, m, budget, rng=None):
            return SelectionResult(candidates=["not-a-node"])

    def test_duplicate_candidates_rejected(self, shortcut_pair):
        with pytest.raises(ValueError, match="duplicate"):
            find_top_k_converging_pairs(
                *shortcut_pair, k=1, m=5, selector=self.Duplicates()
            )

    def test_foreign_candidates_rejected(self, shortcut_pair):
        with pytest.raises(ValueError, match="not a node"):
            find_top_k_converging_pairs(
                *shortcut_pair, k=1, m=5, selector=self.Foreign()
            )


class TestStringNodeIds:
    def test_full_pipeline_with_string_ids(self):
        tg = TemporalGraph(
            [(t, f"user{u}", f"user{v}") for t, (u, v) in enumerate(
                [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)]
            )]
        )
        g1, g2 = tg.snapshot_pair(5 / 6, 1.0)
        result = find_top_k_converging_pairs(
            g1, g2, k=2, m=3, selector=get_selector("DegDiff"), seed=0
        )
        assert result.pairs
        assert all(isinstance(p.u, str) for p in result.pairs)

    def test_mixed_id_types_do_not_crash_sorting(self):
        g1 = Graph([("a", 1), (1, 2), (2, "b")])
        g2 = g1.copy()
        g2.add_edge("a", "b")
        pairs = converging_pairs_at_threshold(g1, g2, 1)
        assert pairs  # ("a", "b") converged by 2
        assert pairs[0].delta == 2
