"""Differential tests for the incremental delta-BFS engine.

The contract under test (docs/perf.md): repairing a t1 level array
through :class:`SnapshotDelta` yields levels **bit-identical** to an
independent full BFS on ``G_t2`` — for every source, including sources
that only exist in ``G_t2`` — and plugging the repair into Algorithm 1
changes no budget ledger entry (a repaired t2 traversal still charges
as one SSSP).
"""

import numpy as np
import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithm import find_top_k_converging_pairs
from repro.graph.csr import UNREACHED, bfs_levels
from repro.graph.graph import Graph
from repro.graph.incremental import (
    SnapshotDelta,
    levels_pair,
    levels_pair_indexed,
    repair_levels,
)
from repro.selection.base import CandidateSelector, SelectionResult

from conftest import random_snapshot_pair, to_networkx


def full_levels(delta: SnapshotDelta, source) -> np.ndarray:
    """The independent full-BFS t2 reference row for ``source``."""
    return bfs_levels(delta.csr2, delta.csr2.index[source])


class TestSnapshotDelta:
    def test_counts_inserted_edges_and_nodes(self, shortcut_pair):
        g1, g2 = shortcut_pair
        delta = SnapshotDelta.from_graphs(g1, g2)
        assert delta.num_new_edges == 1
        assert delta.num_new_nodes == 0

    def test_counts_new_nodes(self, shortcut_pair):
        g1, g2 = shortcut_pair
        g2 = g2.copy()
        g2.add_edge(5, "fresh")
        g2.add_node("isolated")
        delta = SnapshotDelta.from_graphs(g1, g2)
        assert delta.num_new_nodes == 2
        assert delta.num_new_edges == 2

    def test_source_index_is_t1_index(self, shortcut_pair):
        delta = SnapshotDelta.from_graphs(*shortcut_pair)
        assert delta.source_index(0) == delta.csr1.index[0]
        assert delta.source_index("nowhere") is None

    def test_rejects_deleted_node(self):
        g1 = Graph([(0, 1), (1, 2)])
        g2 = Graph([(0, 1)])
        with pytest.raises(ValueError, match="subgraph"):
            SnapshotDelta.from_graphs(g1, g2)

    def test_rejects_deleted_edge(self):
        g1 = Graph([(0, 1), (1, 2)])
        g2 = Graph([(0, 1), (0, 2)])
        g2.add_node(1)
        with pytest.raises(ValueError, match="subgraph"):
            SnapshotDelta.from_graphs(g1, g2)


class TestRepairExactness:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_matches_full_bfs_for_every_source(self, seed):
        g1, g2 = random_snapshot_pair(num_nodes=35, num_edges=90, seed=seed)
        delta = SnapshotDelta.from_graphs(g1, g2)
        for i, source in enumerate(delta.csr1.nodes):
            lv1, lv2 = levels_pair_indexed(delta, i)
            want = full_levels(delta, source)
            assert lv2.dtype == want.dtype
            assert np.array_equal(lv2, want)
            assert np.array_equal(lv1, bfs_levels(delta.csr1, i))

    def test_shortcut_pair_repair(self, shortcut_pair):
        delta = SnapshotDelta.from_graphs(*shortcut_pair)
        lv1, lv2 = levels_pair_indexed(delta, delta.csr1.index[0])
        assert lv1[delta.csr1.index[5]] == 5
        assert lv2[delta.csr2.index[5]] == 1

    def test_identical_snapshots_are_a_no_op(self, shortcut_pair):
        g1, _ = shortcut_pair
        delta = SnapshotDelta.from_graphs(g1, g1)
        assert delta.num_new_edges == 0
        lv1 = bfs_levels(delta.csr1, 0)
        lv2 = repair_levels(delta, lv1)
        assert np.array_equal(lv2[delta.mapping], lv1)

    def test_disconnected_region_stays_unreached(self):
        g1 = Graph([(0, 1)])
        g1.add_node(9)
        g2 = g1.copy()
        g2.add_edge(1, 2)
        delta = SnapshotDelta.from_graphs(g1, g2)
        _, lv2 = levels_pair_indexed(delta, delta.csr1.index[0])
        assert lv2[delta.csr2.index[9]] == UNREACHED
        assert lv2[delta.csr2.index[2]] == 2

    def test_rejects_wrong_shape(self, shortcut_pair):
        delta = SnapshotDelta.from_graphs(*shortcut_pair)
        with pytest.raises(ValueError, match="shape"):
            repair_levels(delta, np.zeros(99, dtype=np.int32))

    @pytest.mark.parametrize("seed", [7, 8])
    def test_networkx_oracle(self, seed):
        g1, g2 = random_snapshot_pair(num_nodes=25, num_edges=60, seed=seed)
        delta = SnapshotDelta.from_graphs(g1, g2)
        nxg2 = to_networkx(g2)
        for i, source in enumerate(delta.csr1.nodes):
            _, lv2 = levels_pair_indexed(delta, i)
            oracle = nx.single_source_shortest_path_length(nxg2, source)
            for j, v in enumerate(delta.csr2.nodes):
                assert lv2[j] == oracle.get(v, UNREACHED)


class TestLevelsPair:
    def test_one_off_builds_its_own_delta(self, shortcut_pair):
        g1, g2 = shortcut_pair
        lv1, lv2 = levels_pair(g1, g2, 0)
        delta = SnapshotDelta.from_graphs(g1, g2)
        ref1, ref2 = levels_pair_indexed(delta, delta.csr1.index[0])
        assert np.array_equal(lv1, ref1)
        assert np.array_equal(lv2, ref2)

    def test_precomputed_delta_is_reused(self, shortcut_pair):
        g1, g2 = shortcut_pair
        delta = SnapshotDelta.from_graphs(g1, g2)
        lv1, lv2 = levels_pair(g1, g2, 3, delta=delta)
        assert np.array_equal(lv2, full_levels(delta, 3))
        assert np.array_equal(lv1, bfs_levels(delta.csr1, delta.csr1.index[3]))

    def test_new_node_source_falls_back_to_full_bfs(self, shortcut_pair):
        g1, g2 = shortcut_pair
        g2 = g2.copy()
        g2.add_edge(5, "fresh")
        delta = SnapshotDelta.from_graphs(g1, g2)
        lv1, lv2 = levels_pair(g1, g2, "fresh", delta=delta)
        assert np.all(lv1 == UNREACHED)
        assert lv1.shape == (delta.csr1.num_nodes,)
        assert np.array_equal(lv2, full_levels(delta, "fresh"))

    def test_unknown_source_rejected(self, shortcut_pair):
        with pytest.raises(KeyError, match="ghost"):
            levels_pair(*shortcut_pair, "ghost")


NODE = st.integers(min_value=0, max_value=12)


@st.composite
def growing_pair_strategy(draw):
    """A random insertion-only pair where G_t2 may add nodes and edges."""
    raw = draw(st.lists(st.tuples(NODE, NODE), min_size=1, max_size=30))
    edges = sorted({(min(u, v), max(u, v)) for u, v in raw if u != v})
    if not edges:
        edges = [(0, 1)]
    cut = draw(st.integers(min_value=1, max_value=len(edges)))
    g1, g2 = Graph(edges[:cut]), Graph(edges)
    for extra in draw(st.lists(st.integers(13, 16), max_size=3)):
        g2.add_node(extra)  # isolated t2-only nodes
    return g1, g2


class TestEquivalenceProperty:
    @settings(max_examples=40, deadline=None)
    @given(growing_pair_strategy())
    def test_levels_pair_equals_independent_bfs_everywhere(self, pair):
        """The satellite property: exact for every source, every node —
        including nodes only reachable in G_t2 and t2-only sources."""
        g1, g2 = pair
        delta = SnapshotDelta.from_graphs(g1, g2)
        for source in delta.csr2.nodes:
            lv1, lv2 = levels_pair(g1, g2, source, delta=delta)
            assert np.array_equal(lv2, full_levels(delta, source))
            idx1 = delta.source_index(source)
            if idx1 is None:
                assert np.all(lv1 == UNREACHED)
            else:
                assert np.array_equal(lv1, bfs_levels(delta.csr1, idx1))


class _FixedSelector(CandidateSelector):
    """Test double: fixed candidates, optional precomputed rows."""

    name = "Fixed"

    def __init__(self, candidates, d1_rows=None, d2_rows=None):
        self.candidates = candidates
        self.d1_rows = d1_rows or {}
        self.d2_rows = d2_rows or {}

    def select(self, g1, g2, m, budget, rng=None):
        return SelectionResult(
            candidates=list(self.candidates),
            d1_rows=dict(self.d1_rows),
            d2_rows=dict(self.d2_rows),
        )


class TestBudgetLedgerPin:
    """The repair is an implementation detail of *computing* the charged
    t2 row — never a way to skip its charge (the R004 exemption note in
    repro/lint/rules/budget.py says the same thing in lint terms)."""

    def test_repaired_t2_row_still_charges_one_sssp(self, shortcut_pair):
        result = find_top_k_converging_pairs(
            *shortcut_pair, k=1, m=3, selector=_FixedSelector([0, 2, 4])
        )
        assert result.budget.spent == 6
        assert result.budget.by_phase() == {"topk": 6}

    def test_cached_t1_row_fallback_keeps_ledger(self, shortcut_pair):
        g1, g2 = shortcut_pair
        from repro.graph.traversal import bfs_distances

        # Candidate 0's t1 row is cached (free); its t2 row has no fresh
        # t1 traversal to repair from, so it pays a full BFS — but the
        # ledger must look exactly like any other single g2 charge.
        selector = _FixedSelector([0], d1_rows={0: dict(bfs_distances(g1, 0))})
        result = find_top_k_converging_pairs(
            g1, g2, k=1, m=1, selector=selector
        )
        assert result.budget.spent == 1
        assert result.budget.by_phase() == {"topk": 1}
        assert result.pairs[0].pair == (0, 5)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_partial_caches_identical_at_any_worker_count(self, workers):
        g1, g2 = random_snapshot_pair(num_nodes=30, num_edges=70, seed=11)
        from repro.graph.traversal import bfs_distances

        nodes = list(g1.nodes())
        cached = nodes[0]
        selector = _FixedSelector(
            [cached, nodes[1], nodes[2]],
            d1_rows={cached: dict(bfs_distances(g1, cached))},
        )
        result = find_top_k_converging_pairs(
            g1, g2, k=5, m=3, selector=selector, workers=workers
        )
        assert result.budget.spent == 5
        assert result.budget.by_phase() == {"topk": 5}
        reference = find_top_k_converging_pairs(
            g1, g2, k=5, m=3, selector=selector, workers=1
        )
        assert [(p.pair, p.d1, p.d2) for p in result.pairs] == [
            (p.pair, p.d1, p.d2) for p in reference.pairs
        ]
