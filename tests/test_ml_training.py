"""Unit tests for repro.ml.training and the classifier selectors."""

import numpy as np
import pytest

from repro.core.budget import SPBudget
from repro.datasets.generators import community_bridge_stream
from repro.ml.training import (
    build_training_examples,
    train_global_classifier,
    train_local_classifier,
    training_delta_threshold,
)
from repro.selection import (
    GlobalClassifierSelector,
    LocalClassifierSelector,
    get_selector,
)

from conftest import path_graph, random_temporal_graph


@pytest.fixture(scope="module")
def stream():
    return community_bridge_stream(
        num_nodes=150, num_communities=5, seed=3
    )


@pytest.fixture(scope="module")
def local_model(stream):
    return train_local_classifier(stream, num_landmarks=3, seed=0)


@pytest.fixture(scope="module")
def global_model(stream):
    streams = {
        "a": stream,
        "b": random_temporal_graph(100, 300, seed=9),
    }
    return train_global_classifier(streams, num_landmarks=3, seed=0)


class TestThreshold:
    def test_offset_applied(self, shortcut_pair):
        g1, g2 = shortcut_pair  # Δmax = 4
        assert training_delta_threshold(g1, g2, 1) == 3

    def test_clamped_at_one(self, shortcut_pair):
        assert training_delta_threshold(*shortcut_pair, 10) == 1

    def test_none_when_nothing_converges(self, path5):
        assert training_delta_threshold(path5, path5, 0) is None


class TestTrainingExamples:
    def test_shapes_and_labels(self, stream):
        X, y, g1, g2 = build_training_examples(stream, num_landmarks=3, seed=0)
        assert X.shape[0] == y.shape[0] == g1.num_nodes
        assert set(np.unique(y)) <= {0.0, 1.0}
        assert 0 < y.sum() < y.size  # some positives, not all

    def test_training_uses_early_snapshots(self, stream):
        _, _, g1, g2 = build_training_examples(stream, num_landmarks=3, seed=0)
        full = stream.snapshot()
        assert g2.num_edges < full.num_edges


class TestLocalModel:
    def test_model_metadata(self, local_model):
        assert not local_model.uses_graph_features
        assert local_model.num_landmarks == 3
        assert 0 < local_model.positive_fraction < 1

    def test_scores_are_probabilities(self, local_model):
        scores = local_model.score_nodes(np.zeros((4, 10)))
        assert ((0 <= scores) & (scores <= 1)).all()

    def test_selector_wraps_model(self, stream, local_model):
        g1, g2 = stream.snapshot_pair(0.8, 1.0)
        selector = LocalClassifierSelector(local_model)
        budget = SPBudget(2 * 20)
        result = selector.select(g1, g2, 20, budget, np.random.default_rng(0))
        assert len(result.candidates) <= 20
        assert budget.spent <= 40

    def test_selector_rejects_global_model(self, global_model):
        with pytest.raises(ValueError, match="graph-level"):
            LocalClassifierSelector(global_model)

    def test_selector_rejects_non_model(self):
        with pytest.raises(TypeError):
            LocalClassifierSelector("not a model")


class TestGlobalModel:
    def test_model_metadata(self, global_model):
        assert global_model.uses_graph_features
        assert len(global_model.feature_names) == 14

    def test_selector_wraps_model(self, stream, global_model):
        g1, g2 = stream.snapshot_pair(0.8, 1.0)
        selector = GlobalClassifierSelector(global_model)
        budget = SPBudget(2 * 20)
        result = selector.select(g1, g2, 20, budget, np.random.default_rng(0))
        assert len(result.candidates) <= 20

    def test_selector_rejects_local_model(self, local_model):
        with pytest.raises(ValueError, match="L-Classifier"):
            GlobalClassifierSelector(local_model)

    def test_registry_construction(self, local_model):
        selector = get_selector("L-Classifier", model=local_model)
        assert isinstance(selector, LocalClassifierSelector)

    def test_empty_dataset_dict_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            train_global_classifier({})
