"""Differential-oracle tests for the parallel SSSP execution layer.

Every parallel driver must produce results **equal to serial execution**
(bit-identical matrices, identical pair lists and budget ledgers, and —
at the report level — byte-identical exports) across worker counts, and
both must agree with the networkx oracle on seeded random graphs.
"""

from __future__ import annotations

import json
import os

import networkx as nx
import numpy as np
import pytest

from conftest import random_snapshot_pair, to_networkx
from repro.cli import main
from repro.core.algorithm import find_top_k_converging_pairs
from repro.core.pairs import top_k_converging_pairs
from repro.experiments import ExperimentConfig, result_to_dict
from repro.experiments import table5
from repro.experiments.runner import coverage_cells
from repro.graph.apsp import all_pairs_distances
from repro.graph.csr import CSRGraph, all_sources_levels
from repro.parallel import ParallelExecutor, worker_state
from repro.selection import get_selector

# The CI matrix pins a width per cell via REPRO_TEST_WORKERS; locally
# the default set already covers serial, narrow, and wide pools.
_ENV_WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "0"))
WORKER_COUNTS = tuple(
    sorted({1, 2, 4} | ({_ENV_WORKERS} if _ENV_WORKERS > 1 else set()))
)


# ----------------------------------------------------------------------
# Executor semantics (task functions must be module-level to pickle)
# ----------------------------------------------------------------------
def _offset_square(x: int) -> int:
    return x * x + worker_state().get("offset", 0)


def _fail_on_negative(x: int) -> int:
    if x < 0:
        raise ValueError(f"bad item {x}")
    return x


class TestParallelExecutor:
    def test_results_in_input_order(self):
        items = [9, 1, 7, 3, 0, 5, 2, 8]
        expected = [x * x for x in items]
        for workers in WORKER_COUNTS:
            executor = ParallelExecutor(workers)
            assert executor.map(_offset_square, items) == expected

    def test_chunk_size_never_changes_results(self):
        items = list(range(17))
        expected = [x * x + 3 for x in items]
        for chunk_size in (1, 2, 5, 17, 50):
            executor = ParallelExecutor(
                2, state={"offset": 3}, chunk_size=chunk_size
            )
            assert executor.map(_offset_square, items) == expected

    def test_state_installed_for_serial_and_pool_runs(self):
        for workers in WORKER_COUNTS:
            executor = ParallelExecutor(workers, state={"offset": 100})
            assert executor.map(_offset_square, [2]) == [104]

    def test_empty_items(self):
        assert ParallelExecutor(4).map(_offset_square, []) == []

    def test_real_errors_stay_loud(self):
        # A genuinely failing task raises even after the degraded serial
        # recomputation — infrastructure faults degrade, bugs do not.
        executor = ParallelExecutor(2, chunk_size=2)
        with pytest.raises(ValueError, match="bad item"):
            executor.map(_fail_on_negative, [1, 2, -3, 4])

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ParallelExecutor(0)
        with pytest.raises(ValueError):
            ParallelExecutor(2, chunk_size=0)


# ----------------------------------------------------------------------
# APSP: parallel == serial == networkx
# ----------------------------------------------------------------------
class TestAPSPOracle:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_unweighted_matrix_identical_and_matches_networkx(self, seed):
        g, _ = random_snapshot_pair(num_nodes=40, num_edges=90, seed=seed)
        serial = all_pairs_distances(g)
        for workers in WORKER_COUNTS:
            parallel = all_pairs_distances(g, workers=workers)
            assert parallel.nodes == serial.nodes
            assert np.array_equal(parallel.matrix, serial.matrix)
        oracle = dict(nx.all_pairs_shortest_path_length(to_networkx(g)))
        for u in serial.nodes:
            for v in serial.nodes:
                expected = oracle[u].get(v, float("inf"))
                assert serial.distance(u, v) == expected

    def test_weighted_matrix_identical_and_matches_networkx(self):
        g, _ = random_snapshot_pair(num_nodes=25, num_edges=60, seed=3)
        rng = np.random.default_rng(3)
        weighted = type(g)()
        for u, v in g.edges():
            weighted.add_edge(u, v, float(rng.integers(1, 5)))
        serial = all_pairs_distances(weighted)
        for workers in WORKER_COUNTS[1:]:
            parallel = all_pairs_distances(weighted, workers=workers)
            assert np.array_equal(parallel.matrix, serial.matrix)
        oracle = dict(
            nx.all_pairs_dijkstra_path_length(to_networkx(weighted))
        )
        for u in serial.nodes:
            for v in serial.nodes:
                expected = oracle[u].get(v, float("inf"))
                assert serial.distance(u, v) == pytest.approx(expected)

    def test_restricted_universe_identical(self):
        g1, g2 = random_snapshot_pair(num_nodes=40, num_edges=90, seed=4)
        nodes = list(g1.nodes())
        serial = all_pairs_distances(g2, nodes=nodes)
        for workers in WORKER_COUNTS[1:]:
            parallel = all_pairs_distances(g2, nodes=nodes, workers=workers)
            assert np.array_equal(parallel.matrix, serial.matrix)

    def test_all_sources_levels_identical(self):
        g, _ = random_snapshot_pair(num_nodes=50, num_edges=110, seed=5)
        csr = CSRGraph.from_graph(g)
        serial = all_sources_levels(csr)
        for workers in WORKER_COUNTS[1:]:
            assert np.array_equal(
                all_sources_levels(csr, workers=workers), serial
            )


# ----------------------------------------------------------------------
# Top-k recovery: parallel == serial, distances match the oracle
# ----------------------------------------------------------------------
class TestTopKOracle:
    @pytest.mark.parametrize("selector_name", ["Degree", "MMSD", "SumDiff"])
    def test_identical_across_worker_counts(self, selector_name):
        g1, g2 = random_snapshot_pair(num_nodes=60, num_edges=140, seed=6)
        outcomes = {}
        for workers in WORKER_COUNTS:
            result = find_top_k_converging_pairs(
                g1, g2, k=12, m=10,
                selector=get_selector(selector_name),
                seed=11, workers=workers,
            )
            outcomes[workers] = (
                result.pairs,
                result.candidates,
                result.budget.spent,
                result.budget.by_phase(),
            )
        assert outcomes[1] == outcomes[2] == outcomes[4]

    def test_pair_distances_match_networkx(self):
        g1, g2 = random_snapshot_pair(num_nodes=60, num_edges=140, seed=7)
        result = find_top_k_converging_pairs(
            g1, g2, k=15, m=12, selector=get_selector("MMSD"),
            seed=13, workers=2,
        )
        d1 = dict(nx.all_pairs_shortest_path_length(to_networkx(g1)))
        d2 = dict(nx.all_pairs_shortest_path_length(to_networkx(g2)))
        for pair in result.pairs:
            assert pair.d1 == d1[pair.u][pair.v]
            assert pair.d2 == d2[pair.u][pair.v]
            assert pair.delta == pair.d1 - pair.d2 > 0

    def test_exact_top_k_matches_networkx_oracle(self):
        # The ground-truth engine itself against a from-scratch oracle:
        # Δ for every connected t1 pair via networkx distances.
        g1, g2 = random_snapshot_pair(num_nodes=40, num_edges=90, seed=8)
        d1 = dict(nx.all_pairs_shortest_path_length(to_networkx(g1)))
        d2 = dict(nx.all_pairs_shortest_path_length(to_networkx(g2)))
        oracle = {}
        for u in g1.nodes():
            for v, duv in d1[u].items():
                if u != v:
                    oracle[(min(u, v), max(u, v))] = duv - d2[u][v]
        positive = {p for p, delta in oracle.items() if delta > 0}
        top = top_k_converging_pairs(g1, g2, k=len(positive))
        assert {p.pair for p in top} == positive
        for p in top:
            assert p.delta == oracle[p.pair]


# ----------------------------------------------------------------------
# Coverage cells and whole-experiment reports
# ----------------------------------------------------------------------
def _tiny_config(workers: int = 1, **overrides) -> ExperimentConfig:
    defaults = dict(
        scale=0.15, budget=8, budget_sweep=(4, 8), delta_offsets=(0, 1),
        repeats=1, datasets=("facebook",), incbet_pivots=16,
        workers=workers, experiment="table5",
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


CELL_SPECS = [
    ("facebook", "Degree", 8, 0),
    ("facebook", "SumDiff", 8, 0),
    ("facebook", "Degree", 4, 1),
    ("facebook", "MMSD", 8, 1),
]


class TestCoverageCellsOracle:
    def test_cells_equal_across_workers_and_chunks(self):
        serial = coverage_cells(CELL_SPECS, _tiny_config(workers=1))
        for workers in WORKER_COUNTS[1:]:
            for chunk_size in (1, 3):
                values = coverage_cells(
                    CELL_SPECS, _tiny_config(workers=workers),
                    chunk_size=chunk_size,
                )
                assert values == serial

    def test_table5_result_equal_across_workers(self):
        serial = result_to_dict(table5.run(_tiny_config(workers=1)))
        parallel = result_to_dict(table5.run(_tiny_config(workers=2)))
        assert parallel == serial


class TestCLIByteIdentity:
    """`repro experiment --workers N` output is byte-identical to serial."""

    @pytest.mark.parametrize("workers", [2, 4])
    def test_experiment_report_and_json(self, workers, tmp_path, capsys):
        outputs = {}
        for w in (1, workers):
            json_path = tmp_path / f"table5-w{w}.json"
            rc = main([
                "experiment", "table5", "--scale", "0.15",
                "--datasets", "facebook", "--workers", str(w),
                "--json", str(json_path),
            ])
            assert rc == 0
            stdout = capsys.readouterr().out.replace(str(json_path), "")
            outputs[w] = (stdout, json_path.read_bytes())
        assert outputs[workers] == outputs[1]

    def test_workers_must_be_positive(self, capsys):
        rc = main([
            "experiment", "table5", "--scale", "0.15",
            "--datasets", "facebook", "--workers", "0",
        ])
        assert rc == 2
        assert "--workers" in capsys.readouterr().err

    def test_topk_workers_flag(self, tmp_path, capsys):
        stream = tmp_path / "stream.tsv"
        rc = main(["generate", "facebook", "--scale", "0.2",
                   "--out", str(stream)])
        assert rc == 0
        capsys.readouterr()
        outputs = {}
        for w in ("1", "2"):
            rc = main(["topk", str(stream), "--selector", "MMSD",
                       "--m", "10", "--k", "5", "--seed", "3",
                       "--workers", w])
            assert rc == 0
            outputs[w] = capsys.readouterr().out
        assert outputs["2"] == outputs["1"]


class TestCheckpointKeysWorkerIndependent:
    def test_same_checkpoint_keys_for_any_worker_count(self, tmp_path):
        """Cell checkpoint identity never encodes the execution layout."""
        from repro.resilience import CheckpointStore

        stores = {}
        for workers in (1, 2):
            directory = tmp_path / f"w{workers}"
            config = _tiny_config(
                workers=workers, checkpoint_dir=str(directory)
            )
            coverage_cells(CELL_SPECS, config)
            stores[workers] = sorted(
                json.dumps(key) for key in CheckpointStore(directory).keys()
            )
        assert stores[2] == stores[1]
        assert len(stores[1]) == len(CELL_SPECS)
