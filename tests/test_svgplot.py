"""Unit tests for the SVG chart renderer and the figure script."""

import xml.etree.ElementTree as ET

import pytest

from repro.experiments.svgplot import PALETTE, line_chart

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


SERIES = {
    "SumDiff": [(10, 0.4), (20, 0.7), (40, 0.9)],
    "MaxDiff": [(10, 0.3), (20, 0.5), (40, 0.8)],
}


class TestLineChart:
    def test_valid_xml(self):
        root = parse(line_chart(SERIES, title="t"))
        assert root.tag == f"{SVG_NS}svg"

    def test_one_polyline_per_series(self):
        root = parse(line_chart(SERIES))
        polylines = root.findall(f"{SVG_NS}polyline")
        assert len(polylines) == len(SERIES)

    def test_legend_labels_present(self):
        svg = line_chart(SERIES)
        for name in SERIES:
            assert name in svg

    def test_title_and_axis_labels(self):
        svg = line_chart(SERIES, title="My chart", x_label="budget",
                         y_label="coverage")
        assert "My chart" in svg
        assert "budget" in svg
        assert "coverage" in svg

    def test_percent_ticks(self):
        svg = line_chart(SERIES)
        assert "100%" in svg and "0%" in svg

    def test_plain_numeric_ticks(self):
        svg = line_chart(SERIES, percent_y=False, y_range=(0, 4))
        assert "100%" not in svg
        assert ">4<" in svg

    def test_autoscaled_y(self):
        svg = line_chart({"a": [(0, 10.0), (1, 30.0)]}, y_range=None,
                         percent_y=False)
        assert ">30<" in svg

    def test_markup_escaped(self):
        svg = line_chart({"<evil>": [(0, 0.5)]}, title="a < b")
        assert "<evil>" not in svg
        assert "&lt;evil&gt;" in svg
        parse(svg)  # still valid XML

    def test_series_colors_cycle(self):
        many = {f"s{i}": [(0, 0.1), (1, 0.2)] for i in range(10)}
        svg = line_chart(many)
        assert PALETTE[0] in svg and PALETTE[1] in svg

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"a": []})

    def test_single_x_value_does_not_divide_by_zero(self):
        svg = line_chart({"a": [(5, 0.5)]})
        parse(svg)


class TestFigureScript:
    def test_generates_all_figures(self, tmp_path):
        import importlib.util
        from pathlib import Path

        spec = importlib.util.spec_from_file_location(
            "generate_figures",
            Path(__file__).resolve().parent.parent
            / "scripts" / "generate_figures.py",
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)

        written = module.generate(scale=0.15, out_dir=tmp_path)
        names = {p.name for p in written}
        assert "figure2a_endpoints.svg" in names
        assert "figure2b_cover.svg" in names
        assert any(n.startswith("figure1_") for n in names)
        assert any(n.startswith("figure3_") for n in names)
        for path in written:
            ET.parse(path)  # every file is valid XML
