"""End-to-end tests of `repro lint` / `python -m repro.lint`."""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main as repro_main
from repro.lint.cli import main as lint_main

SRC = str(Path(__file__).resolve().parent.parent / "src")

DIRTY = (
    "import networkx\n"
    "def pick(items, seen=[]):\n"
    "    return seen\n"
)


def write_tree(tmp_path: Path) -> Path:
    root = tmp_path / "proj"
    (root / "repro").mkdir(parents=True)
    (root / "repro" / "mod.py").write_text(DIRTY, encoding="utf-8")
    return root


class TestExitCodes:
    def test_clean_repo_strict(self, capsys):
        assert repro_main(["lint", SRC, "--strict"]) == 0
        assert "0 new violation(s)" in capsys.readouterr().out

    def test_violations_fail(self, tmp_path, capsys):
        root = write_tree(tmp_path)
        assert lint_main([str(root)]) == 1
        out = capsys.readouterr().out
        assert "R003" in out and "R005" in out

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_rule_is_usage_error(self, tmp_path, capsys):
        root = write_tree(tmp_path)
        assert lint_main([str(root), "--select", "R999"]) == 2
        assert "unknown rule" in capsys.readouterr().err


class TestSelectAndFormat:
    def test_select_restricts_rules(self, tmp_path, capsys):
        root = write_tree(tmp_path)
        assert lint_main([str(root), "--select", "R005"]) == 1
        out = capsys.readouterr().out
        assert "R005" in out and "R003" not in out

    def test_json_report(self, tmp_path, capsys):
        root = write_tree(tmp_path)
        assert lint_main([str(root), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert {v["code"] for v in payload["new_violations"]} == {
            "R003", "R005",
        }

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("R001", "R008"):
            assert code in out


class TestBaselineWorkflow:
    def test_write_then_pass_then_strict_stale(self, tmp_path, capsys):
        root = write_tree(tmp_path)
        baseline = tmp_path / "baseline.json"

        # Record the legacy debt.
        assert lint_main([
            str(root), "--baseline", str(baseline), "--write-baseline",
        ]) == 0
        assert baseline.exists()
        capsys.readouterr()

        # Baselined violations no longer fail the run...
        assert lint_main([str(root), "--baseline", str(baseline)]) == 0
        assert "2 baselined" in capsys.readouterr().out

        # ...a *new* violation still does...
        (root / "repro" / "new.py").write_text(
            "import networkx as nx\n", encoding="utf-8"
        )
        assert lint_main([str(root), "--baseline", str(baseline)]) == 1
        capsys.readouterr()
        (root / "repro" / "new.py").unlink()

        # ...and fixing debt without refreshing the baseline trips
        # --strict (stale entries), while the default mode still passes.
        (root / "repro" / "mod.py").write_text(
            "def pick(items, seen=[]):\n    return seen\n", encoding="utf-8"
        )
        assert lint_main([str(root), "--baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert lint_main([
            str(root), "--baseline", str(baseline), "--strict",
        ]) == 1
        assert "stale baseline" in capsys.readouterr().out

        # Regenerating the baseline restores strict-green.
        assert lint_main([
            str(root), "--baseline", str(baseline), "--write-baseline",
        ]) == 0
        capsys.readouterr()
        assert lint_main([
            str(root), "--baseline", str(baseline), "--strict",
        ]) == 0

    def test_committed_baseline_is_empty(self):
        committed = (
            Path(__file__).resolve().parent.parent
            / ".reprolint-baseline.json"
        )
        payload = json.loads(committed.read_text(encoding="utf-8"))
        assert payload == {"version": 1, "entries": []}
