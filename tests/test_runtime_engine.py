"""StreamRuntime: windows, recovery, degradation, shedding."""

import pytest

from repro.graph.dynamic import TemporalGraph
from repro.resilience import capture_events
from repro.resilience.faults import FaultInjector, FaultPlan
from repro.runtime import (
    ResourceGuard,
    RuntimeConfig,
    RuntimeRecoveryError,
    StreamRuntime,
    SupervisorGivingUp,
)

from conftest import random_temporal_graph


@pytest.fixture
def stream():
    return random_temporal_graph(30, 120, seed=11)


@pytest.fixture
def config():
    return RuntimeConfig(k=5, batch_size=6, checkpoint_every=2)


def dirty_stream():
    """An insertion stream with deletions sprinkled in: most windows
    past the warm-up delete an edge inserted *before* the window
    started, so G_t1 is no longer a subgraph of G_t2 and the
    incremental engine's precondition fails."""
    tg = random_temporal_graph(25, 90, seed=4)
    events = list(tg.events())
    out = TemporalGraph()
    deleted = 0
    for i, ev in enumerate(events):
        out.add_edge(ev.time, ev.u, ev.v, ev.weight)
        if i >= 30 and i % 5 == 0:
            # Remove one of the earliest edges — long since part of
            # every window-start snapshot, each targeted exactly once.
            target = events[deleted]
            out.add_edge(ev.time, target.u, target.v, -1.0)
            deleted += 1
    return out


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [{"k": 0}, {"batch_size": 0}, {"checkpoint_every": 0},
         {"selector": "SumDiff", "m": 0}],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RuntimeConfig(**kwargs)

    def test_window_events(self):
        assert RuntimeConfig(batch_size=6, checkpoint_every=2).window_events == 12


class TestAdvancement:
    def test_full_run_closes_expected_windows(self, tmp_path, stream, config):
        runtime = StreamRuntime(stream, tmp_path / "wal", config)
        report = runtime.run()
        assert report.status == "complete"
        assert report.consumed == len(stream)
        # 120 events / 12 per window -> 10 full windows.
        assert [w.end - w.start for w in report.windows] == [12] * 10
        assert all(w.engine == "incremental" for w in report.windows)

    def test_partial_final_window(self, tmp_path, config):
        stream = random_temporal_graph(20, 30, seed=5)  # 30 = 2*12 + 6
        runtime = StreamRuntime(stream, tmp_path / "wal", config)
        report = runtime.run()
        assert [w.end - w.start for w in report.windows] == [12, 12, 6]

    def test_rerun_on_completed_directory_is_identical(
        self, tmp_path, stream, config
    ):
        first = StreamRuntime(stream, tmp_path / "wal", config).run()
        second = StreamRuntime(stream, tmp_path / "wal", config).run()
        assert second.render() == first.render()

    def test_resume_after_pause_matches_uninterrupted(
        self, tmp_path, stream, config
    ):
        uninterrupted = StreamRuntime(
            stream, tmp_path / "a", config
        ).run()
        # Stop-and-go in ragged increments, including mid-window stops.
        resumable = None
        for budget in (1, 3, 5, 2, 100):
            resumable = StreamRuntime(stream, tmp_path / "b", config).run(
                max_batches=budget
            )
            if resumable.status == "complete":
                break
        assert resumable is not None
        assert resumable.status == "complete"
        assert resumable.render() == uninterrupted.render()

    def test_crash_mid_append_recovers_identically(
        self, tmp_path, stream, config
    ):
        uninterrupted = StreamRuntime(stream, tmp_path / "a", config).run()

        class Crash(BaseException):
            """Bypasses every except Exception on the way out."""

        def chaos(point):
            if point == "wal.append.mid":
                raise Crash()

        crashed = StreamRuntime(
            stream, tmp_path / "b", config, chaos=chaos
        )
        with pytest.raises(Crash):
            crashed.run()
        recovered = StreamRuntime(stream, tmp_path / "b", config).run()
        assert recovered.render() == uninterrupted.render()

    def test_crash_mid_checkpoint_recovers_identically(
        self, tmp_path, stream, config
    ):
        uninterrupted = StreamRuntime(stream, tmp_path / "a", config).run()

        class Crash(BaseException):
            pass

        fired = {"count": 0}

        def chaos(point):
            if point == "checkpoint.mid":
                fired["count"] += 1
                if fired["count"] == 3:
                    raise Crash()

        crashed = StreamRuntime(
            stream, tmp_path / "b", config, chaos=chaos
        )
        with pytest.raises(Crash):
            crashed.run()
        survivor = StreamRuntime(stream, tmp_path / "b", config)
        assert survivor.recovered_from_seq is not None
        recovered = survivor.run()
        assert recovered.render() == uninterrupted.render()

    def test_empty_stream_is_a_clean_noop(self, tmp_path, config):
        report = StreamRuntime(
            TemporalGraph(), tmp_path / "wal", config
        ).run()
        assert report.status == "complete"
        assert report.windows == []
        assert report.consumed == 0


class TestDegradation:
    def test_dirty_windows_fall_back_and_trip_breaker(self, tmp_path):
        config = RuntimeConfig(k=5, batch_size=6, checkpoint_every=1)
        runtime = StreamRuntime(dirty_stream(), tmp_path / "wal", config)
        report = runtime.run()
        assert report.status == "complete"
        engines = {w.engine for w in report.windows}
        assert "csr-fallback" in engines  # repairs failed somewhere
        # Once the breaker opened, fallback happens without an attempt.
        assert runtime.breaker.transitions  # it tripped at least once

    def test_dirty_stream_recovery_is_identical(self, tmp_path):
        """Breaker state is checkpointed, so recovery replays the same
        engine decisions even on a stream that keeps tripping it."""
        config = RuntimeConfig(k=5, batch_size=6, checkpoint_every=1)
        stream = dirty_stream()
        uninterrupted = StreamRuntime(stream, tmp_path / "a", config).run()

        resumed = None
        for budget in (2, 3, 2, 100):
            resumed = StreamRuntime(stream, tmp_path / "b", config).run(
                max_batches=budget
            )
            if resumed.status == "complete":
                break
        assert resumed is not None
        assert resumed.render() == uninterrupted.render()

    def test_injected_repair_faults_drive_breaker_open(self, tmp_path, stream):
        config = RuntimeConfig(k=5, batch_size=6, checkpoint_every=1)
        injector = FaultInjector(FaultPlan(fail_nth=tuple(range(1, 20))))
        runtime = StreamRuntime(
            stream, tmp_path / "wal", config, repair_injector=injector
        )
        report = runtime.run()
        assert report.status == "complete"
        assert runtime.breaker.transitions[0][0] == "open"
        # Denied windows never consult the injector: fewer checks than
        # windows proves the open breaker skipped repair attempts.
        assert injector.calls < len(report.windows)

    def test_supervisor_gives_up_on_persistent_window_failure(
        self, tmp_path, stream, config
    ):
        injector = FaultInjector(FaultPlan(fail_nth=tuple(range(1, 50))))
        runtime = StreamRuntime(
            stream, tmp_path / "wal", config,
            max_restarts=2, window_injector=injector,
        )
        with pytest.raises(SupervisorGivingUp):
            runtime.run()

    def test_transient_window_failure_is_restarted(
        self, tmp_path, stream, config
    ):
        clean = StreamRuntime(stream, tmp_path / "a", config).run()
        injector = FaultInjector(FaultPlan(fail_nth=(2, 5)))
        runtime = StreamRuntime(
            stream, tmp_path / "b", config,
            max_restarts=3, window_injector=injector,
        )
        report = runtime.run()
        assert report.render() == clean.render()
        assert runtime.supervisor.restarts_used == 2


class TestGuards:
    def test_time_breach_sheds_with_checkpoint(self, tmp_path, stream, config):
        ticks = iter(range(100))
        guard = ResourceGuard(
            soft_time_s=3.0, clock=lambda: float(next(ticks))
        )
        runtime = StreamRuntime(
            stream, tmp_path / "wal", config, guard=guard
        )
        report = runtime.run()
        assert report.status == "shed:time"
        assert report.consumed < len(stream)
        # The shed checkpoint makes the next run resume, not restart.
        resumed = StreamRuntime(stream, tmp_path / "wal", config)
        assert resumed.consumed == report.consumed
        final = resumed.run()
        assert final.status == "complete"
        assert final.consumed == len(stream)

    def test_memory_breach_sheds(self, tmp_path, stream, config):
        guard = ResourceGuard(soft_memory_mb=1, memory_probe=lambda: 2.0)
        report = StreamRuntime(
            stream, tmp_path / "wal", config, guard=guard
        ).run()
        assert report.status == "shed:memory"


class TestRecoveryEdges:
    def test_source_mismatch_is_refused(self, tmp_path, stream, config):
        StreamRuntime(stream, tmp_path / "wal", config).run(max_batches=3)
        other = random_temporal_graph(30, 120, seed=99)
        with pytest.raises(RuntimeRecoveryError, match="source"):
            StreamRuntime(other, tmp_path / "wal", config)

    def test_lost_checkpoints_after_compaction_are_fatal(
        self, tmp_path, stream, config
    ):
        runtime = StreamRuntime(stream, tmp_path / "wal", config)
        runtime.run(max_batches=4)  # at least one checkpoint + compaction
        assert runtime.wal.compacted_upto > 0
        runtime.store.clear()
        with pytest.raises(RuntimeRecoveryError, match="checkpoint"):
            StreamRuntime(stream, tmp_path / "wal", config)

    def test_recovery_emits_events(self, tmp_path, stream, config):
        StreamRuntime(stream, tmp_path / "wal", config).run(max_batches=3)
        with capture_events() as events:
            StreamRuntime(stream, tmp_path / "wal", config)
        kinds = [kind for kind, _ in events]
        assert "runtime.recovered" in kinds


class TestBudgetedMode:
    def test_budgeted_windows_resume_identically(self, tmp_path, stream):
        config = RuntimeConfig(
            k=4, batch_size=10, checkpoint_every=3,
            selector="SumDiff", m=6, seed=2,
        )
        uninterrupted = StreamRuntime(stream, tmp_path / "a", config).run()
        assert all(
            w.engine == "budgeted" for w in uninterrupted.windows
        )
        resumed = None
        for budget in (2, 4, 100):
            resumed = StreamRuntime(stream, tmp_path / "b", config).run(
                max_batches=budget
            )
            if resumed.status == "complete":
                break
        assert resumed is not None
        assert resumed.render() == uninterrupted.render()


class TestStateVersion:
    """The query-service surface: a monotonic, recovery-stable version."""

    def test_version_counts_closed_windows(self, tmp_path, stream, config):
        runtime = StreamRuntime(stream, tmp_path / "wal", config)
        assert runtime.state_version == 0
        runtime.run()
        assert runtime.state_version == len(runtime.windows) > 0

    def test_version_survives_reopen(self, tmp_path, stream, config):
        first = StreamRuntime(stream, tmp_path / "wal", config)
        first.run(max_batches=5)
        reopened = StreamRuntime(stream, tmp_path / "wal", config)
        assert reopened.state_version == first.state_version
        assert reopened.state_version == len(reopened.windows)

    def test_on_advance_fires_in_version_order(self, tmp_path, stream, config):
        seen = []
        runtime = StreamRuntime(
            stream, tmp_path / "wal", config,
            on_advance=lambda version, window: seen.append(
                (version, window.index)
            ),
        )
        runtime.run(max_batches=4)
        assert [v for v, _ in seen] == list(
            range(1, runtime.state_version + 1)
        )
        assert [i for _, i in seen] == [w.index for w in runtime.windows]

    def test_wal_replay_re_closes_fire_on_advance(
        self, tmp_path, stream, config
    ):
        # Tear the second window's checkpoint write: the window's
        # batches survive only in the WAL, so recovery must re-close it
        # through the callback with the same version it had in vivo.
        runtime = StreamRuntime(stream, tmp_path / "wal", config)
        real_put = runtime.store.put
        calls = {"n": 0}

        def torn_put(key, payload):
            calls["n"] += 1
            if calls["n"] == 2:
                raise RuntimeError("torn checkpoint write")
            return real_put(key, payload)

        runtime.store.put = torn_put
        with pytest.raises(RuntimeError, match="torn"):
            runtime.run()
        assert runtime.state_version == 2  # closed in memory pre-crash
        seen = []
        reopened = StreamRuntime(
            stream, tmp_path / "wal", config,
            on_advance=lambda version, window: seen.append(version),
        )
        assert seen == [2], "the WAL-suffix window must replay on_advance"
        assert reopened.state_version == 2

    def test_version_resumes_monotonically(self, tmp_path, stream, config):
        StreamRuntime(stream, tmp_path / "wal", config).run(max_batches=3)
        resumed = StreamRuntime(stream, tmp_path / "wal", config)
        before = resumed.state_version
        resumed.run()
        assert resumed.state_version > before
        assert resumed.state_version == len(resumed.windows)
