"""Chaos acceptance for the streaming runtime (``pytest -m faults``).

Each scenario SIGKILLs a real ``repro advance`` subprocess at a named
injection point — mid-WAL-append, mid-checkpoint, mid-repair — and then
reruns it over the surviving state directory. The acceptance bar is
*byte-identical stdout*: the recovered run must print exactly what an
uninterrupted run prints, which is only possible if recovery is
last-checkpoint + WAL-suffix replay with no drift in window boundaries,
engine choices, or the breaker's seeded probe schedule.

The kill is delivered by the process to itself (``REPRO_CHAOS_KILL``,
see ``repro.cli``), so no timing races: the nth traversal of the
injection point dies exactly there, torn state and all.
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.datasets import io

from conftest import random_temporal_graph

pytestmark = pytest.mark.faults

SRC = Path(__file__).resolve().parents[1] / "src"

# Enough events for several windows and several checkpoints at the
# flags below, so every kill point has fired before the stream ends.
STREAM_NODES, STREAM_EDGES, STREAM_SEED = 40, 200, 7

ADVANCE_FLAGS = ("--k", "5", "--batch-size", "8", "--checkpoint-every", "2")


@pytest.fixture(scope="module")
def stream_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("chaos-stream") / "stream.tsv"
    io.write_edge_stream(
        random_temporal_graph(STREAM_NODES, STREAM_EDGES, seed=STREAM_SEED),
        path,
    )
    return path


def advance(stream_file, wal_dir, *, kill_at=None):
    """Run ``repro advance`` in a subprocess; optionally arm the killer."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    if kill_at is None:
        env.pop("REPRO_CHAOS_KILL", None)
    else:
        env["REPRO_CHAOS_KILL"] = kill_at
    cmd = [
        sys.executable, "-m", "repro", "advance", str(stream_file),
        "--wal-dir", str(wal_dir), *ADVANCE_FLAGS,
    ]
    return subprocess.run(
        cmd, capture_output=True, text=True, env=env, timeout=120
    )


def assert_killed(proc):
    """SIGKILL shows up as -9 from Python, 137 from a shell wrapper."""
    assert proc.returncode in (-signal.SIGKILL, 128 + signal.SIGKILL), (
        proc.returncode, proc.stdout, proc.stderr,
    )


@pytest.fixture(scope="module")
def baseline(stream_file, tmp_path_factory):
    """Stdout of one uninterrupted run — the byte-identity oracle."""
    wal_dir = tmp_path_factory.mktemp("baseline") / "wal"
    proc = advance(stream_file, wal_dir)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout
    return proc.stdout


class TestCleanDeterminism:
    def test_two_fresh_runs_print_identical_bytes(
        self, stream_file, baseline, tmp_path
    ):
        proc = advance(stream_file, tmp_path / "wal")
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout == baseline


class TestKillNine:
    @pytest.mark.parametrize(
        "kill_at",
        [
            "wal.append.mid:9",   # torn tail: half a batch on disk
            "checkpoint.mid:2",   # new state written, old not yet pruned
            "repair.mid:4",       # mid-window compute, WAL ahead of state
        ],
    )
    def test_recovery_after_kill_is_byte_identical(
        self, stream_file, baseline, tmp_path, kill_at
    ):
        wal_dir = tmp_path / "wal"
        crashed = advance(stream_file, wal_dir, kill_at=kill_at)
        assert_killed(crashed)
        # The WAL survived the kill; state may or may not exist yet.
        assert (wal_dir / "wal.log").exists()

        recovered = advance(stream_file, wal_dir)
        assert recovered.returncode == 0, recovered.stderr
        assert recovered.stdout == baseline

    def test_repeated_kills_still_converge(
        self, stream_file, baseline, tmp_path
    ):
        """Crash twice at different points before letting it finish."""
        wal_dir = tmp_path / "wal"
        for kill_at in ("wal.append.mid:5", "checkpoint.mid:4"):
            crashed = advance(stream_file, wal_dir, kill_at=kill_at)
            assert_killed(crashed)
        recovered = advance(stream_file, wal_dir)
        assert recovered.returncode == 0, recovered.stderr
        assert recovered.stdout == baseline

    def test_rerun_after_completion_is_still_identical(
        self, stream_file, baseline, tmp_path
    ):
        """A finished directory replays its results, not an error."""
        wal_dir = tmp_path / "wal"
        first = advance(stream_file, wal_dir)
        assert first.returncode == 0, first.stderr
        again = advance(stream_file, wal_dir)
        assert again.returncode == 0, again.stderr
        assert again.stdout == baseline


class TestChaosEnvValidation:
    def test_malformed_kill_spec_is_a_cli_error(self, stream_file, tmp_path):
        proc = advance(
            stream_file, tmp_path / "wal", kill_at="checkpoint.mid:zero"
        )
        assert proc.returncode == 2
        assert "REPRO_CHAOS_KILL" in proc.stderr
