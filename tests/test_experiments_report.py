"""Unit tests for the experiment report renderer."""

import math

from repro.experiments.report import (
    curve_block,
    format_table,
    percent,
    percent_label,
)


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(
            headers=("name", "value"),
            rows=[("alpha", 1), ("b", 23)],
            title="My table",
        )
        lines = text.splitlines()
        assert lines[0] == "My table"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "alpha" in lines[3]

    def test_numeric_right_alignment(self):
        text = format_table(("n",), [(1,), (1000,)])
        lines = text.splitlines()
        assert lines[2].endswith("1")
        assert lines[3].endswith("1000")

    def test_float_formatting(self):
        text = format_table(("x",), [(0.12345,), (2.0,)])
        assert "0.123" in text
        # Integral floats render as ints (right-aligned).
        assert text.splitlines()[-1].strip() == "2"

    def test_nan_renders_as_dash(self):
        text = format_table(("x",), [(math.nan,)])
        assert "-" in text.splitlines()[-1]

    def test_no_title(self):
        text = format_table(("a",), [(1,)])
        assert text.splitlines()[0].strip() == "a"

    def test_column_width_adapts_to_data(self):
        text = format_table(("x",), [("longvalue",)])
        header, rule, row = text.splitlines()
        assert len(rule) >= len("longvalue")


class TestPercent:
    def test_formatting(self):
        assert percent(0.5) == "50.0"
        assert percent(1.0) == "100.0"
        assert percent(0.123) == "12.3"
        assert percent(0.0) == "0.0"

    def test_failed_cell_renders_em_dash(self):
        nan = float("nan")
        assert percent(nan) == "—"
        assert percent_label(nan) == "—"  # no trailing % on a dash
        assert percent_label(0.5) == "50.0%"


class TestCurveBlock:
    def test_contents(self):
        text = curve_block("MMSD", [(10, 0.5), (20, 0.75)])
        assert "MMSD" in text
        assert "m=10: 50.0%" in text
        assert "m=20: 75.0%" in text

    def test_failed_point(self):
        text = curve_block("MMSD", [(10, float("nan")), (20, 0.75)])
        assert "m=10: —," in text
        assert "—%" not in text


class TestJsonExport:
    def test_dataclass_rows_roundtrip(self, tmp_path):
        import json

        from repro.experiments import smoke_config, table2, write_json
        from repro.experiments.export import result_to_dict

        rows = table2.run(smoke_config())
        data = result_to_dict(rows)
        assert isinstance(data, list)
        assert data[0]["dataset"] == "actors"
        out = tmp_path / "table2.json"
        write_json(rows, out)
        assert json.loads(out.read_text())[0]["nodes_t1"] > 0

    def test_tuple_keys_flattened(self):
        from repro.experiments.export import result_to_dict

        data = result_to_dict({("SumDiff", "dblp", 1): 0.5})
        assert data == {"SumDiff/dblp/1": 0.5}

    def test_numpy_scalars_and_fallback(self):
        import numpy as np

        from repro.experiments.export import result_to_dict

        assert result_to_dict(np.float64(0.5)) == 0.5
        assert isinstance(result_to_dict(object()), str)

    def test_cli_json_flag(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "t2.json"
        rc = main(["experiment", "table2", "--scale", "0.15",
                   "--json", str(out)])
        assert rc == 0
        assert out.exists()
