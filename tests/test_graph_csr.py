"""Unit tests for the CSR graph view and vectorised BFS."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import (
    CSRGraph,
    UNREACHED,
    all_sources_levels,
    bfs_distances_fast,
    bfs_levels,
    _multi_arange,
)
from repro.graph.graph import Graph
from repro.graph.traversal import bfs_distances

from conftest import (
    grid_graph,
    path_graph,
    random_snapshot_pair,
    star_graph,
)


class TestMultiArange:
    def test_basic(self):
        out = _multi_arange(np.array([0, 5]), np.array([3, 2]))
        assert list(out) == [0, 1, 2, 5, 6]

    def test_single_range(self):
        assert list(_multi_arange(np.array([4]), np.array([3]))) == [4, 5, 6]

    def test_empty(self):
        assert _multi_arange(np.empty(0, int), np.empty(0, int)).size == 0

    def test_adjacent_ranges(self):
        out = _multi_arange(np.array([0, 3, 3]), np.array([3, 1, 2]))
        assert list(out) == [0, 1, 2, 3, 3, 4]


class TestCSRGraph:
    def test_from_graph_structure(self, path5):
        csr = CSRGraph.from_graph(path5)
        assert csr.num_nodes == 5
        assert csr.num_edges == 4
        assert list(csr.neighbors_of(csr.index[2])) == sorted(
            csr.index[v] for v in path5.neighbors(2)
        )

    def test_restricted_universe_drops_outside_neighbors(self):
        g = star_graph(4)
        csr = CSRGraph.from_graph(g, nodes=[0, 1, 2])
        assert csr.num_nodes == 3
        assert csr.num_edges == 2  # edges to 3 and 4 dropped

    def test_duplicate_universe_rejected(self, path5):
        with pytest.raises(ValueError, match="duplicate"):
            CSRGraph.from_graph(path5, nodes=[0, 0, 1])

    def test_empty_graph(self):
        csr = CSRGraph.from_graph(Graph())
        assert csr.num_nodes == 0
        assert csr.num_edges == 0


class TestBFSLevels:
    def test_path(self):
        g = path_graph(6)
        csr = CSRGraph.from_graph(g)
        levels = bfs_levels(csr, csr.index[0])
        assert [levels[csr.index[i]] for i in range(6)] == [0, 1, 2, 3, 4, 5]

    def test_unreached_marker(self, two_components):
        csr = CSRGraph.from_graph(two_components)
        levels = bfs_levels(csr, csr.index[0])
        assert levels[csr.index[10]] == UNREACHED

    def test_out_of_range_source(self, path5):
        csr = CSRGraph.from_graph(path5)
        with pytest.raises(IndexError):
            bfs_levels(csr, 99)

    def test_isolated_source(self):
        g = Graph([(0, 1)])
        g.add_node(7)
        csr = CSRGraph.from_graph(g)
        levels = bfs_levels(csr, csr.index[7])
        assert levels[csr.index[7]] == 0
        assert levels[csr.index[0]] == UNREACHED

    @pytest.mark.parametrize("seed", [111, 112, 113])
    def test_matches_dict_bfs(self, seed):
        g, _ = random_snapshot_pair(num_nodes=50, num_edges=120, seed=seed)
        csr = CSRGraph.from_graph(g)
        for u in list(g.nodes())[:10]:
            ref = bfs_distances(g, u)
            levels = bfs_levels(csr, csr.index[u])
            got = {
                csr.nodes[i]: int(levels[i])
                for i in np.flatnonzero(levels != UNREACHED)
            }
            assert got == dict(ref)

    def test_grid(self):
        g = grid_graph(5, 7)
        csr = CSRGraph.from_graph(g)
        levels = bfs_levels(csr, csr.index[0])
        # Manhattan distance on a grid.
        assert levels[csr.index[4 * 7 + 6]] == 4 + 6


class TestFastWrappers:
    def test_bfs_distances_fast(self, path5):
        assert bfs_distances_fast(path5, 0) == dict(bfs_distances(path5, 0))

    def test_all_sources_levels_shape_and_symmetry(self):
        g = grid_graph(3, 3)
        csr = CSRGraph.from_graph(g)
        matrix = all_sources_levels(csr)
        assert matrix.shape == (9, 9)
        assert (matrix == matrix.T).all()
        assert (np.diag(matrix) == 0).all()


NODE = st.integers(min_value=0, max_value=12)


@st.composite
def small_edges(draw):
    raw = draw(st.lists(st.tuples(NODE, NODE), min_size=1, max_size=30))
    edges = {(min(u, v), max(u, v)) for u, v in raw if u != v}
    return sorted(edges) or [(0, 1)]


class TestEquivalenceProperty:
    @settings(max_examples=60, deadline=None)
    @given(small_edges())
    def test_csr_bfs_equals_dict_bfs(self, edges):
        g = Graph(edges)
        csr = CSRGraph.from_graph(g)
        source = next(iter(g.nodes()))
        ref = dict(bfs_distances(g, source))
        levels = bfs_levels(csr, csr.index[source])
        got = {
            csr.nodes[i]: int(levels[i])
            for i in np.flatnonzero(levels != UNREACHED)
        }
        assert got == ref
