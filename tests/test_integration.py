"""Integration tests: the full pipeline end to end.

These exercise the exact workflow the paper evaluates: synthetic dataset
-> snapshot split -> ground truth -> budgeted selection -> coverage, plus
the key theoretical equivalences that tie the pieces together.
"""

import numpy as np
import pytest

from repro import (
    candidate_pair_coverage,
    converging_pairs_at_threshold,
    coverage,
    datasets,
    find_top_k_converging_pairs,
    get_selector,
    greedy_vertex_cover,
    PairGraph,
)
from repro.core.pairs import delta_histogram, k_for_delta_threshold
from repro.selection import SINGLE_FEATURE_SELECTORS
from repro.selection.oracle import GreedyCoverOracle


@pytest.fixture(scope="module")
def facebook_ctx():
    tg = datasets.load("facebook", scale=0.2)
    g1, g2 = datasets.eval_snapshots(tg)
    hist = delta_histogram(g1, g2)
    delta = max(1, max(d for d in hist if d > 0) - 1)
    truth = converging_pairs_at_threshold(g1, g2, delta)
    return g1, g2, delta, truth


class TestEveryRegisteredSelectorRuns:
    @pytest.mark.parametrize(
        "name", [n for n in SINGLE_FEATURE_SELECTORS if n != "IncBet"]
    )
    def test_selector_end_to_end(self, name, facebook_ctx):
        g1, g2, _, truth = facebook_ctx
        result = find_top_k_converging_pairs(
            g1, g2, k=len(truth), m=20, selector=get_selector(name), seed=0
        )
        assert result.budget.spent <= 40
        assert len(result.candidates) <= 20
        assert all(u in g1 for u in result.candidates)
        cov = candidate_pair_coverage(result.candidates, truth)
        assert 0.0 <= cov <= 1.0

    def test_incbet_with_sampled_pivots(self, facebook_ctx):
        g1, g2, _, truth = facebook_ctx
        result = find_top_k_converging_pairs(
            g1, g2, k=len(truth), m=20,
            selector=get_selector("IncBet", pivots=32), seed=0,
        )
        assert result.budget.spent <= 40


class TestCoverageEquivalence:
    """candidate_pair_coverage(M, truth) == coverage(Algorithm1(M), truth)
    when k is chosen by the δ-threshold rule (see evaluation docstring)."""

    @pytest.mark.parametrize("name", ["SumDiff", "MMSD", "DegRel", "MaxAvg"])
    def test_equivalence(self, name, facebook_ctx):
        g1, g2, _, truth = facebook_ctx
        result = find_top_k_converging_pairs(
            g1, g2, k=len(truth), m=15, selector=get_selector(name), seed=1
        )
        pair_cov = coverage(result.pairs, truth)
        cand_cov = candidate_pair_coverage(result.candidates, truth)
        assert pair_cov == pytest.approx(cand_cov)


class TestOracleUpperBound:
    def test_oracle_with_cover_budget_is_perfect(self, facebook_ctx):
        g1, g2, _, truth = facebook_ctx
        pg = PairGraph(truth)
        cover = greedy_vertex_cover(pg)
        result = find_top_k_converging_pairs(
            g1, g2, k=len(truth), m=len(cover),
            selector=GreedyCoverOracle(pg), seed=0,
        )
        assert coverage(result.pairs, truth) == 1.0

    def test_oracle_dominates_every_heuristic(self, facebook_ctx):
        g1, g2, _, truth = facebook_ctx
        pg = PairGraph(truth)
        m = 10
        oracle_cov = candidate_pair_coverage(
            find_top_k_converging_pairs(
                g1, g2, k=len(truth), m=m, selector=GreedyCoverOracle(pg),
            ).candidates,
            truth,
        )
        for name in ("SumDiff", "DegRel", "MaxAvg"):
            heur_cov = candidate_pair_coverage(
                find_top_k_converging_pairs(
                    g1, g2, k=len(truth), m=m, selector=get_selector(name),
                    seed=0,
                ).candidates,
                truth,
            )
            assert oracle_cov >= heur_cov - 1e-9


class TestPaperHeadline:
    def test_small_budget_achieves_high_coverage(self):
        """The paper's headline: >90% of top-k pairs on a tiny budget.

        On the Internet-like dataset, the best hybrid with a budget of a
        few percent of the nodes recovers ~all converging pairs (paper:
        >90% with 0.5% of nodes on the real AS graph).
        """
        tg = datasets.load("internet", scale=0.4)
        g1, g2 = datasets.eval_snapshots(tg)
        hist = delta_histogram(g1, g2)
        delta = max(d for d in hist if d > 0) - 1  # δ = Δmax−1
        truth = converging_pairs_at_threshold(g1, g2, delta)
        assert len(truth) >= 5  # a non-trivial target set
        m = max(10, g1.num_nodes // 25)  # 4% of nodes
        covs = []
        for seed in range(5):
            result = find_top_k_converging_pairs(
                g1, g2, k=len(truth), m=m,
                selector=get_selector("MMSD"), seed=seed,
            )
            covs.append(candidate_pair_coverage(result.candidates, truth))
        assert float(np.mean(covs)) >= 0.8

    def test_degree_is_a_poor_selector(self):
        """Degree's near-zero coverage is the paper's negative result."""
        tg = datasets.load("internet", scale=0.4)
        g1, g2 = datasets.eval_snapshots(tg)
        hist = delta_histogram(g1, g2)
        delta = max(1, max(d for d in hist if d > 0) - 1)
        truth = converging_pairs_at_threshold(g1, g2, delta)
        m = max(10, g1.num_nodes // 25)
        deg = candidate_pair_coverage(
            find_top_k_converging_pairs(
                g1, g2, k=len(truth), m=m, selector=get_selector("Degree"),
            ).candidates,
            truth,
        )
        best = candidate_pair_coverage(
            find_top_k_converging_pairs(
                g1, g2, k=len(truth), m=m, selector=get_selector("SumDiff"),
                seed=0,
            ).candidates,
            truth,
        )
        assert deg < best


class TestClassifierPipeline:
    def test_local_classifier_end_to_end(self):
        from repro.ml import train_local_classifier
        from repro.selection import LocalClassifierSelector

        tg = datasets.load("dblp", scale=0.25)
        model = train_local_classifier(tg, num_landmarks=4, seed=0)
        g1, g2 = datasets.eval_snapshots(tg)
        hist = delta_histogram(g1, g2)
        delta = max(1, max(d for d in hist if d > 0) - 1)
        truth = converging_pairs_at_threshold(g1, g2, delta)
        result = find_top_k_converging_pairs(
            g1, g2, k=len(truth), m=30,
            selector=LocalClassifierSelector(model), seed=0,
        )
        assert result.budget.spent <= 60
        assert candidate_pair_coverage(result.candidates, truth) > 0.3
