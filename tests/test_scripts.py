"""Tests for the repository's maintenance scripts."""

import importlib.util
import sys
from pathlib import Path

import pytest

SCRIPTS_DIR = Path(__file__).resolve().parent.parent / "scripts"


@pytest.fixture(scope="module")
def expgen():
    spec = importlib.util.spec_from_file_location(
        "generate_experiments_md", SCRIPTS_DIR / "generate_experiments_md.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestGenerateExperimentsMd:
    @pytest.fixture(scope="class")
    def report(self, expgen):
        # Smoke scale; contexts may already be cached by other tests.
        return expgen.generate(scale=0.15)

    def test_all_sections_present(self, report):
        for heading in (
            "# EXPERIMENTS — paper vs. measured",
            "## Table 1", "## Table 2", "## Table 3", "## Table 5",
            "## Table 6", "## Figure 1", "## Figure 2", "## Figure 3",
            "## Ablation A-1", "## Ablation A-2", "## Ablation A-3",
            "## Ablation A-4", "## Ablation A-5", "## Ablation A-6",
            "## Extension E-X1", "## Extension E-X2",
            "## Extension E-X3", "## Extension E-X4",
            "## Experiment E-P1",
        ):
            assert heading in report, f"missing section {heading!r}"

    def test_every_section_quotes_the_paper(self, report):
        # Each artefact section pairs a paper claim with a measurement.
        assert report.count("**Paper") >= 8
        assert report.count("**Measured") >= 8

    def test_main_writes_file(self, expgen, tmp_path):
        out = tmp_path / "EXP.md"
        rc = expgen.main(["--scale", "0.15", "--out", str(out)])
        assert rc == 0
        assert out.exists()
        assert "Table 5" in out.read_text()


class TestGenerateApiDocs:
    @pytest.fixture(scope="class")
    def apigen(self):
        spec = importlib.util.spec_from_file_location(
            "generate_api_docs", SCRIPTS_DIR / "generate_api_docs.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_committed_reference_is_current(self, apigen):
        """docs/api.md must match the live package (regenerate if not)."""
        committed = (
            SCRIPTS_DIR.parent / "docs" / "api.md"
        ).read_text(encoding="utf-8")
        assert committed == apigen.generate()

    def test_reference_covers_all_public_modules(self, apigen):
        content = apigen.generate()
        for module in apigen.PUBLIC_MODULES:
            assert f"## `{module}`" in content

    def test_check_mode(self, apigen, capsys):
        assert apigen.main(["--check"]) == 0

    def test_check_mode_detects_staleness(self, apigen, tmp_path):
        stale = tmp_path / "api.md"
        stale.write_text("old", encoding="utf-8")
        assert apigen.main(["--check", "--out", str(stale)]) == 1


class TestCheckBench:
    @pytest.fixture(scope="class")
    def checker(self):
        spec = importlib.util.spec_from_file_location(
            "check_bench", SCRIPTS_DIR / "check_bench.py"
        )
        module = importlib.util.module_from_spec(spec)
        # dataclass field-type resolution needs the module registered.
        sys.modules["check_bench"] = module
        spec.loader.exec_module(module)
        return module

    @staticmethod
    def _incremental_baseline(speedup):
        return {
            "schema": "bench-incremental/v1",
            "scale": 0.5,
            "host": {"cpus": 1, "platform": "linux", "start_method": "fork"},
            "datasets": {
                "actors": {
                    "nodes": 10, "edges_t2": 20, "new_edges": 5,
                    "new_nodes": 1, "full_s": 0.2,
                    "incremental_s": round(0.2 / speedup, 6),
                    "speedup": speedup,
                },
            },
            "speedup": {"actors": speedup},
        }

    def test_committed_baselines_pass_their_floors(self, checker):
        assert checker.main([]) == 0

    def test_discovers_all_committed_baselines(self, checker):
        names = {p.name for p in checker.discover()}
        assert {"BENCH_incremental.json", "BENCH_parallel.json"} <= names

    def test_incremental_floor_violation_fails(self, checker, tmp_path):
        import json

        path = tmp_path / "BENCH_incremental.json"
        path.write_text(json.dumps(self._incremental_baseline(1.1)))
        assert checker.main([str(path)]) == 1
        # Below-floor numbers still validate structurally.
        assert checker.main([str(path), "--no-floor"]) == 0
        assert checker.main([str(path), "--min-speedup", "1.0"]) == 0

    def test_incremental_floor_is_not_cpu_gated(self, checker, tmp_path):
        """Repair speedup is algorithmic — single-core hosts get no pass."""
        import json

        baseline = self._incremental_baseline(1.0)
        baseline["host"]["cpus"] = 1
        path = tmp_path / "BENCH_incremental.json"
        path.write_text(json.dumps(baseline))
        assert checker.main([str(path)]) == 1

    @staticmethod
    def _parallel_baseline(best=2.0, cpus=4):
        return {
            "schema": "bench-parallel/v2",
            "dataset": "internet",
            "scale": 0.5,
            "nodes": 1090,
            "edges": 1474,
            "host": {
                "cpus": cpus, "platform": "linux", "start_method": "fork",
            },
            "timings_s": {
                "workers1": 0.06,
                "workers2": round(0.06 / max(best - 0.4, 0.1), 6),
                "workers4": round(0.06 / best, 6),
            },
            "speedup": {
                "workers2": round(max(best - 0.4, 0.1), 3),
                "workers4": best,
            },
            "shm": {"segment_bytes": 20560, "pickled_bytes_avoided": 26611},
            "batch": {"width": 64, "speedup": 4.19},
        }

    def test_parallel_v2_fails_on_single_core_baseline(self, checker, tmp_path):
        """v2 has no single-core exemption: a 1-cpu recording is invalid."""
        import json

        baseline = self._parallel_baseline(best=2.0, cpus=1)
        path = tmp_path / "BENCH_parallel.json"
        path.write_text(json.dumps(baseline))
        assert checker.main([str(path)]) == 1
        # Structure-only validation still accepts it (provenance intact);
        # any enforced floor re-triggers the multi-core requirement.
        assert checker.main([str(path), "--no-floor"]) == 0
        assert checker.main([str(path), "--min-speedup", "0.1"]) == 1

    def test_parallel_v2_floor_violation_fails(self, checker, tmp_path):
        import json

        baseline = self._parallel_baseline(best=1.1, cpus=4)
        path = tmp_path / "BENCH_parallel.json"
        path.write_text(json.dumps(baseline))
        assert checker.main([str(path)]) == 1
        assert checker.main([str(path), "--min-speedup", "1.0"]) == 0

    def test_parallel_v2_requires_shm_and_batch_provenance(
        self, checker, tmp_path
    ):
        import json

        for mutate in (
            lambda b: b.pop("shm"),
            lambda b: b.pop("batch"),
            lambda b: b["shm"].__setitem__("segment_bytes", 0),
            lambda b: b["shm"].__setitem__("pickled_bytes_avoided", -5),
            lambda b: b["batch"].__setitem__("width", 0),
            lambda b: b["timings_s"].__delitem__("workers2") or
                      b["timings_s"].__delitem__("workers4"),
        ):
            baseline = self._parallel_baseline()
            mutate(baseline)
            path = tmp_path / "BENCH_parallel.json"
            path.write_text(json.dumps(baseline))
            assert checker.main([str(path)]) == 1, baseline

    def test_parallel_v1_schema_retired(self, checker, tmp_path):
        import json

        baseline = self._parallel_baseline()
        baseline["schema"] = "bench-parallel/v1"
        path = tmp_path / "BENCH_parallel.json"
        path.write_text(json.dumps(baseline))
        assert checker.main([str(path)]) == 1

    def test_unknown_schema_rejected(self, checker, tmp_path):
        import json

        path = tmp_path / "BENCH_gpu.json"
        path.write_text(json.dumps({"schema": "bench-gpu/v9"}))
        assert checker.main([str(path)]) == 1

    def test_missing_fields_rejected(self, checker, tmp_path):
        import json

        baseline = self._incremental_baseline(2.0)
        del baseline["host"]["start_method"]
        path = tmp_path / "BENCH_incremental.json"
        path.write_text(json.dumps(baseline))
        assert checker.main([str(path)]) == 1

    def test_corrupt_json_rejected(self, checker, tmp_path):
        path = tmp_path / "BENCH_incremental.json"
        path.write_text("{not json")
        assert checker.main([str(path)]) == 1


class TestUpdateRegressionBands:
    @pytest.fixture(scope="class")
    def bandsgen(self):
        spec = importlib.util.spec_from_file_location(
            "update_regression_bands",
            SCRIPTS_DIR / "update_regression_bands.py",
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_band_structure(self, bandsgen):
        bands = bandsgen.compute_bands(scale=0.15, margin=0.1)
        assert bands["scale"] == 0.15
        cov = bands["average_coverage"]
        assert "SumDiff" in cov and "Degree" in cov
        for band in cov.values():
            assert 0.0 <= band["low"] <= band["mean"] <= band["high"] <= 1.0

    def test_main_writes_file(self, bandsgen, tmp_path):
        out = tmp_path / "bands.json"
        rc = bandsgen.main(["--scale", "0.15", "--out", str(out)])
        assert rc == 0
        import json

        data = json.loads(out.read_text())
        assert data["margin"] == 0.12
