"""Unit tests for repro.graph.apsp."""

import math

import networkx as nx
import numpy as np
import pytest

from repro.graph.apsp import (
    DistanceMatrix,
    all_pairs_distances,
    average_distance,
    diameter,
    eccentricities,
)
from repro.graph.graph import Graph

from conftest import cycle_graph, path_graph, random_snapshot_pair, to_networkx


class TestDistanceMatrix:
    def test_basic_lookup(self, path5):
        dm = all_pairs_distances(path5)
        assert dm.distance(0, 4) == 4
        assert dm.distance(4, 0) == 4
        assert dm.distance(2, 2) == 0

    def test_contains_and_len(self, path5):
        dm = all_pairs_distances(path5)
        assert len(dm) == 5
        assert 3 in dm
        assert 99 not in dm

    def test_row_alignment(self, path5):
        dm = all_pairs_distances(path5)
        row = dm.row(0)
        assert [row[dm.index[i]] for i in range(5)] == [0, 1, 2, 3, 4]

    def test_unreachable_is_inf(self, two_components):
        dm = all_pairs_distances(two_components)
        assert math.isinf(dm.distance(0, 10))

    def test_finite_pairs(self, two_components):
        dm = all_pairs_distances(two_components)
        # Within components: C(3,2) + C(2,2) = 3 + 1 = 4.
        assert dm.finite_pairs() == 4

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="shape"):
            DistanceMatrix([1, 2], np.zeros((3, 3), dtype=np.float32))

    def test_duplicate_nodes_raise(self):
        with pytest.raises(ValueError, match="duplicate"):
            DistanceMatrix([1, 1], np.zeros((2, 2), dtype=np.float32))

    def test_restricted_universe(self, shortcut_pair):
        g1, g2 = shortcut_pair
        dm2 = all_pairs_distances(g2, nodes=list(g1.nodes()))
        assert dm2.distance(0, 5) == 1

    def test_universe_node_missing_from_graph(self):
        g = Graph([(0, 1)])
        dm = all_pairs_distances(g, nodes=[0, 1, 7])
        assert dm.distance(7, 7) == 0
        assert math.isinf(dm.distance(0, 7))

    @pytest.mark.parametrize("seed", [21, 22])
    def test_matches_networkx(self, seed):
        g, _ = random_snapshot_pair(num_nodes=30, num_edges=60, seed=seed)
        dm = all_pairs_distances(g)
        expected = dict(nx.all_pairs_shortest_path_length(to_networkx(g)))
        for u in g.nodes():
            for v in g.nodes():
                exp = expected[u].get(v, math.inf)
                assert dm.distance(u, v) == exp


class TestEccentricityDiameter:
    def test_path_diameter(self):
        assert diameter(path_graph(7)) == 6

    def test_cycle_diameter(self):
        assert diameter(cycle_graph(8)) == 4

    def test_eccentricities_path(self):
        ecc = eccentricities(path_graph(5))
        assert ecc[0] == 4
        assert ecc[2] == 2

    def test_disconnected_diameter_is_max_over_components(self, two_components):
        assert diameter(two_components) == 2

    def test_empty_graph(self):
        assert diameter(Graph()) == 0.0

    def test_isolated_node_eccentricity(self):
        g = Graph([(0, 1)])
        g.add_node(9)
        assert eccentricities(g)[9] == 0.0

    def test_weighted_diameter(self):
        g = Graph([(0, 1, 2.0), (1, 2, 3.0)])
        assert diameter(g) == pytest.approx(5.0)

    @pytest.mark.parametrize("seed", [23])
    def test_diameter_matches_networkx(self, seed):
        g, _ = random_snapshot_pair(num_nodes=30, num_edges=70, seed=seed)
        nxg = to_networkx(g)
        expected = max(
            nx.diameter(nxg.subgraph(c)) for c in nx.connected_components(nxg)
        )
        assert diameter(g) == expected


class TestAverageDistance:
    def test_path(self):
        # Path 0-1-2: distances 1,1,2 -> mean 4/3.
        assert average_distance(path_graph(3)) == pytest.approx(4 / 3)

    def test_no_pairs(self):
        g = Graph()
        g.add_node(1)
        assert average_distance(g) == 0.0

    def test_ignores_disconnected_pairs(self, two_components):
        # Component distances: (0-1)=1,(1-2)=1,(0-2)=2,(10-11)=1 -> 5/4.
        assert average_distance(two_components) == pytest.approx(5 / 4)
