"""Unit tests for the atomic JSON checkpoint store."""

import json

import pytest

from repro.resilience import SCHEMA_VERSION, CheckpointStore, capture_events
from repro.resilience.checkpoint import restore_list


@pytest.fixture
def store(tmp_path):
    return CheckpointStore(tmp_path / "ckpt")


class TestRoundTrip:
    def test_put_get(self, store):
        key = ("cell", "table5", "facebook", 0.5, 3.0, "mmsd", 40)
        store.put(key, 0.875)
        assert store.get(key) == 0.875
        assert key in store

    def test_missing_returns_default(self, store):
        assert store.get(("nope",)) is None
        assert store.get(("nope",), default=-1) == -1
        assert ("nope",) not in store

    def test_tuple_and_list_keys_are_equivalent(self, store):
        store.put(("a", 1, ("b", 2)), "value")
        assert store.get(["a", 1, ["b", 2]]) == "value"

    def test_nested_values_survive(self, store):
        value = {"pairs": [[1, 2, 3.0, 1.0]], "ledger": [["topk", "g1", 4]]}
        store.put("window", value)
        assert store.get("window") == value

    def test_overwrite_replaces(self, store):
        store.put("k", 1)
        store.put("k", 2)
        assert store.get("k") == 2
        assert len(store) == 1

    def test_keys_and_clear(self, store):
        store.put(("a",), 1)
        store.put(("b",), 2)
        assert sorted(tuple(k) for k in store.keys()) == [("a",), ("b",)]
        assert store.clear() == 2
        assert len(store) == 0

    def test_delete(self, store):
        store.put("k", 1)
        assert store.delete("k")
        assert not store.delete("k")
        assert store.get("k") is None

    def test_directory_created_with_parents(self, tmp_path):
        deep = tmp_path / "a" / "b" / "c"
        CheckpointStore(deep).put("k", 1)
        assert deep.is_dir()


class TestAtomicity:
    def test_no_temp_files_left_behind(self, store):
        for i in range(5):
            store.put(("k", i), i)
        leftovers = list(store.directory.glob("*.tmp"))
        assert leftovers == []

    def test_record_is_schema_versioned_and_checksummed(self, store):
        path = store.put("k", {"x": 1})
        record = json.loads(path.read_text())
        assert record["schema"] == SCHEMA_VERSION
        assert set(record) == {"schema", "key", "checksum", "value"}


class TestDurability:
    """The rename is only durable once the parent directory is synced."""

    @staticmethod
    def _tracking_fsync(order):
        import os
        import stat

        real_fsync = os.fsync

        def fsync(fd):
            kind = "dir" if stat.S_ISDIR(os.fstat(fd).st_mode) else "file"
            order.append(f"fsync:{kind}")
            real_fsync(fd)

        return fsync

    def test_put_fsyncs_parent_directory_after_rename(
        self, store, monkeypatch
    ):
        """Regression: file fsync -> atomic rename -> directory fsync,
        in exactly that order. Without the final step a crash right
        after ``os.replace`` can roll the rename back on filesystems
        that journal data but not directory updates."""
        import os

        order = []
        real_replace = os.replace
        monkeypatch.setattr(os, "fsync", self._tracking_fsync(order))
        monkeypatch.setattr(
            os, "replace",
            lambda src, dst: (order.append("replace"), real_replace(src, dst))[1],
        )
        store.put("k", {"x": 1})
        assert order == ["fsync:file", "replace", "fsync:dir"]

    def test_directory_fsync_failure_surfaces(self, store, monkeypatch):
        """An injected fsync fault on the directory fd must propagate —
        swallowing it would silently drop the durability guarantee."""
        import os
        import stat

        from repro.resilience.faults import FsyncFault

        real_fsync = os.fsync

        def failing_fsync(fd):
            if stat.S_ISDIR(os.fstat(fd).st_mode):
                raise FsyncFault("injected: directory fsync failed")
            real_fsync(fd)

        monkeypatch.setattr(os, "fsync", failing_fsync)
        with pytest.raises(FsyncFault):
            store.put("k", 1)


class TestCorruption:
    def corrupt(self, store, key, mutate):
        path = store.put(key, 0.5)
        mutate(path)
        return path

    def test_truncated_record_treated_as_missing(self, store):
        self.corrupt(store, "k", lambda p: p.write_text("{\"schema\": 1"))
        with capture_events() as events:
            assert store.get("k", default="fallback") == "fallback"
        assert events[0][0] == "checkpoint.corrupt"
        assert "unreadable" in str(events[0][1]["reason"])

    def test_tampered_value_fails_checksum(self, store):
        def mutate(path):
            record = json.loads(path.read_text())
            record["value"] = 0.999
            path.write_text(json.dumps(record))

        self.corrupt(store, "k", mutate)
        with capture_events() as events:
            assert store.get("k") is None
        assert events[0][1]["reason"] == "checksum"
        assert not store.contains("k")

    def test_wrong_schema_version_ignored(self, store):
        def mutate(path):
            record = json.loads(path.read_text())
            record["schema"] = SCHEMA_VERSION + 1
            path.write_text(json.dumps(record))

        self.corrupt(store, "k", mutate)
        with capture_events() as events:
            assert store.get("k") is None
        assert events[0][1]["reason"] == "schema"

    def test_foreign_key_in_colliding_file_ignored(self, store):
        # A record whose embedded key disagrees with the lookup key must
        # not be returned (defends against filename tampering/collision).
        path = store.put("a", 1)
        other = store._path("b")
        other.write_text(path.read_text())
        assert store.get("b") is None

    def test_corrupt_records_skipped_by_keys(self, store):
        store.put("good", 1)
        bad = store.put("bad", 2)
        bad.write_text("not json")
        assert list(store.keys()) == ["good"]


class TestRestoreList:
    def test_inner_lists_become_tuples(self):
        assert restore_list([[1, 2], "x", [3, 4]]) == [(1, 2), "x", (3, 4)]
