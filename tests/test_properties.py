"""Property-based tests (hypothesis) for the core invariants.

These pin down the *laws* the library is built on rather than specific
examples: distance monotonicity under insertion-only evolution, the
vertex-cover semantics of the pair graph, the exactness of the coverage
equivalence, budget arithmetic, and scaling/ordering properties of the
ML substrate.
"""

import dataclasses
import json
import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.budget import SPBudget
from repro.core.cover import greedy_max_coverage, greedy_vertex_cover
from repro.core.evaluation import candidate_pair_coverage, coverage
from repro.core.pairgraph import PairGraph
from repro.core.pairs import (
    canonical_pair,
    converging_pairs_at_threshold,
    delta_histogram,
    k_for_delta_threshold,
    top_k_converging_pairs,
)
from repro.experiments import ExperimentConfig, result_to_dict
from repro.experiments import table5
from repro.experiments.runner import coverage_cells
from repro.graph.dynamic import TemporalGraph
from repro.graph.graph import Graph
from repro.graph.traversal import bfs_distances
from repro.ml.scaling import MinMaxScaler
from repro.parallel import ParallelExecutor, worker_state

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
NODE = st.integers(min_value=0, max_value=14)


@st.composite
def edge_list(draw, max_edges=40):
    """A list of distinct undirected edges over a small node universe."""
    raw = draw(
        st.lists(st.tuples(NODE, NODE), min_size=1, max_size=max_edges)
    )
    edges = []
    seen = set()
    for u, v in raw:
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key not in seen:
            seen.add(key)
            edges.append(key)
    return edges or [(0, 1)]  # all-self-loop draws degenerate to one edge


@st.composite
def snapshot_pair(draw):
    """An insertion-only snapshot pair built from a random edge stream."""
    edges = draw(edge_list())
    cut = draw(st.integers(min_value=1, max_value=len(edges)))
    g1 = Graph(edges[:cut])
    g2 = Graph(edges)
    return g1, g2


@st.composite
def pair_list(draw):
    """A list of node pairs (edges of a pair graph)."""
    return draw(edge_list(max_edges=25))


# ----------------------------------------------------------------------
# Graph laws
# ----------------------------------------------------------------------
class TestGraphProperties:
    @given(edge_list())
    def test_handshake_lemma(self, edges):
        g = Graph(edges)
        assert sum(g.degrees().values()) == 2 * g.num_edges

    @given(edge_list())
    def test_bfs_distances_satisfy_triangle_on_edges(self, edges):
        g = Graph(edges)
        source = next(iter(g.nodes()))
        dist = bfs_distances(g, source)
        for u, v in g.edges():
            if u in dist and v in dist:
                assert abs(dist[u] - dist[v]) <= 1

    @given(snapshot_pair())
    def test_distances_monotone_under_insertion(self, pair):
        g1, g2 = pair
        for source in g1.nodes():
            d1 = bfs_distances(g1, source)
            d2 = bfs_distances(g2, source)
            for v, dv in d1.items():
                assert d2[v] <= dv

    @given(edge_list())
    def test_subgraph_of_all_nodes_is_identity(self, edges):
        g = Graph(edges)
        assert g.subgraph(list(g.nodes())) == g


class TestTemporalProperties:
    @given(edge_list(), st.floats(min_value=0, max_value=1),
           st.floats(min_value=0, max_value=1))
    def test_snapshots_nested_by_fraction(self, edges, f1, f2):
        tg = TemporalGraph([(t, u, v) for t, (u, v) in enumerate(edges)])
        lo, hi = min(f1, f2), max(f1, f2)
        g1 = tg.snapshot_at_fraction(lo)
        g2 = tg.snapshot_at_fraction(hi)
        for u, v in g1.edges():
            assert g2.has_edge(u, v)


# ----------------------------------------------------------------------
# Ground-truth laws
# ----------------------------------------------------------------------
class TestPairProperties:
    @given(NODE, NODE)
    def test_canonical_pair_idempotent_symmetric(self, u, v):
        assert canonical_pair(u, v) == canonical_pair(v, u)
        assert canonical_pair(*canonical_pair(u, v)) == canonical_pair(u, v)

    @given(snapshot_pair())
    def test_histogram_nonnegative_support(self, pair):
        hist = delta_histogram(*pair)
        assert all(d >= 0 for d in hist)
        assert all(c > 0 for c in hist.values())

    @given(snapshot_pair())
    def test_threshold_count_matches_collection(self, pair):
        g1, g2 = pair
        hist = delta_histogram(g1, g2)
        for delta in (1, 2, 3):
            pairs = converging_pairs_at_threshold(g1, g2, delta)
            assert len(pairs) == k_for_delta_threshold(hist, delta)

    @given(snapshot_pair(), st.integers(min_value=1, max_value=10))
    def test_top_k_sorted_unique_positive(self, pair, k):
        top = top_k_converging_pairs(*pair, k=k)
        assert len(top) <= k
        deltas = [p.delta for p in top]
        assert deltas == sorted(deltas, reverse=True)
        assert all(d > 0 for d in deltas)
        assert len({p.pair for p in top}) == len(top)

    @given(snapshot_pair())
    def test_delta_bounded_by_d1_minus_1(self, pair):
        g1, g2 = pair
        for p in converging_pairs_at_threshold(g1, g2, 1):
            assert p.delta <= p.d1 - 1  # d2 >= 1 for distinct nodes
            assert p.d2 >= 1


# ----------------------------------------------------------------------
# Cover laws
# ----------------------------------------------------------------------
class TestCoverProperties:
    @given(pair_list())
    def test_greedy_cover_is_a_cover(self, pairs):
        pg = PairGraph(pairs)
        assert pg.is_vertex_cover(greedy_vertex_cover(pg))

    @given(pair_list())
    def test_cover_size_bounds(self, pairs):
        pg = PairGraph(pairs)
        cover = greedy_vertex_cover(pg)
        if pg.num_pairs:
            # At least one node per matching edge; at most one per pair.
            assert 1 <= len(cover) <= pg.num_pairs
            assert len(cover) <= pg.num_endpoints

    @given(pair_list(), st.integers(min_value=0, max_value=10))
    def test_max_coverage_is_cover_prefix(self, pairs, budget):
        pg = PairGraph(pairs)
        full = greedy_vertex_cover(pg)
        assert greedy_max_coverage(pg, budget) == full[:budget]

    @given(pair_list(), st.integers(min_value=0, max_value=10))
    def test_coverage_monotone_in_budget(self, pairs, budget):
        pg = PairGraph(pairs)
        a = pg.coverage_of(greedy_max_coverage(pg, budget))
        b = pg.coverage_of(greedy_max_coverage(pg, budget + 1))
        assert b >= a


# ----------------------------------------------------------------------
# Metric laws
# ----------------------------------------------------------------------
class TestMetricProperties:
    @given(pair_list(), pair_list())
    def test_coverage_in_unit_interval(self, found, truth):
        c = coverage(found, truth)
        assert 0.0 <= c <= 1.0

    @given(pair_list())
    def test_self_coverage_is_one(self, pairs):
        assert coverage(pairs, pairs) == 1.0

    @given(pair_list(), st.sets(NODE, max_size=8))
    def test_candidate_coverage_matches_pairgraph(self, pairs, candidates):
        pg = PairGraph(pairs)
        assert candidate_pair_coverage(candidates, pg.pairs()) == pytest.approx(
            pg.coverage_of(candidates)
        )


# ----------------------------------------------------------------------
# Budget laws
# ----------------------------------------------------------------------
class TestBudgetProperties:
    @given(st.lists(st.integers(min_value=1, max_value=5), max_size=20))
    def test_ledger_conservation(self, counts):
        budget = SPBudget(None)
        for i, c in enumerate(counts):
            budget.charge(f"p{i % 3}", "g1" if i % 2 else "g2", c)
        assert budget.spent == sum(counts)
        assert sum(budget.by_phase().values()) == budget.spent
        assert sum(budget.by_snapshot().values()) == budget.spent

    @given(st.integers(min_value=0, max_value=50),
           st.lists(st.integers(min_value=1, max_value=5), max_size=30))
    def test_limit_never_exceeded(self, limit, counts):
        from repro.core.budget import BudgetExceededError

        budget = SPBudget(limit)
        for c in counts:
            try:
                budget.charge("p", "g1", c)
            except BudgetExceededError:
                pass
        assert budget.spent <= limit


# ----------------------------------------------------------------------
# Parallel execution laws
# ----------------------------------------------------------------------
def _scaled_negate(x: int) -> int:
    """Picklable task for the executor properties (reads worker state)."""
    return -x * worker_state().get("scale", 1)


class TestParallelDeterminism:
    """Worker count and chunk size are execution details, never results."""

    @settings(max_examples=10, deadline=None)
    @given(
        st.lists(st.integers(min_value=-50, max_value=50), max_size=12),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=6),
    )
    def test_map_equals_serial_for_any_layout(self, items, workers, chunk):
        expected = [-x * 2 for x in items]
        executor = ParallelExecutor(
            workers, state={"scale": 2}, chunk_size=chunk
        )
        assert executor.map(_scaled_negate, items) == expected

    @settings(
        max_examples=3, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=1, max_value=4),
    )
    def test_exported_report_bytes_worker_independent(self, seed, chunk):
        """Same seed + same config ⇒ byte-identical exported report,
        regardless of worker count or chunk size."""
        config = ExperimentConfig(
            scale=0.15, budget=6, budget_sweep=(3, 6), delta_offsets=(0,),
            repeats=1, datasets=("facebook",), incbet_pivots=8,
            seed=seed, workers=1, experiment="table5",
        )
        specs = [
            ("facebook", name, m, 0)
            for name in ("Degree", "SumDiff")
            for m in (3, 6)
        ]
        serial_cells = coverage_cells(specs, config)
        parallel_cells = coverage_cells(
            specs, dataclasses.replace(config, workers=2), chunk_size=chunk
        )
        assert json.dumps(parallel_cells) == json.dumps(serial_cells)

        # What `experiment --json` writes, byte for byte.
        def export(workers: int) -> str:
            result = table5.run(dataclasses.replace(config, workers=workers))
            return json.dumps(result_to_dict(result), indent=2, sort_keys=True)

        assert export(2) == export(1)


# ----------------------------------------------------------------------
# ML substrate laws
# ----------------------------------------------------------------------
class TestScalerProperties:
    @settings(suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.lists(
            st.lists(
                st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False),
                min_size=3, max_size=3,
            ),
            min_size=2, max_size=30,
        )
    )
    def test_output_within_range_on_training_data(self, rows):
        X = np.array(rows)
        out = MinMaxScaler().fit_transform(X)
        assert (out >= -1.0 - 1e-9).all()
        assert (out <= 1.0 + 1e-9).all()

    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6,
                      allow_nan=False, allow_infinity=False),
            min_size=2, max_size=30,
        )
    )
    def test_order_preserved(self, values):
        X = np.array(values).reshape(-1, 1)
        out = MinMaxScaler().fit_transform(X).ravel()
        for i in range(len(values) - 1):
            if values[i] < values[i + 1]:
                assert out[i] <= out[i + 1]
