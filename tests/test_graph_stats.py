"""Unit tests for repro.graph.stats against networkx oracles."""

import math

import networkx as nx
import pytest

from repro.graph.graph import Graph
from repro.graph.stats import (
    average_clustering,
    degree_assortativity,
    degree_gini,
    degree_histogram,
    local_clustering,
    summary,
    transitivity,
)

from conftest import (
    complete_graph,
    path_graph,
    random_snapshot_pair,
    star_graph,
    to_networkx,
)


class TestLocalClustering:
    def test_triangle_is_one(self, triangle):
        assert local_clustering(triangle, 0) == 1.0

    def test_path_center_is_zero(self, path5):
        assert local_clustering(path5, 2) == 0.0

    def test_leaf_is_zero(self, path5):
        assert local_clustering(path5, 0) == 0.0

    def test_half_closed(self):
        # 0 connected to 1,2,3; only (1,2) closed: C(0) = 1/3.
        g = Graph([(0, 1), (0, 2), (0, 3), (1, 2)])
        assert local_clustering(g, 0) == pytest.approx(1 / 3)

    @pytest.mark.parametrize("seed", [101, 102])
    def test_matches_networkx(self, seed):
        g, _ = random_snapshot_pair(num_nodes=25, num_edges=70, seed=seed)
        expected = nx.clustering(to_networkx(g))
        for u in g.nodes():
            assert local_clustering(g, u) == pytest.approx(expected[u])


class TestAggregateClustering:
    def test_complete_graph(self):
        g = complete_graph(5)
        assert average_clustering(g) == pytest.approx(1.0)
        assert transitivity(g) == pytest.approx(1.0)

    def test_star_graph(self):
        g = star_graph(5)
        assert average_clustering(g) == 0.0
        assert transitivity(g) == 0.0

    def test_empty(self):
        assert average_clustering(Graph()) == 0.0
        assert transitivity(Graph()) == 0.0

    @pytest.mark.parametrize("seed", [103])
    def test_matches_networkx(self, seed):
        g, _ = random_snapshot_pair(num_nodes=30, num_edges=90, seed=seed)
        nxg = to_networkx(g)
        assert average_clustering(g) == pytest.approx(nx.average_clustering(nxg))
        assert transitivity(g) == pytest.approx(nx.transitivity(nxg))


class TestDegreeStats:
    def test_histogram(self, path5):
        assert degree_histogram(path5) == {1: 2, 2: 3}

    def test_gini_uniform_is_zero(self):
        g = complete_graph(6)
        assert degree_gini(g) == pytest.approx(0.0, abs=1e-9)

    def test_gini_star_is_high(self):
        assert degree_gini(star_graph(20)) > 0.4

    def test_gini_empty(self):
        assert degree_gini(Graph()) == 0.0

    def test_assortativity_star_is_negative(self):
        assert degree_assortativity(star_graph(10)) < 0

    def test_assortativity_regular_is_undefined(self):
        # A cycle is degree-regular: zero variance -> None.
        from conftest import cycle_graph

        assert degree_assortativity(cycle_graph(6)) is None

    def test_assortativity_too_few_edges(self):
        assert degree_assortativity(Graph([(0, 1)])) is None

    @pytest.mark.parametrize("seed", [104, 105])
    def test_assortativity_matches_networkx(self, seed):
        g, _ = random_snapshot_pair(num_nodes=30, num_edges=80, seed=seed)
        got = degree_assortativity(g)
        expected = nx.degree_assortativity_coefficient(to_networkx(g))
        assert got == pytest.approx(expected, abs=1e-6)


class TestSummary:
    def test_fields(self, triangle):
        s = summary(triangle)
        assert s["nodes"] == 3
        assert s["edges"] == 3
        assert s["average_clustering"] == 1.0
        assert math.isnan(s["degree_assortativity"])  # regular graph
