"""Integration tests for weighted graphs.

The problem definition covers "undirected (weighted) graphs"; the
paper's experiments are all unweighted, but the library must handle the
weighted generalisation: Dijkstra replaces BFS transparently, distances
remain monotone under weight-non-increasing evolution, and the whole
budgeted pipeline works on fractional Δ values.
"""

import numpy as np
import pytest

from repro.core.algorithm import find_top_k_converging_pairs
from repro.core.pairs import (
    converging_pairs_at_threshold,
    delta_histogram,
    pair_delta,
    top_k_converging_pairs,
)
from repro.graph.graph import Graph
from repro.selection import get_selector


@pytest.fixture
def weighted_pair():
    """A weighted road-network-style fixture.

    t1: a slow ring 0-1-2-3-4-5-0 with weight-2 edges; t2 adds a fast
    diagonal (0, 3) with weight 0.5, collapsing cross-ring distances.
    """
    g1 = Graph()
    ring = [0, 1, 2, 3, 4, 5]
    for a, b in zip(ring, ring[1:] + [0]):
        g1.add_edge(a, b, 2.0)
    g2 = g1.copy()
    g2.add_edge(0, 3, 0.5)
    return g1, g2


@pytest.fixture
def weighted_random_pair():
    rng = np.random.default_rng(17)
    g1 = Graph()
    for _ in range(160):
        u, v = int(rng.integers(40)), int(rng.integers(40))
        if u != v:
            g1.add_edge(u, v, float(rng.uniform(0.5, 3.0)))
    g2 = g1.copy()
    nodes = list(g1.nodes())
    for _ in range(25):
        u = nodes[int(rng.integers(len(nodes)))]
        v = nodes[int(rng.integers(len(nodes)))]
        if u != v and not g2.has_edge(u, v):
            g2.add_edge(u, v, float(rng.uniform(0.2, 1.0)))
    return g1, g2


class TestWeightedGroundTruth:
    def test_pair_delta_fractional(self, weighted_pair):
        g1, g2 = weighted_pair
        # d_t1(0,3) = 6 (three ring hops), d_t2 = 0.5.
        assert pair_delta(g1, g2, 0, 3) == pytest.approx(5.5)

    def test_top_pair_is_the_diagonal(self, weighted_pair):
        g1, g2 = weighted_pair
        top = top_k_converging_pairs(g1, g2, k=1)
        assert top[0].pair == (0, 3)
        assert top[0].delta == pytest.approx(5.5)

    def test_histogram_has_fractional_support(self, weighted_pair):
        hist = delta_histogram(*weighted_pair)
        assert any(d == pytest.approx(5.5) for d in hist)

    def test_threshold_collection(self, weighted_pair):
        pairs = converging_pairs_at_threshold(*weighted_pair, 2.0)
        assert all(p.delta >= 2.0 for p in pairs)
        assert (0, 3) in {p.pair for p in pairs}

    def test_deltas_nonnegative_random(self, weighted_random_pair):
        hist = delta_histogram(*weighted_random_pair)
        assert all(d >= -1e-6 for d in hist)


class TestWeightedBudgetedPipeline:
    @pytest.mark.parametrize("name", ["DegRel", "MaxAvg", "SumDiff", "MMSD"])
    def test_selectors_run_on_weighted_graphs(self, name, weighted_random_pair):
        g1, g2 = weighted_random_pair
        result = find_top_k_converging_pairs(
            g1, g2, k=10, m=8, selector=get_selector(name), seed=0
        )
        assert result.budget.spent <= 16
        for p in result.pairs:
            assert p.delta > 0

    def test_found_deltas_match_ground_truth(self, weighted_random_pair):
        g1, g2 = weighted_random_pair
        result = find_top_k_converging_pairs(
            g1, g2, k=5, m=10, selector=get_selector("MaxAvg"), seed=1
        )
        for p in result.pairs:
            assert pair_delta(g1, g2, p.u, p.v) == pytest.approx(p.delta)
