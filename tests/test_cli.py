"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestListing:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("actors", "internet", "facebook", "dblp"):
            assert name in out

    def test_selectors(self, capsys):
        assert main(["selectors"]) == 0
        out = capsys.readouterr().out
        assert "MMSD" in out and "L-Classifier" in out


class TestGenerate:
    def test_writes_stream(self, tmp_path, capsys):
        out_file = tmp_path / "fb.tsv"
        rc = main([
            "generate", "facebook", "--out", str(out_file), "--scale", "0.1",
        ])
        assert rc == 0
        assert out_file.exists()
        assert "wrote" in capsys.readouterr().out


class TestCharacteristics:
    def test_catalog_input(self, capsys):
        rc = main(["characteristics", "facebook", "--scale", "0.1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "max_delta" in out
        assert "nodes_t1" in out

    def test_file_input(self, tmp_path, capsys):
        stream = tmp_path / "s.tsv"
        main(["generate", "facebook", "--out", str(stream), "--scale", "0.1"])
        capsys.readouterr()
        rc = main(["characteristics", str(stream)])
        assert rc == 0
        assert "edges_t2" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        rc = main(["characteristics", "/does/not/exist.tsv"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "neither" in err


class TestTruth:
    def test_threshold_mode(self, capsys):
        rc = main(["truth", "facebook", "--scale", "0.1",
                   "--delta-offset", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "δ =" in out
        assert "d_t1" in out

    def test_explicit_k(self, capsys):
        rc = main(["truth", "facebook", "--scale", "0.1", "--k", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("\n") <= 10  # header + 5 pairs and maybe ellipsis

    def test_engine_choice_is_byte_invisible(self, capsys):
        """The engine flag is an execution detail, never a result."""
        outputs = []
        for engine in ["incremental", "csr", "dict"]:
            rc = main(["truth", "facebook", "--scale", "0.1",
                       "--delta-offset", "1", "--engine", engine])
            assert rc == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1] == outputs[2]
        assert "δ =" in outputs[0]


class TestTopk:
    def test_budgeted_run(self, capsys):
        rc = main([
            "topk", "facebook", "--scale", "0.1", "--selector", "MMSD",
            "--m", "15", "--k", "10", "--seed", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "budget: 30/30" in out
        assert "candidates (15)" in out

    def test_plain_selector_without_landmark_kwarg(self, capsys):
        rc = main([
            "topk", "facebook", "--scale", "0.1", "--selector", "DegRel",
            "--m", "10", "--k", "5",
        ])
        assert rc == 0
        assert "budget: 20/20" in capsys.readouterr().out

    def test_file_roundtrip(self, tmp_path, capsys):
        stream = tmp_path / "s.tsv"
        main(["generate", "internet", "--out", str(stream), "--scale", "0.1"])
        capsys.readouterr()
        rc = main(["topk", str(stream), "--m", "10", "--k", "5"])
        assert rc == 0


class TestExperiment:
    def test_table2(self, capsys):
        rc = main(["experiment", "table2", "--scale", "0.15"])
        assert rc == 0
        assert "Table 2" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        rc = main(["experiment", "table7"])
        assert rc == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestTrainAndModelDriven:
    def test_train_saves_model(self, tmp_path, capsys):
        out = tmp_path / "model.npz"
        rc = main([
            "train", "facebook", "--scale", "0.15", "--out", str(out),
            "--landmarks", "3",
        ])
        assert rc == 0
        assert out.exists()
        assert "trained local classifier" in capsys.readouterr().out

    def test_topk_with_saved_model(self, tmp_path, capsys):
        out = tmp_path / "model.npz"
        main(["train", "facebook", "--scale", "0.15", "--out", str(out),
              "--landmarks", "3"])
        capsys.readouterr()
        rc = main([
            "topk", "facebook", "--scale", "0.15", "--m", "15", "--k", "5",
            "--model", str(out),
        ])
        assert rc == 0
        assert "budget: 30/30" in capsys.readouterr().out


class TestMonitor:
    def test_monitor_runs_windows(self, capsys):
        rc = main([
            "monitor", "dblp", "--scale", "0.15",
            "--checkpoints", "0.5,0.75,1.0", "--m", "10", "--k", "8",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("window") == 2
        assert "total SSSPs" in out


class TestErrorPaths:
    """User-input errors: one-line ``error:`` message, exit code 2."""

    def test_unknown_selector_message(self, capsys):
        rc = main(["topk", "facebook", "--scale", "0.1",
                   "--selector", "NotReal", "--m", "5", "--k", "3"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "known selectors" in err
        assert "Traceback" not in err

    def test_bad_checkpoints_list(self, capsys):
        rc = main(["monitor", "dblp", "--scale", "0.15",
                   "--checkpoints", "0.5,banana,1.0"])
        assert rc == 2
        assert "bad --checkpoints" in capsys.readouterr().err

    def test_out_of_range_checkpoints(self, capsys):
        rc = main(["monitor", "dblp", "--scale", "0.15",
                   "--checkpoints", "0.5,1.5"])
        assert rc == 2
        assert "(0, 1]" in capsys.readouterr().err

    def test_unknown_dataset_subset(self, capsys):
        rc = main(["experiment", "table5", "--datasets", "nope"])
        assert rc == 2
        assert "unknown dataset" in capsys.readouterr().err

    def test_resume_requires_checkpoint_dir(self, capsys):
        rc = main(["experiment", "table5", "--resume"])
        assert rc == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_nonpositive_deadline_is_exit_2(self, capsys):
        for cmd in (
            ["experiment", "table5", "--deadline-s", "0"],
            ["monitor", "dblp", "--deadline-s", "-5"],
        ):
            rc = main(cmd)
            assert rc == 2
            assert "--deadline-s must be positive" in capsys.readouterr().err

    def test_unreadable_file_is_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.tsv"
        bad.write_text("x\t1\t2\n")  # timestamp column is not a number
        rc = main(["characteristics", str(bad)])
        assert rc == 2
        assert "cannot read" in capsys.readouterr().err


DIRTY_STREAM = (
    "0\t1\t2\t5.0\n"
    "1\t3\t3\t1.0\n"
    "garbage line\n"
    "2\t6\t7\t0.0\n"
    "3\t8\t9\t1.0\n"
)


class TestValidate:
    def test_clean_stream_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "clean.tsv"
        path.write_text("0\t1\t2\n1\t2\t3\n")
        assert main(["validate", str(path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_dirty_stream_exits_one_with_report(self, tmp_path, capsys):
        path = tmp_path / "dirty.tsv"
        path.write_text(DIRTY_STREAM)
        assert main(["validate", str(path)]) == 1
        out = capsys.readouterr().out
        assert "self-loop" in out
        assert "deletion" in out
        assert "fields=1" in out

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["validate", str(tmp_path / "nope.tsv")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_plain_edge_list_supported(self, tmp_path, capsys):
        path = tmp_path / "edges.txt"
        path.write_text("1 2\n1 1\n")
        assert main(["validate", str(path)]) == 1
        assert "self-loop" in capsys.readouterr().out


class TestSanitize:
    def test_writes_clean_stream(self, tmp_path, capsys):
        src = tmp_path / "dirty.tsv"
        src.write_text(DIRTY_STREAM)
        out = tmp_path / "clean.tsv"
        rc = main(["sanitize", str(src), "--out", str(out)])
        assert rc == 0
        assert "wrote 2 events" in capsys.readouterr().out
        # The output re-validates as clean.
        assert main(["validate", str(out)]) == 0

    def test_policy_override_and_quarantine_dir(self, tmp_path, capsys):
        src = tmp_path / "dirty.tsv"
        src.write_text(DIRTY_STREAM)
        rc = main([
            "sanitize", str(src), "--out", str(tmp_path / "c.tsv"),
            "--policy", "deletion=quarantine",
            "--quarantine-dir", str(tmp_path / "q"),
        ])
        assert rc == 0
        assert (tmp_path / "q" / "manifest.json").exists()
        assert "quarantined" in capsys.readouterr().out

    def test_bad_policy_spec_exits_two(self, tmp_path, capsys):
        src = tmp_path / "s.tsv"
        src.write_text("0\t1\t2\n")
        rc = main([
            "sanitize", str(src), "--out", str(tmp_path / "c.tsv"),
            "--policy", "deletion",
        ])
        assert rc == 2
        assert "rule=mode" in capsys.readouterr().err

    def test_strict_policy_failure_exits_two(self, tmp_path, capsys):
        src = tmp_path / "dirty.tsv"
        src.write_text(DIRTY_STREAM)
        rc = main([
            "sanitize", str(src), "--out", str(tmp_path / "c.tsv"),
            "--policy", "deletion=strict",
        ])
        assert rc == 2
        assert "[deletion]" in capsys.readouterr().err


class TestQuarantineCommand:
    def _quarantined(self, tmp_path):
        src = tmp_path / "dirty.tsv"
        src.write_text(DIRTY_STREAM)
        main([
            "sanitize", str(src), "--out", str(tmp_path / "c.tsv"),
            "--policy", "deletion=quarantine",
            "--quarantine-dir", str(tmp_path / "q"),
        ])
        return tmp_path / "q"

    def test_show_lists_records(self, tmp_path, capsys):
        qdir = self._quarantined(tmp_path)
        capsys.readouterr()
        assert main(["quarantine", "show", str(qdir)]) == 0
        out = capsys.readouterr().out
        assert "[deletion]" in out
        assert "sha256" in out

    def test_replay_with_policy_flip(self, tmp_path, capsys):
        qdir = self._quarantined(tmp_path)
        capsys.readouterr()
        out = tmp_path / "replayed.tsv"
        rc = main([
            "quarantine", "replay", str(qdir),
            "--policy", "deletion=repair", "--out", str(out),
        ])
        assert rc == 0
        assert out.exists()
        assert "wrote 2 events" in capsys.readouterr().out

    def test_missing_store_exits_two(self, tmp_path, capsys):
        rc = main(["quarantine", "show", str(tmp_path / "nothing")])
        assert rc == 2
        assert "no quarantine run" in capsys.readouterr().err


class TestMonitorInvalidWindow:
    def test_skip_and_log_flag(self, tmp_path, capsys):
        src = tmp_path / "del.tsv"
        rows = [f"{t}\t{t % 5}\t{t % 7 + 5}\t1.0" for t in range(40)]
        rows.append("40\t0\t5\t0.0")  # delete the first edge
        src.write_text("\n".join(rows) + "\n")
        rc = main([
            "monitor", str(src), "--checkpoints", "0.5,1.0",
            "--on-invalid-window", "skip-and-log", "--k", "3", "--m", "4",
        ])
        assert rc == 0
        assert "FAILED" in capsys.readouterr().out

    def test_default_fail_surfaces_error(self, tmp_path, capsys):
        src = tmp_path / "del.tsv"
        rows = [f"{t}\t{t % 5}\t{t % 7 + 5}\t1.0" for t in range(40)]
        rows.append("40\t0\t5\t0.0")
        src.write_text("\n".join(rows) + "\n")
        rc = main([
            "monitor", str(src), "--checkpoints", "0.5,1.0",
            "--k", "3", "--m", "4",
        ])
        assert rc == 2
        assert "insertion-only" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "flags",
        [
            ("--k", "0"),
            ("--m", "0"),
            ("--k", "-3"),
        ],
    )
    def test_invalid_knob_combo_is_exit_2_not_traceback(
        self, capsys, flags
    ):
        """Regression: rejected monitor knob combinations used to escape
        as a bare ValueError traceback instead of a flag error."""
        rc = main([
            "monitor", "dblp", "--scale", "0.15",
            "--checkpoints", "0.5,1.0", *flags,
        ])
        assert rc == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err


class TestAdvance:
    def _stream(self, tmp_path):
        src = tmp_path / "stream.tsv"
        rows = [f"{t}\t{t % 9}\t{t % 11 + 9}\t1.0" for t in range(60)]
        src.write_text("\n".join(rows) + "\n")
        return src

    def test_full_run_prints_windows_and_status(self, tmp_path, capsys):
        src = self._stream(tmp_path)
        rc = main([
            "advance", str(src), "--wal-dir", str(tmp_path / "wal"),
            "--k", "3", "--batch-size", "5", "--checkpoint-every", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "window 0:" in out
        assert "status=complete" in out

    def test_pause_and_resume_match_uninterrupted(self, tmp_path, capsys):
        src = self._stream(tmp_path)
        base = ["--k", "3", "--batch-size", "5", "--checkpoint-every", "2"]
        assert main([
            "advance", str(src), "--wal-dir", str(tmp_path / "a"), *base,
        ]) == 0
        uninterrupted = capsys.readouterr().out

        assert main([
            "advance", str(src), "--wal-dir", str(tmp_path / "b"), *base,
            "--max-batches", "3",
        ]) == 0
        paused = capsys.readouterr().out
        assert "status=paused" in paused
        assert main([
            "advance", str(src), "--wal-dir", str(tmp_path / "b"), *base,
        ]) == 0
        assert capsys.readouterr().out == uninterrupted

    def test_bad_config_is_exit_2(self, tmp_path, capsys):
        src = self._stream(tmp_path)
        rc = main([
            "advance", str(src), "--wal-dir", str(tmp_path / "wal"),
            "--k", "0",
        ])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_selector_is_exit_2(self, tmp_path, capsys):
        src = self._stream(tmp_path)
        rc = main([
            "advance", str(src), "--wal-dir", str(tmp_path / "wal"),
            "--selector", "NoSuchSelector", "--m", "5",
        ])
        assert rc == 2
        assert "NoSuchSelector" in capsys.readouterr().err

    def test_missing_input_is_exit_2(self, tmp_path, capsys):
        rc = main([
            "advance", str(tmp_path / "absent.tsv"),
            "--wal-dir", str(tmp_path / "wal"),
        ])
        assert rc == 2

    def test_source_mismatch_is_exit_2(self, tmp_path, capsys):
        src = self._stream(tmp_path)
        wal = str(tmp_path / "wal")
        assert main([
            "advance", str(src), "--wal-dir", wal, "--max-batches", "2",
        ]) == 0
        capsys.readouterr()
        other = tmp_path / "other.tsv"
        rows = [f"{t}\t{t % 4}\t{t % 6 + 4}\t2.0" for t in range(60)]
        other.write_text("\n".join(rows) + "\n")
        rc = main(["advance", str(other), "--wal-dir", wal])
        assert rc == 2
        assert "source" in capsys.readouterr().err
