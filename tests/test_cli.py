"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestListing:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("actors", "internet", "facebook", "dblp"):
            assert name in out

    def test_selectors(self, capsys):
        assert main(["selectors"]) == 0
        out = capsys.readouterr().out
        assert "MMSD" in out and "L-Classifier" in out


class TestGenerate:
    def test_writes_stream(self, tmp_path, capsys):
        out_file = tmp_path / "fb.tsv"
        rc = main([
            "generate", "facebook", "--out", str(out_file), "--scale", "0.1",
        ])
        assert rc == 0
        assert out_file.exists()
        assert "wrote" in capsys.readouterr().out


class TestCharacteristics:
    def test_catalog_input(self, capsys):
        rc = main(["characteristics", "facebook", "--scale", "0.1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "max_delta" in out
        assert "nodes_t1" in out

    def test_file_input(self, tmp_path, capsys):
        stream = tmp_path / "s.tsv"
        main(["generate", "facebook", "--out", str(stream), "--scale", "0.1"])
        capsys.readouterr()
        rc = main(["characteristics", str(stream)])
        assert rc == 0
        assert "edges_t2" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        rc = main(["characteristics", "/does/not/exist.tsv"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "neither" in err


class TestTruth:
    def test_threshold_mode(self, capsys):
        rc = main(["truth", "facebook", "--scale", "0.1",
                   "--delta-offset", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "δ =" in out
        assert "d_t1" in out

    def test_explicit_k(self, capsys):
        rc = main(["truth", "facebook", "--scale", "0.1", "--k", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("\n") <= 10  # header + 5 pairs and maybe ellipsis


class TestTopk:
    def test_budgeted_run(self, capsys):
        rc = main([
            "topk", "facebook", "--scale", "0.1", "--selector", "MMSD",
            "--m", "15", "--k", "10", "--seed", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "budget: 30/30" in out
        assert "candidates (15)" in out

    def test_plain_selector_without_landmark_kwarg(self, capsys):
        rc = main([
            "topk", "facebook", "--scale", "0.1", "--selector", "DegRel",
            "--m", "10", "--k", "5",
        ])
        assert rc == 0
        assert "budget: 20/20" in capsys.readouterr().out

    def test_file_roundtrip(self, tmp_path, capsys):
        stream = tmp_path / "s.tsv"
        main(["generate", "internet", "--out", str(stream), "--scale", "0.1"])
        capsys.readouterr()
        rc = main(["topk", str(stream), "--m", "10", "--k", "5"])
        assert rc == 0


class TestExperiment:
    def test_table2(self, capsys):
        rc = main(["experiment", "table2", "--scale", "0.15"])
        assert rc == 0
        assert "Table 2" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        rc = main(["experiment", "table7"])
        assert rc == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestTrainAndModelDriven:
    def test_train_saves_model(self, tmp_path, capsys):
        out = tmp_path / "model.npz"
        rc = main([
            "train", "facebook", "--scale", "0.15", "--out", str(out),
            "--landmarks", "3",
        ])
        assert rc == 0
        assert out.exists()
        assert "trained local classifier" in capsys.readouterr().out

    def test_topk_with_saved_model(self, tmp_path, capsys):
        out = tmp_path / "model.npz"
        main(["train", "facebook", "--scale", "0.15", "--out", str(out),
              "--landmarks", "3"])
        capsys.readouterr()
        rc = main([
            "topk", "facebook", "--scale", "0.15", "--m", "15", "--k", "5",
            "--model", str(out),
        ])
        assert rc == 0
        assert "budget: 30/30" in capsys.readouterr().out


class TestMonitor:
    def test_monitor_runs_windows(self, capsys):
        rc = main([
            "monitor", "dblp", "--scale", "0.15",
            "--checkpoints", "0.5,0.75,1.0", "--m", "10", "--k", "8",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("window") == 2
        assert "total SSSPs" in out


class TestErrorPaths:
    """User-input errors: one-line ``error:`` message, exit code 2."""

    def test_unknown_selector_message(self, capsys):
        rc = main(["topk", "facebook", "--scale", "0.1",
                   "--selector", "NotReal", "--m", "5", "--k", "3"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "known selectors" in err
        assert "Traceback" not in err

    def test_bad_checkpoints_list(self, capsys):
        rc = main(["monitor", "dblp", "--scale", "0.15",
                   "--checkpoints", "0.5,banana,1.0"])
        assert rc == 2
        assert "bad --checkpoints" in capsys.readouterr().err

    def test_out_of_range_checkpoints(self, capsys):
        rc = main(["monitor", "dblp", "--scale", "0.15",
                   "--checkpoints", "0.5,1.5"])
        assert rc == 2
        assert "(0, 1]" in capsys.readouterr().err

    def test_unknown_dataset_subset(self, capsys):
        rc = main(["experiment", "table5", "--datasets", "nope"])
        assert rc == 2
        assert "unknown dataset" in capsys.readouterr().err

    def test_resume_requires_checkpoint_dir(self, capsys):
        rc = main(["experiment", "table5", "--resume"])
        assert rc == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_nonpositive_deadline_is_exit_2(self, capsys):
        for cmd in (
            ["experiment", "table5", "--deadline-s", "0"],
            ["monitor", "dblp", "--deadline-s", "-5"],
        ):
            rc = main(cmd)
            assert rc == 2
            assert "--deadline-s must be positive" in capsys.readouterr().err

    def test_unreadable_file_is_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.tsv"
        bad.write_text("x\t1\t2\n")  # timestamp column is not a number
        rc = main(["characteristics", str(bad)])
        assert rc == 2
        assert "cannot read" in capsys.readouterr().err
