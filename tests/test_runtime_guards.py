"""Resource guards: soft budgets fire cooperatively, exactly once."""

import pytest

from repro.resilience import capture_events
from repro.runtime.guards import ResourceGuard, peak_rss_mb


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [{"soft_memory_mb": 0}, {"soft_memory_mb": -5},
         {"soft_time_s": 0}, {"soft_time_s": -1}],
    )
    def test_bad_budgets_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ResourceGuard(**kwargs)

    def test_enabled_reflects_configuration(self):
        assert not ResourceGuard().enabled
        assert ResourceGuard(soft_memory_mb=10).enabled
        assert ResourceGuard(soft_time_s=10).enabled


class TestMemoryGuard:
    def test_under_budget_passes(self):
        guard = ResourceGuard(soft_memory_mb=100, memory_probe=lambda: 50.0)
        assert guard.check() is None
        assert guard.breached is None

    def test_over_budget_breaches(self):
        guard = ResourceGuard(soft_memory_mb=100, memory_probe=lambda: 150.0)
        assert guard.check() == "memory"
        assert guard.breached == "memory"

    def test_breach_is_sticky_and_logged_once(self):
        readings = iter([150.0])  # a second probe would StopIteration
        guard = ResourceGuard(
            soft_memory_mb=100, memory_probe=lambda: next(readings)
        )
        with capture_events() as events:
            assert guard.check() == "memory"
            assert guard.check() == "memory"
        breaches = [f for kind, f in events if kind == "guard.breached"]
        assert len(breaches) == 1
        assert breaches[0]["budget"] == "memory"

    def test_real_probe_returns_plausible_value(self):
        rss = peak_rss_mb()
        assert 1.0 < rss < 1024 * 1024  # between 1 MiB and 1 TiB


class TestTimeGuard:
    def test_fires_only_after_budget_elapses(self):
        clock = FakeClock()
        guard = ResourceGuard(soft_time_s=10.0, clock=clock)
        assert guard.check() is None
        clock.now = 9.0
        assert guard.check() is None
        clock.now = 11.0
        assert guard.check() == "time"

    def test_memory_breach_wins_when_both_exceeded(self):
        clock = FakeClock()
        guard = ResourceGuard(
            soft_memory_mb=1, soft_time_s=1.0,
            clock=clock, memory_probe=lambda: 2.0,
        )
        clock.now = 5.0
        assert guard.check() == "memory"
