"""Unit tests for repro.core.pairgraph.PairGraph."""

import pytest

from repro.core.pairgraph import PairGraph
from repro.core.pairs import ConvergingPair


@pytest.fixture
def pg() -> PairGraph:
    """Pairs forming a star on 0 plus one extra edge (3, 4)."""
    return PairGraph([(0, 1), (0, 2), (0, 3), (3, 4)])


class TestConstruction:
    def test_counts(self, pg):
        assert pg.num_pairs == 4
        assert pg.num_endpoints == 5

    def test_from_converging_pairs(self):
        pairs = [ConvergingPair(1, 2, 5, 1), ConvergingPair(2, 3, 4, 1)]
        pg = PairGraph(pairs)
        assert pg.num_pairs == 2
        assert pg.endpoints() == {1, 2, 3}

    def test_duplicates_collapse(self):
        pg = PairGraph([(1, 2), (2, 1), (1, 2)])
        assert pg.num_pairs == 1

    def test_empty(self):
        pg = PairGraph([])
        assert pg.num_pairs == 0
        assert pg.coverage_of([1, 2]) == 1.0
        assert pg.is_vertex_cover([])


class TestQueries:
    def test_contains(self, pg):
        assert (0, 1) in pg
        assert (1, 0) in pg
        assert (1, 2) not in pg

    def test_len(self, pg):
        assert len(pg) == 4

    def test_partners(self, pg):
        assert pg.partners(0) == {1, 2, 3}
        assert pg.partners(3) == {0, 4}
        assert pg.partners(99) == set()

    def test_pair_degree(self, pg):
        assert pg.pair_degree(0) == 3
        assert pg.pair_degree(4) == 1
        assert pg.pair_degree(99) == 0

    def test_pairs_covered_by(self, pg):
        assert pg.pairs_covered_by([0]) == {(0, 1), (0, 2), (0, 3)}
        assert pg.pairs_covered_by([4]) == {(3, 4)}
        assert pg.pairs_covered_by([1, 4]) == {(0, 1), (3, 4)}

    def test_coverage_of(self, pg):
        assert pg.coverage_of([0]) == pytest.approx(0.75)
        assert pg.coverage_of([0, 4]) == 1.0
        assert pg.coverage_of([]) == 0.0

    def test_is_vertex_cover(self, pg):
        assert pg.is_vertex_cover([0, 3])
        assert pg.is_vertex_cover([0, 4])
        assert not pg.is_vertex_cover([0])
        assert not pg.is_vertex_cover([1, 2, 4])

    def test_degree_ranked_endpoints(self, pg):
        ranked = pg.degree_ranked_endpoints()
        assert ranked[0] == 0
        assert ranked[1] == 3

    def test_copies_are_returned(self, pg):
        pg.pairs().clear()
        pg.endpoints().clear()
        assert pg.num_pairs == 4
        assert pg.num_endpoints == 5
