"""Unit tests for repro.graph.landmarks."""

import numpy as np
import pytest

from repro.graph.graph import Graph
from repro.graph.landmarks import (
    LandmarkTable,
    delta_l1_norms,
    delta_linf_norms,
    landmark_delta_vectors,
    landmark_distance_table,
)

from conftest import path_graph


@pytest.fixture
def pair_with_table():
    """Path 0..5 plus chord (0,5) at t2; landmarks (0, 3)."""
    g1 = path_graph(6)
    g2 = g1.copy()
    g2.add_edge(0, 5)
    nodes = list(g1.nodes())
    t1 = landmark_distance_table(g1, [0, 3], nodes)
    t2 = landmark_distance_table(g2, [0, 3], nodes)
    return g1, g2, t1, t2


class TestLandmarkTable:
    def test_vector_contents(self, pair_with_table):
        _, _, t1, _ = pair_with_table
        assert list(t1.vector(5)) == [5, 2]
        assert list(t1.vector(0)) == [0, 3]

    def test_num_landmarks(self, pair_with_table):
        _, _, t1, _ = pair_with_table
        assert t1.num_landmarks == 2

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="shape"):
            LandmarkTable([1], [1, 2], np.zeros((1, 1), dtype=np.float32))

    def test_missing_landmark_gives_inf_column(self):
        g = path_graph(3)
        table = landmark_distance_table(g, [0, 99], list(g.nodes()))
        assert np.isinf(table.matrix[:, 1]).all()
        assert np.isfinite(table.matrix[:, 0]).all()

    def test_unreachable_node_gives_inf(self, two_components):
        table = landmark_distance_table(
            two_components, [0], list(two_components.nodes())
        )
        assert np.isinf(table.vector(10)[0])

    def test_estimate_distance_upper_bounds_true_distance(self):
        g = path_graph(7)
        nodes = list(g.nodes())
        table = landmark_distance_table(g, [2, 5], nodes)
        from repro.graph.traversal import bfs_distances

        for u in nodes:
            du = bfs_distances(g, u)
            for v in nodes:
                est = table.estimate_distance(u, v)
                assert est >= du[v] - 1e-9

    def test_estimate_distance_exact_through_landmark(self):
        g = path_graph(5)
        table = landmark_distance_table(g, [2], list(g.nodes()))
        # Paths through node 2 are exact for pairs straddling it.
        assert table.estimate_distance(0, 4) == 4


class TestDeltaVectors:
    def test_deltas(self, pair_with_table):
        g1, _, t1, t2 = pair_with_table
        delta = landmark_delta_vectors(t1, t2)
        idx = {u: i for i, u in enumerate(t1.nodes)}
        # Node 5 came 4 closer to landmark 0 (5 -> 1), unchanged to 3.
        assert delta[idx[5], 0] == 4
        assert delta[idx[5], 1] == 0
        # Node 0 is a landmark itself: no self change.
        assert delta[idx[0], 0] == 0

    def test_nonnegative(self, pair_with_table):
        _, _, t1, t2 = pair_with_table
        assert (landmark_delta_vectors(t1, t2) >= 0).all()

    def test_infinite_entries_become_zero(self, two_components):
        nodes = list(two_components.nodes())
        t1 = landmark_distance_table(two_components, [0], nodes)
        g2 = two_components.copy()
        g2.add_edge(2, 10)
        t2 = landmark_distance_table(g2, [0], nodes)
        delta = landmark_delta_vectors(t1, t2)
        idx = {u: i for i, u in enumerate(nodes)}
        # Node 10 was unreachable at t1: no measurable change.
        assert delta[idx[10], 0] == 0

    def test_mismatched_landmarks_raise(self, pair_with_table):
        g1, g2, t1, _ = pair_with_table
        other = landmark_distance_table(g2, [1, 3], t1.nodes)
        with pytest.raises(ValueError, match="landmark"):
            landmark_delta_vectors(t1, other)

    def test_mismatched_universe_raises(self, pair_with_table):
        g1, g2, t1, _ = pair_with_table
        other = landmark_distance_table(g2, [0, 3], [0, 1, 2])
        with pytest.raises(ValueError, match="universes"):
            landmark_delta_vectors(t1, other)


class TestNorms:
    def test_l1(self):
        delta = np.array([[1.0, 2.0], [0.0, 0.0]], dtype=np.float32)
        assert list(delta_l1_norms(delta)) == [3.0, 0.0]

    def test_linf(self):
        delta = np.array([[1.0, 2.0], [0.0, 0.0]], dtype=np.float32)
        assert list(delta_linf_norms(delta)) == [2.0, 0.0]

    def test_empty_landmark_dimension(self):
        delta = np.zeros((3, 0), dtype=np.float32)
        assert list(delta_l1_norms(delta)) == [0.0, 0.0, 0.0]
        assert list(delta_linf_norms(delta)) == [0.0, 0.0, 0.0]
