"""Unit tests for repro.core.budget.SPBudget."""

import pytest

from repro.core.budget import BudgetExceededError, SPBudget


class TestBasics:
    def test_initial_state(self):
        b = SPBudget(10)
        assert b.spent == 0
        assert b.remaining == 10
        assert b.limit == 10

    def test_charge_accumulates(self):
        b = SPBudget(10)
        b.charge("generation", "g1", 3)
        b.charge("topk", "g2", 2)
        assert b.spent == 5
        assert b.remaining == 5

    def test_default_count_is_one(self):
        b = SPBudget(10)
        b.charge("topk", "g1")
        assert b.spent == 1

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            SPBudget(-1)

    def test_zero_limit_allows_nothing(self):
        b = SPBudget(0)
        with pytest.raises(BudgetExceededError):
            b.charge("topk", "g1", 1)

    def test_nonpositive_count_rejected(self):
        b = SPBudget(10)
        with pytest.raises(ValueError):
            b.charge("topk", "g1", 0)


class TestEnforcement:
    def test_overdraft_raises(self):
        b = SPBudget(2)
        b.charge("topk", "g1", 2)
        with pytest.raises(BudgetExceededError, match="would spend 3"):
            b.charge("topk", "g2", 1)

    def test_failed_charge_not_recorded(self):
        b = SPBudget(2)
        b.charge("topk", "g1", 2)
        with pytest.raises(BudgetExceededError):
            b.charge("topk", "g2", 5)
        assert b.spent == 2
        assert len(b.ledger()) == 1

    def test_exact_spend_to_limit_allowed(self):
        b = SPBudget(4)
        b.charge("a", "g1", 4)
        assert b.remaining == 0

    def test_can_afford(self):
        b = SPBudget(3)
        assert b.can_afford(3)
        assert not b.can_afford(4)
        b.charge("x", "g1", 1)
        assert b.can_afford(2)
        assert not b.can_afford(3)


class TestUnlimited:
    def test_none_limit_never_raises(self):
        b = SPBudget(None)
        b.charge("topk", "g1", 10**9)
        assert b.spent == 10**9
        assert b.remaining > 10**17

    def test_unlimited_still_audits(self):
        b = SPBudget(None)
        b.charge("generation", "g1", 5)
        assert b.by_phase() == {"generation": 5}


class TestAudit:
    def test_by_phase(self):
        b = SPBudget(20)
        b.charge("generation", "g1", 4)
        b.charge("generation", "g2", 4)
        b.charge("topk", "g1", 6)
        assert b.by_phase() == {"generation": 8, "topk": 6}

    def test_by_snapshot(self):
        b = SPBudget(20)
        b.charge("generation", "g1", 4)
        b.charge("topk", "g1", 6)
        b.charge("topk", "g2", 6)
        assert b.by_snapshot() == {"g1": 10, "g2": 6}

    def test_ledger_order(self):
        b = SPBudget(10)
        b.charge("a", "g1", 1)
        b.charge("b", "g2", 2)
        ledger = b.ledger()
        assert [(r.phase, r.snapshot, r.count) for r in ledger] == [
            ("a", "g1", 1),
            ("b", "g2", 2),
        ]

    def test_ledger_totals_match_spent(self):
        b = SPBudget(100)
        for i in range(1, 6):
            b.charge(f"phase{i % 2}", "g1", i)
        assert sum(r.count for r in b.ledger()) == b.spent == 15
