"""Equivalence tests: the CSR ground-truth engine vs the dict engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fastpairs import csr_delta_histogram, csr_pairs_at_threshold
from repro.core.pairs import (
    converging_pairs_at_threshold,
    delta_histogram,
    top_k_converging_pairs,
)
from repro.graph.graph import Graph

from conftest import random_snapshot_pair


class TestEngineDispatch:
    def test_auto_picks_incremental_for_unweighted(self, shortcut_pair):
        g1, g2 = shortcut_pair
        from repro.core.pairs import _resolve_engine

        assert _resolve_engine(g1, g2, "auto") == "incremental"
        # Same result every way; smoke the dispatch paths explicitly.
        auto = delta_histogram(g1, g2, engine="auto")
        inc = delta_histogram(g1, g2, engine="incremental")
        csr = delta_histogram(g1, g2, engine="csr")
        dict_ = delta_histogram(g1, g2, engine="dict")
        assert auto == inc == csr == dict_

    def test_auto_falls_back_for_weighted(self):
        g1 = Graph([(0, 1, 2.0), (1, 2, 2.0)])
        g2 = g1.copy()
        g2.add_edge(0, 2, 0.5)
        hist = delta_histogram(g1, g2, engine="auto")
        assert any(d == pytest.approx(3.5) for d in hist)

    def test_unknown_engine_rejected(self, shortcut_pair):
        with pytest.raises(ValueError, match="engine"):
            delta_histogram(*shortcut_pair, engine="gpu")

    def test_csr_engine_detects_invalid_pairs(self):
        g1 = Graph([(0, 1), (1, 2)])
        g2 = Graph([(0, 1), (0, 2)])
        g2.add_node(2)
        # Not a subgraph pair: edge (1,2) missing at t2 makes Δ negative.
        g2.add_edge(1, 3)
        g2.add_edge(3, 4)
        g2.add_edge(4, 2)
        with pytest.raises(ValueError, match="subgraph"):
            csr_delta_histogram(g1, g2)


class TestExampleEquivalence:
    @pytest.mark.parametrize("seed", [121, 122, 123, 124])
    def test_histograms_identical(self, seed):
        g1, g2 = random_snapshot_pair(num_nodes=40, num_edges=110, seed=seed)
        reference = delta_histogram(g1, g2, engine="dict")
        assert reference == csr_delta_histogram(g1, g2)
        assert reference == csr_delta_histogram(g1, g2, incremental=True)

    @pytest.mark.parametrize("seed", [125, 126])
    @pytest.mark.parametrize("delta_min", [1, 2])
    @pytest.mark.parametrize("fast_engine", ["csr", "incremental"])
    def test_threshold_pairs_identical(self, seed, delta_min, fast_engine):
        g1, g2 = random_snapshot_pair(num_nodes=40, num_edges=110, seed=seed)
        slow = converging_pairs_at_threshold(
            g1, g2, delta_min, engine="dict"
        )
        fast = converging_pairs_at_threshold(
            g1, g2, delta_min, engine=fast_engine
        )
        assert [(p.u, p.v, p.d1, p.d2) for p in slow] == [
            (p.u, p.v, p.d1, p.d2) for p in fast
        ]

    @pytest.mark.parametrize("engine", ["auto", "incremental", "csr", "dict"])
    def test_top_k_unchanged_by_engine(self, shortcut_pair, engine):
        g1, g2 = shortcut_pair
        top = top_k_converging_pairs(g1, g2, k=3, engine=engine)
        assert top[0].pair == (0, 5)

    def test_raw_rows_have_index_order(self, shortcut_pair):
        g1, g2 = shortcut_pair
        rows = csr_pairs_at_threshold(g1, g2, 1)
        index = {u: i for i, u in enumerate(g1.nodes())}
        for u, v, _, _ in rows:
            assert index[u] < index[v]


NODE = st.integers(min_value=0, max_value=12)


@st.composite
def snapshot_pair_strategy(draw):
    raw = draw(st.lists(st.tuples(NODE, NODE), min_size=1, max_size=35))
    edges = sorted({(min(u, v), max(u, v)) for u, v in raw if u != v})
    if not edges:
        edges = [(0, 1)]
    cut = draw(st.integers(min_value=1, max_value=len(edges)))
    return Graph(edges[:cut]), Graph(edges)


class TestEquivalenceProperty:
    @settings(max_examples=50, deadline=None)
    @given(snapshot_pair_strategy())
    def test_histogram_engines_agree(self, pair):
        g1, g2 = pair
        reference = delta_histogram(g1, g2, engine="dict")
        assert reference == delta_histogram(g1, g2, engine="csr")
        assert reference == delta_histogram(g1, g2, engine="incremental")

    @settings(max_examples=50, deadline=None)
    @given(snapshot_pair_strategy(), st.integers(min_value=1, max_value=4))
    def test_threshold_engines_agree(self, pair, delta_min):
        g1, g2 = pair
        slow = converging_pairs_at_threshold(g1, g2, delta_min, engine="dict")
        fast = converging_pairs_at_threshold(g1, g2, delta_min, engine="csr")
        assert [(p.pair, p.d1, p.d2) for p in slow] == [
            (p.pair, p.d1, p.d2) for p in fast
        ]
