"""Whole-program analyzer suite: symbol table, call graph, taint engine,
the R010–R013 interprocedural rules, stale suppressions, the analysis
cache, SARIF output, and the report-determinism property."""

from __future__ import annotations

import ast
import json
import random
import subprocess
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    AnalysisCache,
    CallGraph,
    ProjectContext,
    lint_paths,
    lint_source,
    render_sarif,
)
from repro.lint.cache import cache_key
from repro.lint.cli import main as lint_main
from repro.lint.context import FileContext
from repro.lint.dataflow import (
    FunctionTaint,
    ProjectTaint,
    TaintPolicy,
    iter_writes,
    param_names,
)
from repro.lint.project import module_name
from repro.lint.registry import all_rules, select_rules
from repro.lint.report import render_json, render_text
from repro.lint.rules.budget import _ENTRY_POINT_MODULES
from repro.lint.rules.budget_flow import computed_entry_point_modules

SRC = Path(__file__).resolve().parent.parent / "src"
GOLDEN_SARIF = Path(__file__).resolve().parent / "data" / "reprolint_golden.sarif"


def ctx_of(path: str, code: str) -> FileContext:
    return FileContext.parse(path, textwrap.dedent(code))


def project_of(**files: str) -> ProjectContext:
    return ProjectContext(
        [ctx_of(path, code) for path, code in sorted(files.items())]
    )


def lint_one(code: str, path: str, rule: str):
    return lint_source(
        textwrap.dedent(code), path=path, rules=select_rules([rule])
    )


def repo_project() -> ProjectContext:
    contexts = [
        FileContext.parse(
            p.relative_to(SRC).as_posix(), p.read_text(encoding="utf-8")
        )
        for p in sorted(SRC.rglob("*.py"))
    ]
    return ProjectContext(contexts)


# ----------------------------------------------------------------------
# Phase 1: symbol table + resolution
# ----------------------------------------------------------------------
def test_module_name_handles_init_and_nesting():
    assert module_name("repro/core/pairs.py") == "repro.core.pairs"
    assert module_name("repro/graph/__init__.py") == "repro.graph"
    assert module_name("setup.py") == "setup"


def test_symbol_table_collects_functions_methods_and_nested_defs():
    project = project_of(**{
        "repro/a.py": """
            def top():
                def inner():
                    return 1
                return inner()

            class Box:
                def get(self):
                    return 1
        """,
    })
    assert "repro.a.top" in project.functions
    assert "repro.a.top.inner" in project.functions
    assert "repro.a.Box.get" in project.functions
    assert project.functions["repro.a.Box.get"].class_name == "Box"


def test_reexport_alias_resolves_through_package_init():
    project = project_of(**{
        "repro/graph/__init__.py": "from repro.graph.csr import bfs_levels\n",
        "repro/graph/csr.py": """
            def bfs_levels(csr, source):
                return source
        """,
        "repro/core/use.py": """
            from repro.graph import bfs_levels

            def go(csr):
                return bfs_levels(csr, 0)
        """,
    })
    assert (
        project.canonical("repro.graph.bfs_levels")
        == "repro.graph.csr.bfs_levels"
    )
    ctx = project.modules["repro.core.use"]
    call = next(n for n in ast.walk(ctx.tree) if isinstance(n, ast.Call))
    resolved = project.resolve_call(ctx, call.func)
    assert resolved is not None
    assert resolved.qualname == "repro.graph.csr.bfs_levels"


def test_ambiguous_method_resolves_to_none():
    project = project_of(**{
        "repro/a.py": """
            class A:
                def run(self):
                    return 1

            class B:
                def run(self):
                    return 2

            def call(x):
                return x.run()
        """,
    })
    ctx = project.modules["repro.a"]
    call = [n for n in ast.walk(ctx.tree) if isinstance(n, ast.Call)][-1]
    assert project.resolve_call(ctx, call.func) is None  # unknown edge


# ----------------------------------------------------------------------
# Phase 1: call graph
# ----------------------------------------------------------------------
def test_call_graph_reachability_and_guards():
    project = project_of(**{
        "repro/a.py": """
            def public(budget):
                return _mid(budget)

            def _mid(budget):
                budget.charge("p", "g1", 1)
                return _leaf()

            def _leaf():
                return 1

            def _orphan():
                return _leaf()
        """,
    })
    graph = CallGraph(project)
    reach = graph.reachable(["repro.a.public"])
    assert "repro.a._leaf" in reach
    assert "repro.a._orphan" not in reach
    # _mid charges, so nothing past it is uncharged-reachable.
    uncharged = graph.guarded_reachability(
        ["repro.a.public"], guards={"repro.a._mid"}
    )
    assert "repro.a.public" in uncharged
    assert "repro.a._leaf" not in uncharged
    path = graph.path_to(
        graph.guarded_reachability(["repro.a.public"], guards=set()),
        "repro.a._leaf",
    )
    assert path[0] == "repro.a.public" and path[-1] == "repro.a._leaf"


def test_call_graph_sees_function_references_not_just_calls():
    project = project_of(**{
        "repro/a.py": """
            def task(x):
                return x

            def dispatch(executor, items):
                return executor.map(task, items)
        """,
    })
    graph = CallGraph(project)
    assert "repro.a.task" in graph.callees("repro.a.dispatch")


# ----------------------------------------------------------------------
# Phase 2: taint engine
# ----------------------------------------------------------------------
class _MarkPolicy(TaintPolicy):
    """Taints any call to a function literally named ``source``."""

    def call_is_source(self, ctx, project, call):
        return isinstance(call.func, ast.Name) and call.func.id == "source"

    def call_is_sanitizer(self, ctx, project, call):
        return isinstance(call.func, ast.Name) and call.func.id == "clean"


def _taint_names(code: str) -> set:
    ctx = ctx_of("repro/t.py", code)
    project = ProjectContext([ctx])
    fn = project.functions["repro.t.f"]
    flow = FunctionTaint(project, ctx, fn.node, _MarkPolicy())
    return set(flow.tainted)


def test_taint_propagates_through_assignment_chains_and_loops():
    tainted = _taint_names("""
        def f():
            a = source()
            b = a
            c = b + 1
            for item in a:
                d = item
            e = clean(a)
            return c, d, e
    """)
    assert {"a", "b", "c", "d"} <= tainted
    assert "e" not in tainted


def test_taint_strong_update_untaints_rebound_names():
    tainted = _taint_names("""
        def f():
            a = source()
            a = 0
            return a
    """)
    assert "a" not in tainted


def test_interprocedural_summaries_propagate_and_return_taint():
    project = project_of(**{
        "repro/t.py": """
            def source_wrapper():
                return source()

            def passthrough(x):
                return x

            def f():
                a = source_wrapper()
                b = passthrough(a)
                c = passthrough(1)
                return a, b, c
        """,
    })
    taint = ProjectTaint(project, _MarkPolicy())
    assert taint.summaries["repro.t.source_wrapper"].returns_tainted
    assert taint.summaries["repro.t.passthrough"].propagates
    flow = taint.analyze(project.functions["repro.t.f"])
    assert {"a", "b"} <= flow.tainted
    assert "c" not in flow.tainted


def test_mutates_summary_tracks_writes_through_helpers():
    project = project_of(**{
        "repro/t.py": """
            def scribble(arr):
                arr[0] = 1

            def relay(buf):
                scribble(buf)
        """,
    })
    taint = ProjectTaint(project, TaintPolicy())
    assert taint.summaries["repro.t.scribble"].mutates == frozenset({"arr"})
    assert taint.summaries["repro.t.relay"].mutates == frozenset({"buf"})


def test_iter_writes_catches_all_write_shapes():
    tree = ast.parse(textwrap.dedent("""
        x[0] = 1
        x[1] += 2
        x += y
        x.sort()
        numpy.copyto(x, y)
        f(a, out=x)
    """))
    assert len(list(iter_writes(tree))) == 6


def test_param_names_covers_every_kind():
    fn = ast.parse("def f(a, /, b, *args, c, **kw): pass").body[0]
    assert param_names(fn) == ["a", "b", "args", "c", "kw"]


# ----------------------------------------------------------------------
# R010 — budget soundness (computed reachability)
# ----------------------------------------------------------------------
UNCHARGED_TRAVERSAL = """
    from repro.graph.csr import bfs_levels

    def find_pairs(csr, budget):
        return _scan(csr)

    def _scan(csr):
        return bfs_levels(csr, 0)
"""


def test_r010_uncharged_traversal_fixture_fires_exactly_once():
    found = lint_one(UNCHARGED_TRAVERSAL, "repro/core/algorithm.py", "R010")
    assert [v.code for v in found] == ["R010"]
    assert "find_pairs -> " in found[0].message  # path reconstruction


def test_r010_quiet_when_the_path_charges():
    found = lint_one("""
        from repro.graph.csr import bfs_levels

        def find_pairs(csr, budget):
            budget.charge("topk", "g1", 1)
            return _scan(csr)

        def _scan(csr):
            return bfs_levels(csr, 0)
    """, "repro/core/algorithm.py", "R010")
    assert found == []


def test_r010_quiet_when_not_reachable_from_public_api():
    found = lint_one("""
        from repro.graph.csr import bfs_levels

        def _private_probe(csr):
            return bfs_levels(csr, 0)
    """, "repro/core/algorithm.py", "R010")
    assert found == []


def test_r010_flags_import_time_traversal():
    found = lint_one("""
        from repro.graph.csr import bfs_levels

        LEVELS = bfs_levels(None, 0)
    """, "repro/core/algorithm.py", "R010")
    assert [v.code for v in found] == ["R010"]
    assert "import time" in found[0].message


def test_r010_computed_entry_points_superset_of_hand_list():
    computed = computed_entry_point_modules(repo_project())
    for legacy in _ENTRY_POINT_MODULES:
        assert any(
            module == legacy or module.startswith(legacy + ".")
            for module in computed
        ), f"computed set {computed} lost legacy module {legacy}"


# ----------------------------------------------------------------------
# R011 — frozen-view mutation
# ----------------------------------------------------------------------
FROZEN_WRITE = """
    from repro.graph.csr import bfs_levels

    def tweak(csr):
        levels = bfs_levels(csr, 0)
        levels[0] = -1
        return levels
"""


def test_r011_frozen_view_write_fixture_fires_exactly_once():
    found = lint_one(FROZEN_WRITE, "repro/core/selectors.py", "R011")
    assert [v.code for v in found] == ["R011"]


def test_r011_copy_kills_the_taint():
    found = lint_one("""
        from repro.graph.csr import bfs_levels

        def tweak(csr):
            levels = bfs_levels(csr, 0).copy()
            levels[0] = -1
            return levels
    """, "repro/core/selectors.py", "R011")
    assert found == []


def test_r011_flags_mutation_via_helper_summary():
    found = lint_one("""
        from repro.graph.csr import bfs_levels

        def _mask(arr, i):
            arr[i] = -1

        def tweak(csr):
            levels = bfs_levels(csr, 0)
            _mask(levels, 0)
            return levels
    """, "repro/core/selectors.py", "R011")
    assert len(found) == 1
    assert "_mask" in found[0].message


def test_r011_engine_files_are_exempt():
    found = lint_one("""
        from repro.graph.incremental import repair_levels

        def fix(delta, row):
            lv = repair_levels(delta, row)
            lv[0] = 0
            return lv
    """, "repro/graph/csr.py", "R011")
    assert found == []


# ----------------------------------------------------------------------
# R012 — determinism taint
# ----------------------------------------------------------------------
UNSEEDED_KEY = """
    import time

    def make_key(config):
        return f"ckpt-{time.time()}"
"""


def test_r012_unseeded_key_fixture_fires_exactly_once():
    found = lint_one(UNSEEDED_KEY, "repro/experiments/keys.py", "R012")
    assert [v.code for v in found] == ["R012"]


def test_r012_sorted_boundary_sanitizes():
    found = lint_one("""
        def make_key(config):
            return "ckpt-" + "-".join(sorted(config.datasets))
    """, "repro/experiments/keys.py", "R012")
    assert found == []


def test_r012_set_iteration_into_store_key():
    found = lint_one("""
        def save(store, values):
            key = "-".join(set(values))
            store.put(key, values)
    """, "repro/experiments/store_use.py", "R012")
    assert [v.code for v in found] == ["R012"]


def test_r012_ranked_output_from_unseeded_rng():
    found = lint_one("""
        import random

        def top_k_pairs(pairs, k):
            random.shuffle(pairs)
            return pairs[:k]
    """, "repro/core/rank.py", "R012")
    # R012 only (the select filter keeps R001 out of this run).
    assert found == []  # shuffle's return is None; pairs stays untainted

    found = lint_one("""
        import random

        def top_k_pairs(pairs, k):
            order = random.sample(pairs, len(pairs))
            return order[:k]
    """, "repro/core/rank.py", "R012")
    assert [v.code for v in found] == ["R012"]


def test_r012_service_response_is_a_sink():
    found = lint_one("""
        from repro.service.protocol import encode_response

        def respond(request_id, version, answers):
            pairs = list(answers.values())
            return encode_response(
                request_id, version=version, stale=False, result=pairs,
            )
    """, "repro/service/handlers.py", "R012")
    assert [v.code for v in found] == ["R012"]
    assert "service response" in found[0].message


def test_r012_sorted_service_response_passes():
    found = lint_one("""
        from repro.service.protocol import encode_response

        def respond(request_id, version, answers):
            pairs = sorted(answers.values())
            return encode_response(
                request_id, version=version, stale=False, result=pairs,
            )
    """, "repro/service/handlers.py", "R012")
    assert found == []


# ----------------------------------------------------------------------
# R013 — cross-process capture
# ----------------------------------------------------------------------
PARENT_GLOBAL_TASK = """
    _CACHE = {}

    def task(item):
        return _CACHE[item]

    def run_all(executor, items):
        return list(executor.map(task, items))
"""


def test_r013_parent_global_fixture_fires_exactly_once():
    found = lint_one(PARENT_GLOBAL_TASK, "repro/experiments/tasks.py", "R013")
    assert [v.code for v in found] == ["R013"]
    assert "_CACHE" in found[0].message


def test_r013_worker_state_channel_is_sanctioned():
    found = lint_one("""
        from repro.parallel.executor import worker_state

        def task(item):
            return worker_state()["cache"][item]

        def run_all(executor, items):
            return list(executor.map(task, items))
    """, "repro/experiments/tasks.py", "R013")
    assert found == []


def test_r013_constants_and_type_aliases_are_allowed():
    found = lint_one("""
        from typing import Tuple

        LIMIT = 16
        Spec = Tuple[str, int]

        def task(spec: Spec) -> int:
            return min(spec[1], LIMIT)

        def run_all(executor, items):
            return list(executor.map(task, items))
    """, "repro/experiments/tasks.py", "R013")
    assert found == []


# ----------------------------------------------------------------------
# The repository itself stays clean under the full strict rule set
# ----------------------------------------------------------------------
def test_repo_sources_pass_strict_with_project_rules():
    result = lint_paths([SRC])
    assert result.new_violations == []
    assert result.stale_suppressions == []
    assert result.ok(strict=True)


# ----------------------------------------------------------------------
# Stale suppressions
# ----------------------------------------------------------------------
def test_stale_suppression_is_a_strict_finding(tmp_path):
    target = tmp_path / "repro" / "mod.py"
    target.parent.mkdir(parents=True)
    target.write_text(textwrap.dedent("""
        x = 1  # reprolint: disable=R001 -- left behind after a fix
    """))
    result = lint_paths([tmp_path])
    assert result.new_violations == []
    assert len(result.stale_suppressions) == 1
    path, sup, code = result.stale_suppressions[0]
    assert code == "R001" and path == "repro/mod.py"
    assert result.ok(strict=False)
    assert not result.ok(strict=True)
    assert "stale suppression" in render_text(result, strict=True)
    assert json.loads(render_json(result, strict=True))[
        "stale_suppressions"
    ][0]["code"] == "R001"


def test_used_suppression_is_not_stale(tmp_path):
    target = tmp_path / "repro" / "mod.py"
    target.parent.mkdir(parents=True)
    target.write_text(textwrap.dedent("""
        import random

        def pick(items):
            return random.choice(items)  # reprolint: disable=R001 -- fixture
    """))
    result = lint_paths([tmp_path])
    assert result.new_violations == []
    assert result.stale_suppressions == []
    assert result.ok(strict=True)


def test_unselected_rules_cannot_make_a_suppression_stale(tmp_path):
    target = tmp_path / "repro" / "mod.py"
    target.parent.mkdir(parents=True)
    target.write_text("x = 1  # reprolint: disable=R001 -- judged elsewhere\n")
    result = lint_paths([tmp_path], select=["R005"])
    assert result.stale_suppressions == []


# ----------------------------------------------------------------------
# Analysis cache
# ----------------------------------------------------------------------
def test_cache_key_varies_with_every_input():
    base = cache_key("repro/a.py", "x = 1\n", ["R001"])
    assert cache_key("repro/b.py", "x = 1\n", ["R001"]) != base
    assert cache_key("repro/a.py", "x = 2\n", ["R001"]) != base
    assert cache_key("repro/a.py", "x = 1\n", ["R001", "R002"]) != base
    assert cache_key("repro/a.py", "x = 1\n", ["R001"]) == base


def test_cache_round_trips_and_hits_on_second_run(tmp_path):
    src = tmp_path / "proj" / "repro"
    src.mkdir(parents=True)
    (src / "mod.py").write_text(
        "import random\n\ndef pick(xs):\n    return random.choice(xs)\n"
    )
    cache = AnalysisCache(tmp_path / "cache")
    first = lint_paths([tmp_path / "proj"], cache=cache)
    assert cache.hits == 0 and cache.misses == 1
    second = lint_paths([tmp_path / "proj"], cache=cache)
    assert cache.hits == 1
    assert [v.to_json() for v in first.new_violations] == [
        v.to_json() for v in second.new_violations
    ]


def test_corrupt_cache_entry_reads_as_miss(tmp_path):
    cache = AnalysisCache(tmp_path)
    key = cache_key("repro/a.py", "x = 1\n", ["R001"])
    cache.put(key, [])
    (tmp_path / f"{key}.json").write_text("{not json")
    assert cache.get(key) is None


# ----------------------------------------------------------------------
# Determinism property: shuffled inputs, byte-identical reports
# ----------------------------------------------------------------------
def _violation_corpus(tmp_path) -> list:
    files = {
        "alpha.py": "import random\nx = random.random()\n",
        "bravo.py": "def f(x=[]):\n    return x\n",
        "charlie.py": (
            "try:\n    pass\nexcept Exception:\n    pass\n"
        ),
        "delta.py": "import time\nt = time.time()\n",
        "echo.py": "x = 1\n",
    }
    paths = []
    for name, code in files.items():
        target = tmp_path / name
        target.write_text(code)
        paths.append(target)
    return paths


def test_reports_are_byte_identical_across_shuffled_orderings(tmp_path):
    paths = _violation_corpus(tmp_path)
    baseline_run = lint_paths(sorted(paths))
    assert baseline_run.new_violations  # non-vacuous: corpus does violate
    expected_text = render_text(baseline_run, strict=True)
    expected_json = render_json(baseline_run, strict=True)
    expected_sarif = render_sarif(baseline_run.new_violations, all_rules())
    rng = random.Random(2015)
    for _ in range(5):
        shuffled = list(paths)
        rng.shuffle(shuffled)
        run = lint_paths(shuffled)
        assert render_text(run, strict=True) == expected_text
        assert render_json(run, strict=True) == expected_json
        assert render_sarif(run.new_violations, all_rules()) == expected_sarif


# ----------------------------------------------------------------------
# SARIF
# ----------------------------------------------------------------------
def test_sarif_document_structure():
    found = lint_one(FROZEN_WRITE, "repro/core/selectors.py", "R011")
    doc = json.loads(render_sarif(found, select_rules(["R011"])))
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "reprolint"
    assert [r["id"] for r in run["tool"]["driver"]["rules"]] == ["R011"]
    result = run["results"][0]
    assert result["ruleId"] == "R011"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "repro/core/selectors.py"
    assert location["region"]["startLine"] == found[0].line


def test_sarif_golden_snapshot():
    violations = []
    for code, path, rule in (
        (UNCHARGED_TRAVERSAL, "repro/core/algorithm.py", "R010"),
        (FROZEN_WRITE, "repro/core/selectors.py", "R011"),
        (UNSEEDED_KEY, "repro/experiments/keys.py", "R012"),
        (PARENT_GLOBAL_TASK, "repro/experiments/tasks.py", "R013"),
    ):
        violations.extend(lint_one(code, path, rule))
    rendered = render_sarif(
        violations, select_rules(["R010", "R011", "R012", "R013"])
    )
    assert rendered == GOLDEN_SARIF.read_text(encoding="utf-8"), (
        "SARIF output drifted from the golden snapshot; if the change is "
        "intentional, regenerate tests/data/reprolint_golden.sarif"
    )


# ----------------------------------------------------------------------
# CLI: --explain, --sarif, --changed, --cache-dir
# ----------------------------------------------------------------------
def test_cli_explain_prints_rule_documentation(capsys):
    assert lint_main(["--explain", "R010"]) == 0
    out = capsys.readouterr().out
    assert "R010" in out and "project-scope" in out and "suppress" in out
    assert lint_main(["--explain", "R999"]) == 2


def test_cli_sarif_writes_the_document(tmp_path, capsys):
    target = tmp_path / "repro" / "mod.py"
    target.parent.mkdir(parents=True)
    target.write_text("import random\nx = random.random()\n")
    sarif_path = tmp_path / "out" / "findings.sarif"
    code = lint_main(
        [str(tmp_path), "--select", "R001", "--sarif", str(sarif_path)]
    )
    assert code == 1
    doc = json.loads(sarif_path.read_text(encoding="utf-8"))
    assert doc["runs"][0]["results"][0]["ruleId"] == "R001"


def test_cli_cache_dir_populates_and_reuses(tmp_path, capsys):
    target = tmp_path / "repro" / "mod.py"
    target.parent.mkdir(parents=True)
    target.write_text("x = 1\n")
    cache_dir = tmp_path / "cache"
    assert lint_main([str(tmp_path), "--cache-dir", str(cache_dir)]) == 0
    entries = list(cache_dir.glob("*.json"))
    assert entries
    assert lint_main([str(tmp_path), "--cache-dir", str(cache_dir)]) == 0


@pytest.fixture
def git_project(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    src = tmp_path / "src" / "repro"
    src.mkdir(parents=True)
    (src / "old.py").write_text("import random\nx = random.random()\n")
    run = lambda *args: subprocess.run(
        ["git", *args], cwd=tmp_path, check=True, capture_output=True
    )
    run("init", "-q")
    run("add", "-A")
    run(
        "-c", "user.email=ci@example.invalid", "-c", "user.name=ci",
        "commit", "-qm", "seed",
    )
    return tmp_path


def test_cli_changed_reports_only_touched_files(git_project, capsys):
    (git_project / "src" / "repro" / "new.py").write_text(
        "import random\ny = random.random()\n"
    )
    code = lint_main(["src", "--changed", "--format", "json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    flagged = {v["path"] for v in payload["new_violations"]}
    assert flagged == {"repro/new.py"}  # old.py's violation is out of scope

    code = lint_main(["src", "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert {v["path"] for v in payload["new_violations"]} == {
        "repro/new.py", "repro/old.py",
    }


def test_cli_changed_clean_when_touched_files_are_clean(git_project, capsys):
    (git_project / "src" / "repro" / "clean.py").write_text("z = 1\n")
    assert lint_main(["src", "--changed"]) == 0
