"""Smoke tests: every example script runs to completion.

Examples are the public face of the library — a refactor that silently
breaks them is a release blocker, so they run (as subprocesses, like a
user would) in the suite.  Output content is only spot-checked; the
examples' numbers are illustrative, not contracts.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def run_example(name: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr}"
    return proc.stdout


def test_examples_directory_is_complete():
    assert set(ALL_EXAMPLES) >= {
        "quickstart.py",
        "friend_recommendation.py",
        "infrastructure_monitoring.py",
        "collaboration_watch.py",
        "stream_monitoring.py",
        "weighted_routing.py",
    }


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_runs(name):
    out = run_example(name)
    assert out.strip(), f"{name} produced no output"


def test_quickstart_reports_coverage():
    out = run_example("quickstart.py")
    assert "coverage of the true top-" in out
    assert "budget split by phase" in out


def test_infrastructure_monitoring_demonstrates_enforcement():
    out = run_example("infrastructure_monitoring.py")
    assert "budget enforcement" in out


def test_stream_monitoring_reports_windows():
    out = run_example("stream_monitoring.py")
    assert "window" in out
    assert "total budget spent" in out
