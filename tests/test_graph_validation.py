"""Unit tests for repro.graph.validation."""

import pytest

from repro.graph.graph import Graph
from repro.graph.validation import (
    GraphValidationError,
    check_simple,
    check_snapshot_pair,
    repair_snapshot_pair,
)

from conftest import path_graph


class TestCheckSimple:
    def test_valid_graph_passes(self, path5):
        check_simple(path5)

    def test_smuggled_self_loop_detected(self):
        g = Graph([(0, 1)])
        g._adj[0][0] = 1.0  # bypass add_edge validation
        with pytest.raises(GraphValidationError, match="self loop"):
            check_simple(g)

    def test_smuggled_bad_weight_detected(self):
        g = Graph([(0, 1)])
        g._adj[0][1] = -2.0
        g._adj[1][0] = -2.0
        with pytest.raises(GraphValidationError, match="weight"):
            check_simple(g)


class TestCheckSnapshotPair:
    def test_valid_pair(self, shortcut_pair):
        check_snapshot_pair(*shortcut_pair)

    def test_identical_snapshots_are_valid(self, path5):
        check_snapshot_pair(path5, path5)

    def test_missing_node_detected(self):
        g1 = path_graph(4)
        g2 = path_graph(3)
        with pytest.raises(GraphValidationError, match="node"):
            check_snapshot_pair(g1, g2)

    def test_missing_edge_detected(self):
        g1 = Graph([(0, 1), (1, 2)])
        g2 = Graph([(0, 1), (1, 3)])
        g2.add_node(2)
        with pytest.raises(GraphValidationError, match="edge"):
            check_snapshot_pair(g1, g2)

    def test_weight_increase_detected(self):
        g1 = Graph([(0, 1, 1.0)])
        g2 = Graph([(0, 1, 3.0)])
        with pytest.raises(GraphValidationError, match="increased"):
            check_snapshot_pair(g1, g2)

    def test_weight_decrease_allowed(self):
        g1 = Graph([(0, 1, 3.0)])
        g2 = Graph([(0, 1, 1.0)])
        check_snapshot_pair(g1, g2)

    def test_new_nodes_and_edges_allowed(self, path5):
        g2 = path5.copy()
        g2.add_edge(4, 5)
        g2.add_edge(0, 3)
        check_snapshot_pair(path5, g2)

    def test_node_isolated_in_g2_is_edge_violation(self):
        # The node survives (so the node check passes) but its only
        # edge was deleted — exactly what a deletion event produces.
        g1 = Graph([(0, 1), (1, 2)])
        g2 = Graph([(1, 2)])
        g2.add_node(0)
        with pytest.raises(GraphValidationError, match=r"edge \(0, 1\)"):
            check_snapshot_pair(g1, g2)

    def test_empty_pair_is_valid(self):
        check_snapshot_pair(Graph(), Graph())

    def test_empty_g1_any_g2_is_valid(self, path5):
        check_snapshot_pair(Graph(), path5)

    def test_nonempty_g1_empty_g2_detected(self, path5):
        with pytest.raises(GraphValidationError, match="node"):
            check_snapshot_pair(path5, Graph())


class TestRepairSnapshotPair:
    def test_valid_pair_untouched(self, path5):
        g2 = path5.copy()
        g2.add_edge(4, 5)
        repaired, report = repair_snapshot_pair(path5, g2)
        assert report.clean
        assert repaired == g2
        assert "no repair" in report.summary()

    def test_restores_deleted_edge_with_g1_weight(self):
        g1 = Graph([(0, 1, 2.5), (1, 2)])
        g2 = Graph([(1, 2)])
        g2.add_node(0)
        repaired, report = repair_snapshot_pair(g1, g2)
        assert repaired.weight(0, 1) == 2.5
        assert report.restored_edges == [(0, 1, 2.5)]
        check_snapshot_pair(g1, repaired)

    def test_restores_deleted_node(self):
        g1 = Graph([(0, 1)])
        g1.add_node(9)
        g2 = Graph([(0, 1)])
        repaired, report = repair_snapshot_pair(g1, g2)
        assert 9 in repaired
        assert report.restored_nodes == [9]
        check_snapshot_pair(g1, repaired)

    def test_clamps_increased_weight(self):
        g1 = Graph([(0, 1, 1.0)])
        g2 = Graph([(0, 1, 4.0)])
        repaired, report = repair_snapshot_pair(g1, g2)
        assert repaired.weight(0, 1) == 1.0
        assert report.clamped_weights == [(0, 1, 4.0, 1.0)]
        check_snapshot_pair(g1, repaired)

    def test_inputs_never_mutated(self):
        g1 = Graph([(0, 1, 1.0), (1, 2)])
        g2 = Graph([(0, 1, 4.0)])
        before1, before2 = g1.copy(), g2.copy()
        repair_snapshot_pair(g1, g2)
        assert g1 == before1
        assert g2 == before2

    def test_repair_then_check_always_passes(self):
        # Compound dirt: missing node, missing edge, heavier edge.
        g1 = Graph([(0, 1, 2.0), (1, 2, 1.0), (2, 3, 1.0)])
        g2 = Graph([(0, 1, 5.0), (1, 2, 1.0)])
        repaired, report = repair_snapshot_pair(g1, g2)
        assert not report.clean
        assert "restored" in report.summary()
        check_snapshot_pair(g1, repaired)
