"""Unit tests for repro.graph.validation."""

import pytest

from repro.graph.graph import Graph
from repro.graph.validation import (
    GraphValidationError,
    check_simple,
    check_snapshot_pair,
)

from conftest import path_graph


class TestCheckSimple:
    def test_valid_graph_passes(self, path5):
        check_simple(path5)

    def test_smuggled_self_loop_detected(self):
        g = Graph([(0, 1)])
        g._adj[0][0] = 1.0  # bypass add_edge validation
        with pytest.raises(GraphValidationError, match="self loop"):
            check_simple(g)

    def test_smuggled_bad_weight_detected(self):
        g = Graph([(0, 1)])
        g._adj[0][1] = -2.0
        g._adj[1][0] = -2.0
        with pytest.raises(GraphValidationError, match="weight"):
            check_simple(g)


class TestCheckSnapshotPair:
    def test_valid_pair(self, shortcut_pair):
        check_snapshot_pair(*shortcut_pair)

    def test_identical_snapshots_are_valid(self, path5):
        check_snapshot_pair(path5, path5)

    def test_missing_node_detected(self):
        g1 = path_graph(4)
        g2 = path_graph(3)
        with pytest.raises(GraphValidationError, match="node"):
            check_snapshot_pair(g1, g2)

    def test_missing_edge_detected(self):
        g1 = Graph([(0, 1), (1, 2)])
        g2 = Graph([(0, 1), (1, 3)])
        g2.add_node(2)
        with pytest.raises(GraphValidationError, match="edge"):
            check_snapshot_pair(g1, g2)

    def test_weight_increase_detected(self):
        g1 = Graph([(0, 1, 1.0)])
        g2 = Graph([(0, 1, 3.0)])
        with pytest.raises(GraphValidationError, match="increased"):
            check_snapshot_pair(g1, g2)

    def test_weight_decrease_allowed(self):
        g1 = Graph([(0, 1, 3.0)])
        g2 = Graph([(0, 1, 1.0)])
        check_snapshot_pair(g1, g2)

    def test_new_nodes_and_edges_allowed(self, path5):
        g2 = path5.copy()
        g2.add_edge(4, 5)
        g2.add_edge(0, 3)
        check_snapshot_pair(path5, g2)
