"""Tests for the experiment harness (smoke-scale runs with shape checks)."""

import pytest

from repro.experiments import (
    clear_context_cache,
    coverage_cell,
    get_context,
    smoke_config,
)
from repro.experiments import (
    ablations,
    figure1,
    figure2,
    figure3,
    table1,
    table2,
    table3,
    table5,
    table6,
)


@pytest.fixture(scope="module")
def config():
    return smoke_config()


class TestRunner:
    def test_context_cached(self, config):
        a = get_context("facebook", config.scale)
        b = get_context("facebook", config.scale)
        assert a is b

    def test_context_fields(self, config):
        ctx = get_context("facebook", config.scale)
        assert ctx.g1.num_edges < ctx.g2.num_edges
        assert ctx.max_delta > 0

    def test_truth_caching_and_contents(self, config):
        ctx = get_context("facebook", config.scale)
        t = ctx.truth_at_offset(1)
        assert t is ctx.truth_at_offset(1)
        assert t.k == len(t.pairs)
        assert t.pair_graph.num_pairs == t.k
        assert t.pair_graph.is_vertex_cover(t.greedy_cover)

    def test_delta_for_offset_clamped(self, config):
        ctx = get_context("facebook", config.scale)
        assert ctx.delta_for_offset(10**6) == 1.0

    def test_coverage_cell_in_unit_interval(self, config):
        ctx = get_context("dblp", config.scale)
        cov = coverage_cell(ctx, "SumDiff", config.budget, 1, config)
        assert 0.0 <= cov <= 1.0


class TestTable1(object):
    def test_every_family_matches_formula(self, config):
        rows = table1.run(config)
        assert len(rows) == 6
        for row in rows:
            assert row.matches, f"{row.family}: {row}"

    def test_total_never_exceeds_2m(self, config):
        for row in table1.run(config):
            assert row.total_measured <= 2 * config.budget

    def test_render(self, config):
        text = table1.render(table1.run(config))
        assert "Table 1" in text and "yes" in text


class TestTable2:
    def test_rows_and_monotonicity(self, config):
        rows = table2.run(config)
        assert [r.dataset for r in rows] == list(config.datasets)
        for r in rows:
            assert r.nodes_t1 <= r.nodes_t2
            assert r.edges_t1 < r.edges_t2
            assert r.max_delta > 0

    def test_regimes_distinct(self, config):
        rows = {r.dataset: r for r in table2.run(config)}
        actors_density = 2 * rows["actors"].edges_t1 / (
            rows["actors"].nodes_t1 * (rows["actors"].nodes_t1 - 1)
        )
        dblp_density = 2 * rows["dblp"].edges_t1 / (
            rows["dblp"].nodes_t1 * (rows["dblp"].nodes_t1 - 1)
        )
        # Actors-like is the dense regime, DBLP-like the sparse one.
        assert actors_density > 2 * dblp_density
        # DBLP-like is the (mildly) fragmented regime — at the smoke
        # scale the anchored collaboration model may close every gap, so
        # only the ordering against the connected analogues is asserted;
        # the reference-scale fragmentation is checked by the benchmarks.
        assert (
            rows["dblp"].disconnected_t1 >= rows["internet"].disconnected_t1
        )

    def test_render(self, config):
        assert "Table 2" in table2.render(table2.run(config))


class TestTable3:
    def test_shape_and_cover_bound(self, config):
        rows = table3.run(config)
        # Offsets whose clamped δ duplicates an earlier one are dropped,
        # so the row count is at most datasets x offsets and at least one
        # row per dataset.
        assert len(rows) <= len(config.datasets) * len(config.delta_offsets)
        assert {r.dataset for r in rows} == set(config.datasets)
        per_dataset_deltas = {}
        for r in rows:
            per_dataset_deltas.setdefault(r.dataset, []).append(r.delta_min)
        for deltas in per_dataset_deltas.values():
            assert len(set(deltas)) == len(deltas)
        for r in rows:
            assert r.maxcover <= r.endpoints
            assert r.endpoints <= 2 * r.pairs
            assert r.pairs >= 0

    def test_pairs_monotone_in_offset(self, config):
        rows = table3.run(config)
        by_ds = {}
        for r in rows:
            by_ds.setdefault(r.dataset, []).append(r)
        for rs in by_ds.values():
            rs.sort(key=lambda r: r.offset)
            counts = [r.pairs for r in rs]
            assert counts == sorted(counts)

    def test_render(self, config):
        assert "maxcover" in table3.render(table3.run(config))


class TestTable5:
    @pytest.fixture(scope="class")
    def result(self, config):
        return table5.run(config)

    def test_matrix_complete(self, config, result):
        assert len(result.coverage) == len(result.algorithms) * len(
            result.columns
        )
        assert len(result.columns) <= (
            len(config.datasets) * len(config.delta_offsets)
        )
        assert all(0.0 <= v <= 1.0 for v in result.coverage.values())

    def test_paper_shape_sumdiff_beats_degree(self, config, result):
        """The paper's clearest ordering: SumDiff >> Degree on average."""
        sum_avg = sum(
            result.coverage[("SumDiff", ds, off)]
            for ds, off, _, _ in result.columns
        )
        deg_avg = sum(
            result.coverage[("Degree", ds, off)]
            for ds, off, _, _ in result.columns
        )
        assert sum_avg > deg_avg

    def test_paper_shape_sumdiff_vs_maxdiff(self, config, result):
        """SumDiff consistently >= MaxDiff on average (paper Section 5.2)."""
        diff = sum(
            result.coverage[("SumDiff", ds, off)]
            - result.coverage[("MaxDiff", ds, off)]
            for ds, off, _, _ in result.columns
        )
        assert diff >= -0.15 * len(result.columns)  # allow small-scale noise

    def test_best_algorithm_lookup(self, config, result):
        ds, off, _, _ = result.columns[0]
        best = result.best_algorithm(ds, off)
        assert best in result.algorithms

    def test_render(self, result):
        text = table5.render(result)
        assert "SumDiff" in text and "IncBet" in text


class TestTable6:
    def test_incidence_dominates_in_cost(self, config):
        rows = table6.run(config)
        assert rows
        for r in rows:
            assert r.sp_computations == 2 * r.active_nodes
            # The baseline's effective budget dwarfs ours (paper's point).
            assert r.active_fraction > r.budget_fraction
            assert r.coverage >= 0.5

    def test_render(self, config):
        assert "Incidence" in table6.render(table6.run(config))


class TestFigures:
    def test_figure1_curves_complete(self, config):
        result = figure1.run(config)
        for dataset, series in result.curves.items():
            for name in figure1.FIGURE1_SELECTORS:
                assert len(series[name]) == len(config.budget_sweep)
        assert "Figure 1" in figure1.render(result)

    def test_figure2_fractions_valid(self, config):
        result = figure2.run(config)
        for curves in (result.endpoint_curves, result.cover_curves):
            for series in curves.values():
                assert all(0.0 <= v <= 1.0 for _, v in series)
        assert "(a)" in figure2.render(result)

    def test_figure3_includes_classifiers_and_best(self, config):
        result = figure3.run(config)
        for dataset, series in result.curves.items():
            assert "L-Classifier" in series
            assert "G-Classifier" in series
            assert result.best_algorithm[dataset] in series
        assert "Figure 3" in figure3.render(result)


class TestAblations:
    def test_landmark_count(self, config):
        result = ablations.run_landmark_count(
            config, landmark_counts=(2, 5)
        )
        assert set(result.landmark_counts) == {2, 5}
        assert all(0 <= v <= 1 for v in result.coverage.values())
        assert "A-1" in ablations.render_landmark_count(result)

    def test_landmark_seeding(self, config):
        result = ablations.run_landmark_seeding(config)
        assert set(result.curves) == {"random", "MaxMin", "MaxAvg"}
        assert "A-2" in ablations.render_landmark_seeding(result)

    def test_incbet_pivots(self, config):
        result = ablations.run_incbet_pivots(config, pivot_counts=(8,))
        assert set(result.coverage) == {"pivots=8", "exact"}
        assert "A-3" in ablations.render_incbet_pivots(result)


class TestExtensions:
    def test_extended_table(self, config):
        from repro.experiments import extensions

        result = extensions.run_extended_table(config)
        expected = len(extensions.EXTENDED_SELECTORS) * len(result.columns)
        assert len(result.coverage) == expected
        assert all(0.0 <= v <= 1.0 for v in result.coverage.values())
        assert "E-X1" in extensions.render_extended_table(result)

    def test_selective_expansion_study(self, config):
        from repro.experiments import extensions

        rows = extensions.run_selective_expansion_study(
            config, expansion_per_round=10, max_rounds=2
        )
        variants = {(r.dataset, r.variant) for r in rows}
        for dataset in config.datasets:
            assert (dataset, "Incidence") in variants
            assert (dataset, "SelectiveExp") in variants
        assert "E-X2" in extensions.render_selective_expansion(rows)

    def test_cover_quality_ablation(self, config):
        rows = ablations.run_cover_quality(config)
        for r in rows:
            assert r.exact_size <= r.greedy_size
        assert "A-5" in ablations.render_cover_quality(rows)

    def test_seed_variance_ablation(self, config):
        rows = ablations.run_seed_variance(config, num_seeds=3)
        for r in rows:
            assert 0.0 <= r.minimum <= r.mean <= r.maximum <= 1.0
        assert "A-6" in ablations.render_seed_variance(rows)


class TestScalingExperiments:
    def test_scaling_rows(self, config):
        from repro.experiments import scaling

        rows = scaling.run_scaling(config, scales=(config.scale,))
        assert len(rows) == 1
        assert rows[0].exact_seconds > 0
        assert rows[0].budgeted_seconds > 0
        assert "E-P1" in scaling.render_scaling(rows)

    def test_forest_fire_robustness(self, config):
        from repro.experiments import scaling

        result = scaling.run_forest_fire_robustness(config, num_nodes=250)
        assert set(result.coverage) >= {"SumDiff", "Degree"}
        assert "E-X3" in scaling.render_forest_fire_robustness(result)

    def test_weighted_pipeline_extension(self, config):
        from repro.experiments import extensions

        result = extensions.run_weighted_pipeline(config, k=20)
        assert result.k <= 20
        assert set(result.coverage) == {"DegRel", "MaxAvg", "SumDiff", "MMSD"}
        assert "E-X4" in extensions.render_weighted_pipeline(result)
