"""repro — Identifying Converging Pairs of Nodes on a Budget (EDBT 2015).

A complete reproduction of Lazaridou, Pitoura, Semertzidis & Tsaparas:
given two snapshots of a growing graph, find the top-k pairs of nodes
whose shortest-path distance decreased the most, using only a fixed
budget of single-source shortest-path computations.

Quickstart
----------
>>> from repro import datasets, find_top_k_converging_pairs, get_selector
>>> tg = datasets.load("facebook", scale=0.2)
>>> g1, g2 = datasets.eval_snapshots(tg)
>>> result = find_top_k_converging_pairs(
...     g1, g2, k=20, m=30, selector=get_selector("MMSD"), seed=0)
>>> len(result.pairs) <= 20
True

Package layout
--------------
* :mod:`repro.graph` — graph substrate (static graphs, temporal streams,
  BFS/Dijkstra, components, APSP, landmarks, betweenness).
* :mod:`repro.core` — the paper's contribution: converging pairs, the
  pair graph, greedy covers, the SSSP budget, Algorithm 1, metrics.
* :mod:`repro.selection` — all candidate-selection algorithms of
  Section 4 under their paper names.
* :mod:`repro.ml` — from-scratch logistic regression, features, and the
  local/global classifier training pipelines.
* :mod:`repro.datasets` — synthetic analogues of the paper's four
  datasets plus edge-list IO.
* :mod:`repro.experiments` — the harness that regenerates every table
  and figure of the evaluation section.
"""

from repro import core, datasets, graph, ml, selection
from repro.core import (
    BudgetExceededError,
    ConvergingPair,
    PairGraph,
    SPBudget,
    TopKResult,
    candidate_pair_coverage,
    converging_pairs_at_threshold,
    coverage,
    find_top_k_converging_pairs,
    greedy_max_coverage,
    greedy_vertex_cover,
    top_k_converging_pairs,
)
from repro.graph import Graph, TemporalGraph
from repro.selection import (
    SINGLE_FEATURE_SELECTORS,
    available_selectors,
    get_selector,
)

__version__ = "1.0.0"

__all__ = [
    "core",
    "datasets",
    "graph",
    "ml",
    "selection",
    "BudgetExceededError",
    "ConvergingPair",
    "PairGraph",
    "SPBudget",
    "TopKResult",
    "candidate_pair_coverage",
    "converging_pairs_at_threshold",
    "coverage",
    "find_top_k_converging_pairs",
    "greedy_max_coverage",
    "greedy_vertex_cover",
    "top_k_converging_pairs",
    "Graph",
    "TemporalGraph",
    "SINGLE_FEATURE_SELECTORS",
    "available_selectors",
    "get_selector",
    "__version__",
]
