"""Reading and writing edge streams.

Real counterparts of the synthetic datasets (IMDB, AS links, Facebook,
DBLP) are plain edge lists; anyone holding them can feed them straight
into the library with these helpers.

Two formats:

* **Timestamped TSV** — ``time<TAB>u<TAB>v[<TAB>weight]`` per line;
  comments start with ``#``.
* **Plain edge list** — ``u<TAB>v`` (or whitespace-separated) per line;
  line order is taken as arrival order, which matches how the paper's
  Facebook stream is distributed.

Three error regimes, strictest first:

* ``errors="strict"`` (default) — raise at the first malformed line;
* ``errors="skip"`` — drop malformed lines, count them per category,
  warn once;
* ``sanitizer=`` — route every line through a
  :class:`~repro.ingest.sanitizer.Sanitizer`, which additionally
  repairs/quarantines *semantic* dirt (duplicates, self loops,
  out-of-order timestamps, weight increases, deletion events) under
  per-rule policies.  See ``docs/datasets.md``.
"""

from __future__ import annotations

import hashlib
import math
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Optional, Tuple, Union

from repro.graph.dynamic import TemporalGraph
from repro.resilience import log_event

if TYPE_CHECKING:  # imported lazily to avoid a circular dependency
    from repro.ingest.sanitizer import Sanitizer

PathLike = Union[str, Path]

#: Cap on distinct malformed-line categories a :class:`ReadStats`
#: tracks; overflow folds into ``"other"`` (mirrors the ingest report).
MAX_ERROR_CATEGORIES = 8

#: Characters a node id may not contain if the stream is to round-trip
#: through the TSV format.
_FORBIDDEN_ID_CHARS = ("\t", "\n", "\r")


@dataclass
class ReadStats:
    """Counters from one :func:`read_edge_stream` pass.

    Pass an instance via the ``stats`` parameter to observe how many
    lines were parsed and — under ``errors="skip"`` — how many malformed
    lines were dropped.  ``first_error`` keeps the first failure's
    located message; ``error_counts`` keeps a bounded per-category
    breakdown (``fields``, ``time``, ``weight``, ``node``,
    ``encoding``), so later failure modes are never lost behind the
    first one.
    """

    lines: int = 0
    parsed: int = 0
    skipped: int = 0
    first_error: Optional[str] = None
    error_counts: Dict[str, int] = field(default_factory=dict)

    def record_error(self, category: str, located: str) -> None:
        """Count one malformed line under a bounded category."""
        self.skipped += 1
        if self.first_error is None:
            self.first_error = located
        if (category not in self.error_counts
                and len(self.error_counts) >= MAX_ERROR_CATEGORIES):
            category = "other"
        self.error_counts[category] = self.error_counts.get(category, 0) + 1

    def categories(self) -> str:
        """``"fields=2, time=1"``-style rendering of ``error_counts``."""
        return ", ".join(
            f"{k}={v}" for k, v in sorted(self.error_counts.items())
        )


def _check_node_id(node: object) -> None:
    """Reject node ids that cannot round-trip through the TSV format."""
    text = str(node)
    if not text:
        raise ValueError("empty node id cannot round-trip through TSV")
    for ch in _FORBIDDEN_ID_CHARS:
        if ch in text:
            raise ValueError(
                f"node id {text!r} contains {ch!r}; tabs and newlines "
                "are field/record separators and would produce an "
                "unparseable file"
            )


def write_edge_stream(temporal: TemporalGraph, path: PathLike) -> None:
    """Write a temporal graph as timestamped TSV.

    Node ids containing tabs, newlines, or carriage returns (and empty
    ids) are rejected with a clear error *before* any line is written —
    silently producing a file :func:`read_edge_stream` cannot parse back
    is the one failure mode a round-trip format must not have.
    """
    path = Path(path)
    events = temporal.events()
    for ev in events:
        _check_node_id(ev.u)
        _check_node_id(ev.v)
    with path.open("w", encoding="utf-8") as fh:
        fh.write("# time\tu\tv\tweight\n")
        for ev in events:
            fh.write(f"{ev.time}\t{ev.u}\t{ev.v}\t{ev.weight}\n")


class _MalformedLine(ValueError):
    """A line that failed to parse, tagged with a bounded category."""

    def __init__(self, category: str, message: str) -> None:
        super().__init__(message)
        self.category = category


def _parse_node(token: str) -> Union[int, str]:
    if not token:
        raise _MalformedLine("node", "empty node id field")
    try:
        return int(token)
    except ValueError:
        return token


def _parse_stream_line(line: str) -> Tuple[float, object, object, float]:
    """``time<TAB>u<TAB>v[<TAB>weight]`` -> parsed fields, or
    :class:`_MalformedLine`."""
    parts = line.split("\t")
    if len(parts) not in (3, 4):
        raise _MalformedLine(
            "fields",
            f"expected 3 or 4 tab-separated fields, got {len(parts)}",
        )
    try:
        time = float(parts[0])
    except ValueError:
        raise _MalformedLine(
            "time", f"bad timestamp {parts[0]!r}"
        ) from None
    if not math.isfinite(time):
        raise _MalformedLine("time", f"non-finite timestamp {parts[0]!r}")
    u = _parse_node(parts[1])
    v = _parse_node(parts[2])
    if len(parts) == 4:
        try:
            weight = float(parts[3])
        except ValueError:
            raise _MalformedLine(
                "weight", f"bad weight {parts[3]!r}"
            ) from None
        if not math.isfinite(weight):
            raise _MalformedLine(
                "weight", f"non-finite weight {parts[3]!r}"
            )
    else:
        weight = 1.0
    return time, u, v, weight


def read_edge_stream(
    path: PathLike,
    errors: str = "strict",
    stats: Optional[ReadStats] = None,
    sanitizer: "Optional[Sanitizer]" = None,
) -> TemporalGraph:
    """Read a timestamped TSV edge stream written by :func:`write_edge_stream`.

    Node ids that parse as integers are loaded as integers; everything
    else is kept as a string.  CRLF line endings and a final line with
    no trailing newline are tolerated — real exports routinely have
    both.  Lines that are not valid UTF-8 are malformed lines, not a
    reader crash.

    Parameters
    ----------
    errors:
        ``"strict"`` (default) raises :class:`ValueError` with the
        ``path:lineno`` of the first malformed line; ``"skip"`` drops
        malformed lines, then emits **one** counted warning (and an
        ``io.skipped_lines`` resilience event) for the whole file.
    stats:
        Optional :class:`ReadStats` collecting line/parsed/skipped
        counts (with a bounded per-category error breakdown) for the
        caller.
    sanitizer:
        Optional :class:`~repro.ingest.sanitizer.Sanitizer`.  Every
        parsed event is routed through its rule chain and reorder
        buffer; malformed lines go to its ``parse`` rule.  The sanitizer
        is flushed and finalized here (writing its quarantine store, if
        configured, with this file's path and SHA-256).  Mutually
        exclusive with ``errors="skip"`` — the sanitizer's ``parse``
        policy governs malformed lines instead.
    """
    if errors not in ("strict", "skip"):
        raise ValueError(f"errors must be 'strict' or 'skip', got {errors!r}")
    if sanitizer is not None and errors != "strict":
        raise ValueError(
            "errors='skip' and sanitizer= are mutually exclusive; "
            "set the sanitizer's 'parse' policy instead"
        )
    path = Path(path)
    stats = stats if stats is not None else ReadStats()
    temporal = TemporalGraph()
    digest = hashlib.sha256()

    def handle_malformed(lineno: int, raw: str, category: str,
                         message: str) -> None:
        located = f"{path}:{lineno}: {message}"
        if sanitizer is not None:
            sanitizer.feed_parse_error(lineno, raw, message, category)
            return
        if errors == "strict":
            raise ValueError(located) from None
        stats.lines += 1
        stats.record_error(category, located)

    with path.open("rb") as fh:
        for lineno, bline in enumerate(fh, start=1):
            digest.update(bline)
            try:
                line = bline.decode("utf-8")
            except UnicodeDecodeError as exc:
                raw = bline.decode("utf-8", errors="backslashreplace").strip()
                handle_malformed(
                    lineno, raw, "encoding", f"undecodable UTF-8 ({exc})"
                )
                continue
            # strip() removes the trailing \n / \r\n (the last line may
            # have neither) plus incidental surrounding whitespace.
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                time, u, v, weight = _parse_stream_line(line)
            except _MalformedLine as exc:
                handle_malformed(lineno, line, exc.category, str(exc))
                continue
            if sanitizer is not None:
                for ev in sanitizer.feed(time, u, v, weight,
                                         lineno=lineno, raw=line):
                    temporal.add_event(ev)
            else:
                stats.lines += 1
                temporal.add_edge(time, u, v, weight)
                stats.parsed += 1
    if sanitizer is not None:
        for ev in sanitizer.flush():
            temporal.add_event(ev)
        sanitizer.finalize(
            source=str(path), source_sha256=digest.hexdigest()
        )
        stats.lines = sanitizer.report.lines
        stats.parsed = sanitizer.report.parsed
        stats.skipped = sanitizer.report.malformed
        return temporal
    if stats.skipped:
        log_event(
            "io.skipped_lines", path=str(path), skipped=stats.skipped,
            parsed=stats.parsed, categories=stats.categories(),
        )
        warnings.warn(
            f"{path}: skipped {stats.skipped} malformed line(s) "
            f"[{stats.categories()}] (first: {stats.first_error})",
            stacklevel=2,
        )
    return temporal


def read_edge_list(
    path: PathLike,
    sanitizer: "Optional[Sanitizer]" = None,
) -> TemporalGraph:
    """Read a plain edge list, using line order as arrival order.

    Without a sanitizer, short lines raise and self loops are silently
    skipped (real edge lists occasionally contain them).  With a
    ``sanitizer``, both go through its rule chain instead — counted,
    repairable, quarantinable — along with duplicate collapse.
    """
    path = Path(path)
    temporal = TemporalGraph()
    time = 0
    digest = hashlib.sha256()
    with path.open("rb") as fh:
        for lineno, bline in enumerate(fh, start=1):
            digest.update(bline)
            try:
                line = bline.decode("utf-8")
            except UnicodeDecodeError as exc:
                if sanitizer is None:
                    raise ValueError(
                        f"{path}:{lineno}: undecodable UTF-8 ({exc})"
                    ) from None
                raw = bline.decode("utf-8", errors="backslashreplace").strip()
                sanitizer.feed_parse_error(
                    lineno, raw, f"undecodable UTF-8 ({exc})", "encoding"
                )
                continue
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                if sanitizer is None:
                    raise ValueError(
                        f"{path}:{lineno}: expected at least two fields"
                    )
                sanitizer.feed_parse_error(
                    lineno, line, "expected at least two fields", "fields"
                )
                continue
            try:
                u = _parse_node(parts[0])
                v = _parse_node(parts[1])
            except _MalformedLine as exc:
                if sanitizer is None:
                    raise ValueError(f"{path}:{lineno}: {exc}") from None
                sanitizer.feed_parse_error(lineno, line, str(exc),
                                           exc.category)
                continue
            if sanitizer is not None:
                for ev in sanitizer.feed(float(time), u, v,
                                         lineno=lineno, raw=line):
                    temporal.add_event(ev)
                time += 1
                continue
            if u == v:
                continue  # real edge lists occasionally contain self loops
            temporal.add_edge(time, u, v)
            time += 1
    if sanitizer is not None:
        for ev in sanitizer.flush():
            temporal.add_event(ev)
        sanitizer.finalize(
            source=str(path), source_sha256=digest.hexdigest()
        )
    return temporal
