"""Reading and writing edge streams.

Real counterparts of the synthetic datasets (IMDB, AS links, Facebook,
DBLP) are plain edge lists; anyone holding them can feed them straight
into the library with these helpers.

Two formats:

* **Timestamped TSV** — ``time<TAB>u<TAB>v[<TAB>weight]`` per line;
  comments start with ``#``.
* **Plain edge list** — ``u<TAB>v`` (or whitespace-separated) per line;
  line order is taken as arrival order, which matches how the paper's
  Facebook stream is distributed.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.graph.dynamic import TemporalGraph
from repro.resilience import log_event

PathLike = Union[str, Path]


@dataclass
class ReadStats:
    """Counters from one :func:`read_edge_stream` pass.

    Pass an instance via the ``stats`` parameter to observe how many
    lines were parsed and — under ``errors="skip"`` — how many malformed
    lines were dropped (``first_error`` keeps the first one's message
    for diagnostics).
    """

    lines: int = 0
    parsed: int = 0
    skipped: int = 0
    first_error: Optional[str] = None


def write_edge_stream(temporal: TemporalGraph, path: PathLike) -> None:
    """Write a temporal graph as timestamped TSV."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        fh.write("# time\tu\tv\tweight\n")
        for ev in temporal.events():
            fh.write(f"{ev.time}\t{ev.u}\t{ev.v}\t{ev.weight}\n")


def _parse_number(token: str) -> Union[int, float]:
    """Ints stay ints (node ids), anything else becomes float."""
    try:
        return int(token)
    except ValueError:
        return float(token)


def read_edge_stream(
    path: PathLike,
    errors: str = "strict",
    stats: Optional[ReadStats] = None,
) -> TemporalGraph:
    """Read a timestamped TSV edge stream written by :func:`write_edge_stream`.

    Node ids that parse as integers are loaded as integers; everything
    else is kept as a string.  CRLF line endings and a final line with
    no trailing newline are tolerated — real exports routinely have
    both.

    Parameters
    ----------
    errors:
        ``"strict"`` (default) raises :class:`ValueError` with the
        ``path:lineno`` of the first malformed line; ``"skip"`` drops
        malformed lines, then emits **one** counted warning (and an
        ``io.skipped_lines`` resilience event) for the whole file.
    stats:
        Optional :class:`ReadStats` collecting line/parsed/skipped
        counts for the caller.
    """
    if errors not in ("strict", "skip"):
        raise ValueError(f"errors must be 'strict' or 'skip', got {errors!r}")
    path = Path(path)
    stats = stats if stats is not None else ReadStats()
    temporal = TemporalGraph()
    with path.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            # strip() removes the trailing \n / \r\n (the last line may
            # have neither) plus incidental surrounding whitespace.
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            stats.lines += 1
            try:
                parts = line.split("\t")
                if len(parts) not in (3, 4):
                    raise ValueError(
                        f"expected 3 or 4 tab-separated fields, "
                        f"got {len(parts)}"
                    )
                time = float(parts[0])
                u = _parse_node(parts[1])
                v = _parse_node(parts[2])
                weight = float(parts[3]) if len(parts) == 4 else 1.0
            except ValueError as exc:
                located = f"{path}:{lineno}: {exc}"
                if errors == "strict":
                    raise ValueError(located) from None
                stats.skipped += 1
                if stats.first_error is None:
                    stats.first_error = located
                continue
            temporal.add_edge(time, u, v, weight)
            stats.parsed += 1
    if stats.skipped:
        log_event(
            "io.skipped_lines", path=str(path), skipped=stats.skipped,
            parsed=stats.parsed,
        )
        warnings.warn(
            f"{path}: skipped {stats.skipped} malformed line(s) "
            f"(first: {stats.first_error})",
            stacklevel=2,
        )
    return temporal


def _parse_node(token: str) -> Union[int, str]:
    try:
        return int(token)
    except ValueError:
        return token


def read_edge_list(path: PathLike) -> TemporalGraph:
    """Read a plain edge list, using line order as arrival order."""
    path = Path(path)
    temporal = TemporalGraph()
    time = 0
    with path.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(
                    f"{path}:{lineno}: expected at least two fields"
                )
            u = _parse_node(parts[0])
            v = _parse_node(parts[1])
            if u == v:
                continue  # real edge lists occasionally contain self loops
            temporal.add_edge(time, u, v)
            time += 1
    return temporal
