"""Reading and writing edge streams.

Real counterparts of the synthetic datasets (IMDB, AS links, Facebook,
DBLP) are plain edge lists; anyone holding them can feed them straight
into the library with these helpers.

Two formats:

* **Timestamped TSV** — ``time<TAB>u<TAB>v[<TAB>weight]`` per line;
  comments start with ``#``.
* **Plain edge list** — ``u<TAB>v`` (or whitespace-separated) per line;
  line order is taken as arrival order, which matches how the paper's
  Facebook stream is distributed.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.graph.dynamic import TemporalGraph

PathLike = Union[str, Path]


def write_edge_stream(temporal: TemporalGraph, path: PathLike) -> None:
    """Write a temporal graph as timestamped TSV."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        fh.write("# time\tu\tv\tweight\n")
        for ev in temporal.events():
            fh.write(f"{ev.time}\t{ev.u}\t{ev.v}\t{ev.weight}\n")


def _parse_number(token: str) -> Union[int, float]:
    """Ints stay ints (node ids), anything else becomes float."""
    try:
        return int(token)
    except ValueError:
        return float(token)


def read_edge_stream(path: PathLike) -> TemporalGraph:
    """Read a timestamped TSV edge stream written by :func:`write_edge_stream`.

    Node ids that parse as integers are loaded as integers; everything
    else is kept as a string.
    """
    path = Path(path)
    temporal = TemporalGraph()
    with path.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) not in (3, 4):
                raise ValueError(
                    f"{path}:{lineno}: expected 3 or 4 tab-separated fields, "
                    f"got {len(parts)}"
                )
            time = float(parts[0])
            u = _parse_node(parts[1])
            v = _parse_node(parts[2])
            weight = float(parts[3]) if len(parts) == 4 else 1.0
            temporal.add_edge(time, u, v, weight)
    return temporal


def _parse_node(token: str) -> Union[int, str]:
    try:
        return int(token)
    except ValueError:
        return token


def read_edge_list(path: PathLike) -> TemporalGraph:
    """Read a plain edge list, using line order as arrival order."""
    path = Path(path)
    temporal = TemporalGraph()
    time = 0
    with path.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(
                    f"{path}:{lineno}: expected at least two fields"
                )
            u = _parse_node(parts[0])
            v = _parse_node(parts[1])
            if u == v:
                continue  # real edge lists occasionally contain self loops
            temporal.add_edge(time, u, v)
            time += 1
    return temporal
