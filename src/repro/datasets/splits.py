"""Snapshot splits used throughout the reproduction.

The paper fixes two splits of each edge stream:

* **Evaluation** — ``G_t1`` holds the first 80% of the edges, ``G_t2``
  the entire stream (Section 5.1).
* **Training** — the classifiers are fitted on an earlier, disjoint pair:
  20% and 40% of the edges (Section 5.3), so no evaluation-time
  information leaks into the models.
"""

from __future__ import annotations

from typing import Tuple

from repro.graph.dynamic import TemporalGraph
from repro.graph.graph import Graph

#: Evaluation split: (fraction of edges at t1, fraction at t2).
EVAL_SPLIT: Tuple[float, float] = (0.8, 1.0)

#: Training split for the classifiers.
TRAIN_SPLIT: Tuple[float, float] = (0.2, 0.4)


def eval_snapshots(temporal: TemporalGraph) -> Tuple[Graph, Graph]:
    """The 80% / 100% evaluation snapshot pair."""
    return temporal.snapshot_pair(*EVAL_SPLIT)


def train_snapshots(temporal: TemporalGraph) -> Tuple[Graph, Graph]:
    """The 20% / 40% training snapshot pair."""
    return temporal.snapshot_pair(*TRAIN_SPLIT)
