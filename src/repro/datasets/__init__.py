"""Datasets: synthetic analogues of the paper's four evaluation graphs.

See :mod:`repro.datasets.catalog` for the named presets ("actors",
"internet", "facebook", "dblp"), :mod:`repro.datasets.generators` for the
underlying temporal processes, :mod:`repro.datasets.splits` for the
paper's snapshot splits, and :mod:`repro.datasets.io` for loading real
edge lists if you have them.
"""

from repro.datasets.catalog import (
    DATASETS,
    DatasetSpec,
    actors_like,
    characteristics,
    dataset_names,
    dblp_like,
    facebook_like,
    internet_like,
    internet_weighted,
    load,
)
from repro.datasets.generators import (
    collaboration_stream,
    community_bridge_stream,
    forest_fire_stream,
    hub_spoke_stream,
    preferential_attachment_stream,
)
from repro.datasets.io import read_edge_list, read_edge_stream, write_edge_stream
from repro.datasets.splits import (
    EVAL_SPLIT,
    TRAIN_SPLIT,
    eval_snapshots,
    train_snapshots,
)

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "actors_like",
    "characteristics",
    "dataset_names",
    "dblp_like",
    "facebook_like",
    "internet_like",
    "internet_weighted",
    "load",
    "collaboration_stream",
    "community_bridge_stream",
    "forest_fire_stream",
    "hub_spoke_stream",
    "preferential_attachment_stream",
    "read_edge_list",
    "read_edge_stream",
    "write_edge_stream",
    "EVAL_SPLIT",
    "TRAIN_SPLIT",
    "eval_snapshots",
    "train_snapshots",
]
