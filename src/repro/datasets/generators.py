"""Synthetic temporal graph processes.

The paper evaluates on four public datasets (IMDB Actors, AS-level
Internet, Facebook friendships, DBLP co-authorship) that are not
available offline.  These generators produce seeded temporal edge
streams that recreate the structural regimes those datasets put the
algorithms in:

* :func:`collaboration_stream` — team events projected to cliques, with
  preferential veteran participation.  Dense casts give the Actors
  regime (many top converging pairs collapse to single new edges);
  small sparse teams with many debutants give the fragmented DBLP
  regime.
* :func:`community_bridge_stream` — planted communities densified first,
  then increasingly bridged.  The Facebook regime: long inter-community
  paths collapse sharply when bridges land in the stream's tail.
* :func:`hub_spoke_stream` — a tiered core/provider/stub topology with
  late peering edges, the AS-Internet regime.
* :func:`preferential_attachment_stream` — plain Barabási–Albert-style
  growth; the neutral baseline used in tests and ablations.

All functions take an integer ``seed`` and are fully deterministic given
it; times are the event index, so stream fractions equal edge fractions.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.dynamic import TemporalGraph


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


class _StreamBuilder:
    """Accumulates unique undirected edges as a timestamped stream."""

    def __init__(self) -> None:
        self._seen = set()
        self._events: List[Tuple[int, int, int]] = []

    def add(self, u: int, v: int) -> bool:
        """Append edge ``{u, v}`` if new; returns True when appended."""
        if u == v:
            return False
        key = (u, v) if u < v else (v, u)
        if key in self._seen:
            return False
        self._seen.add(key)
        self._events.append((len(self._events), key[0], key[1]))
        return True

    @property
    def num_edges(self) -> int:
        return len(self._events)

    def build(self) -> TemporalGraph:
        return TemporalGraph(self._events)


def preferential_attachment_stream(
    num_nodes: int,
    edges_per_node: int = 2,
    seed: Optional[int] = None,
) -> TemporalGraph:
    """Barabási–Albert-style growth: each arrival attaches preferentially.

    Node 0..edges_per_node form an initial clique; every later node joins
    with ``edges_per_node`` edges to targets sampled proportionally to
    degree (with rejection of duplicates).
    """
    if num_nodes < edges_per_node + 1:
        raise ValueError(
            f"need num_nodes > edges_per_node, got {num_nodes} <= {edges_per_node}"
        )
    if edges_per_node < 1:
        raise ValueError(f"edges_per_node must be >= 1, got {edges_per_node}")
    rng = _rng(seed)
    builder = _StreamBuilder()
    # The classic "repeated nodes" urn: each endpoint occurrence is one
    # ticket, so sampling a ticket is sampling proportional to degree.
    urn: List[int] = []
    seed_size = edges_per_node + 1
    for u in range(seed_size):
        for v in range(u + 1, seed_size):
            builder.add(u, v)
            urn.extend((u, v))
    for u in range(seed_size, num_nodes):
        targets = set()
        while len(targets) < edges_per_node:
            targets.add(urn[int(rng.integers(len(urn)))])
        for v in targets:
            builder.add(u, v)
            urn.extend((u, v))
    return builder.build()


def collaboration_stream(
    num_events: int,
    team_size_range: Tuple[int, int] = (3, 6),
    newcomer_rate: float = 0.35,
    recurrence_bias: float = 0.8,
    anchor_rate: float = 0.9,
    seed: Optional[int] = None,
) -> TemporalGraph:
    """Team-event stream projected to cliques (Actors / DBLP regime).

    Each event draws a team: newcomers join with probability
    ``newcomer_rate`` per slot, veterans are sampled preferentially by
    past participation with probability ``recurrence_bias`` (uniformly
    otherwise).  All within-team pairs become edges, so large
    ``team_size_range`` yields the dense Actors regime and small teams
    with a high newcomer rate the sparse DBLP regime.

    ``anchor_rate`` is the probability that a team's first slot is forced
    to a veteran — the "every paper has a senior author / every cast has
    a known actor" effect.  It controls fragmentation: at 0.9 the giant
    component holds ~99.5% of the nodes (the real DBLP's regime, whose
    608k not-connected pairs are only ~0.5% of all pairs), while 0.0
    yields an archipelago of disconnected teams.
    """
    lo, hi = team_size_range
    if lo < 2 or hi < lo:
        raise ValueError(f"invalid team_size_range {team_size_range}")
    if not 0.0 <= newcomer_rate <= 1.0:
        raise ValueError(f"newcomer_rate must be in [0, 1], got {newcomer_rate}")
    if not 0.0 <= recurrence_bias <= 1.0:
        raise ValueError(
            f"recurrence_bias must be in [0, 1], got {recurrence_bias}"
        )
    if not 0.0 <= anchor_rate <= 1.0:
        raise ValueError(f"anchor_rate must be in [0, 1], got {anchor_rate}")
    rng = _rng(seed)
    builder = _StreamBuilder()
    participation_urn: List[int] = []  # one ticket per past participation
    population: List[int] = []
    next_id = 0

    for _ in range(num_events):
        size = int(rng.integers(lo, hi + 1))
        team = set()
        for slot in range(size):
            anchored = (
                slot == 0 and population and rng.random() < anchor_rate
            )
            if not anchored and (
                not population or rng.random() < newcomer_rate
            ):
                member = next_id
                next_id += 1
                population.append(member)
            elif participation_urn and rng.random() < recurrence_bias:
                member = participation_urn[int(rng.integers(len(participation_urn)))]
            else:
                member = population[int(rng.integers(len(population)))]
            team.add(member)
        members = sorted(team)
        for i, u in enumerate(members):
            participation_urn.append(u)
            for v in members[i + 1 :]:
                builder.add(u, v)
    return builder.build()


def community_bridge_stream(
    num_nodes: int,
    num_communities: int = 12,
    intra_edges_per_node: float = 3.0,
    bridge_fraction: float = 0.12,
    late_bridge_share: float = 0.75,
    seed: Optional[int] = None,
) -> TemporalGraph:
    """Planted communities, densified then bridged (Facebook regime).

    Nodes are pre-assigned to ``num_communities`` groups.  A spanning
    backbone makes each community connected, extra intra-community edges
    densify them, and ``bridge_fraction`` of all edges connect *different*
    communities — with ``late_bridge_share`` of those bridges held back to
    the final quarter of the stream, so the evaluation tail (80%→100%)
    contains the path-collapsing events the converging-pairs problem is
    about.
    """
    if num_nodes < 2 * num_communities:
        raise ValueError(
            f"need >= 2 nodes per community, got {num_nodes} nodes for "
            f"{num_communities} communities"
        )
    if not 0.0 <= bridge_fraction < 1.0:
        raise ValueError(f"bridge_fraction must be in [0, 1), got {bridge_fraction}")
    if not 0.0 <= late_bridge_share <= 1.0:
        raise ValueError(
            f"late_bridge_share must be in [0, 1], got {late_bridge_share}"
        )
    rng = _rng(seed)
    community = rng.integers(num_communities, size=num_nodes)
    members: List[List[int]] = [[] for _ in range(num_communities)]
    for u in range(num_nodes):
        members[int(community[u])].append(u)

    early: List[Tuple[int, int]] = []
    bridges: List[Tuple[int, int]] = []
    seen = set()

    def _register(u: int, v: int, bucket: List[Tuple[int, int]]) -> None:
        if u == v:
            return
        key = (u, v) if u < v else (v, u)
        if key not in seen:
            seen.add(key)
            bucket.append(key)

    # Backbone: random spanning chain per community (guarantees local
    # connectivity so intra-community distances are well-defined early).
    for group in members:
        order = list(group)
        rng.shuffle(order)
        for a, b in zip(order, order[1:]):
            _register(a, b, early)

    target_intra = int(intra_edges_per_node * num_nodes)
    attempts = 0
    while len(early) < target_intra and attempts < 50 * target_intra:
        attempts += 1
        group = members[int(rng.integers(num_communities))]
        if len(group) < 2:
            continue
        u, v = rng.choice(len(group), size=2, replace=False)
        _register(group[int(u)], group[int(v)], early)

    num_bridges = int(bridge_fraction / (1.0 - bridge_fraction) * len(early))
    attempts = 0
    while len(bridges) < num_bridges and attempts < 50 * max(num_bridges, 1):
        attempts += 1
        u = int(rng.integers(num_nodes))
        v = int(rng.integers(num_nodes))
        if community[u] != community[v]:
            _register(u, v, bridges)

    # Interleave: early bridges mixed through the stream, late bridges
    # appended to the tail.
    rng.shuffle(early)
    rng.shuffle(bridges)
    num_late = int(late_bridge_share * len(bridges))
    early_bridges = bridges[: len(bridges) - num_late]
    late_bridges = bridges[len(bridges) - num_late :]

    mixed = early + early_bridges
    rng.shuffle(mixed)
    ordered = mixed + late_bridges
    return TemporalGraph(
        [(t, u, v) for t, (u, v) in enumerate(ordered)]
    )


def forest_fire_stream(
    num_nodes: int,
    forward_prob: float = 0.35,
    ambassador_links: int = 1,
    seed: Optional[int] = None,
) -> TemporalGraph:
    """Forest-fire growth (Leskovec et al.): burning neighborhoods.

    Each arriving node picks ``ambassador_links`` random ambassadors and
    "burns" outward from them: it links every burned node, and each
    burned node's unburned neighbors catch fire independently with
    probability ``forward_prob``.  Produces the densification and
    shrinking-diameter behaviour of real social networks — the growth
    model family the paper's related work cites ([15]) — and serves as a
    fifth, model-diverse stream for robustness experiments.
    """
    if num_nodes < 2:
        raise ValueError(f"num_nodes must be >= 2, got {num_nodes}")
    if not 0.0 <= forward_prob < 1.0:
        raise ValueError(f"forward_prob must be in [0, 1), got {forward_prob}")
    if ambassador_links < 1:
        raise ValueError(
            f"ambassador_links must be >= 1, got {ambassador_links}"
        )
    rng = _rng(seed)
    builder = _StreamBuilder()
    adjacency: List[List[int]] = [[]]  # node 0 starts alone

    def link(u: int, v: int) -> None:
        if builder.add(u, v):
            adjacency[u].append(v)
            adjacency[v].append(u)

    for u in range(1, num_nodes):
        adjacency.append([])
        count = min(ambassador_links, u)
        ambassadors = rng.choice(u, size=count, replace=False)
        burned = set()
        frontier = [int(a) for a in ambassadors]
        while frontier:
            node = frontier.pop()
            if node in burned:
                continue
            burned.add(node)
            link(u, node)
            for neighbor in adjacency[node]:
                if neighbor != u and neighbor not in burned:
                    if rng.random() < forward_prob:
                        frontier.append(neighbor)
    return builder.build()


def hub_spoke_stream(
    num_nodes: int,
    core_size: int = 12,
    provider_fraction: float = 0.15,
    peering_fraction: float = 0.08,
    late_peering_share: float = 0.8,
    link_latencies: Optional[Tuple[float, float, float, float]] = None,
    seed: Optional[int] = None,
) -> TemporalGraph:
    """Tiered core/provider/stub topology with late peering (AS regime).

    * A densely meshed core (tier 1).
    * Providers (tier 2) multi-home to 1–3 core nodes and to each other
      occasionally.
    * Stubs (tier 3) single- or dual-home to providers — producing the
      long provider-mediated paths of the AS graph.
    * Peering edges between providers/stubs bypass the core; most are
      held to the stream's tail, collapsing many stub-to-stub distances.

    ``link_latencies`` optionally weights the edges as
    ``(core-core, provider-core, stub-provider, peering)`` latencies,
    turning the stream into a weighted routing topology (Dijkstra
    distances throughout the pipeline); ``None`` keeps it unweighted.
    """
    if num_nodes < core_size + 2:
        raise ValueError(
            f"num_nodes {num_nodes} too small for core_size {core_size}"
        )
    if not 0.0 < provider_fraction < 1.0:
        raise ValueError(
            f"provider_fraction must be in (0, 1), got {provider_fraction}"
        )
    rng = _rng(seed)
    num_providers = max(2, int(provider_fraction * num_nodes))
    providers = list(range(core_size, core_size + num_providers))
    stubs = list(range(core_size + num_providers, num_nodes))

    growth: List[Tuple[int, int]] = []
    peering: List[Tuple[int, int]] = []
    seen = set()

    def _register(u: int, v: int, bucket: List[Tuple[int, int]]) -> None:
        if u == v:
            return
        key = (u, v) if u < v else (v, u)
        if key not in seen:
            seen.add(key)
            bucket.append(key)

    for u in range(core_size):
        for v in range(u + 1, core_size):
            if rng.random() < 0.6:
                _register(u, v, growth)
    # Ensure the core is connected even with unlucky coin flips.
    for u in range(1, core_size):
        _register(u - 1, u, growth)

    for p in providers:
        homes = 1 + int(rng.integers(3))
        for core in rng.choice(core_size, size=min(homes, core_size), replace=False):
            _register(p, int(core), growth)

    for s in stubs:
        homes = 1 + (1 if rng.random() < 0.3 else 0)
        for p in rng.choice(len(providers), size=min(homes, len(providers)),
                            replace=False):
            _register(s, providers[int(p)], growth)

    num_peering = int(peering_fraction * len(growth))
    lower_tier = providers + stubs
    attempts = 0
    while len(peering) < num_peering and attempts < 50 * max(num_peering, 1):
        attempts += 1
        u = lower_tier[int(rng.integers(len(lower_tier)))]
        v = lower_tier[int(rng.integers(len(lower_tier)))]
        _register(u, v, peering)

    rng.shuffle(growth)
    rng.shuffle(peering)
    num_late = int(late_peering_share * len(peering))
    mixed = growth + peering[: len(peering) - num_late]
    rng.shuffle(mixed)
    ordered = mixed + peering[len(peering) - num_late :]

    if link_latencies is None:
        return TemporalGraph(
            [(t, u, v) for t, (u, v) in enumerate(ordered)]
        )

    core_lat, provider_lat, stub_lat, peering_lat = link_latencies
    for latency in link_latencies:
        if latency <= 0:
            raise ValueError(
                f"link latencies must be positive, got {link_latencies}"
            )
    peering_set = set(peering)
    first_stub = core_size + num_providers

    def tier(node: int) -> int:
        if node < core_size:
            return 0
        if node < first_stub:
            return 1
        return 2

    def latency_of(u: int, v: int) -> float:
        if (u, v) in peering_set or (v, u) in peering_set:
            return peering_lat
        top = min(tier(u), tier(v))
        bottom = max(tier(u), tier(v))
        if bottom == 2:
            return stub_lat
        if top == 0 and bottom == 0:
            return core_lat
        return provider_lat

    return TemporalGraph(
        [(t, u, v, latency_of(u, v)) for t, (u, v) in enumerate(ordered)]
    )
