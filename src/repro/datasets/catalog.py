"""Dataset catalog: the four paper-dataset analogues plus utilities.

Each entry wraps one of the generators in :mod:`repro.datasets.generators`
with parameters tuned so the resulting snapshot pairs land in the same
structural regime as the corresponding paper dataset (Table 2) — dense
clique-heavy Actors, tiered sparse Internet, community-bridged Facebook,
and fragmented small-team DBLP — at a laptop-friendly scale (the paper
itself restricted dataset size so exact ground truth stays computable).

``scale=1.0`` yields graphs of roughly 1–3k nodes; the knob scales node /
event counts linearly for users with more patience.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.datasets.generators import (
    collaboration_stream,
    community_bridge_stream,
    hub_spoke_stream,
)
from repro.datasets.splits import EVAL_SPLIT
from repro.graph.apsp import diameter
from repro.graph.components import count_disconnected_pairs
from repro.graph.dynamic import TemporalGraph
from repro.core.pairs import delta_histogram


def actors_like(scale: float = 1.0, seed: Optional[int] = 7) -> TemporalGraph:
    """Dense film-cast collaboration graph (Actors regime).

    Large casts make many top converging pairs collapse to single new
    edges, which is what made DegRel competitive on Actors in the paper.
    """
    return collaboration_stream(
        num_events=int(900 * scale),
        team_size_range=(4, 8),
        newcomer_rate=0.35,
        recurrence_bias=0.7,
        seed=seed,
    )


def internet_like(scale: float = 1.0, seed: Optional[int] = 11) -> TemporalGraph:
    """Tiered AS-style topology with late peering (Internet regime).

    ``provider_fraction`` is tuned so the snapshot is disassortative
    (~-0.2 at reference scale, like the real AS graph): few providers,
    each aggregating many stubs, gives the hub-and-spoke signature.
    """
    return hub_spoke_stream(
        num_nodes=int(2400 * scale),
        core_size=14,
        provider_fraction=0.08,
        peering_fraction=0.1,
        late_peering_share=0.8,
        seed=seed,
    )


def internet_weighted(
    scale: float = 1.0, seed: Optional[int] = 11
) -> TemporalGraph:
    """Weighted variant of :func:`internet_like` with link latencies.

    Core mesh links are fast (0.5), provider uplinks standard (1.0),
    stub tails slow (2.0), and peering shortcuts moderate (1.2); the
    whole pipeline switches to Dijkstra distances automatically.  Not in
    the default experiment set (the paper's evaluation is unweighted) —
    exercised by the weighted-pipeline extension experiment.
    """
    return hub_spoke_stream(
        num_nodes=int(2400 * scale),
        core_size=14,
        provider_fraction=0.08,
        peering_fraction=0.1,
        late_peering_share=0.8,
        link_latencies=(0.5, 1.0, 2.0, 1.2),
        seed=seed,
    )


def facebook_like(scale: float = 1.0, seed: Optional[int] = 13) -> TemporalGraph:
    """Community-structured friendship graph, bridged late (Facebook regime)."""
    return community_bridge_stream(
        num_nodes=int(1500 * scale),
        num_communities=14,
        intra_edges_per_node=3.0,
        bridge_fraction=0.1,
        late_bridge_share=0.75,
        seed=seed,
    )


def dblp_like(scale: float = 1.0, seed: Optional[int] = 17) -> TemporalGraph:
    """Sparse, fragmented small-team co-authorship graph (DBLP regime)."""
    return collaboration_stream(
        num_events=int(1500 * scale),
        team_size_range=(2, 4),
        newcomer_rate=0.45,
        recurrence_bias=0.7,
        seed=seed,
    )


@dataclass(frozen=True)
class DatasetSpec:
    """Catalog entry: a named builder plus its paper counterpart."""

    name: str
    paper_dataset: str
    builder: Callable[..., TemporalGraph]
    description: str


DATASETS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec(
            name="actors",
            paper_dataset="Actors (IMDB co-appearance, 1998–)",
            builder=actors_like,
            description="dense film-cast collaboration cliques",
        ),
        DatasetSpec(
            name="internet",
            paper_dataset="Internet links (AS-level connectivity)",
            builder=internet_like,
            description="tiered core/provider/stub topology, late peering",
        ),
        DatasetSpec(
            name="internet-weighted",
            paper_dataset="(extension) weighted AS topology with latencies",
            builder=internet_weighted,
            description="internet regime with per-tier link latencies",
        ),
        DatasetSpec(
            name="facebook",
            paper_dataset="Facebook (friendship creation stream)",
            builder=facebook_like,
            description="planted communities bridged over time",
        ),
        DatasetSpec(
            name="dblp",
            paper_dataset="DBLP (co-authorship, 14 conferences)",
            builder=dblp_like,
            description="sparse fragmented small-team collaboration",
        ),
    )
}


def dataset_names() -> List[str]:
    """The catalog's dataset names, in the paper's order."""
    return list(DATASETS)


def load(name: str, scale: float = 1.0, seed: Optional[int] = None) -> TemporalGraph:
    """Build a catalog dataset by name.

    ``seed=None`` uses each dataset's fixed default seed, so repeated
    loads across processes agree — pass an explicit seed for fresh
    instances.
    """
    key = name.lower()
    if key not in DATASETS:
        known = ", ".join(DATASETS)
        raise KeyError(f"unknown dataset {name!r}; known datasets: {known}")
    builder = DATASETS[key].builder
    if seed is None:
        return builder(scale=scale)
    return builder(scale=scale, seed=seed)


def characteristics(temporal: TemporalGraph, split=EVAL_SPLIT) -> Dict[str, float]:
    """Table 2-style characteristics of a dataset at a snapshot split.

    Returns node/edge counts and diameters of both snapshots, the
    maximum distance decrease Δmax, and the number of disconnected node
    pairs at t1.  Runs exact APSP-grade computations — intended for the
    catalog's laptop-scale instances.
    """
    g1, g2 = temporal.snapshot_pair(*split)
    hist = delta_histogram(g1, g2)
    positive = [d for d in hist if d > 0]
    return {
        "nodes_t1": g1.num_nodes,
        "nodes_t2": g2.num_nodes,
        "edges_t1": g1.num_edges,
        "edges_t2": g2.num_edges,
        "diameter_t1": diameter(g1),
        "diameter_t2": diameter(g2),
        "max_delta": max(positive) if positive else 0.0,
        "disconnected_pairs_t1": count_disconnected_pairs(g1),
    }
