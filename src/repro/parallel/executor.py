"""Process-pool execution layer with a bit-identical serial fallback.

Every number the reproduction emits bottoms out in repeated independent
SSSP runs (ground-truth APSP rows, per-candidate top-k batches, coverage
cells).  :class:`ParallelExecutor` fans such embarrassingly-parallel
item lists out across a ``concurrent.futures.ProcessPoolExecutor`` while
guaranteeing results **equal to serial execution**:

* items are split into contiguous chunks and submitted in order; results
  are reassembled by chunk index, so the output order never depends on
  worker scheduling;
* the task function is applied once per item in both modes — worker
  count and chunk size can only change *where* an item runs, never what
  it computes;
* ``workers=1`` (and any platform without a usable multiprocessing start
  method) runs the exact same per-item loop in-process, with no pool.

Worker-side state (a deserialised graph snapshot, a frozen config) is
installed once per worker through the pool initializer — each worker
unpickles it a single time, not per task.  Task functions are plain
module-level functions that read it back via :func:`worker_state`.

Failure semantics integrate with :mod:`repro.resilience`: a chunk whose
worker crashes (or whose future raises) is recomputed *serially in the
parent* under :func:`~repro.resilience.degrade.run_guarded`, so one bad
worker degrades that chunk — never the whole run — and the degradation
is recorded in :attr:`ParallelExecutor.failed_chunks` plus a
``parallel.degraded`` event.  Retry backoff, when a policy is supplied,
is the resilience layer's seeded jitter: no wall-clock value ever enters
an event payload or a result.
"""

from __future__ import annotations

import math
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, TypeVar

from repro.resilience.degrade import describe_error, run_guarded
from repro.resilience.events import log_event
from repro.resilience.faults import FaultInjector
from repro.resilience.policy import RetryPolicy

T = TypeVar("T")
R = TypeVar("R")

#: Preference order for multiprocessing start methods.  ``fork`` shares
#: the parent's memory image (cheapest by far for large graph state);
#: ``spawn`` re-imports and unpickles, which the initializer protocol
#: supports on platforms without fork (macOS, Windows).
_START_METHODS = ("fork", "spawn")

# ----------------------------------------------------------------------
# Worker-side state registry
# ----------------------------------------------------------------------
_WORKER_STATE: Dict[str, Any] = {}
_IN_WORKER = False


def worker_state() -> Dict[str, Any]:
    """The state dict installed for the current process's tasks.

    In a pool worker this is the executor's ``state`` (unpickled once by
    the initializer); in the parent it is the same dict, installed
    before any serial (fallback or degraded-chunk) execution.
    """
    return _WORKER_STATE


def in_worker() -> bool:
    """Whether the current process is a pool worker (False in the parent)."""
    return _IN_WORKER


def _install_state(state: Dict[str, Any]) -> None:
    _WORKER_STATE.clear()
    _WORKER_STATE.update(state)


def _pool_init(state: Dict[str, Any]) -> None:
    """Pool initializer: runs once per worker process."""
    global _IN_WORKER
    _IN_WORKER = True
    _install_state(state)


def _pool_init_shm(payload: Any) -> None:
    """Pool initializer for arena-backed state: attach, don't unpickle.

    ``payload`` is a :data:`repro.parallel.shm.WorkerPayload` — the tiny
    manifest plus the plain (non-array) remainder of the state; the
    graph arrays themselves are mapped read-only from the parent's
    shared-memory segment.
    """
    global _IN_WORKER
    _IN_WORKER = True
    from repro.parallel.shm import attach_state

    _install_state(attach_state(payload))


def _run_chunk(fn: Callable[[T], R], chunk: Sequence[T]) -> List[R]:
    """Worker entry point: apply ``fn`` to every item of one chunk."""
    return [fn(item) for item in chunk]


def available_start_method() -> Optional[str]:
    """The start method the executor will use (``None`` = serial only)."""
    methods = multiprocessing.get_all_start_methods()
    for method in _START_METHODS:
        if method in methods:
            return method
    return None


# ----------------------------------------------------------------------
# Executor
# ----------------------------------------------------------------------
class ParallelExecutor:
    """Chunked, order-preserving process-pool map with serial semantics.

    Parameters
    ----------
    workers:
        Pool size; ``1`` runs everything in-process (no pool, no pickling
        beyond what the caller already did).
    state:
        Dict installed once per worker (and in the parent before any
        serial execution); task functions read it via
        :func:`worker_state`.  Must be picklable when ``workers > 1``.
    chunk_size:
        Items per submitted chunk.  Defaults to roughly four chunks per
        worker.  Results are independent of this value by construction.
    retry_policy:
        Optional seeded :class:`~repro.resilience.policy.RetryPolicy`
        applied to the *serial recomputation* of a failed chunk.
    fault_injector:
        Optional :class:`~repro.resilience.faults.FaultInjector` checked
        once per chunk dispatch — the chaos hook that simulates a worker
        failure deterministically.
    start_method:
        Multiprocessing start method override (default: the
        ``REPRO_PARALLEL_START_METHOD`` environment variable if set —
        the CI matrix knob — else ``fork`` when available, else
        ``spawn``; serial fallback when neither exists).
    sleep:
        Injectable sleep passed to the retry policy during degraded
        recomputation, so tests never wall-clock-wait.
    shm_run_id:
        Seeded run id (see :func:`repro.parallel.shm.derive_run_id`)
        enabling the shared-memory arena: the state's CSR / delta /
        plan / ndarray values are published into one shm segment per
        pool and workers attach read-only views instead of receiving
        the arrays by value.  ``None`` (default) ships the state the
        classic way.  Results are bit-identical either way.
    """

    def __init__(
        self,
        workers: int = 1,
        *,
        state: Optional[Dict[str, Any]] = None,
        chunk_size: Optional[int] = None,
        retry_policy: Optional[RetryPolicy] = None,
        fault_injector: Optional[FaultInjector] = None,
        start_method: Optional[str] = None,
        sleep: Optional[Callable[[float], None]] = None,
        shm_run_id: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.workers = workers
        self.chunk_size = chunk_size
        self.retry_policy = retry_policy
        self.fault_injector = fault_injector
        self.start_method = start_method or os.environ.get(
            "REPRO_PARALLEL_START_METHOD"
        )
        self.shm_run_id = shm_run_id
        self._state = dict(state) if state else {}
        self._sleep = sleep
        #: ``{"chunk": index, "items": count, "error": "Type: msg"}`` per
        #: chunk that failed in the pool and was recomputed serially.
        self.failed_chunks: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    def _chunks(self, items: List[T]) -> List[List[T]]:
        size = self.chunk_size
        if size is None:
            size = max(1, math.ceil(len(items) / (self.workers * 4)))
        return [items[i : i + size] for i in range(0, len(items), size)]

    def _serial(self, fn: Callable[[T], R], items: List[T]) -> List[R]:
        _install_state(self._state)
        return [fn(item) for item in items]

    def _record_failure(
        self, index: int, size: int, exc: BaseException, unit: str
    ) -> None:
        self.failed_chunks.append(
            {"chunk": index, "items": size, "error": describe_error(exc)}
        )
        log_event(
            "parallel.degraded",
            unit=unit,
            chunk=index,
            items=size,
            error=type(exc).__name__,
        )

    def _recompute(
        self, fn: Callable[[T], R], chunk: List[T], unit: str, index: int
    ) -> List[R]:
        """Serial in-parent recomputation of one failed chunk."""

        def compute() -> List[R]:
            return [fn(item) for item in chunk]

        if self.retry_policy is None:
            return compute()
        value, _ = run_guarded(
            compute,
            unit=f"{unit}[chunk={index}]",
            retry_policy=self.retry_policy,
            on_error="fail",
            sleep=self._sleep,
        )
        assert value is not None
        return value

    # ------------------------------------------------------------------
    def map(
        self, fn: Callable[[T], R], items: Iterable[T], *, unit: str = "parallel"
    ) -> List[R]:
        """Apply ``fn`` to every item; results in input order.

        ``fn`` must be a module-level (picklable) function when
        ``workers > 1``.  Raises whatever ``fn`` raises if even the
        serial recomputation of a failed chunk fails — infrastructure
        faults degrade, real errors stay loud.
        """
        items = list(items)
        self.failed_chunks = []
        if not items or self.workers == 1:
            return self._serial(fn, items)
        method = self.start_method or available_start_method()
        if method is None:  # pragma: no cover - no such CPython platform
            log_event("parallel.serial_fallback", unit=unit, reason="start-method")
            return self._serial(fn, items)

        chunks = self._chunks(items)
        results: List[Optional[List[R]]] = [None] * len(chunks)
        degraded: List[int] = []
        context = multiprocessing.get_context(method)

        arena = None
        initializer: Callable[..., None] = _pool_init
        initargs: tuple = (self._state,)
        if self.shm_run_id is not None:
            from repro.parallel.shm import SharedCsrArena

            arena = SharedCsrArena.maybe_publish(
                self._state, run_id=self.shm_run_id
            )
            if arena is not None:
                initializer = _pool_init_shm
                initargs = (arena.worker_payload(),)
                log_event(
                    "parallel.shm_published",
                    unit=unit,
                    bytes=arena.segment_bytes,
                    arrays=len(arena.manifest.arrays),
                )
        try:
            with ProcessPoolExecutor(
                max_workers=min(self.workers, len(chunks)),
                mp_context=context,
                initializer=initializer,
                initargs=initargs,
            ) as pool:
                pending = {}
                for index, chunk in enumerate(chunks):
                    try:
                        if self.fault_injector is not None:
                            self.fault_injector.check(unit=f"{unit}[chunk={index}]")
                        pending[index] = pool.submit(_run_chunk, fn, chunk)
                    except (KeyboardInterrupt, SystemExit):
                        raise
                    # reprolint: disable=R006 -- routed to resilience.events: _record_failure emits a parallel.degraded log_event
                    except Exception as exc:
                        self._record_failure(index, len(chunk), exc, unit)
                        degraded.append(index)
                for index in sorted(pending):
                    try:
                        results[index] = pending[index].result()
                    except (KeyboardInterrupt, SystemExit):
                        raise
                    # reprolint: disable=R006 -- routed to resilience.events: _record_failure emits a parallel.degraded log_event
                    except (BrokenProcessPool, Exception) as exc:
                        self._record_failure(index, len(chunks[index]), exc, unit)
                        degraded.append(index)
                    else:
                        # Liveness beacon: supervisors subscribe to this to
                        # heartbeat a pool that is making progress (see
                        # repro.runtime.supervisor.HeartbeatMonitor).
                        log_event(
                            "parallel.chunk_done",
                            unit=unit,
                            chunk=index,
                            items=len(chunks[index]),
                        )

            if degraded:
                # The in-parent fallback reads the *same* attached views
                # the workers did: degradation must not silently
                # reintroduce the copy cost the arena removed.
                _install_state(
                    arena.parent_state() if arena is not None
                    else self._state
                )
                for index in sorted(degraded):
                    results[index] = self._recompute(
                        fn, chunks[index], unit, index
                    )
        finally:
            if arena is not None:
                arena.destroy()

        out: List[R] = []
        for chunk_result in results:
            assert chunk_result is not None
            out.extend(chunk_result)
        return out
