"""Parallel SSSP execution layer.

One executor (:class:`~repro.parallel.executor.ParallelExecutor`) fans
independent work items — APSP rows, per-candidate SSSP batches, coverage
cells — across a process pool with **bit-identical results to serial
execution** at any worker count or chunk size.  CSR-backed worker state
travels zero-copy through a :class:`~repro.parallel.shm.SharedCsrArena`
(one shared-memory segment per pool, read-only views per worker) instead
of being pickled per worker.  The drivers live next to the code they
accelerate (:mod:`repro.graph.apsp`, :mod:`repro.graph.csr`,
:mod:`repro.core.algorithm`, :mod:`repro.experiments.runner`); this
package provides the shared machinery.  See ``docs/parallel.md`` for the
worker model, the arena lifecycle, and the determinism guarantees.
"""

from repro.parallel.executor import (
    ParallelExecutor,
    available_start_method,
    in_worker,
    worker_state,
)
from repro.parallel.shm import (
    SharedCsrArena,
    attach_state,
    derive_run_id,
    leaked_segments,
)

__all__ = [
    "ParallelExecutor",
    "SharedCsrArena",
    "attach_state",
    "available_start_method",
    "derive_run_id",
    "in_worker",
    "leaked_segments",
    "worker_state",
]
