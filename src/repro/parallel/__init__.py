"""Parallel SSSP execution layer.

One executor (:class:`~repro.parallel.executor.ParallelExecutor`) fans
independent work items — APSP rows, per-candidate SSSP batches, coverage
cells — across a process pool with **bit-identical results to serial
execution** at any worker count or chunk size.  The drivers live next to
the code they accelerate (:mod:`repro.graph.apsp`,
:mod:`repro.graph.csr`, :mod:`repro.core.algorithm`,
:mod:`repro.experiments.runner`); this package provides the shared
machinery.  See ``docs/parallel.md`` for the worker model and
determinism guarantees.
"""

from repro.parallel.executor import (
    ParallelExecutor,
    available_start_method,
    in_worker,
    worker_state,
)

__all__ = [
    "ParallelExecutor",
    "available_start_method",
    "in_worker",
    "worker_state",
]
