"""Shared-memory CSR arenas: zero-copy graph state for worker pools.

The executor's worker state used to reach each pool worker by value —
inherited page-by-page under ``fork`` (copy-on-write, but a copy per
worker as soon as refcounts touch the pages) and fully re-pickled under
``spawn``.  For CSR-backed state (frozen :class:`~repro.graph.csr.CSRGraph`
views, :class:`~repro.graph.incremental.SnapshotDelta` alignment arrays,
:class:`~repro.graph.prune.PrunePlan` seeds) that copy is pure waste:
the arrays are immutable for the lifetime of the pool.

:class:`SharedCsrArena` publishes every such array into **one**
``multiprocessing.shared_memory`` segment, created once per pool:

* :meth:`SharedCsrArena.maybe_publish` decomposes a worker-state dict —
  ndarray / ``CSRGraph`` / ``SnapshotDelta`` / ``PrunePlan`` values
  become 64-byte-aligned array slots in the segment; everything else
  stays ordinary pickled state.  Returns ``None`` when nothing in the
  state is shareable (e.g. weighted dict-graph state).
* workers receive only the tiny :class:`ArenaManifest` (segment name,
  array specs, rebuild metadata) through the pool initializer and
  attach **read-only** numpy views via :func:`attach_state` — no graph
  bytes cross the process boundary.
* the parent can materialise the same views with
  :meth:`SharedCsrArena.parent_state`, so degraded-chunk recomputation
  reuses the segment instead of re-touching the original objects.

Lifecycle is create → attach* → close → unlink, crash-safe at both
ends.  Pool workers — ``fork`` and ``spawn`` alike — share the parent's
``resource_tracker`` process, and POSIX shm registrations are a *set*
per tracker, so a worker's attach is a registration no-op:

* **worker kill -9** — nothing happens to the segment (the shared
  tracker only acts when the whole process tree is gone); the parent's
  ``finally`` block unlinks exactly once and the run completes through
  the executor's degraded-chunk path.
* **parent kill -9** — the resource tracker outlives the tree and
  unlinks every segment the parent registered, so hard parent death
  leaks nothing (``tests/test_parallel_shm.py`` pins both).

Segment names are derived from a seeded run id (:func:`derive_run_id`)
— never the wall clock or the parent pid — so reruns are deterministic
and the R014 lint rule can audit the property statically; name
collisions with a stale segment resolve by deterministic suffix
probing, never by unlinking a possibly-live segment.
"""

from __future__ import annotations

import atexit
import hashlib
import re
from dataclasses import dataclass
from multiprocessing import shared_memory
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

#: Prefix of every arena segment — the leak check in CI asserts nothing
#: matching ``/dev/shm/repro_*`` survives a suite.
SEGMENT_PREFIX = "repro_"

#: Deterministic collision probes before giving up on a run id.
_MAX_PROBES = 64

#: Array slot alignment inside the segment (cache-line friendly).
_ALIGN = 64

_RUN_ID_RE = re.compile(r"^[A-Za-z0-9_.-]{1,64}$")

#: ``SnapshotDelta`` array fields published verbatim (CSR views are
#: decomposed separately; node lists ride in the manifest metadata).
_DELTA_FIELDS = (
    "mapping",
    "new_nodes",
    "edge_tails",
    "edge_heads",
    "seed_heads",
    "seed_tails",
    "seed_starts",
)


def derive_run_id(*parts: object) -> str:
    """A deterministic 12-hex run id from seed-derived parts.

    Hash of the ``repr`` of every part — callers pass the run's seed and
    value-determining parameters, never the clock or a pid, so the same
    logical run always names the same segment (collision safety comes
    from :func:`_create_segment`'s suffix probing, not from entropy).
    """
    digest = hashlib.sha256(
        "\x1f".join(repr(p) for p in parts).encode("utf-8")
    )
    return digest.hexdigest()[:12]


def segment_name(run_id: str) -> str:
    """The shm segment name for a run id (validated, prefixed)."""
    if not _RUN_ID_RE.match(run_id):
        raise ValueError(
            f"run id {run_id!r} must match {_RUN_ID_RE.pattern}"
        )
    return f"{SEGMENT_PREFIX}{run_id}"


def leaked_segments() -> List[str]:
    """Names of every live ``repro_*`` segment on this host (sorted)."""
    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():  # pragma: no cover - non-POSIX hosts
        return []
    return sorted(p.name for p in shm_dir.glob(f"{SEGMENT_PREFIX}*"))


@dataclass(frozen=True)
class ArraySpec:
    """One published array: where it lives in the segment and its shape."""

    key: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int

    @property
    def nbytes(self) -> int:
        """Payload size of this slot in bytes."""
        size = int(np.dtype(self.dtype).itemsize)
        for dim in self.shape:
            size *= int(dim)
        return size


@dataclass(frozen=True)
class ArenaManifest:
    """Everything a worker needs to rebuild the state from the segment.

    ``objects`` lists ``(state_key, kind, metadata)`` rebuild specs in
    state-dict order; ``kind`` selects the recomposition (``"array"``,
    ``"csr"``, ``"delta"``, ``"plan"``) and ``metadata`` carries the
    non-array remainder (node lists for CSR universes).
    """

    segment: str
    nbytes: int
    arrays: Tuple[ArraySpec, ...]
    objects: Tuple[Tuple[str, str, Any], ...]


#: What the pool initializer ships: the manifest plus the plain
#: (non-shareable) part of the state, pickled normally.
WorkerPayload = Tuple[ArenaManifest, Dict[str, Any]]


def _decompose(
    state: Mapping[str, Any],
) -> Tuple[
    Dict[str, np.ndarray], List[Tuple[str, str, Any]], Dict[str, Any]
]:
    """Split a state dict into shareable arrays, rebuild specs, and rest."""
    from repro.graph.csr import CSRGraph
    from repro.graph.incremental import SnapshotDelta
    from repro.graph.prune import PrunePlan

    arrays: Dict[str, np.ndarray] = {}
    objects: List[Tuple[str, str, Any]] = []
    plain: Dict[str, Any] = {}

    def put_csr(prefix: str, csr: CSRGraph) -> None:
        arrays[f"{prefix}.indptr"] = csr.indptr
        arrays[f"{prefix}.indices"] = csr.indices

    for key, value in state.items():
        if isinstance(value, np.ndarray):
            arrays[key] = value
            objects.append((key, "array", None))
        elif isinstance(value, CSRGraph):
            put_csr(key, value)
            objects.append((key, "csr", list(value.nodes)))
        elif isinstance(value, SnapshotDelta):
            put_csr(f"{key}.csr1", value.csr1)
            put_csr(f"{key}.csr2", value.csr2)
            for field in _DELTA_FIELDS:
                arrays[f"{key}.{field}"] = getattr(value, field)
            objects.append(
                (key, "delta", (list(value.csr1.nodes), list(value.csr2.nodes)))
            )
        elif isinstance(value, PrunePlan):
            arrays[f"{key}.seed_idx1"] = value.seed_idx1
            objects.append((key, "plan", None))
        else:
            plain[key] = value
    return arrays, objects, plain


def _recompose(
    views: Dict[str, np.ndarray],
    objects: Tuple[Tuple[str, str, Any], ...],
    plain: Dict[str, Any],
) -> Dict[str, Any]:
    """Rebuild the original state dict over arena-backed views."""
    from repro.graph.csr import CSRGraph
    from repro.graph.incremental import SnapshotDelta
    from repro.graph.prune import PrunePlan

    def get_csr(prefix: str, nodes: List[Any]) -> CSRGraph:
        return CSRGraph(
            nodes, views[f"{prefix}.indptr"], views[f"{prefix}.indices"]
        )

    state: Dict[str, Any] = {}
    for key, kind, meta in objects:
        if kind == "array":
            state[key] = views[key]
        elif kind == "csr":
            state[key] = get_csr(key, list(meta))
        elif kind == "delta":
            nodes1, nodes2 = meta
            state[key] = SnapshotDelta(
                csr1=get_csr(f"{key}.csr1", list(nodes1)),
                csr2=get_csr(f"{key}.csr2", list(nodes2)),
                **{
                    field: views[f"{key}.{field}"]
                    for field in _DELTA_FIELDS
                },
            )
        elif kind == "plan":
            state[key] = PrunePlan(seed_idx1=views[f"{key}.seed_idx1"])
        else:  # pragma: no cover - manifest kinds are closed above
            raise ValueError(f"unknown arena object kind {kind!r}")
    state.update(plain)
    return state


def _views_over(
    shm: shared_memory.SharedMemory,
    manifest: ArenaManifest,
    writeable: bool,
) -> Dict[str, np.ndarray]:
    views: Dict[str, np.ndarray] = {}
    for spec in manifest.arrays:
        view: np.ndarray = np.ndarray(
            spec.shape,
            dtype=np.dtype(spec.dtype),
            buffer=shm.buf,
            offset=spec.offset,
        )
        if not writeable:
            view.flags.writeable = False
        views[spec.key] = view
    return views


def _create_segment(run_id: str, size: int) -> shared_memory.SharedMemory:
    """Create the run's segment, probing deterministic suffixes on clash.

    A stale same-name segment (a previous hard-killed run whose tracker
    also died) must never be unlinked here — it might equally be a
    *live* concurrent run — so collisions step to ``<name>-1``,
    ``<name>-2``, … instead.
    """
    base = segment_name(run_id)
    for probe in range(_MAX_PROBES):
        name = base if probe == 0 else f"{base}-{probe}"
        try:
            return shared_memory.SharedMemory(
                name=name, create=True, size=size
            )
        except FileExistsError:
            continue
    raise RuntimeError(
        f"could not allocate a shared-memory segment for run id "
        f"{run_id!r} after {_MAX_PROBES} probes"
    )


class SharedCsrArena:
    """One pool's shared-memory segment plus its rebuild manifest.

    Create with :meth:`maybe_publish` (or :meth:`publish`) in the
    parent; ship :meth:`worker_payload` through the pool initializer;
    call :meth:`destroy` (idempotent) in a ``finally`` once the pool —
    including any degraded in-parent recomputation — is done with it.
    Usable as a context manager for the same lifecycle.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        manifest: ArenaManifest,
        plain: Dict[str, Any],
    ) -> None:
        self._shm = shm
        self.manifest = manifest
        self._plain = plain
        self._closed = False
        self._unlinked = False

    # ------------------------------------------------------------------
    @classmethod
    def maybe_publish(
        cls, state: Mapping[str, Any], *, run_id: str
    ) -> Optional["SharedCsrArena"]:
        """Publish the state's shareable arrays, or ``None`` if it has none."""
        arrays, objects, plain = _decompose(state)
        if not arrays:
            return None
        specs: List[ArraySpec] = []
        offset = 0
        contiguous: List[np.ndarray] = []
        for key, array in arrays.items():
            array = np.ascontiguousarray(array)
            contiguous.append(array)
            offset = -(-offset // _ALIGN) * _ALIGN
            specs.append(
                ArraySpec(
                    key=key,
                    dtype=array.dtype.str,
                    shape=tuple(array.shape),
                    offset=offset,
                )
            )
            offset += array.nbytes
        total = max(1, offset)
        shm = _create_segment(run_id, total)
        for spec, array in zip(specs, contiguous):
            dst: np.ndarray = np.ndarray(
                spec.shape,
                dtype=np.dtype(spec.dtype),
                buffer=shm.buf,
                offset=spec.offset,
            )
            np.copyto(dst, array)
        manifest = ArenaManifest(
            segment=shm.name,
            nbytes=total,
            arrays=tuple(specs),
            objects=tuple(objects),
        )
        return cls(shm, manifest, plain)

    @classmethod
    def publish(
        cls, state: Mapping[str, Any], *, run_id: str
    ) -> "SharedCsrArena":
        """Like :meth:`maybe_publish` but shareable arrays are required."""
        arena = cls.maybe_publish(state, run_id=run_id)
        if arena is None:
            raise ValueError(
                "state contains no shareable arrays (ndarray / CSRGraph "
                "/ SnapshotDelta / PrunePlan values)"
            )
        return arena

    # ------------------------------------------------------------------
    @property
    def segment(self) -> str:
        """The shm segment name (``repro_<runid>`` plus probe suffix)."""
        return self._shm.name

    @property
    def segment_bytes(self) -> int:
        """Requested segment payload size in bytes."""
        return self.manifest.nbytes

    def worker_payload(self) -> WorkerPayload:
        """What the pool initializer ships: manifest + plain state."""
        return self.manifest, dict(self._plain)

    def parent_state(self) -> Dict[str, Any]:
        """The state dict rebuilt over this segment's read-only views.

        Degraded-chunk recomputation installs this instead of the
        original state, so the in-parent fallback reads the same bytes
        the workers did — no re-pickle, no second copy.
        """
        if self._closed:
            raise ValueError("arena is closed")
        views = _views_over(self._shm, self.manifest, writeable=False)
        return _recompose(views, self.manifest.objects, dict(self._plain))

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mapping (idempotent).

        When :meth:`parent_state` views are still alive the mapping
        cannot be released yet (``BufferError``); it is freed when the
        last view is collected — the segment name is already unlinked
        by then, so nothing leaks either way.
        """
        if not self._closed:
            self._closed = True
            try:
                self._shm.close()
            except BufferError:
                pass

    def unlink(self) -> None:
        """Remove the segment from the system (idempotent, creator-only)."""
        if not self._unlinked:
            self._unlinked = True
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already reaped
                pass

    def destroy(self) -> None:
        """Unlink then close — the parent's ``finally`` teardown."""
        self.unlink()
        self.close()

    def __enter__(self) -> "SharedCsrArena":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.destroy()


def _close_quietly(shm: shared_memory.SharedMemory) -> None:
    try:
        shm.close()
    except BufferError:
        # Worker state still holds views at interpreter exit; the OS
        # reclaims the mapping with the process.
        pass


def attach_state(payload: WorkerPayload) -> Dict[str, Any]:
    """Worker side: attach the segment and rebuild the state over views.

    Called by the pool initializer.  The mapping is closed at worker
    exit (``atexit``).  The attach re-registers the name with the
    resource tracker the worker shares with the creating parent — a
    set-semantics no-op, so the parent's single registration (and its
    crash-safety guarantee) is untouched and only the parent unlinks.
    Meant for pool workers; a process with its *own* resource tracker
    attaching here would unlink the segment at exit.
    """
    manifest, plain = payload
    shm = shared_memory.SharedMemory(name=manifest.segment)
    atexit.register(_close_quietly, shm)
    views = _views_over(shm, manifest, writeable=False)
    return _recompose(views, manifest.objects, plain)
