"""Drive the rules over files and fold in suppressions + baseline."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.lint.baseline import Baseline
from repro.lint.context import FileContext
from repro.lint.registry import Rule, all_rules, select_rules
from repro.lint.suppress import (
    Suppression,
    apply_suppressions,
    parse_suppressions,
    unjustified,
)
from repro.lint.violation import Violation


@dataclass
class LintResult:
    """Everything one lint run produced."""

    #: Violations not waived by a suppression (pre-baseline).
    violations: List[Violation] = field(default_factory=list)
    #: Violations not covered by the baseline either — the fatal set.
    new_violations: List[Violation] = field(default_factory=list)
    #: Baseline entries that matched nothing (fixed debt; strict error).
    stale_baseline: List[tuple] = field(default_factory=list)
    #: Suppressions missing a justification (strict error).
    unjustified_suppressions: List[Tuple[str, Suppression]] = field(
        default_factory=list
    )
    #: Files that failed to parse, as ``(path, error)`` — always fatal.
    parse_errors: List[Tuple[str, str]] = field(default_factory=list)
    #: Number of files linted.
    files: int = 0

    def ok(self, strict: bool = False) -> bool:
        """Whether the run passes (strict adds stale/unjustified checks)."""
        if self.new_violations or self.parse_errors:
            return False
        if strict and (self.stale_baseline or self.unjustified_suppressions):
            return False
        return True


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Violation]:
    """Lint one source string; suppressions applied, no baseline.

    ``path`` should be the lint-root-relative posix path — several rules
    scope themselves by package location (e.g. R002's allowlist, R004's
    engine exemption).
    """
    ctx = FileContext.parse(path, source)
    found: List[Violation] = []
    for r in rules if rules is not None else all_rules():
        found.extend(r.check(ctx))
    found.sort()
    return apply_suppressions(found, parse_suppressions(ctx.lines))


def _iter_python_files(root: Path) -> List[Path]:
    if root.is_file():
        return [root]
    return sorted(p for p in root.rglob("*.py") if p.is_file())


def _relative_path(file: Path, root: Path) -> str:
    base = root if root.is_dir() else root.parent
    try:
        return file.relative_to(base).as_posix()
    except ValueError:
        return file.as_posix()


def lint_paths(
    paths: Sequence[Path],
    *,
    baseline: Optional[Baseline] = None,
    select: Optional[Sequence[str]] = None,
) -> LintResult:
    """Lint every ``*.py`` under ``paths`` and aggregate the outcome.

    Each path is a lint root: rule-relevant module paths (``repro/...``)
    are computed relative to it, so pass ``src`` (or a file inside it).
    """
    rules = select_rules(select) if select else all_rules()
    result = LintResult()
    all_violations: List[Violation] = []
    for root in paths:
        root = Path(root)
        for file in _iter_python_files(root):
            relpath = _relative_path(file, root)
            source = file.read_text(encoding="utf-8")
            result.files += 1
            try:
                ctx = FileContext.parse(relpath, source)
            except SyntaxError as exc:
                result.parse_errors.append((relpath, str(exc)))
                continue
            found: List[Violation] = []
            for r in rules:
                found.extend(r.check(ctx))
            found.sort()
            suppressions = parse_suppressions(ctx.lines)
            all_violations.extend(apply_suppressions(found, suppressions))
            result.unjustified_suppressions.extend(
                (relpath, sup) for sup in unjustified(suppressions)
            )
    all_violations.sort()
    result.violations = all_violations
    baseline = baseline if baseline is not None else Baseline()
    result.new_violations, result.stale_baseline = baseline.partition(
        all_violations
    )
    return result
