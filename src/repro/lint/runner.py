"""Drive the two-phase analysis over files and fold in suppressions.

Phase 1 runs every file-scope rule per file (cacheable: the result is
a pure function of the file's bytes, its path, and the rule set).
Phase 2 builds the whole-program :class:`ProjectContext` + call graph
once and runs the project-scope rules over it.  Findings from both
phases merge per file before suppressions apply, so one inline waiver
works identically for either kind of rule — and a waiver whose rule no
longer fires is itself reported as *stale* (a strict failure), keeping
the suppression inventory honest.

Everything is processed in sorted-path order regardless of argument
order, so reports are byte-identical across shuffled inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.baseline import Baseline
from repro.lint.cache import AnalysisCache, cache_key
from repro.lint.callgraph import CallGraph
from repro.lint.context import FileContext
from repro.lint.project import ProjectContext
from repro.lint.registry import Rule, all_rules, select_rules
from repro.lint.suppress import (
    Suppression,
    apply_suppressions,
    parse_suppressions,
    unjustified,
)
from repro.lint.violation import Violation


@dataclass
class LintResult:
    """Everything one lint run produced."""

    #: Violations not waived by a suppression (pre-baseline).
    violations: List[Violation] = field(default_factory=list)
    #: Violations not covered by the baseline either — the fatal set.
    new_violations: List[Violation] = field(default_factory=list)
    #: Baseline entries that matched nothing (fixed debt; strict error).
    stale_baseline: List[tuple] = field(default_factory=list)
    #: Suppressions missing a justification (strict error).
    unjustified_suppressions: List[Tuple[str, Suppression]] = field(
        default_factory=list
    )
    #: Suppressions whose rule no longer fires on their line, as
    #: ``(path, suppression, code)`` — fixed code wearing a stale
    #: waiver (strict error).
    stale_suppressions: List[Tuple[str, Suppression, str]] = field(
        default_factory=list
    )
    #: Files that failed to parse, as ``(path, error)`` — always fatal.
    parse_errors: List[Tuple[str, str]] = field(default_factory=list)
    #: Number of files linted.
    files: int = 0

    def ok(self, strict: bool = False) -> bool:
        """Whether the run passes (strict adds stale/unjustified checks)."""
        if self.new_violations or self.parse_errors:
            return False
        if strict and (
            self.stale_baseline
            or self.unjustified_suppressions
            or self.stale_suppressions
        ):
            return False
        return True


def _split_rules(
    rules: Sequence[Rule],
) -> Tuple[List[Rule], List[Rule]]:
    file_rules = [r for r in rules if r.scope == "file"]
    project_rules = [r for r in rules if r.scope == "project"]
    return file_rules, project_rules


def _check_project(
    contexts: Sequence[FileContext], project_rules: Sequence[Rule]
) -> List[Violation]:
    if not project_rules or not contexts:
        return []
    project = ProjectContext(contexts)
    graph = CallGraph(project)
    found: List[Violation] = []
    for rule in project_rules:
        found.extend(rule.check(project, graph))
    return found


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Violation]:
    """Lint one source string; suppressions applied, no baseline.

    ``path`` should be the lint-root-relative posix path — several rules
    scope themselves by package location (e.g. R002's allowlist, R004's
    engine exemption).  Project-scope rules see a one-file project.
    """
    ctx = FileContext.parse(path, source)
    selected = list(rules) if rules is not None else all_rules()
    file_rules, project_rules = _split_rules(selected)
    found: List[Violation] = []
    for r in file_rules:
        found.extend(r.check(ctx))
    found.extend(_check_project([ctx], project_rules))
    found.sort()
    return apply_suppressions(found, parse_suppressions(ctx.lines))


def _iter_python_files(root: Path) -> List[Path]:
    if root.is_file():
        return [root]
    return sorted(p for p in root.rglob("*.py") if p.is_file())


def _relative_path(file: Path, root: Path) -> str:
    base = root if root.is_dir() else root.parent
    try:
        return file.relative_to(base).as_posix()
    except ValueError:
        return file.as_posix()


def lint_paths(
    paths: Sequence[Path],
    *,
    baseline: Optional[Baseline] = None,
    select: Optional[Sequence[str]] = None,
    cache: Optional[AnalysisCache] = None,
    changed: Optional[Set[str]] = None,
) -> LintResult:
    """Lint every ``*.py`` under ``paths`` and aggregate the outcome.

    Each path is a lint root: rule-relevant module paths (``repro/...``)
    are computed relative to it, so pass ``src`` (or a file inside it).

    ``cache`` reuses phase-1 results for byte-identical files;
    ``changed`` restricts *reporting* to the given relative paths while
    still analyzing the whole program (project rules need every file),
    and disables stale-baseline accounting (undecidable on a slice).
    """
    rules = select_rules(select) if select else all_rules()
    file_rules, project_rules = _split_rules(rules)
    file_rule_codes = sorted(r.code for r in file_rules)
    selected_codes = {r.code for r in rules}
    result = LintResult()

    contexts: Dict[str, FileContext] = {}
    raw_by_path: Dict[str, List[Violation]] = {}
    for root in paths:
        root = Path(root)
        for file in _iter_python_files(root):
            relpath = _relative_path(file, root)
            if relpath in contexts:
                continue
            source = file.read_text(encoding="utf-8")
            result.files += 1
            try:
                ctx = FileContext.parse(relpath, source)
            except SyntaxError as exc:
                result.parse_errors.append((relpath, str(exc)))
                continue
            contexts[relpath] = ctx
            key = cache_key(relpath, source, file_rule_codes)
            found = cache.get(key) if cache is not None else None
            if found is None:
                found = []
                for r in file_rules:
                    found.extend(r.check(ctx))
                found.sort()
                if cache is not None:
                    cache.put(key, found)
            raw_by_path[relpath] = list(found)

    ordered_contexts = [contexts[p] for p in sorted(contexts)]
    for violation in _check_project(ordered_contexts, project_rules):
        raw_by_path.setdefault(violation.path, []).append(violation)

    all_violations: List[Violation] = []
    for relpath in sorted(raw_by_path):
        ctx = contexts.get(relpath)
        if ctx is None:
            continue
        raw = sorted(raw_by_path[relpath])
        suppressions = parse_suppressions(ctx.lines)
        all_violations.extend(apply_suppressions(raw, suppressions))
        result.unjustified_suppressions.extend(
            (relpath, sup) for sup in unjustified(suppressions)
        )
        fired = {(v.code, v.line) for v in raw}
        for sup in suppressions:
            for code in sup.codes:
                if code not in selected_codes:
                    continue
                if (code, sup.target_line) not in fired:
                    result.stale_suppressions.append((relpath, sup, code))

    result.parse_errors.sort()
    all_violations.sort()
    if changed is not None:
        all_violations = [v for v in all_violations if v.path in changed]
        result.unjustified_suppressions = [
            item for item in result.unjustified_suppressions
            if item[0] in changed
        ]
        result.stale_suppressions = [
            item for item in result.stale_suppressions if item[0] in changed
        ]
    result.violations = all_violations
    baseline = baseline if baseline is not None else Baseline()
    result.new_violations, stale_baseline = baseline.partition(all_violations)
    # A report slice cannot tell "fixed debt" from "file not reported".
    result.stale_baseline = [] if changed is not None else stale_baseline
    return result
