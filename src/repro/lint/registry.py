"""The rule registry: code -> (checker, metadata).

Rules self-register at import time through the :func:`rule` decorator;
:func:`all_rules` is the runner's single source of truth and the
``--list-rules`` output.  Each rule documents the *project invariant* it
protects, so the catalog doubles as enforcement documentation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Sequence

from repro.lint.context import FileContext
from repro.lint.violation import Violation

#: File-scope checker: one parsed file in, violations out.
Checker = Callable[[FileContext], Iterator[Violation]]
#: Project-scope checker: receives ``(ProjectContext, CallGraph)`` —
#: typed loosely here to keep the registry import-light.
ProjectChecker = Callable[..., Iterator[Violation]]


@dataclass(frozen=True)
class Rule:
    """One registered invariant check."""

    code: str
    name: str
    summary: str
    #: The determinism/budget contract this rule mechanically enforces.
    invariant: str
    check: Checker
    #: ``"file"`` rules see one file; ``"project"`` rules see the whole
    #: program (symbol table + call graph) and run in phase 2.
    scope: str = "file"


_RULES: Dict[str, Rule] = {}


def rule(code: str, name: str, summary: str, invariant: str) -> Callable[[Checker], Checker]:
    """Register a file-scope ``check`` under ``code`` (e.g. ``R001``)."""

    def decorator(check: Checker) -> Checker:
        _register(code, name, summary, invariant, check, scope="file")
        return check

    return decorator


def project_rule(
    code: str, name: str, summary: str, invariant: str
) -> Callable[[ProjectChecker], ProjectChecker]:
    """Register a whole-program ``check(project, graph)`` under ``code``."""

    def decorator(check: ProjectChecker) -> ProjectChecker:
        _register(code, name, summary, invariant, check, scope="project")
        return check

    return decorator


def _register(
    code: str, name: str, summary: str, invariant: str, check: Checker,
    scope: str,
) -> None:
    if code in _RULES:
        raise ValueError(f"duplicate rule code {code!r}")
    _RULES[code] = Rule(
        code=code, name=name, summary=summary, invariant=invariant,
        check=check, scope=scope,
    )


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by code."""
    _load()
    return [_RULES[code] for code in sorted(_RULES)]


def get_rule(code: str) -> Rule:
    """The rule registered under ``code``; raises ``KeyError`` if unknown."""
    _load()
    if code not in _RULES:
        known = ", ".join(sorted(_RULES))
        raise KeyError(f"unknown rule {code!r}; known rules: {known}")
    return _RULES[code]


def select_rules(codes: Sequence[str]) -> List[Rule]:
    """Resolve an explicit code list (validating every entry)."""
    return [get_rule(code) for code in codes]


def _load() -> None:
    """Import the rule modules (idempotent; registers on first import)."""
    from repro.lint import rules  # noqa: F401  (import side effect)
