"""The ``repro lint`` / ``python -m repro.lint`` command.

Exit codes: 0 clean, 1 violations (or strict-mode findings), 2 usage
errors — matching the main CLI's convention.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.baseline import Baseline
from repro.lint.registry import all_rules
from repro.lint.report import render_json, render_text
from repro.lint.runner import lint_paths

#: Default baseline location, relative to the repository root.
DEFAULT_BASELINE = ".reprolint-baseline.json"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the lint options (shared with the ``repro`` subcommand)."""
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="lint roots (default: ./src if it exists, else .)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="also fail on stale baseline entries and suppressions "
             "without a justification",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        dest="output_format", help="report format",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help=f"baseline file (default: {DEFAULT_BASELINE} if present)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="record the current violations as the new baseline and exit 0",
    )
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )


def _default_paths() -> List[Path]:
    src = Path("src")
    return [src if src.is_dir() else Path(".")]


def _print_rules() -> None:
    for r in all_rules():
        print(f"{r.code}  {r.name}: {r.summary}")
        print(f"      invariant: {r.invariant}")


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    try:
        return _run_lint(args)
    except BrokenPipeError:
        # The reader went away (e.g. `repro lint ... | head`); swap in
        # devnull so the interpreter's exit-time flush doesn't raise too.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 1


def _run_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        _print_rules()
        return 0
    select = None
    if args.select:
        select = [code.strip() for code in args.select.split(",") if code.strip()]
    baseline_path = args.baseline
    if baseline_path is None:
        default = Path(DEFAULT_BASELINE)
        baseline_path = default if default.exists() or args.write_baseline else None
    paths = list(args.paths) or _default_paths()
    for path in paths:
        if not path.exists():
            print(f"error: no such path {path}", file=sys.stderr)
            return 2
    try:
        baseline = (
            Baseline.load(baseline_path) if baseline_path is not None
            else Baseline()
        )
    except (ValueError, OSError) as exc:
        print(f"error: cannot read baseline: {exc}", file=sys.stderr)
        return 2
    try:
        result = lint_paths(paths, baseline=baseline, select=select)
    except KeyError as exc:
        # select_rules' message lists the known codes.
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    if args.write_baseline:
        target = baseline_path or Path(DEFAULT_BASELINE)
        Baseline.from_violations(result.violations).save(target)
        print(f"wrote {len(result.violations)} entr(y/ies) to {target}")
        return 0

    render = render_json if args.output_format == "json" else render_text
    print(render(result, strict=args.strict))
    return 0 if result.ok(strict=args.strict) else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based invariant linter for the determinism and "
                    "budget contracts (see docs/static-analysis.md).",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
