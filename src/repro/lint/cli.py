"""The ``repro lint`` / ``python -m repro.lint`` command.

Exit codes: 0 clean, 1 violations (or strict-mode findings), 2 usage
errors — matching the main CLI's convention.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Set

from repro.lint.baseline import Baseline
from repro.lint.cache import AnalysisCache
from repro.lint.registry import all_rules, get_rule, select_rules
from repro.lint.report import render_json, render_text
from repro.lint.runner import lint_paths
from repro.lint.sarif import render_sarif

#: Default baseline location, relative to the repository root.
DEFAULT_BASELINE = ".reprolint-baseline.json"

#: Default per-file analysis cache directory (opt-in via --cache-dir).
DEFAULT_CACHE_DIR = ".reprolint-cache"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the lint options (shared with the ``repro`` subcommand)."""
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="lint roots (default: ./src if it exists, else .)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="also fail on stale baseline entries, stale suppressions, "
             "and suppressions without a justification",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        dest="output_format", help="report format",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help=f"baseline file (default: {DEFAULT_BASELINE} if present)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="record the current violations as the new baseline and exit 0",
    )
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--explain", default=None, metavar="RXXX",
        help="print one rule's full documentation and exit",
    )
    parser.add_argument(
        "--sarif", type=Path, default=None, metavar="PATH",
        help="also write the findings as a SARIF 2.1.0 document to PATH",
    )
    parser.add_argument(
        "--changed", action="store_true",
        help="report only findings in files changed since --diff-base "
             "(the whole program is still analyzed)",
    )
    parser.add_argument(
        "--diff-base", default="HEAD", metavar="REF",
        help="git ref --changed diffs against (default: HEAD)",
    )
    parser.add_argument(
        "--cache-dir", type=Path, default=None, metavar="DIR",
        nargs="?", const=Path(DEFAULT_CACHE_DIR),
        help=f"reuse per-file analysis results cached under DIR "
             f"(default when given bare: {DEFAULT_CACHE_DIR})",
    )


def _default_paths() -> List[Path]:
    src = Path("src")
    return [src if src.is_dir() else Path(".")]


def _print_rules() -> None:
    for r in all_rules():
        print(f"{r.code}  {r.name}: {r.summary}")
        print(f"      invariant: {r.invariant}")


def _print_explanation(code: str) -> int:
    try:
        r = get_rule(code)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    print(f"{r.code} — {r.name} [{r.scope}-scope]")
    print(f"  summary:   {r.summary}")
    print(f"  invariant: {r.invariant}")
    print(f"  suppress:  # reprolint: disable={r.code} -- <justification>")
    return 0


def _git_lines(args: Sequence[str]) -> List[str]:
    completed = subprocess.run(
        ["git", *args], capture_output=True, text=True, check=True
    )
    return [line for line in completed.stdout.splitlines() if line]


def _changed_relpaths(
    roots: Sequence[Path], diff_base: str
) -> Set[str]:
    """Lint-root-relative paths of files changed vs ``diff_base``.

    Tracked changes come from ``git diff --name-only``; untracked new
    files from ``git ls-files --others``.  Paths outside every lint
    root are dropped — they cannot appear in the report anyway.
    """
    repo_paths = set(_git_lines(["diff", "--name-only", diff_base, "--"]))
    repo_paths.update(
        _git_lines(["ls-files", "--others", "--exclude-standard"])
    )
    changed: Set[str] = set()
    for repo_path in repo_paths:
        if not repo_path.endswith(".py"):
            continue
        resolved = Path(repo_path).resolve()
        for root in roots:
            base = root if root.is_dir() else root.parent
            try:
                changed.add(resolved.relative_to(base.resolve()).as_posix())
            except ValueError:
                continue
    return changed


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    try:
        return _run_lint(args)
    except BrokenPipeError:
        # The reader went away (e.g. `repro lint ... | head`); swap in
        # devnull so the interpreter's exit-time flush doesn't raise too.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 1


def _run_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        _print_rules()
        return 0
    if args.explain:
        return _print_explanation(args.explain)
    select = None
    if args.select:
        select = [code.strip() for code in args.select.split(",") if code.strip()]
    baseline_path = args.baseline
    if baseline_path is None:
        default = Path(DEFAULT_BASELINE)
        baseline_path = default if default.exists() or args.write_baseline else None
    paths = list(args.paths) or _default_paths()
    for path in paths:
        if not path.exists():
            print(f"error: no such path {path}", file=sys.stderr)
            return 2
    try:
        baseline = (
            Baseline.load(baseline_path) if baseline_path is not None
            else Baseline()
        )
    except (ValueError, OSError) as exc:
        print(f"error: cannot read baseline: {exc}", file=sys.stderr)
        return 2
    changed: Optional[Set[str]] = None
    if args.changed:
        try:
            changed = _changed_relpaths(paths, args.diff_base)
        except (subprocess.CalledProcessError, OSError) as exc:
            detail = getattr(exc, "stderr", "") or str(exc)
            print(
                f"error: --changed needs git: {detail.strip()}",
                file=sys.stderr,
            )
            return 2
    cache = (
        AnalysisCache(args.cache_dir) if args.cache_dir is not None else None
    )
    try:
        result = lint_paths(
            paths, baseline=baseline, select=select, cache=cache,
            changed=changed,
        )
    except KeyError as exc:
        # select_rules' message lists the known codes.
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    if args.write_baseline:
        target = baseline_path or Path(DEFAULT_BASELINE)
        Baseline.from_violations(result.violations).save(target)
        print(f"wrote {len(result.violations)} entr(y/ies) to {target}")
        return 0

    if args.sarif is not None:
        rules = select_rules(select) if select else all_rules()
        args.sarif.parent.mkdir(parents=True, exist_ok=True)
        args.sarif.write_text(
            render_sarif(result.new_violations, rules), encoding="utf-8"
        )

    render = render_json if args.output_format == "json" else render_text
    print(render(result, strict=args.strict))
    return 0 if result.ok(strict=args.strict) else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based invariant linter for the determinism and "
                    "budget contracts (see docs/static-analysis.md).",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
