"""Render a :class:`~repro.lint.runner.LintResult` as text or JSON."""

from __future__ import annotations

import json

from repro.lint.runner import LintResult


def render_text(result: LintResult, strict: bool = False) -> str:
    """The human report: one ``path:line:col CODE message`` per finding."""
    lines = []
    for path, error in result.parse_errors:
        lines.append(f"{path}: parse error: {error}")
    baselined = len(result.violations) - len(result.new_violations)
    for v in result.new_violations:
        lines.append(f"{v.path}:{v.line}:{v.col} {v.code} {v.message}")
    if strict:
        for path, sup in result.unjustified_suppressions:
            lines.append(
                f"{path}:{sup.comment_line}:0 R000 suppression of "
                f"{','.join(sup.codes)} has no justification; append "
                f"'-- <why>'"
            )
        for code, path, line_text in result.stale_baseline:
            lines.append(
                f"{path}: stale baseline entry {code} ({line_text!r}); "
                f"regenerate with --write-baseline"
            )
        for path, sup, code in result.stale_suppressions:
            lines.append(
                f"{path}:{sup.comment_line}:0 R000 stale suppression: "
                f"{code} no longer fires on line {sup.target_line}; "
                f"delete the waiver"
            )
    summary = (
        f"{result.files} file(s): {len(result.new_violations)} new "
        f"violation(s), {baselined} baselined"
    )
    if strict:
        summary += (
            f", {len(result.stale_baseline)} stale baseline entr(y/ies), "
            f"{len(result.unjustified_suppressions)} unjustified "
            f"suppression(s), {len(result.stale_suppressions)} stale "
            f"suppression(s)"
        )
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult, strict: bool = False) -> str:
    """Machine-readable report (stable key order)."""
    payload = {
        "files": result.files,
        "ok": result.ok(strict=strict),
        "new_violations": [v.to_json() for v in result.new_violations],
        "baselined": len(result.violations) - len(result.new_violations),
        "parse_errors": [
            {"path": path, "error": error}
            for path, error in result.parse_errors
        ],
        "stale_baseline": [
            {"code": code, "path": path, "line_text": line_text}
            for code, path, line_text in result.stale_baseline
        ],
        "unjustified_suppressions": [
            {"path": path, "line": sup.comment_line, "codes": list(sup.codes)}
            for path, sup in result.unjustified_suppressions
        ],
        "stale_suppressions": [
            {
                "path": path,
                "line": sup.comment_line,
                "code": code,
                "target_line": sup.target_line,
            }
            for path, sup, code in result.stale_suppressions
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
