"""SARIF 2.1.0 output for ``repro lint``.

SARIF is the interchange format code-scanning UIs ingest (GitHub's
security tab, VS Code SARIF viewers), so the lint job can publish its
findings as a reviewable artifact instead of a log.  The document is
built deterministically — rules sorted by code, results in violation
order, no timestamps — so the same tree always produces the same
bytes, which is also what the golden-snapshot test pins.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.lint.registry import Rule
from repro.lint.violation import Violation

_SARIF_VERSION = "2.1.0"
_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_TOOL_NAME = "reprolint"


def _rule_descriptor(rule: Rule) -> Dict[str, Any]:
    return {
        "id": rule.code,
        "name": rule.name,
        "shortDescription": {"text": rule.summary},
        "fullDescription": {"text": rule.invariant},
        "properties": {"scope": rule.scope},
    }


def _result(violation: Violation, rule_index: Dict[str, int]) -> Dict[str, Any]:
    return {
        "ruleId": violation.code,
        "ruleIndex": rule_index.get(violation.code, -1),
        "level": "error",
        "message": {"text": violation.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": violation.path},
                    "region": {
                        "startLine": violation.line,
                        "startColumn": violation.col + 1,
                    },
                }
            }
        ],
        "partialFingerprints": {
            "reprolint/v1": "/".join(
                (violation.code, violation.path, violation.line_text)
            ),
        },
    }


def sarif_document(
    violations: Sequence[Violation], rules: Sequence[Rule]
) -> Dict[str, Any]:
    """The SARIF log object for one lint run."""
    ordered_rules = sorted(rules, key=lambda r: r.code)
    rule_index = {rule.code: i for i, rule in enumerate(ordered_rules)}
    return {
        "$schema": _SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri": (
                            "https://example.invalid/docs/static-analysis"
                        ),
                        "rules": [
                            _rule_descriptor(r) for r in ordered_rules
                        ],
                    }
                },
                "results": [
                    _result(v, rule_index) for v in sorted(violations)
                ],
                "columnKind": "utf16CodeUnits",
            }
        ],
    }


def render_sarif(
    violations: Sequence[Violation], rules: Sequence[Rule]
) -> str:
    """Byte-deterministic SARIF text (sorted keys, trailing newline)."""
    return json.dumps(
        sarif_document(violations, rules), indent=2, sort_keys=True
    ) + "\n"
