"""Phase 1 of the whole-program analyzer: the project symbol table.

A :class:`ProjectContext` aggregates every parsed file of one lint run
into a project-wide view: module names derived from lint-root-relative
paths, a symbol table of every function/method definition keyed by
qualified name (``repro.graph.csr.bfs_levels``,
``repro.graph.csr.CSRGraph.from_graph``), and a re-export alias map so
``from repro.graph import bfs_levels`` resolves to the defining module
no matter how many ``__init__`` hops the import takes.

Name resolution is deliberately conservative: a call that cannot be
pinned to exactly one project definition resolves to ``None`` (an
"unknown" edge) rather than a guess — whole-program rules must stay
sound on partial information.  Method calls resolve by class when the
receiver is ``self``/``cls`` or an import-resolved class, and by
*unambiguous name* otherwise (a method name defined by exactly one
project class).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.lint.context import FileContext, dotted_name

#: Upper bound on re-export alias hops (cycle guard).
_MAX_ALIAS_HOPS = 16


def module_name(path: str) -> str:
    """Dotted module name of a lint-root-relative posix path.

    ``repro/core/pairs.py`` -> ``repro.core.pairs``;
    ``repro/graph/__init__.py`` -> ``repro.graph``.
    """
    trimmed = path[:-3] if path.endswith(".py") else path
    parts = [p for p in trimmed.split("/") if p]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or "<root>"


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition in the project."""

    #: Fully qualified name (``module.fn`` / ``module.Class.fn`` /
    #: ``module.outer.inner`` for nested defs).
    qualname: str
    #: Dotted module the definition lives in.
    module: str
    #: Lint-root-relative path of the defining file.
    path: str
    #: Bare definition name.
    name: str
    #: Name of the immediately enclosing class, if this is a method.
    class_name: Optional[str]
    #: The definition node itself.
    node: ast.AST = field(repr=False, compare=False)
    #: The file the definition was parsed from.
    ctx: FileContext = field(repr=False, compare=False)


class ProjectContext:
    """Everything the whole-program phase may inspect about a lint run."""

    def __init__(self, contexts: Sequence[FileContext]) -> None:
        #: path -> FileContext, in sorted path order.
        self.files: Dict[str, FileContext] = {
            ctx.path: ctx for ctx in sorted(contexts, key=lambda c: c.path)
        }
        #: module -> FileContext.
        self.modules: Dict[str, FileContext] = {}
        #: qualified name -> FunctionInfo.
        self.functions: Dict[str, FunctionInfo] = {}
        #: qualified class name -> ClassDef.
        self.classes: Dict[str, ast.ClassDef] = {}
        #: bare method name -> sorted qualified names defining it.
        self.methods_by_name: Dict[str, List[str]] = {}
        #: dotted import binding -> its target (``repro.graph.bfs_levels``
        #: -> ``repro.graph.csr.bfs_levels``), from every ImportFrom.
        self.aliases: Dict[str, str] = {}
        #: id(def node) -> qualified name, for call-site attribution.
        self._qualname_of_node: Dict[int, str] = {}
        #: Call/Name nodes at module level (outside any def), per module.
        self.module_level_nodes: Dict[str, List[ast.AST]] = {}
        for path in sorted(self.files):
            self._collect(self.files[path])

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def _collect(self, ctx: FileContext) -> None:
        module = module_name(ctx.path)
        # First lint root wins on module-name collisions (sorted order
        # keeps the outcome deterministic).
        if module in self.modules:
            return
        self.modules[module] = ctx
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases.setdefault(
                        f"{module}.{local}", f"{node.module}.{alias.name}"
                    )
        self._collect_defs(ctx, ctx.tree, module, prefix=module, class_name=None)

    def _collect_defs(
        self,
        ctx: FileContext,
        node: ast.AST,
        module: str,
        prefix: str,
        class_name: Optional[str],
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}.{child.name}"
                if qual not in self.functions:
                    self.functions[qual] = FunctionInfo(
                        qualname=qual,
                        module=module,
                        path=ctx.path,
                        name=child.name,
                        class_name=class_name,
                        node=child,
                        ctx=ctx,
                    )
                    self._qualname_of_node[id(child)] = qual
                    if class_name is not None:
                        self.methods_by_name.setdefault(child.name, []).append(qual)
                self._collect_defs(ctx, child, module, prefix=qual, class_name=None)
            elif isinstance(child, ast.ClassDef):
                qual = f"{prefix}.{child.name}"
                self.classes.setdefault(qual, child)
                self._collect_defs(
                    ctx, child, module, prefix=qual, class_name=child.name
                )
            else:
                self._collect_defs(ctx, child, module, prefix=prefix,
                                   class_name=class_name)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def canonical(self, dotted: str) -> str:
        """Follow re-export aliases to the defining dotted path."""
        seen = 0
        while seen < _MAX_ALIAS_HOPS:
            seen += 1
            if dotted in self.aliases:
                dotted = self.aliases[dotted]
                continue
            # Longest aliased prefix: ``repro.graph.CSRGraph.from_graph``
            # rewrites its ``repro.graph.CSRGraph`` head.
            parts = dotted.split(".")
            for cut in range(len(parts) - 1, 0, -1):
                head = ".".join(parts[:cut])
                if head in self.aliases:
                    dotted = ".".join([self.aliases[head], *parts[cut:]])
                    break
            else:
                return dotted
        return dotted

    def resolve_qualified(self, dotted: Optional[str]) -> Optional[FunctionInfo]:
        """The project definition a canonical dotted path names, if any."""
        if not dotted:
            return None
        return self.functions.get(self.canonical(dotted))

    def qualname_of(self, node: ast.AST) -> Optional[str]:
        """Qualified name of a definition node collected by this project."""
        return self._qualname_of_node.get(id(node))

    def enclosing_qualname(self, ctx: FileContext, node: ast.AST) -> Optional[str]:
        """Qualified name of the innermost function containing ``node``."""
        chain = ctx.enclosing_functions(node)
        if not chain:
            return None
        return self.qualname_of(chain[0])

    def _enclosing_class(self, ctx: FileContext, node: ast.AST) -> Optional[str]:
        current = getattr(node, "parent", None)
        while current is not None:
            if isinstance(current, ast.ClassDef):
                return current.name
            current = getattr(current, "parent", None)
        return None

    def resolve_call(
        self, ctx: FileContext, func: ast.AST
    ) -> Optional[FunctionInfo]:
        """The project function a call expression targets, or ``None``.

        ``None`` means *unknown or external* — never "definitely absent";
        rules treating an edge as load-bearing must stay conservative.
        """
        dotted = dotted_name(func)
        if dotted is None:
            return None
        module = module_name(ctx.path)
        # Imported name (handles re-export hops through __init__).
        resolved = ctx.imports.resolve(dotted)
        if resolved is not None:
            return self.resolve_qualified(resolved)
        head, _, rest = dotted.partition(".")
        # self.m() / cls.m() inside a class body.
        if head in ("self", "cls") and rest and "." not in rest:
            class_name = self._enclosing_class(ctx, func)
            if class_name is not None:
                info = self.functions.get(f"{module}.{class_name}.{rest}")
                if info is not None:
                    return info
            return self._unambiguous_method(rest)
        # Local definition: nested scope first, then module level, then
        # a locally defined class's method (C.m()).
        if not rest:
            scope = self.enclosing_qualname(ctx, func)
            while scope:
                info = self.functions.get(f"{scope}.{head}")
                if info is not None:
                    return info
                scope = scope.rpartition(".")[0]
                if scope in self.modules or scope == module:
                    break
            return self.functions.get(f"{module}.{head}")
        info = self.functions.get(f"{module}.{dotted}")
        if info is not None:
            return info
        # obj.m(): resolve by method name when project-unambiguous.
        if "." not in rest:
            return self._unambiguous_method(rest)
        return None

    def _unambiguous_method(self, name: str) -> Optional[FunctionInfo]:
        quals = self.methods_by_name.get(name, ())
        if len(quals) == 1:
            return self.functions[quals[0]]
        return None

    # ------------------------------------------------------------------
    # Iteration helpers
    # ------------------------------------------------------------------
    def iter_functions(self) -> Iterator[FunctionInfo]:
        """Every collected definition, in sorted qualname order."""
        for qual in sorted(self.functions):
            yield self.functions[qual]

    def functions_in_module(self, module: str) -> List[FunctionInfo]:
        """Definitions whose ``module`` matches, sorted by qualname."""
        return [
            info for info in self.iter_functions() if info.module == module
        ]

    def definitions_named(self, names: Sequence[str]) -> List[FunctionInfo]:
        """Definitions whose bare name is in ``names``, sorted."""
        wanted = frozenset(names)
        return [info for info in self.iter_functions() if info.name in wanted]


def walk_no_nested(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` over ``node``'s body, skipping nested definitions.

    The definition node's own decorators/defaults are included; inner
    ``def``/``class`` subtrees are not — they are separate analysis
    units with their own qualified names.
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        current = stack.pop()
        if isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        yield current
        stack.extend(ast.iter_child_nodes(current))


def module_level_statements(tree: ast.Module) -> Iterator[ast.AST]:
    """Module-level nodes outside any function/class definition."""
    yield from walk_no_nested(tree)
