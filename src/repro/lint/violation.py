"""The unit of linter output: one rule violation at one source location."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict


@dataclass(frozen=True, order=True)
class Violation:
    """One invariant breach found by a rule.

    Ordering is by location first so reports read top-to-bottom per file.
    """

    #: Posix path of the file, relative to the lint root (``repro/...``).
    path: str
    #: 1-based source line of the offending node.
    line: int
    #: 0-based column of the offending node.
    col: int
    #: Rule code (``R001`` ... ``R008``).
    code: str
    #: Human-readable description of the breach.
    message: str
    #: The stripped source line, for fingerprinting and display.
    line_text: str = ""

    def fingerprint(self) -> tuple:
        """Line-number-independent identity used by the baseline.

        Keyed on the rule, the file, and the *text* of the offending
        line, so unrelated edits above a legacy violation do not churn
        the baseline.
        """
        return (self.code, self.path, self.line_text)

    def to_json(self) -> Dict[str, Any]:
        """JSON-reporter form."""
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "line_text": self.line_text,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "Violation":
        """Inverse of :meth:`to_json` (used by the analysis cache)."""
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),
            col=int(data["col"]),
            code=str(data["code"]),
            message=str(data["message"]),
            line_text=str(data.get("line_text", "")),
        )
