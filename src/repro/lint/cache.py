"""Content-hash keyed cache of per-file analysis results.

The per-file phase is pure: its output depends only on the file's
source text, its lint-root-relative path, and the set of file-scope
rules that ran.  Hashing those into the cache key means a hit can
never be stale — any edit, rename, rule change, or engine change
produces a new key.  Only phase-1 (file-scope) results are cached;
the whole-program phase depends on every file at once and recomputes
each run.

Entries are one JSON file per key under the cache directory; unknown
or corrupt entries read as misses, so the cache can be deleted (or
populated by a different revision) at any time.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.violation import Violation

#: Bump to invalidate every cached entry when analysis semantics move.
ENGINE_VERSION = "2"


def cache_key(path: str, source: str, rule_codes: Sequence[str]) -> str:
    """Stable key for one (file, rule set) analysis."""
    hasher = hashlib.sha256()
    payload = "\0".join(
        [ENGINE_VERSION, path, ",".join(sorted(rule_codes)), source]
    )
    hasher.update(payload.encode("utf-8"))
    return hasher.hexdigest()


class AnalysisCache:
    """Per-file violation lists keyed by content hash."""

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0

    def _entry(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str) -> Optional[List[Violation]]:
        """Cached pre-suppression violations, or ``None`` on a miss."""
        entry = self._entry(key)
        try:
            payload = json.loads(entry.read_text(encoding="utf-8"))
            violations = [Violation.from_json(item) for item in payload]
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return violations

    def put(self, key: str, violations: Sequence[Violation]) -> None:
        """Store one file's pre-suppression violations."""
        self.directory.mkdir(parents=True, exist_ok=True)
        entry = self._entry(key)
        tmp = entry.with_suffix(".tmp")
        tmp.write_text(
            json.dumps([v.to_json() for v in violations], sort_keys=True),
            encoding="utf-8",
        )
        tmp.replace(entry)
