"""Per-file analysis context shared by every rule.

A :class:`FileContext` wraps one parsed source file with the helpers the
rules need: the AST annotated with parent links, an import-alias map
that resolves ``np.random.default_rng`` to ``numpy.random.default_rng``
no matter how numpy was imported, and enclosing-function lookups.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.lint.violation import Violation


def dotted_name(node: ast.AST) -> Optional[str]:
    """The ``a.b.c`` form of a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class ImportMap:
    """Resolves local names to the canonical dotted module path.

    ``import numpy as np`` maps ``np -> numpy``;
    ``from numpy import random as r`` maps ``r -> numpy.random``;
    ``from time import time`` maps ``time -> time.time``.  Names bound
    by assignment (``rng = ...``) stay unresolved, which keeps rules
    from guessing about runtime values.
    """

    def __init__(self, tree: ast.AST) -> None:
        self._aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self._aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self._aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, name: Optional[str]) -> Optional[str]:
        """Canonical dotted path of ``name``, or ``None`` if unimported."""
        if not name:
            return None
        head, _, rest = name.partition(".")
        target = self._aliases.get(head)
        if target is None:
            return None
        return f"{target}.{rest}" if rest else target

    def resolve_node(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted path of a Name/Attribute node."""
        return self.resolve(dotted_name(node))


@dataclass
class FileContext:
    """Everything a rule may inspect about one source file."""

    #: Posix path relative to the lint root (``repro/graph/csr.py``).
    path: str
    #: Raw source text.
    source: str
    #: Parsed module, with ``.parent`` links on every node.
    tree: ast.Module
    #: Source split into lines (0-indexed).
    lines: List[str] = field(default_factory=list)
    #: Import-alias resolution for this file.
    imports: ImportMap = None  # type: ignore[assignment]

    @classmethod
    def parse(cls, path: str, source: str) -> "FileContext":
        tree = ast.parse(source, filename=path)
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                child.parent = node  # type: ignore[attr-defined]
        return cls(
            path=path,
            source=source,
            tree=tree,
            lines=source.splitlines(),
            imports=ImportMap(tree),
        )

    # ------------------------------------------------------------------
    def line_text(self, lineno: int) -> str:
        """The stripped source of 1-based line ``lineno``."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def violation(self, node: ast.AST, code: str, message: str) -> Violation:
        """Build a :class:`Violation` anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Violation(
            path=self.path,
            line=line,
            col=col,
            code=code,
            message=message,
            line_text=self.line_text(line),
        )

    # ------------------------------------------------------------------
    def enclosing_functions(self, node: ast.AST) -> List[ast.AST]:
        """Innermost-first chain of function defs containing ``node``."""
        chain: List[ast.AST] = []
        current = getattr(node, "parent", None)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                chain.append(current)
            current = getattr(current, "parent", None)
        return chain

    def calls_method(self, scope: ast.AST, method: str) -> bool:
        """Whether ``scope``'s subtree calls any ``<expr>.<method>(...)``."""
        for sub in ast.walk(scope):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == method
            ):
                return True
        return False
