"""Project-wide call graph over the :class:`ProjectContext` symbol table.

Nodes are qualified function names; edges come in three kinds, all
traversed by reachability:

* ``call`` — a call expression resolved to a project definition;
* ``ref`` — a function *referenced* (passed as a value, e.g. a
  ``ParallelExecutor.map`` task or a callback) — the conservative
  assumption is that a referenced function may be called;
* ``defines`` — a function lexically defining a nested function (the
  closure may be called by the definer or escape through it).

Unresolvable calls (unknown receivers, external libraries) produce no
edge; whole-program rules must treat absence of an edge as "unknown",
never as proof of unreachability — which is why :class:`CallGraph`
also records every call *site* with its resolution for rules that need
the conservative view.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.lint.context import FileContext
from repro.lint.project import FunctionInfo, ProjectContext, walk_no_nested


@dataclass(frozen=True)
class CallSite:
    """One call expression attributed to its enclosing function."""

    #: Qualified name of the enclosing function (``None`` = module level).
    caller: Optional[str]
    #: Lint-root-relative path of the file holding the call.
    path: str
    #: The call node itself.
    node: ast.Call = field(repr=False, compare=False)
    #: Resolved callee, when resolution succeeded.
    callee: Optional[FunctionInfo] = field(compare=False, default=None)


class CallGraph:
    """Edges + reachability over one project's functions."""

    def __init__(self, project: ProjectContext) -> None:
        self.project = project
        self._edges: Dict[str, Set[str]] = {}
        self._redges: Dict[str, Set[str]] = {}
        #: Every call site, grouped by enclosing function qualname
        #: (module-level sites under the pseudo-caller ``<module>:name``).
        self.sites: List[CallSite] = []
        self._build()

    # ------------------------------------------------------------------
    def _add_edge(self, src: str, dst: str) -> None:
        self._edges.setdefault(src, set()).add(dst)
        self._redges.setdefault(dst, set()).add(src)

    def _build(self) -> None:
        for info in self.project.iter_functions():
            self._scan_unit(info.ctx, info.node, caller=info.qualname)
        # Module-level code: attributed to a ``<module>:M`` pseudo-node.
        for module in sorted(self.project.modules):
            ctx = self.project.modules[module]
            self._scan_unit(ctx, ctx.tree, caller=f"<module>:{module}")

    def _scan_unit(
        self, ctx: FileContext, root: ast.AST, caller: str
    ) -> None:
        # Mark the function-position expression chains so a call's own
        # ``func`` Name/Attribute is not double-counted as a reference.
        func_chain_ids: Set[int] = set()
        calls: List[ast.Call] = []
        for node in walk_no_nested(root):
            if isinstance(node, ast.Call):
                calls.append(node)
                probe: ast.AST = node.func
                while isinstance(probe, ast.Attribute):
                    func_chain_ids.add(id(probe))
                    probe = probe.value
                func_chain_ids.add(id(probe))
        for call in calls:
            callee = self.project.resolve_call(ctx, call.func)
            self.sites.append(
                CallSite(caller=caller, path=ctx.path, node=call, callee=callee)
            )
            if callee is not None:
                self._add_edge(caller, callee.qualname)
        for node in walk_no_nested(root):
            if not isinstance(node, (ast.Name, ast.Attribute)):
                continue
            if id(node) in func_chain_ids:
                continue
            if not isinstance(getattr(node, "ctx", None), ast.Load):
                continue
            target = self.project.resolve_call(ctx, node)
            if target is not None:
                self._add_edge(caller, target.qualname)
        # A definer can invoke (or leak) its nested functions.
        if not isinstance(root, ast.Module):
            for child in ast.walk(root):
                if child is root:
                    continue
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = self.project.qualname_of(child)
                    if qual is not None:
                        self._add_edge(caller, qual)

    # ------------------------------------------------------------------
    def callees(self, qualname: str) -> List[str]:
        """Sorted direct successors of ``qualname``."""
        return sorted(self._edges.get(qualname, ()))

    def callers(self, qualname: str) -> List[str]:
        """Sorted direct predecessors of ``qualname``."""
        return sorted(self._redges.get(qualname, ()))

    def reachable(self, roots: Iterable[str]) -> Set[str]:
        """Every node reachable from ``roots`` (roots included)."""
        seen: Set[str] = set()
        queue = deque(sorted(set(roots)))
        seen.update(queue)
        while queue:
            current = queue.popleft()
            for nxt in self.callees(current):
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return seen

    def guarded_reachability(
        self, roots: Iterable[str], guards: Set[str]
    ) -> Dict[str, Optional[str]]:
        """BFS parent map of paths from ``roots`` avoiding ``guards``.

        A node appears in the result iff some path from a root reaches
        it without passing through any guard node (the root itself
        included).  Used by R010: guards are budget-charging functions,
        so membership means "reachable from the public API with no
        ledger charge anywhere on the way".
        """
        parent: Dict[str, Optional[str]] = {}
        queue: deque = deque()
        for root in sorted(set(roots)):
            if root in guards or root in parent:
                continue
            parent[root] = None
            queue.append(root)
        while queue:
            current = queue.popleft()
            for nxt in self.callees(current):
                if nxt in guards or nxt in parent:
                    continue
                parent[nxt] = current
                queue.append(nxt)
        return parent

    @staticmethod
    def path_to(
        parent: Dict[str, Optional[str]], node: str
    ) -> List[str]:
        """Reconstruct the BFS path ending at ``node``."""
        path: List[str] = []
        current: Optional[str] = node
        while current is not None:
            path.append(current)
            current = parent.get(current)
        return list(reversed(path))

    # ------------------------------------------------------------------
    def sites_in(self, path: str) -> Iterator[CallSite]:
        """Call sites located in one file, in source order."""
        for site in sorted(
            (s for s in self.sites if s.path == path),
            key=lambda s: (s.node.lineno, s.node.col_offset),
        ):
            yield site
