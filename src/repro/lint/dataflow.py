"""Phase 2 of the whole-program analyzer: interprocedural taint.

The engine is policy-driven: a rule supplies a :class:`TaintPolicy`
naming its *sources* (expressions that introduce taint), *sanitizers*
(calls that kill it), and *exempt names*; the engine computes which
local names and expressions carry taint inside each function, plus
per-function summaries (``returns_tainted`` / ``propagates`` /
``mutates``) so taint crosses call boundaries without inlining.

Summaries are computed to a bounded fixpoint in sorted-qualname order,
so results are byte-deterministic regardless of file discovery order.
All propagation is deliberately coarse-but-conservative in one
direction only: a call that cannot be resolved propagates *nothing*
(rules opt specific known functions back in via
:meth:`TaintPolicy.call_propagates`), and taint never flows through
``yield`` (a generator's consumer owns the yielded values).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.context import FileContext, dotted_name
from repro.lint.project import FunctionInfo, ProjectContext, walk_no_nested

#: numpy methods that mutate their receiver in place.
INPLACE_METHODS = frozenset(
    {"fill", "itemset", "partition", "put", "resize", "setfield", "sort"}
)

#: Fixpoint bound for interprocedural summaries (call-chain depth).
_MAX_ROUNDS = 8


class TaintPolicy:
    """Pluggable predicates; the base policy taints nothing."""

    def call_is_source(
        self, ctx: FileContext, project: ProjectContext, call: ast.Call
    ) -> bool:
        """Does this call expression introduce taint?"""
        return False

    def expr_is_source(
        self, ctx: FileContext, project: ProjectContext, node: ast.AST
    ) -> bool:
        """Does this non-call expression introduce taint?"""
        return False

    def call_is_sanitizer(
        self, ctx: FileContext, project: ProjectContext, call: ast.Call
    ) -> bool:
        """Does wrapping a value in this call kill its taint?"""
        return False

    def call_propagates(
        self, ctx: FileContext, project: ProjectContext, call: ast.Call
    ) -> bool:
        """Should an *unresolved* call pass taint from args to result?"""
        return False

    def name_is_exempt(self, name: str) -> bool:
        """Names that never carry taint (e.g. known scalars)."""
        return False


@dataclass(frozen=True)
class Summary:
    """Interprocedural behaviour of one function under a policy."""

    #: The return value is tainted regardless of arguments.
    returns_tainted: bool = False
    #: Tainted arguments make the return value tainted.
    propagates: bool = False
    #: Parameter names the function writes through in place.
    mutates: FrozenSet[str] = frozenset()


def param_names(node: ast.AST) -> List[str]:
    """Positional/keyword/star parameter names of a def node, in order."""
    args = getattr(node, "args", None)
    if args is None:
        return []
    names = [a.arg for a in (*args.posonlyargs, *args.args)]
    if args.vararg:
        names.append(args.vararg.arg)
    names.extend(a.arg for a in args.kwonlyargs)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return names


def root_name(expr: ast.AST) -> Optional[str]:
    """Peel attribute/subscript chains down to the base ``Name`` id."""
    while isinstance(expr, (ast.Attribute, ast.Subscript)):
        expr = expr.value
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def iter_writes(root: ast.AST) -> Iterator[Tuple[ast.AST, ast.AST]]:
    """In-place write events inside ``root`` (nested defs excluded).

    Yields ``(node, base_expr)`` pairs where ``base_expr`` is the
    object written through: ``x[i] = v`` / ``x[i] += v`` yield the
    subscripted value, ``x += v`` the name itself, ``x.sort()`` the
    receiver, ``f(..., out=x)`` and ``np.copyto(x, ...)`` the
    destination argument.
    """
    for node in walk_no_nested(root):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript):
                    yield node, target.value
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Subscript):
                yield node, node.target.value
            elif isinstance(node.target, ast.Name):
                yield node, node.target
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in INPLACE_METHODS:
                yield node, func.value
            name = dotted_name(func)
            if name is not None and name.split(".")[-1] == "copyto" and node.args:
                yield node, node.args[0]
            for kw in node.keywords:
                if kw.arg == "out":
                    yield node, kw.value


def _sorted_nodes(nodes: Sequence[ast.AST]) -> List[ast.AST]:
    return sorted(
        nodes,
        key=lambda n: (getattr(n, "lineno", 0), getattr(n, "col_offset", 0)),
    )


class FunctionTaint:
    """Intra-function taint state for one analysis unit.

    ``root`` may be a def node or a whole module; ``initial`` seeds the
    tainted-name set (used by the summary computation to model "all
    parameters tainted").
    """

    def __init__(
        self,
        project: ProjectContext,
        ctx: FileContext,
        root: ast.AST,
        policy: TaintPolicy,
        summaries: Optional[Dict[str, Summary]] = None,
        initial: Optional[Set[str]] = None,
    ) -> None:
        self.project = project
        self.ctx = ctx
        self.root = root
        self.policy = policy
        self.summaries = summaries if summaries is not None else {}
        self.tainted: Set[str] = set(initial or ())
        self._run()

    # ------------------------------------------------------------------
    def _run(self) -> None:
        bindings = [
            node
            for node in walk_no_nested(self.root)
            if isinstance(
                node,
                (ast.Assign, ast.AnnAssign, ast.AugAssign, ast.For,
                 ast.NamedExpr, ast.withitem, ast.comprehension),
            )
        ]
        ordered = _sorted_nodes(bindings)
        # Two passes pick up loop-carried taint without a full fixpoint.
        for _ in range(2):
            before = set(self.tainted)
            for node in ordered:
                self._transfer(node)
            if self.tainted == before:
                break

    def _taint_target(self, target: ast.AST, value_tainted: bool) -> None:
        if isinstance(target, ast.Name):
            if self.policy.name_is_exempt(target.id):
                return
            if value_tainted:
                self.tainted.add(target.id)
            else:
                self.tainted.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                inner = element.value if isinstance(element, ast.Starred) else element
                self._taint_target(inner, value_tainted)
        # Attribute/Subscript targets are write events, not rebinds.

    def _transfer(self, node: ast.AST) -> None:
        if isinstance(node, ast.Assign):
            value_tainted = self.expr_tainted(node.value)
            for target in node.targets:
                self._taint_target(target, value_tainted)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            self._taint_target(node.target, self.expr_tainted(node.value))
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Name):
                already = node.target.id in self.tainted
                self._taint_target(
                    node.target, already or self.expr_tainted(node.value)
                )
        elif isinstance(node, ast.NamedExpr):
            self._taint_target(node.target, self.expr_tainted(node.value))
        elif isinstance(node, ast.For):
            if self.expr_tainted(node.iter):
                self._taint_target(node.target, True)
        elif isinstance(node, ast.comprehension):
            if self.expr_tainted(node.iter):
                self._taint_target(node.target, True)
        elif isinstance(node, ast.withitem):
            if node.optional_vars is not None:
                self._taint_target(
                    node.optional_vars, self.expr_tainted(node.context_expr)
                )

    # ------------------------------------------------------------------
    def expr_tainted(self, expr: Optional[ast.AST]) -> bool:
        """Is the value of ``expr`` tainted in the current state?"""
        if expr is None:
            return False
        if self.policy.expr_is_source(self.ctx, self.project, expr):
            return True
        if isinstance(expr, ast.Call):
            return self._call_tainted(expr)
        if isinstance(expr, ast.Name):
            return expr.id in self.tainted
        if isinstance(expr, ast.Attribute):
            return self.expr_tainted(expr.value)
        if isinstance(expr, ast.Subscript):
            # Slicing an array keeps the (view) taint; a scalar pulled
            # out by plain indexing does not.
            if isinstance(expr.slice, ast.Slice):
                return self.expr_tainted(expr.value)
            return False
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            return any(self.expr_tainted(e) for e in expr.elts)
        if isinstance(expr, ast.Starred):
            return self.expr_tainted(expr.value)
        if isinstance(expr, ast.BinOp):
            return self.expr_tainted(expr.left) or self.expr_tainted(expr.right)
        if isinstance(expr, ast.UnaryOp):
            return self.expr_tainted(expr.operand)
        if isinstance(expr, ast.BoolOp):
            return any(self.expr_tainted(v) for v in expr.values)
        if isinstance(expr, ast.IfExp):
            return self.expr_tainted(expr.body) or self.expr_tainted(expr.orelse)
        if isinstance(expr, ast.JoinedStr):
            return any(self.expr_tainted(v) for v in expr.values)
        if isinstance(expr, ast.FormattedValue):
            return self.expr_tainted(expr.value)
        if isinstance(
            expr, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            return any(self.expr_tainted(gen.iter) for gen in expr.generators)
        if isinstance(expr, ast.Dict):
            return any(
                self.expr_tainted(v)
                for v in (*expr.keys, *expr.values)
                if v is not None
            )
        return False

    def _call_tainted(self, call: ast.Call) -> bool:
        if self.policy.call_is_sanitizer(self.ctx, self.project, call):
            return False
        if self.policy.call_is_source(self.ctx, self.project, call):
            return True
        args_tainted = any(self.expr_tainted(a) for a in call.args) or any(
            self.expr_tainted(kw.value) for kw in call.keywords
        )
        callee = self.project.resolve_call(self.ctx, call.func)
        if callee is not None:
            summary = self.summaries.get(callee.qualname)
            if summary is not None:
                if summary.returns_tainted:
                    return True
                if summary.propagates and args_tainted:
                    return True
            return False
        # Method call on a tainted receiver: the result stays tainted
        # unless the policy sanctioned it as a sanitizer above.
        if isinstance(call.func, ast.Attribute) and self.expr_tainted(
            call.func.value
        ):
            return True
        if args_tainted and self.policy.call_propagates(
            self.ctx, self.project, call
        ):
            return True
        return False

    # ------------------------------------------------------------------
    def returns_tainted(self) -> bool:
        """Does any ``return`` statement carry taint?"""
        return any(
            isinstance(node, ast.Return) and self.expr_tainted(node.value)
            for node in walk_no_nested(self.root)
        )


class ProjectTaint:
    """Interprocedural summaries for every function, to a fixpoint."""

    def __init__(self, project: ProjectContext, policy: TaintPolicy) -> None:
        self.project = project
        self.policy = policy
        self.summaries: Dict[str, Summary] = {}
        for _ in range(_MAX_ROUNDS):
            changed = False
            for info in project.iter_functions():
                summary = self._summarize(info)
                if self.summaries.get(info.qualname) != summary:
                    self.summaries[info.qualname] = summary
                    changed = True
            if not changed:
                break

    # ------------------------------------------------------------------
    def _summarize(self, info: FunctionInfo) -> Summary:
        params = param_names(info.node)
        bare = FunctionTaint(
            self.project, info.ctx, info.node, self.policy, self.summaries
        )
        returns_tainted = bare.returns_tainted()
        seeded = FunctionTaint(
            self.project,
            info.ctx,
            info.node,
            self.policy,
            self.summaries,
            initial=set(params),
        )
        propagates = seeded.returns_tainted() and not returns_tainted
        mutates: Set[str] = set()
        wanted = set(params)
        for _node, base in iter_writes(info.node):
            name = root_name(base)
            if name in wanted:
                mutates.add(name)
        # A parameter handed straight to a mutating callee is mutated too.
        for node in walk_no_nested(info.node):
            if not isinstance(node, ast.Call):
                continue
            callee = self.project.resolve_call(info.ctx, node.func)
            if callee is None:
                continue
            summary = self.summaries.get(callee.qualname)
            if summary is None or not summary.mutates:
                continue
            for param, arg in match_arguments(node, callee).items():
                if param in summary.mutates and isinstance(arg, ast.Name):
                    if arg.id in wanted:
                        mutates.add(arg.id)
        return Summary(
            returns_tainted=returns_tainted,
            propagates=propagates,
            mutates=frozenset(mutates),
        )

    # ------------------------------------------------------------------
    def analyze(self, info: FunctionInfo) -> FunctionTaint:
        """Final intra-function taint for one definition."""
        return FunctionTaint(
            self.project, info.ctx, info.node, self.policy, self.summaries
        )

    def analyze_module(self, module: str) -> Optional[FunctionTaint]:
        """Taint over one module's top-level statements."""
        ctx = self.project.modules.get(module)
        if ctx is None:
            return None
        return FunctionTaint(
            self.project, ctx, ctx.tree, self.policy, self.summaries
        )


def match_arguments(
    call: ast.Call, callee: FunctionInfo
) -> Dict[str, ast.AST]:
    """Map callee parameter names to the argument expressions at a site.

    Positional args line up against the callee's positional parameters
    (skipping ``self``/``cls`` for methods); keywords match by name.
    ``*args``/``**kwargs`` at the call site are ignored — unknown
    bindings must not invent edges.
    """
    args = getattr(callee.node, "args", None)
    if args is None:
        return {}
    positional = [a.arg for a in (*args.posonlyargs, *args.args)]
    if callee.class_name is not None and positional and positional[0] in (
        "self",
        "cls",
    ):
        positional = positional[1:]
    mapping: Dict[str, ast.AST] = {}
    for index, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            break
        if index < len(positional):
            mapping[positional[index]] = arg
    for kw in call.keywords:
        if kw.arg is not None:
            mapping[kw.arg] = kw.value
    return mapping
