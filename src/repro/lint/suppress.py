"""Inline suppressions: ``# reprolint: disable=R001[,R002] -- why``.

A suppression silences the listed rule codes on its own physical line;
a comment-only line suppresses the line directly below it, so long
statements can carry their waiver above the code.  The text after
``--`` (or an em-dash) is the justification; ``--strict`` requires one,
because an unexplained waiver is just a violation wearing a disguise.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.lint.violation import Violation

_PATTERN = re.compile(
    r"#\s*reprolint:\s*disable=(?P<codes>[A-Z]\d{3}(?:\s*,\s*[A-Z]\d{3})*)"
    r"(?:\s*(?:--|—|–)\s*(?P<why>\S.*?))?\s*$"
)


@dataclass(frozen=True)
class Suppression:
    """One parsed suppression comment."""

    #: 1-based line whose violations are silenced.
    target_line: int
    #: 1-based line the comment itself sits on.
    comment_line: int
    codes: tuple
    justification: str


def parse_suppressions(lines: Sequence[str]) -> List[Suppression]:
    """Every suppression in a file's source lines."""
    found: List[Suppression] = []
    for index, raw in enumerate(lines, start=1):
        match = _PATTERN.search(raw)
        if match is None:
            continue
        codes = tuple(
            code.strip() for code in match.group("codes").split(",")
        )
        comment_only = raw.strip().startswith("#")
        found.append(
            Suppression(
                target_line=index + 1 if comment_only else index,
                comment_line=index,
                codes=codes,
                justification=(match.group("why") or "").strip(),
            )
        )
    return found


def apply_suppressions(
    violations: Sequence[Violation], suppressions: Sequence[Suppression]
) -> List[Violation]:
    """Drop violations waived by a matching suppression."""
    by_line: Dict[int, set] = {}
    for sup in suppressions:
        by_line.setdefault(sup.target_line, set()).update(sup.codes)
    return [
        v
        for v in violations
        if v.code not in by_line.get(v.line, ())
    ]


def unjustified(suppressions: Sequence[Suppression]) -> List[Suppression]:
    """Suppressions missing the ``-- why`` clause (strict-mode errors)."""
    return [sup for sup in suppressions if not sup.justification]
