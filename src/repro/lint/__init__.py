"""reprolint: whole-program enforcement of the reproducibility contracts.

The reproduction's guarantees — byte-identical output at any worker
count, seeded-only randomness, an audited SSSP budget ledger, resume
keys independent of execution-only config — are invariants of the
*codebase*, not of any single test.  This package checks them
mechanically on every commit, in two phases: file-scope AST rules per
file, then whole-program rules over a project-wide symbol table, call
graph, and interprocedural taint engine.

======  ==============================  =======================================
code    name                            invariant protected
======  ==============================  =======================================
R001    unseeded-randomness             all randomness flows from explicit seeds
R002    wall-clock-read                 results never depend on the clock
R003    networkx-outside-tests          networkx is a test oracle, not a dep
R004    uncharged-sssp                  every SSSP is charged to SPBudget (file)
R005    mutable-default-argument        no state leaks across runs via defaults
R006    swallowed-broad-except          failures re-raise or emit a log_event
R007    execution-config-in-...-key     checkpoint keys are worker-independent
R008    unpicklable-parallel-task       pool tasks survive spawn pickling
R009    untyped-def-in-strict-package   strict packages stay fully annotated
R010    uncharged-reachable-sssp        no uncharged call path API -> traversal
R011    frozen-view-mutation            engine-returned arrays are never written
R012    nondeterminism-reaches-output   entropy never reaches keys/WAL/rankings
R013    cross-process-capture           worker tasks read no parent globals
======  ==============================  =======================================

Run ``repro lint`` (or ``python -m repro.lint``); see
docs/static-analysis.md for suppressions, SARIF output, the analysis
cache, and the baseline workflow.
"""

from repro.lint.baseline import Baseline
from repro.lint.cache import AnalysisCache
from repro.lint.callgraph import CallGraph
from repro.lint.project import ProjectContext
from repro.lint.registry import Rule, all_rules, get_rule
from repro.lint.runner import LintResult, lint_paths, lint_source
from repro.lint.sarif import render_sarif
from repro.lint.suppress import parse_suppressions
from repro.lint.violation import Violation

__all__ = [
    "AnalysisCache",
    "Baseline",
    "CallGraph",
    "LintResult",
    "ProjectContext",
    "Rule",
    "Violation",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_source",
    "parse_suppressions",
    "render_sarif",
]
