"""R013: worker tasks only touch picklable, worker-initialized state.

A ``ParallelExecutor.map`` task executes in a child process.  Under
the ``spawn`` start method the child re-imports the task's module, so
a module-level *mutable* global the parent filled in (a dict of
results, a loaded graph, an open handle) silently resets to its
import-time value — the classic "works under fork, wrong under spawn"
bug.  R008 catches unpicklable task *objects* per file; R013 resolves
the task function across modules and flags reads of parent-owned
mutable globals inside its body.  The sanctioned channel is
``repro.parallel.executor.worker_state()``: state installed by the
pool initializer, explicitly built for cross-process hand-off.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set

from repro.lint.callgraph import CallGraph
from repro.lint.context import FileContext
from repro.lint.dataflow import param_names
from repro.lint.project import FunctionInfo, ProjectContext, walk_no_nested
from repro.lint.registry import project_rule
from repro.lint.violation import Violation

#: The executor module owns the worker-state plumbing itself.
_EXEMPT_PATHS = frozenset({"repro/parallel/executor.py"})


def _immutable_value(node: ast.AST) -> bool:
    """Is this module-level initializer an immutable constant?"""
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.Tuple):
        return all(_immutable_value(e) for e in node.elts)
    if isinstance(node, ast.UnaryOp):
        return _immutable_value(node.operand)
    if isinstance(node, ast.BinOp):
        return _immutable_value(node.left) and _immutable_value(node.right)
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id == "frozenset":
            return all(_immutable_value(a) for a in node.args)
        return False
    if isinstance(node, (ast.Name, ast.Attribute)):
        # A rebinding of another module-level name: treat as constant —
        # the mutable original (if any) is flagged where it is read.
        return True
    if isinstance(node, ast.Subscript):
        # ``CellSpec = Tuple[str, str, int, int]``: a type alias, not
        # parent-process state.
        return isinstance(node.value, (ast.Name, ast.Attribute))
    return False


def _mutable_module_globals(ctx: FileContext) -> Set[str]:
    """Module-level names bound to mutable (parent-owned) values."""
    mutable: Set[str] = set()
    for stmt in ctx.tree.body:
        targets = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        if _immutable_value(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                mutable.add(target.id)
    return mutable


def _local_bindings(node: ast.AST) -> Set[str]:
    """Names the task function binds itself (params + assignments)."""
    bound: Set[str] = set(param_names(node))
    for sub in walk_no_nested(node):
        if isinstance(sub, (ast.Name,)) and isinstance(
            sub.ctx, (ast.Store, ast.Del)
        ):
            bound.add(sub.id)
        elif isinstance(sub, ast.Global):
            # ``global X`` is an explicit parent-state escape hatch —
            # leave those names in the flagged set.
            bound.difference_update(sub.names)
    return bound


def _annotation_node_ids(node: ast.AST) -> Set[int]:
    """ids of AST nodes inside annotations (re-evaluated on re-import)."""
    ids: Set[int] = set()
    args = getattr(node, "args", None)
    annotations = [
        a.annotation
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        if a.annotation is not None
    ] if args is not None else []
    if args is not None:
        for star in (args.vararg, args.kwarg):
            if star is not None and star.annotation is not None:
                annotations.append(star.annotation)
    returns = getattr(node, "returns", None)
    if returns is not None:
        annotations.append(returns)
    for sub in ast.walk(node):
        if isinstance(sub, ast.AnnAssign):
            annotations.append(sub.annotation)
    for annotation in annotations:
        ids.update(id(n) for n in ast.walk(annotation))
    return ids


def _task_reads_of_globals(
    task: FunctionInfo, mutable: Set[str]
) -> Iterator[ast.Name]:
    bound = _local_bindings(task.node)
    in_annotations = _annotation_node_ids(task.node)
    seen: Set[str] = set()
    for node in walk_no_nested(task.node):
        if (
            isinstance(node, ast.Name)
            and isinstance(node.ctx, ast.Load)
            and node.id in mutable
            and node.id not in bound
            and node.id not in seen
            and id(node) not in in_annotations
        ):
            seen.add(node.id)
            yield node


def _is_executor_map(ctx: FileContext, call: ast.Call) -> bool:
    func = call.func
    if not (isinstance(func, ast.Attribute) and func.attr == "map"):
        return False
    base = func.value
    if isinstance(base, ast.Name):
        return "executor" in base.id.lower() or "pool" in base.id.lower()
    if isinstance(base, ast.Call):
        resolved = ctx.imports.resolve_node(base.func) or ""
        return resolved.rpartition(".")[2] == "ParallelExecutor"
    if isinstance(base, ast.Attribute):
        return "executor" in base.attr.lower()
    return False


@project_rule(
    "R013",
    "cross-process-capture",
    summary="worker task reads a parent-process mutable global",
    invariant="Task functions run in spawned children: every object "
              "they touch must arrive via task arguments or the "
              "worker_state() initializer channel, never via a module "
              "global the parent mutated (docs/parallel.md).",
)
def check_cross_process_capture(
    project: ProjectContext, graph: CallGraph
) -> Iterator[Violation]:
    mutable_by_module: Dict[str, Set[str]] = {}
    reported: Set[str] = set()
    for site in graph.sites:
        ctx = project.files.get(site.path)
        if ctx is None or not isinstance(site.node, ast.Call):
            continue
        if not _is_executor_map(ctx, site.node):
            continue
        if not site.node.args:
            continue
        task = project.resolve_call(ctx, site.node.args[0])
        if task is None or task.path in _EXEMPT_PATHS:
            continue
        if task.qualname in reported:
            continue
        reported.add(task.qualname)
        if task.module not in mutable_by_module:
            mutable_by_module[task.module] = _mutable_module_globals(task.ctx)
        mutable = mutable_by_module[task.module]
        if not mutable:
            continue
        for read in _task_reads_of_globals(task, mutable):
            yield task.ctx.violation(
                read, "R013",
                f"worker task {task.name}() reads module global "
                f"'{read.id}', a mutable object owned by the parent "
                f"process; pass it as a task argument or install it "
                f"via worker_state()",
            )
