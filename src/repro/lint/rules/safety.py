"""R005/R006: mutable defaults, silent broad exception handlers.

Both are classic Python hazards with project-specific teeth: a mutable
default on a selector or executor leaks state across runs (breaking
run-to-run determinism), and a broad ``except`` that neither re-raises
nor reports through :mod:`repro.resilience.events` makes a failed unit
look like a succeeded one — precisely what the resilience layer's
auditable event stream exists to prevent.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import FileContext
from repro.lint.registry import rule
from repro.lint.violation import Violation

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_CTORS = frozenset({"list", "dict", "set", "bytearray", "deque",
                            "defaultdict", "Counter", "OrderedDict",
                            "sorted"})

#: Method calls that hand back a fresh *mutable* container.
_MUTABLE_FACTORY_METHODS = frozenset({"copy", "fromkeys", "split",
                                      "splitlines"})

_BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _is_mutable_default(ctx: FileContext, node: ast.AST) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        # Aliased imports count too: ``from collections import deque as
        # dq`` still builds a deque.
        resolved = ctx.imports.resolve_node(node.func)
        if resolved is not None and resolved.rpartition(".")[2] in _MUTABLE_CTORS:
            return True
        name = node.func.id if isinstance(node.func, ast.Name) else (
            node.func.attr if isinstance(node.func, ast.Attribute) else ""
        )
        return name in _MUTABLE_CTORS or name in _MUTABLE_FACTORY_METHODS
    return False


@rule(
    "R005",
    "mutable-default-argument",
    summary="mutable default argument",
    invariant="Default argument values are shared across calls; mutable "
              "ones accumulate state between runs and silently break the "
              "same-seed-same-output determinism contract.",
)
def check_mutable_defaults(ctx: FileContext) -> Iterator[Violation]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_default(ctx, default):
                yield ctx.violation(
                    default, "R005",
                    f"mutable default argument in {node.name}(); use None "
                    f"and construct inside the function",
                )


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = (
        handler.type.elts if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for t in types:
        name = t.id if isinstance(t, ast.Name) else (
            t.attr if isinstance(t, ast.Attribute) else ""
        )
        if name in _BROAD_NAMES:
            return True
    return False


def _walk_handler_body(node: ast.AST) -> Iterator[ast.AST]:
    """Walk statements that actually *execute* in the handler.

    A ``raise`` or ``log_event`` inside a nested ``def``/``lambda``
    only runs if that function is later called — it does not route this
    handler's failure, so those subtrees are skipped.
    """
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        yield current
        stack.extend(ast.iter_child_nodes(current))


def _routes_or_reraises(handler: ast.ExceptHandler) -> bool:
    """Handler re-raises, or reports through resilience.events."""
    for node in handler.body:
        for sub in _walk_handler_body(node):
            if isinstance(sub, ast.Raise):
                return True
            if isinstance(sub, ast.Call):
                name = sub.func.id if isinstance(sub.func, ast.Name) else (
                    sub.func.attr if isinstance(sub.func, ast.Attribute)
                    else ""
                )
                if name == "log_event":
                    return True
    return False


@rule(
    "R006",
    "swallowed-broad-except",
    summary="broad except that neither re-raises nor logs an event",
    invariant="Failures either stay loud (re-raise) or enter the audited "
              "resilience event stream via log_event; a silent broad "
              "except makes a failed unit indistinguishable from a "
              "succeeded one (docs/resilience.md).",
)
def check_swallowed_except(ctx: FileContext) -> Iterator[Violation]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if _is_broad(node) and not _routes_or_reraises(node):
            kind = "bare except" if node.type is None else "broad except"
            yield ctx.violation(
                node, "R006",
                f"{kind} swallows the failure; re-raise or route it "
                f"through repro.resilience.events.log_event",
            )
