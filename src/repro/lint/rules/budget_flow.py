"""R010: whole-program budget soundness.

R004 checks one file at a time and therefore needs a hand-maintained
module list (``_ENTRY_POINT_MODULES``) to know which imports mean "an
SSSP happens here" — a list that had to be widened by hand twice
already.  R010 replaces the hand list with computed reachability over
the project call graph: the *defining* modules of the SSSP entry
points (and the packages that re-export them) fall out of the symbol
table, and a traversal call is a finding exactly when some call chain
from the public API (``repro.core.pairs``, ``repro.core.algorithm``,
the CLI) reaches it without passing through a budget-charging function
on the way.  R004 stays registered as the fast intra-file fallback.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.lint.callgraph import CallGraph
from repro.lint.context import FileContext
from repro.lint.project import ProjectContext
from repro.lint.registry import project_rule
from repro.lint.rules.budget import (
    R004_GROUND_TRUTH_PATHS,
    SSSP_ENTRY_POINTS,
    _ENGINE_PREFIX,
)
from repro.lint.violation import Violation

#: The public API surface: modules whose public functions (and import-
#: time statements) are the roots every uncharged path is traced from.
ROOT_MODULES = ("repro.core.pairs", "repro.core.algorithm", "repro.cli")


def computed_entry_point_modules(project: ProjectContext) -> List[str]:
    """Modules that define or re-export an SSSP entry point.

    This is the computed replacement for R004's hand-listed
    ``_ENTRY_POINT_MODULES``: defining modules come from the symbol
    table, re-exporting packages from the alias map — no hand upkeep
    when a traversal moves or a new engine module appears.
    """
    modules: Set[str] = set()
    for info in project.definitions_named(sorted(SSSP_ENTRY_POINTS)):
        if info.class_name is None:
            modules.add(info.module)
    for binding in sorted(project.aliases):
        module, _, name = binding.rpartition(".")
        if name in SSSP_ENTRY_POINTS and module:
            target = project.canonical(binding)
            target_module = target.rpartition(".")[0]
            if target_module in modules or target_module not in project.modules:
                modules.add(module)
    return sorted(modules)


def charging_functions(project: ProjectContext) -> Set[str]:
    """Qualnames of functions that call ``<ledger>.charge(...)``."""
    guards: Set[str] = set()
    for info in project.iter_functions():
        for node in ast.walk(info.node):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "charge"
            ):
                guards.add(info.qualname)
                break
    return guards


def entry_point_roots(project: ProjectContext) -> List[str]:
    """Public functions + import-time code of the root modules."""
    roots: List[str] = []
    for module in ROOT_MODULES:
        if module not in project.modules:
            continue
        roots.append(f"<module>:{module}")
        for info in project.functions_in_module(module):
            top_level = info.qualname == f"{module}.{info.name}"
            if top_level and not info.name.startswith("_"):
                roots.append(info.qualname)
            # Public methods of public classes count too (CLI command
            # classes); nested helpers stay reachable via the graph.
            if info.class_name is not None and not info.name.startswith("_"):
                roots.append(info.qualname)
    return sorted(set(roots))


def _entry_point_call(
    project: ProjectContext, ctx: FileContext, call: ast.Call
) -> Optional[str]:
    """The SSSP entry-point name this call invokes, if any."""
    callee = project.resolve_call(ctx, call.func)
    if callee is not None:
        if callee.name in SSSP_ENTRY_POINTS and callee.class_name is None:
            return callee.name
        return None
    resolved = ctx.imports.resolve_node(call.func)
    if resolved is None:
        return None
    module, _, name = resolved.rpartition(".")
    if name not in SSSP_ENTRY_POINTS:
        return None
    # The import names an entry point.  Trust it when the canonical
    # target lands outside the analyzed project (we cannot see inside
    # the module, so conservatively assume the traversal is real); a
    # project-internal target would have resolved to a definition above.
    canonical_module = project.canonical(resolved).rpartition(".")[0]
    if canonical_module not in project.modules:
        return name
    return None


@project_rule(
    "R010",
    "uncharged-reachable-sssp",
    summary="call path from the public API reaches an SSSP with no "
            "budget charge on the way",
    invariant="Every traversal transitively reachable from the public "
              "API (repro.core.pairs, repro.core.algorithm, the CLI) "
              "flows through SPBudget.charge on all paths; the entry-"
              "point set is computed from the call graph, not "
              "hand-listed (docs/budget-model.md).",
)
def check_budget_soundness(
    project: ProjectContext, graph: CallGraph
) -> Iterator[Violation]:
    guards = charging_functions(project)
    uncharged = graph.guarded_reachability(entry_point_roots(project), guards)
    for site in graph.sites:
        ctx = project.files.get(site.path)
        if ctx is None:
            continue
        if site.path.startswith(_ENGINE_PREFIX) or site.path in (
            R004_GROUND_TRUTH_PATHS
        ):
            continue
        name = _entry_point_call(project, ctx, site.node)
        if name is None:
            continue
        caller = site.caller or ""
        if caller.startswith("<module>:"):
            yield ctx.violation(
                site.node, "R010",
                f"{name}() runs an SSSP at import time, before any "
                f"SPBudget can charge it; move it into a charging "
                f"function",
            )
            continue
        if caller in guards or caller not in uncharged:
            continue
        chain = " -> ".join(graph.path_to(uncharged, caller))
        yield ctx.violation(
            site.node, "R010",
            f"{name}() is reachable from the public API with no budget "
            f"charge anywhere on the path {chain}; every route into a "
            f"traversal must pass through SPBudget.charge",
        )
