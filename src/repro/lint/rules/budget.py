"""R004: every SSSP is charged to the budget ledger.

One SSSP computation is the paper's unit of cost (Problem 2); the
reproduction's Table 1-6 numbers are trustworthy only because every
traversal in the budgeted pipeline passes through
:meth:`repro.core.budget.SPBudget.charge`.  This rule makes the wiring
mechanical: outside the ``repro/graph/`` engine package, a direct call
to an SSSP entry point is legal only inside a function that also
charges a budget.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import FileContext
from repro.lint.registry import rule
from repro.lint.violation import Violation

#: The raw traversal entry points (one call = one SSSP of budgeted cost).
SSSP_ENTRY_POINTS = frozenset({
    "single_source_distances",
    "bfs_distances",
    "dijkstra_distances",
    "bfs_tree",
    "dijkstra_tree",
    "bfs_levels",
    "bfs_distances_fast",
    "all_pairs_distances",
    "all_sources_levels",
    # Incremental delta-BFS: a repair produces a full t2 level array, so
    # it *is* the second SSSP of a snapshot pair and charges like one
    # (the ledger counts SSSP results obtained, not edges scanned).
    "repair_levels",
    "levels_pair",
    "levels_pair_indexed",
    # Δ-aware pruned traversals: a level-cut BFS still obtains the
    # traversal's budgeted result (every level the output can depend on),
    # so it charges exactly like the full traversal it replaces — the
    # pruning layer must never become an uncharged side door.
    "bounded_bfs_levels",
    "csr_top_k_rows",
    # Bit-parallel multi-source BFS: one *source* in a batch is one SSSP
    # result of budgeted cost, exactly as if it ran alone — batching
    # amortises frontier sweeps, never charges (docs/budget-model.md).
    "msbfs_levels",
    "iter_msbfs_rows",
    "bfs_distances_many",
})

#: The engine package itself — the layer the entry points live in.
_ENGINE_PREFIX = "repro/graph/"

#: The exact ground-truth layer: computes the unbudgeted reference
#: answer (the paper's 2n-SSSP baseline) that budgeted algorithms are
#: *evaluated against* — by definition outside the budget model.
R004_GROUND_TRUTH_PATHS = frozenset({
    "repro/core/pairs.py",
    "repro/core/fastpairs.py",
})


#: Modules whose listed entry points count as SSSP work.  The CSR
#: ground-truth engine (``repro.core.fastpairs``) is included because
#: ``csr_top_k_rows`` runs O(n) traversals per call — importing it from
#: an uncharged context would bypass the whole budget model.
_ENTRY_POINT_MODULES = ("repro.graph", "repro.core.fastpairs")


def _is_entry_point(ctx: FileContext, func: ast.AST) -> bool:
    resolved = ctx.imports.resolve_node(func)
    if resolved is None:
        return False
    module, _, name = resolved.rpartition(".")
    return name in SSSP_ENTRY_POINTS and module.startswith(
        _ENTRY_POINT_MODULES
    )


@rule(
    "R004",
    "uncharged-sssp",
    summary="SSSP entry point called outside a budget-charging function",
    invariant="One SSSP = one unit of the paper's 2m budget; every "
              "traversal outside repro/graph must run in a function that "
              "charges SPBudget, so the audited ledger equals the true "
              "cost (docs/budget-model.md).",
)
def check_uncharged_sssp(ctx: FileContext) -> Iterator[Violation]:
    if ctx.path.startswith(_ENGINE_PREFIX) or ctx.path in R004_GROUND_TRUTH_PATHS:
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call) or not _is_entry_point(ctx, node.func):
            continue
        enclosing = ctx.enclosing_functions(node)
        if any(ctx.calls_method(fn, "charge") for fn in enclosing):
            continue
        name = node.func.attr if isinstance(node.func, ast.Attribute) else (
            node.func.id if isinstance(node.func, ast.Name) else "?"
        )
        yield ctx.violation(
            node, "R004",
            f"{name}() performs an SSSP but no enclosing function "
            f"charges an SPBudget; route it through a charging wrapper "
            f"in repro/core",
        )
