"""R009: strict-profile packages carry complete type annotations.

The mypy strict gate (``[[tool.mypy.overrides]]`` in ``pyproject.toml``)
only bites where mypy is installed.  This rule mirrors its
``disallow_untyped_defs`` / ``disallow_incomplete_defs`` core as an AST
check so the contract also holds in environments that run reprolint
alone — in particular it keeps the hardened ingest boundary
(``repro.ingest``) from regressing to untyped code.

Keep :data:`STRICT_PACKAGES` in sync with the override list in
``pyproject.toml``; ``tests/test_lint_rules.py`` pins the two together.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.lint.context import FileContext
from repro.lint.registry import rule
from repro.lint.violation import Violation

#: Path prefixes (relative to the lint root) held to the strict profile.
#: Mirrors the ``module`` list of the mypy strict override.
STRICT_PACKAGES: Tuple[str, ...] = (
    "repro/core/",
    "repro/graph/",
    "repro/ingest/",
    "repro/parallel/",
    "repro/resilience/",
    "repro/runtime/",
    "repro/service/",
)

#: First-parameter names that never need an annotation in a method.
_IMPLICIT_FIRST = frozenset({"self", "cls"})


def _in_strict_package(path: str) -> bool:
    return path.startswith(STRICT_PACKAGES)


def _is_method(node: ast.AST) -> bool:
    return isinstance(getattr(node, "parent", None), ast.ClassDef)


def _unannotated_params(node: ast.AST) -> Iterator[ast.arg]:
    """Parameters of ``node`` missing an annotation (self/cls excused)."""
    args = node.args
    positional = list(args.posonlyargs) + list(args.args)
    skip_first = (
        _is_method(node)
        and positional
        and positional[0].arg in _IMPLICIT_FIRST
        and not any(
            isinstance(dec, ast.Name) and dec.id == "staticmethod"
            for dec in node.decorator_list
        )
    )
    if skip_first:
        positional = positional[1:]
    for param in positional + list(args.kwonlyargs):
        if param.annotation is None:
            yield param
    for star in (args.vararg, args.kwarg):
        if star is not None and star.annotation is None:
            yield star


def _needs_return_annotation(node: ast.AST) -> bool:
    """Whether a missing ``->`` is a violation for this def.

    Mirrors mypy: ``__init__`` may omit the return annotation (its
    return type is always ``None``); everything else must state one.
    """
    return node.name != "__init__"


@rule(
    "R009",
    "untyped-def-in-strict-package",
    summary="incompletely annotated def in a mypy-strict package",
    invariant="The packages under the mypy strict profile (pyproject "
              "[[tool.mypy.overrides]]) stay fully annotated even where "
              "mypy is not installed; the ingest boundary in particular "
              "must not regress to untyped code (docs/static-analysis.md).",
)
def check_typed_defs(ctx: FileContext) -> Iterator[Violation]:
    if not _in_strict_package(ctx.path):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for param in _unannotated_params(node):
            yield ctx.violation(
                param, "R009",
                f"parameter {param.arg!r} of {node.name}() lacks a type "
                f"annotation (strict-profile package)",
            )
        if node.returns is None and _needs_return_annotation(node):
            yield ctx.violation(
                node, "R009",
                f"{node.name}() lacks a return annotation "
                f"(strict-profile package)",
            )
