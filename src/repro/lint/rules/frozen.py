"""R011: arrays handed out by the graph engine are frozen views.

Zero-copy shared-memory workers (ROADMAP item 1) only stay sound if
nothing downstream writes through a CSR or level array the engine
returned: those buffers are (or will be) shared pages.  The rule
taints every value produced by ``repro.graph.csr`` /
``repro.graph.incremental`` and flags any in-place write reached
without an explicit ``.copy()`` (or another materializing call) in
between — including writes that happen inside a helper the array was
merely *passed to*, via the mutates-parameter summaries.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.callgraph import CallGraph
from repro.lint.context import FileContext, dotted_name
from repro.lint.dataflow import (
    ProjectTaint,
    TaintPolicy,
    iter_writes,
    match_arguments,
)
from repro.lint.project import ProjectContext, walk_no_nested
from repro.lint.registry import project_rule
from repro.lint.violation import Violation

#: Modules whose return values are frozen engine views.
FROZEN_SOURCE_MODULES = ("repro.graph.csr", "repro.graph.incremental")

#: The engine files themselves own their buffers and may write freely.
_EXEMPT_PATHS = frozenset({
    "repro/graph/csr.py",
    "repro/graph/incremental.py",
})

#: Calls that materialize a private buffer, killing the view taint.
_SANITIZER_METHODS = frozenset({"copy", "astype", "tolist", "item", "sum"})
_SANITIZER_CALLS = frozenset({
    "numpy.array", "numpy.copy", "list", "tuple", "sorted", "len",
    "min", "max", "sum", "dict", "set", "frozenset",
})

#: numpy functions that may *alias* their input instead of copying.
_ALIASING_CALLS = frozenset({
    "numpy.asarray", "numpy.asanyarray", "numpy.ascontiguousarray",
    "numpy.atleast_1d", "numpy.ravel", "numpy.reshape", "numpy.transpose",
})

#: Names that hold scalars pulled off engine objects — never views.
_SCALAR_NAMES = frozenset({
    "num_nodes", "num_edges", "num_new_edges", "num_new_nodes",
    "source_index", "n", "m", "count", "total",
})


class FrozenViewPolicy(TaintPolicy):
    """Taint = "value produced by the graph engine"."""

    def call_is_source(
        self, ctx: FileContext, project: ProjectContext, call: ast.Call
    ) -> bool:
        callee = project.resolve_call(ctx, call.func)
        if callee is not None:
            return callee.module in FROZEN_SOURCE_MODULES
        resolved = ctx.imports.resolve_node(call.func)
        if resolved is None:
            return False
        canonical = project.canonical(resolved)
        return canonical.rpartition(".")[0] in FROZEN_SOURCE_MODULES

    def call_is_sanitizer(
        self, ctx: FileContext, project: ProjectContext, call: ast.Call
    ) -> bool:
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in _SANITIZER_METHODS:
            return True
        resolved = ctx.imports.resolve_node(func) or dotted_name(func)
        return resolved in _SANITIZER_CALLS

    def call_propagates(
        self, ctx: FileContext, project: ProjectContext, call: ast.Call
    ) -> bool:
        resolved = ctx.imports.resolve_node(call.func)
        return resolved in _ALIASING_CALLS

    def name_is_exempt(self, name: str) -> bool:
        return name in _SCALAR_NAMES


def _write_kind(node: ast.AST) -> str:
    if isinstance(node, ast.AugAssign):
        return "augmented assignment"
    if isinstance(node, (ast.Assign, ast.AnnAssign)):
        return "subscript assignment"
    return "in-place call"


@project_rule(
    "R011",
    "frozen-view-mutation",
    summary="write through a CSR/level array returned by the graph "
            "engine without .copy()",
    invariant="Arrays returned by repro.graph.csr / "
              "repro.graph.incremental are frozen views (the zero-copy "
              "shared-memory precondition); mutate a .copy(), never the "
              "view (docs/parallel.md).",
)
def check_frozen_view_mutation(
    project: ProjectContext, graph: CallGraph
) -> Iterator[Violation]:
    taint = ProjectTaint(project, FrozenViewPolicy())
    for info in project.iter_functions():
        if info.path in _EXEMPT_PATHS:
            continue
        flow = taint.analyze(info)
        for node, base in iter_writes(info.node):
            if not flow.expr_tainted(base):
                continue
            target = dotted_name(base) or "<view>"
            yield info.ctx.violation(
                node, "R011",
                f"{_write_kind(node)} mutates {target}, a frozen view "
                f"returned by the graph engine; write to a .copy() "
                f"instead",
            )
        # A tainted view handed to a helper that mutates that parameter
        # is a mutation at this call site.
        for node in walk_no_nested(info.node):
            if not isinstance(node, ast.Call):
                continue
            callee = project.resolve_call(info.ctx, node.func)
            if callee is None or callee.path in _EXEMPT_PATHS:
                continue
            summary = taint.summaries.get(callee.qualname)
            if summary is None or not summary.mutates:
                continue
            for param, arg in sorted(
                match_arguments(node, callee).items()
            ):
                if param in summary.mutates and flow.expr_tainted(arg):
                    yield info.ctx.violation(
                        node, "R011",
                        f"passes a frozen engine view to "
                        f"{callee.name}(), which writes through "
                        f"parameter '{param}'; pass a .copy()",
                    )
