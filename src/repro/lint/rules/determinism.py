"""R001/R002: seeded-only randomness, no wall-clock reads.

The reproduction's headline guarantee is byte-identical output for a
given seed at any worker count (docs/parallel.md).  Both rules close
the two classic leaks: entropy from an unseeded RNG and entropy from
the clock.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set, Tuple

from repro.lint.context import FileContext
from repro.lint.registry import rule
from repro.lint.violation import Violation

#: ``random.<fn>`` module-level functions that draw from the hidden
#: global RNG.  ``random.Random(seed)`` is the sanctioned alternative.
_STDLIB_GLOBAL_FNS = frozenset({
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "normalvariate", "lognormvariate",
    "expovariate", "betavariate", "gammavariate", "paretovariate",
    "weibullvariate", "vonmisesvariate", "triangular", "getrandbits",
    "randbytes", "seed",
})

#: ``numpy.random.<fn>`` legacy global-state functions.
_NUMPY_GLOBAL_FNS = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "bytes", "uniform",
    "normal", "standard_normal", "poisson", "binomial", "exponential",
    "beta", "gamma", "seed",
})

#: Constructors that are unseeded when called with no arguments.
_SEEDABLE_CTORS = frozenset({
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
})

#: Resolved callables that read the wall clock or a process clock.
_CLOCK_NAMES = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.localtime", "time.gmtime", "time.ctime", "time.asctime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Files allowed to touch clocks: the resilience layer's event/deadline
#: machinery, where elapsed wall time is the domain object itself (and
#: the clock is injectable for tests).
R002_ALLOWED_PATHS = frozenset({
    "repro/resilience/clock.py",
    "repro/resilience/events.py",
    "repro/resilience/policy.py",
})


def _is_seedless_call(call: ast.Call) -> bool:
    """No positional seed and no seed-like keyword."""
    if call.args:
        return False
    return not any(
        kw.arg in ("seed", "x") or kw.arg is None for kw in call.keywords
    )


@rule(
    "R001",
    "unseeded-randomness",
    summary="module-level or unseeded RNG use",
    invariant="All randomness flows from an explicit seed: construct "
              "random.Random(seed) / numpy.random.default_rng(seed) and "
              "thread it through (docs/parallel.md determinism contract).",
)
def check_unseeded_randomness(ctx: FileContext) -> Iterator[Violation]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.imports.resolve_node(node.func)
        if resolved is None:
            continue
        if resolved in _SEEDABLE_CTORS:
            if _is_seedless_call(node):
                yield ctx.violation(
                    node, "R001",
                    f"{resolved}() without a seed — nondeterministic; "
                    f"pass an explicit seed",
                )
            continue
        module, _, fn = resolved.rpartition(".")
        if module == "random" and fn in _STDLIB_GLOBAL_FNS:
            yield ctx.violation(
                node, "R001",
                f"random.{fn}() draws from the hidden global RNG; use a "
                f"seeded random.Random instance",
            )
        elif module == "numpy.random" and fn in _NUMPY_GLOBAL_FNS:
            yield ctx.violation(
                node, "R001",
                f"numpy.random.{fn}() uses numpy's legacy global state; "
                f"use a seeded numpy.random.default_rng(seed) Generator",
            )


@rule(
    "R002",
    "wall-clock-read",
    summary="clock read outside the resilience event layer",
    invariant="No wall-clock value may influence results, event payloads "
              "or checkpoints; elapsed-time concerns live behind the "
              "injectable clocks in repro.resilience (docs/resilience.md).",
)
def check_wall_clock(ctx: FileContext) -> Iterator[Violation]:
    if ctx.path in R002_ALLOWED_PATHS:
        return
    seen: Set[Tuple[int, int]] = set()
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.Attribute, ast.Name)):
            continue
        resolved = ctx.imports.resolve_node(node)
        if resolved not in _CLOCK_NAMES:
            continue
        where = (node.lineno, node.col_offset)
        if where in seen:
            continue
        seen.add(where)
        yield ctx.violation(
            node, "R002",
            f"{resolved} reads the clock; results must be clock-free "
            f"(inject a clock via repro.resilience if elapsed time is "
            f"the point)",
        )
