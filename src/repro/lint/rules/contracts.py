"""R007/R008/R014: checkpoint, pool-task, and shm-identity contracts.

R007 guards the resume contract: a checkpoint's identity may contain
only value-determining knobs, never execution-only ones (worker count,
retry policy, checkpoint paths) — otherwise rerunning with a different
pool size silently recomputes everything, or worse, resumes nothing.

R008 guards the process-pool contract: task functions cross a process
boundary, so they must be importable module-level functions; a lambda
or a closure pickles under ``fork`` by accident and then breaks the
moment ``spawn`` is the start method (macOS/Windows CI).

R014 (R008's companion for the shared-memory arena) guards segment
identity: a shm segment name must derive from the seeded run id
(:func:`repro.parallel.shm.derive_run_id`), never from wall-clock time,
``uuid``, or the parent's pid — a clock/pid-named segment breaks replay
determinism and, worse, collides across pid-recycled or clock-stepped
runs while the deterministic prober cannot see the conflict coming
(docs/parallel.md).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from repro.lint.context import FileContext, dotted_name
from repro.lint.registry import rule
from repro.lint.violation import Violation

#: ``ExperimentConfig`` fields that steer *how* a run executes but can
#: never change *what* it computes (see the field comments in
#: repro/experiments/config.py) — byte-identity across worker counts
#: and resume-after-crash both depend on keys excluding these.
EXECUTION_ONLY_FIELDS = frozenset({
    "workers", "checkpoint_dir", "resume", "max_retries",
    "retry_backoff_s", "deadline_s", "on_error",
})

#: Method names under which a CheckpointStore consumes a key.
_STORE_METHODS = frozenset({"put", "get", "contains", "delete"})


def _in_key_builder(ctx: FileContext, node: ast.AST) -> bool:
    return any(
        "key" in fn.name.lower() for fn in ctx.enclosing_functions(node)
    )


def _store_call_args(call: ast.Call) -> bool:
    """Whether ``call`` looks like ``<...store...>.put/get/...(key, ...)``."""
    func = call.func
    if not (isinstance(func, ast.Attribute) and func.attr in _STORE_METHODS):
        return False
    base = func.value
    name = base.id if isinstance(base, ast.Name) else (
        base.attr if isinstance(base, ast.Attribute) else ""
    )
    return "store" in name.lower()


@rule(
    "R007",
    "execution-config-in-checkpoint-key",
    summary="execution-only config field flows into a checkpoint key",
    invariant="Checkpoint keys contain only value-determining parameters; "
              "workers/retries/deadlines must never enter them, so a run "
              "resumes identically at any worker count "
              "(docs/parallel.md, docs/resilience.md).",
)
def check_checkpoint_key_purity(ctx: FileContext) -> Iterator[Violation]:
    flagged: Set[int] = set()

    def emit(node: ast.Attribute) -> Iterator[Violation]:
        if id(node) in flagged:
            return
        flagged.add(id(node))
        yield ctx.violation(
            node, "R007",
            f"execution-only field .{node.attr} must not flow into a "
            f"checkpoint key (it cannot change the computed value)",
        )

    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, ast.Attribute)
            and node.attr in EXECUTION_ONLY_FIELDS
            and isinstance(getattr(node, "ctx", None), ast.Load)
            and _in_key_builder(ctx, node)
        ):
            yield from emit(node)
        elif isinstance(node, ast.Call) and _store_call_args(node):
            key_args = node.args[:1]
            for arg in key_args:
                for sub in ast.walk(arg):
                    if (
                        isinstance(sub, ast.Attribute)
                        and sub.attr in EXECUTION_ONLY_FIELDS
                    ):
                        yield from emit(sub)


def _executor_names(ctx: FileContext) -> Set[str]:
    """Variables assigned from a ``ParallelExecutor(...)`` construction."""
    names: Set[str] = set()
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        resolved = ctx.imports.resolve_node(node.value.func)
        ctor = (resolved or "").rpartition(".")[2] or (
            node.value.func.id if isinstance(node.value.func, ast.Name) else ""
        )
        if ctor != "ParallelExecutor":
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _nested_function_names(ctx: FileContext, node: ast.AST) -> Set[str]:
    """Functions defined inside any function enclosing ``node``."""
    nested: Set[str] = set()
    for fn in ctx.enclosing_functions(node):
        for sub in ast.walk(fn):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)) and sub is not fn:
                nested.add(sub.name)
    return nested


@rule(
    "R008",
    "unpicklable-parallel-task",
    summary="lambda/closure passed as a ParallelExecutor task",
    invariant="Pool tasks cross a process boundary: they must be "
              "module-level functions so they pickle under the spawn "
              "start method, not just under fork (docs/parallel.md).",
)
def check_parallel_task_picklable(ctx: FileContext) -> Iterator[Violation]:
    executors = _executor_names(ctx)

    def is_executor_map(call: ast.Call) -> bool:
        func = call.func
        if not (isinstance(func, ast.Attribute) and func.attr == "map"):
            return False
        base = func.value
        if isinstance(base, ast.Name):
            return base.id in executors or "executor" in base.id.lower()
        if isinstance(base, ast.Call):
            resolved = ctx.imports.resolve_node(base.func) or ""
            return resolved.rpartition(".")[2] == "ParallelExecutor"
        return False

    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call) or not is_executor_map(node):
            continue
        task_args: List[ast.AST] = node.args[:1]
        for arg in task_args:
            if isinstance(arg, ast.Lambda):
                yield ctx.violation(
                    arg, "R008",
                    "lambda passed as a ParallelExecutor task; use a "
                    "module-level function (spawn-pickling safety)",
                )
            elif isinstance(arg, ast.Name) and arg.id in _nested_function_names(ctx, node):
                yield ctx.violation(
                    arg, "R008",
                    f"closure {arg.id}() passed as a ParallelExecutor "
                    f"task; hoist it to module level so it pickles under "
                    f"spawn",
                )


#: Call targets whose values change per run — the clock, uuids, process
#: ids.  A shm identity built from any of these cannot replay and may
#: collide in ways the deterministic suffix prober cannot anticipate.
_NONDET_SOURCES = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "uuid.uuid1", "uuid.uuid4",
    "os.getpid", "os.getppid",
})

#: Functions that construct shm identities: *any* argument is part of
#: the identity, so taint in any position is a violation.
_SHM_ID_BUILDERS = frozenset({"derive_run_id", "segment_name"})


def _call_tail(ctx: FileContext, call: ast.Call) -> str:
    """Last component of the (resolved, else literal) callee name."""
    resolved = ctx.imports.resolve_node(call.func)
    if resolved:
        return resolved.rpartition(".")[2]
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _is_nondet_call(ctx: FileContext, node: ast.Call) -> bool:
    name = ctx.imports.resolve_node(node.func) or dotted_name(node.func) or ""
    return name in _NONDET_SOURCES


def _contains_taint(
    ctx: FileContext, node: ast.AST, tainted: Set[str]
) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call) and _is_nondet_call(ctx, sub):
            return True
        if (
            isinstance(sub, ast.Name)
            and isinstance(sub.ctx, ast.Load)
            and sub.id in tainted
        ):
            return True
    return False


def _tainted_names(ctx: FileContext) -> Set[str]:
    """Names assigned (transitively) from a nondeterministic source."""
    tainted: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Assign):
                continue
            if not _contains_taint(ctx, node.value, tainted):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id not in tainted:
                    tainted.add(target.id)
                    changed = True
    return tainted


def _shm_sink_args(
    ctx: FileContext, call: ast.Call
) -> "List[Tuple[ast.AST, str]]":
    """``(expr, sink description)`` pairs naming a shm segment in ``call``."""
    tail = _call_tail(ctx, call)
    func = call.func
    out: List = []
    if tail == "ParallelExecutor":
        out.extend(
            (kw.value, "ParallelExecutor(shm_run_id=...)")
            for kw in call.keywords
            if kw.arg == "shm_run_id"
        )
    elif isinstance(func, ast.Attribute) and func.attr in (
        "publish", "maybe_publish"
    ):
        base = func.value
        base_name = base.id if isinstance(base, ast.Name) else (
            base.attr if isinstance(base, ast.Attribute) else (
                ctx.imports.resolve_node(base) or ""
            )
        )
        if "arena" in base_name.lower() or "SharedCsrArena" in (
            ctx.imports.resolve_node(base) or base_name
        ):
            out.extend(
                (kw.value, f"SharedCsrArena.{func.attr}(run_id=...)")
                for kw in call.keywords
                if kw.arg == "run_id"
            )
    elif tail == "SharedMemory":
        if call.args:
            out.append((call.args[0], "SharedMemory(name=...)"))
        out.extend(
            (kw.value, "SharedMemory(name=...)")
            for kw in call.keywords
            if kw.arg == "name"
        )
    elif tail in _SHM_ID_BUILDERS:
        out.extend((arg, f"{tail}(...)") for arg in call.args)
        out.extend((kw.value, f"{tail}(...)") for kw in call.keywords)
    return out


@rule(
    "R014",
    "nondeterministic-shm-segment-name",
    summary="clock/uuid/pid value flows into a shm segment identity",
    invariant="Shared-memory segment names derive from the seeded run id "
              "(repro.parallel.shm.derive_run_id), never from wall-clock "
              "time, uuid, or the parent's pid — replay determinism and "
              "collision-safe deterministic probing both depend on it "
              "(docs/parallel.md).",
)
def check_shm_segment_identity(ctx: FileContext) -> Iterator[Violation]:
    tainted = _tainted_names(ctx)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        for expr, where in _shm_sink_args(ctx, node):
            if _contains_taint(ctx, expr, tainted):
                yield ctx.violation(
                    expr, "R014",
                    f"nondeterministic value (clock/uuid/pid) flows into "
                    f"{where}; build shm segment identity from the seeded "
                    f"run id instead",
                )
