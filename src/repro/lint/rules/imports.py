"""R003: networkx is a test-only oracle, never a runtime dependency.

The differential-oracle suites compare our engines against networkx,
but the shipped package depends only on numpy/scipy — an accidental
``import networkx`` in ``src/`` would make the oracle check circular
and add a runtime dependency the install metadata does not declare.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import FileContext
from repro.lint.registry import rule
from repro.lint.violation import Violation


@rule(
    "R003",
    "networkx-outside-tests",
    summary="networkx imported in shipped code",
    invariant="networkx is the differential-test oracle only; production "
              "code must run on the in-repo graph engines (pyproject "
              "declares numpy/scipy as the only runtime dependencies).",
)
def check_networkx_import(ctx: FileContext) -> Iterator[Violation]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            names = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom) and node.module:
            names = [node.module]
        else:
            continue
        for name in names:
            if name == "networkx" or name.startswith("networkx."):
                yield ctx.violation(
                    node, "R003",
                    "networkx may only be imported under tests/ (it is "
                    "the differential oracle, not a runtime dependency)",
                )
                break
