"""R012: nondeterministic values must not reach durable identities.

R001/R002/R007 flag nondeterminism *at the source* (unseeded RNG,
clock reads, execution-only config fields).  R012 follows the value:
entropy from an unseeded RNG, a clock, or unordered ``set``/``dict``
iteration must not *flow into* a checkpoint key, a WAL record, or
ranked output — the three places where a nondeterministic byte breaks
resume, replay, or the paper's byte-identical-output guarantee.  A
sanctioned ordering boundary (``sorted``/``min``/``max``) kills the
taint; so does an explicit seed.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.callgraph import CallGraph
from repro.lint.context import FileContext, dotted_name
from repro.lint.dataflow import ProjectTaint, TaintPolicy
from repro.lint.project import FunctionInfo, ProjectContext, walk_no_nested
from repro.lint.registry import project_rule
from repro.lint.rules.determinism import (
    _CLOCK_NAMES,
    _NUMPY_GLOBAL_FNS,
    _SEEDABLE_CTORS,
    _STDLIB_GLOBAL_FNS,
    _is_seedless_call,
)
from repro.lint.violation import Violation

#: Iterating these without sorting yields hash-order entropy.
_UNORDERED_ITER_METHODS = frozenset({"keys", "values", "items"})

#: Ordering/reduction boundaries that make iteration order immaterial.
_SANITIZER_CALLS = frozenset({"sorted", "min", "max", "len", "sum"})

#: Function-name fragments marking ranked-output producers.
_RANKED_FRAGMENTS = ("top_k", "topk", "rank")


def _nondeterministic_call(ctx: FileContext, call: ast.Call) -> Optional[str]:
    """Why this call's result is nondeterministic, or ``None``."""
    resolved = ctx.imports.resolve_node(call.func)
    if resolved is not None:
        if resolved in _CLOCK_NAMES:
            return f"{resolved} (wall clock)"
        if resolved in _SEEDABLE_CTORS and _is_seedless_call(call):
            return f"{resolved} (unseeded RNG)"
        module, _, fn = resolved.rpartition(".")
        if module == "random" and fn in _STDLIB_GLOBAL_FNS:
            return f"random.{fn} (global RNG)"
        if module == "numpy.random" and fn in _NUMPY_GLOBAL_FNS:
            return f"numpy.random.{fn} (global RNG)"
    func = call.func
    if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
        return f"{func.id}() (unordered iteration)"
    if (
        isinstance(func, ast.Attribute)
        and func.attr in _UNORDERED_ITER_METHODS
        and not call.args
    ):
        base = dotted_name(func.value)
        # dict views are insertion-ordered, but the insertion order of
        # a dict built from parallel/merged results is not a contract;
        # only a sorted() boundary makes the order canonical.
        return f"{base or '<mapping>'}.{func.attr}() (unordered iteration)"
    return None


class DeterminismPolicy(TaintPolicy):
    """Taint = "value carries run-to-run entropy"."""

    def call_is_source(
        self, ctx: FileContext, project: ProjectContext, call: ast.Call
    ) -> bool:
        return _nondeterministic_call(ctx, call) is not None

    def expr_is_source(
        self, ctx: FileContext, project: ProjectContext, node: ast.AST
    ) -> bool:
        return isinstance(node, ast.Set)

    def call_is_sanitizer(
        self, ctx: FileContext, project: ProjectContext, call: ast.Call
    ) -> bool:
        func = call.func
        if isinstance(func, ast.Name) and func.id in _SANITIZER_CALLS:
            return True
        resolved = ctx.imports.resolve_node(func)
        return resolved == "builtins.sorted"

    def call_propagates(
        self, ctx: FileContext, project: ProjectContext, call: ast.Call
    ) -> bool:
        # ``"-".join(set(...))``, ``str(time.time())``: formatting an
        # entropic value keeps the entropy.
        func = call.func
        if isinstance(func, ast.Attribute):
            return func.attr in ("join", "format", "encode", "hexdigest")
        if isinstance(func, ast.Name):
            return func.id in ("str", "repr", "bytes", "hash", "tuple",
                               "list", "int", "float")
        return False


#: Wire-encoding entry points of the query service: every byte a client
#: sees passes through one of these, so they are durable-output sinks
#: exactly like WAL records (docs/service.md pins byte-identical
#: serving against the batch CLI).
_SERVICE_ENCODERS = frozenset({"encode_response", "encode_error"})


def _sink_call(call: ast.Call) -> Optional[str]:
    """The durable sink this call writes to, or ``None``."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        if isinstance(func, ast.Name):
            if func.id == "log_event":
                return "event log"
            if func.id in _SERVICE_ENCODERS:
                return "service response"
        return None
    base = func.value
    base_name = (
        base.id if isinstance(base, ast.Name)
        else base.attr if isinstance(base, ast.Attribute) else ""
    ).lower()
    if func.attr in ("put", "get", "contains", "delete") and "store" in base_name:
        return "checkpoint store key"
    if func.attr == "append" and "wal" in base_name:
        return "WAL record"
    if func.attr == "log_event":
        return "event log"
    if func.attr in _SERVICE_ENCODERS:
        return "service response"
    return None


def _is_key_builder(info: FunctionInfo) -> bool:
    return "key" in info.name.lower()


def _is_ranked_producer(info: FunctionInfo) -> bool:
    lowered = info.name.lower()
    return any(fragment in lowered for fragment in _RANKED_FRAGMENTS)


@project_rule(
    "R012",
    "nondeterminism-reaches-output",
    summary="unseeded RNG / clock / unordered-iteration value flows "
            "into a key, WAL record, or ranked output",
    invariant="Checkpoint keys, WAL records and ranked output are "
              "byte-deterministic: entropy sources (unseeded RNG, "
              "clocks, set/dict iteration order) must pass a sorted() "
              "or explicit-seed boundary before reaching them "
              "(docs/parallel.md, docs/resilience.md).",
)
def check_determinism_flow(
    project: ProjectContext, graph: CallGraph
) -> Iterator[Violation]:
    taint = ProjectTaint(project, DeterminismPolicy())
    for info in project.iter_functions():
        flow = taint.analyze(info)
        key_builder = _is_key_builder(info)
        ranked = _is_ranked_producer(info)
        for node in walk_no_nested(info.node):
            if isinstance(node, ast.Call):
                sink = _sink_call(node)
                if sink is None:
                    continue
                payload = list(node.args[:1] if sink == "checkpoint store key"
                               else node.args)
                if sink == "service response":
                    # The wire encoders take their payload (version,
                    # stale, result) as keywords.
                    payload += [
                        kw.value for kw in node.keywords
                        if kw.value is not None
                    ]
                for arg in payload:
                    if flow.expr_tainted(arg):
                        yield info.ctx.violation(
                            node, "R012",
                            f"nondeterministic value flows into a {sink}; "
                            f"pass it through sorted() or derive it from "
                            f"the seed",
                        )
                        break
            elif isinstance(node, ast.Return) and (key_builder or ranked):
                if node.value is not None and flow.expr_tainted(node.value):
                    what = "key" if key_builder else "ranked output"
                    yield info.ctx.violation(
                        node, "R012",
                        f"{info.name}() returns a {what} built from a "
                        f"nondeterministic value; order or seed it "
                        f"explicitly before returning",
                    )
