"""Rule modules; importing this package registers every rule.

Add a new rule by dropping a module here that uses
:func:`repro.lint.registry.rule` and importing it below.
"""

from repro.lint.rules import budget  # noqa: F401
from repro.lint.rules import budget_flow  # noqa: F401
from repro.lint.rules import capture  # noqa: F401
from repro.lint.rules import contracts  # noqa: F401
from repro.lint.rules import determinism  # noqa: F401
from repro.lint.rules import determinism_flow  # noqa: F401
from repro.lint.rules import frozen  # noqa: F401
from repro.lint.rules import imports  # noqa: F401
from repro.lint.rules import safety  # noqa: F401
from repro.lint.rules import typing_gate  # noqa: F401
