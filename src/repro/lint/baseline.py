"""The committed-violation baseline: legacy debt tracked, new debt fatal.

The baseline file records fingerprints of violations that predate the
linter (or were consciously deferred).  A lint run subtracts baselined
violations from its findings, so CI fails only on *new* breaches while
the legacy ones stay visible in one reviewable place.  Entries are
keyed on ``(code, path, line text)`` — not line numbers — so unrelated
edits don't churn the file.  ``--strict`` additionally fails on *stale*
entries (fixed violations must be removed from the baseline), keeping
the debt list honest in both directions.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.lint.violation import Violation

VERSION = 1


class Baseline:
    """A multiset of violation fingerprints with file persistence."""

    def __init__(self, entries: Sequence[tuple] = ()) -> None:
        self._entries: Counter = Counter(tuple(e) for e in entries)

    # ------------------------------------------------------------------
    @classmethod
    def from_violations(cls, violations: Sequence[Violation]) -> "Baseline":
        return cls([v.fingerprint() for v in violations])

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("version") != VERSION:
            raise ValueError(
                f"unsupported baseline version {payload.get('version')!r} "
                f"in {path}"
            )
        return cls(
            (e["code"], e["path"], e["line_text"])
            for e in payload.get("entries", ())
        )

    def save(self, path: Path) -> None:
        """Write the baseline deterministically (sorted, one entry/line)."""
        entries = [
            {"code": code, "path": rel, "line_text": text}
            for (code, rel, text), count in sorted(self._entries.items())
            for _ in range(count)
        ]
        payload = {"version": VERSION, "entries": entries}
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(self._entries.values())

    def entries(self) -> List[tuple]:
        """The raw fingerprints (sorted, with multiplicity)."""
        return [
            entry
            for entry, count in sorted(self._entries.items())
            for _ in range(count)
        ]

    def partition(
        self, violations: Sequence[Violation]
    ) -> Tuple[List[Violation], List[tuple]]:
        """Split findings into ``(new, stale_baseline_entries)``.

        A baselined fingerprint absorbs at most its recorded multiplicity
        of matching violations; the remainder are *new*.  Entries never
        matched are *stale* — their violation was fixed (or the line
        changed) and the baseline should be regenerated.
        """
        remaining: Counter = Counter(self._entries)
        new: List[Violation] = []
        for violation in violations:
            key = violation.fingerprint()
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
            else:
                new.append(violation)
        stale = [
            entry
            for entry, count in sorted(remaining.items())
            for _ in range(count)
        ]
        return new, stale
