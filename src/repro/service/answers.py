"""Pure answer computation for the query service's data verbs.

Every function here is a pure function of ``(checkpointed runtime
state, validated args)`` — no clocks, no RNG, no service counters — so
the served answer at state version ``V`` is byte-identical to what the
batch CLI (``repro query``) computes on the same recovered state.  The
server and the CLI both call these; the differential oracle test pins
the equality.

Two data verbs:

``topk``
    Global top-k converging pairs across every closed window: each
    canonical pair keeps its best recorded Δ (ties resolved toward the
    most recent window), then pairs are ranked by the library's
    standard ``(−Δ, repr)`` key.

``node``
    "Who is converging toward ``u``?" on the latest closed window's
    snapshot pair, computed fresh through the incremental delta-BFS
    substrate (one t1 traversal + one repair — 2 SSSPs, charged to an
    :class:`~repro.core.budget.SPBudget` like every other traversal in
    the system).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.core.budget import SPBudget
from repro.core.pairs import ConvergingPair, Node, Pair
from repro.graph.csr import UNREACHED
from repro.graph.incremental import SnapshotDelta, levels_pair_indexed
from repro.graph.validation import repair_snapshot_pair
from repro.runtime.engine import StreamRuntime
from repro.service.protocol import (
    E_BAD_REQUEST,
    QUERY_VERBS,
    ProtocolError,
)

#: Args accepted per data verb (anything else is a bad request).
_VERB_FIELDS: Dict[str, frozenset] = {
    "topk": frozenset({"k"}),
    "node": frozenset({"u", "k"}),
}


def validate_query_args(verb: str, args: Mapping[str, Any]) -> None:
    """Reject malformed data-verb args with :data:`E_BAD_REQUEST`.

    Validation happens at admission time, before the request occupies a
    queue slot — a garbage request must never cost a traversal.
    """
    if verb not in QUERY_VERBS:
        raise ProtocolError(E_BAD_REQUEST, f"{verb!r} is not a data verb")
    unknown = sorted(set(args) - _VERB_FIELDS[verb])
    if unknown:
        raise ProtocolError(
            E_BAD_REQUEST,
            f"verb {verb!r} does not accept arg(s): {', '.join(unknown)}",
        )
    k = args.get("k")
    if k is not None and (
        isinstance(k, bool) or not isinstance(k, int) or k < 1
    ):
        raise ProtocolError(
            E_BAD_REQUEST, f"'k' must be a positive integer, got {k!r}"
        )
    if verb == "node":
        if "u" not in args:
            raise ProtocolError(E_BAD_REQUEST, "verb 'node' requires 'u'")
        u = args["u"]
        if isinstance(u, bool) or not isinstance(u, (int, str)):
            raise ProtocolError(
                E_BAD_REQUEST,
                f"'u' must be an integer or string node id, got {u!r}",
            )


def compute_answer(
    runtime: StreamRuntime, verb: str, args: Mapping[str, Any]
) -> Dict[str, Any]:
    """The canonical answer object for one validated data query."""
    validate_query_args(verb, args)
    if verb == "topk":
        return topk_answer(runtime, k=args.get("k"))
    return node_answer(runtime, args["u"], k=args.get("k"))


def _pair_row(pair: ConvergingPair) -> List[Any]:
    return [pair.u, pair.v, pair.d1, pair.d2, pair.delta]


def topk_answer(
    runtime: StreamRuntime, k: Optional[int] = None
) -> Dict[str, Any]:
    """Global top-k converging pairs over every closed window."""
    if k is None:
        k = runtime.config.k
    best: Dict[Pair, Tuple[float, int, ConvergingPair]] = {}
    for window in runtime.windows:
        for pair in window.pairs:
            current = best.get(pair.pair)
            if (
                current is None
                or pair.delta > current[0]
                or (pair.delta == current[0] and window.index >= current[1])
            ):
                best[pair.pair] = (pair.delta, window.index, pair)
    ranked = sorted(
        (entry[2] for entry in best.values()),
        key=ConvergingPair.sort_key,
    )
    return {
        "k": k,
        "consumed": runtime.consumed,
        "windows": len(runtime.windows),
        "pairs": [_pair_row(pair) for pair in ranked[:k]],
    }


def node_answer(
    runtime: StreamRuntime, u: Node, k: Optional[int] = None
) -> Dict[str, Any]:
    """Top-k partners converging toward ``u`` on the latest window.

    Computes Δ(u, ·) fresh from the latest closed window's snapshot
    pair through one t1 traversal plus one delta-BFS repair.  The later
    snapshot is first projected onto the nearest valid superset of the
    earlier one (a no-op copy for well-formed windows), so the answer
    stays deterministic whatever the stream did.
    """
    if k is None:
        k = runtime.config.k
    window = runtime.latest_window()
    empty: Dict[str, Any] = {
        "u": u,
        "k": k,
        "present": False,
        "window": None,
        "partners": [],
    }
    if window is None:
        return empty
    empty["window"] = {
        "index": window.index, "start": window.start, "end": window.end,
    }
    g1, g2 = runtime.window_snapshots(window.index)
    g2_safe, _repair = repair_snapshot_pair(g1, g2)
    delta = SnapshotDelta.from_graphs(g1, g2_safe)
    source_idx = delta.source_index(u)
    if source_idx is None:
        return empty
    # One full t1 BFS plus one repair = the pair's two SSSPs; charged
    # like every traversal outside the engine (docs/budget-model.md).
    budget = SPBudget(limit=2)
    budget.charge("service", "g1", 1)
    budget.charge("service", "g2", 1)
    levels1, levels2 = levels_pair_indexed(delta, source_idx)
    aligned2 = levels2[delta.mapping]
    partners: List[ConvergingPair] = []
    for idx, node in enumerate(delta.csr1.nodes):
        if idx == source_idx:
            continue
        d1 = int(levels1[idx])
        if d1 == UNREACHED:
            continue
        d2 = int(aligned2[idx])
        if d2 == UNREACHED or d1 - d2 <= 0:
            continue
        partners.append(ConvergingPair(u, node, float(d1), float(d2)))
    partners.sort(key=lambda p: (-p.delta, repr(p.v)))
    return {
        "u": u,
        "k": k,
        "present": True,
        "window": empty["window"],
        "sssp": budget.spent,
        "partners": [
            [p.v, p.d1, p.d2, p.delta] for p in partners[:k]
        ],
    }
