"""Always-on convergence query service over the streaming runtime.

The durability half of the online story lives in :mod:`repro.runtime`
(WAL, checkpoints, kill-9 recovery); this package is the serving half:
a long-running asyncio daemon (``repro serve``) that embeds
:class:`~repro.runtime.engine.StreamRuntime` as its state engine and
answers global top-k and per-node convergence queries under
production-grade overload rules — bounded admission with deadline-aware
shedding, request coalescing, a version-keyed result cache, degraded
(stale-but-versioned) serving behind a circuit breaker, and graceful
drain.  See ``docs/service.md`` for the protocol and the degradation
ladder.
"""

from repro.service.admission import (
    AdmissionController,
    AdmissionReject,
    ResultCache,
    ServiceCounters,
    Ticket,
)
from repro.service.answers import (
    compute_answer,
    node_answer,
    topk_answer,
    validate_query_args,
)
from repro.service.client import ServiceClient, ServiceClientError, one_shot
from repro.service.protocol import (
    CONTROL_VERBS,
    ERROR_CODES,
    QUERY_VERBS,
    ProtocolError,
    Request,
    canonical_json,
    encode_error,
    encode_response,
    parse_request,
)
from repro.service.server import ConvergenceService, ServedAnswer

__all__ = [
    "AdmissionController",
    "AdmissionReject",
    "CONTROL_VERBS",
    "ConvergenceService",
    "ERROR_CODES",
    "ProtocolError",
    "QUERY_VERBS",
    "Request",
    "ResultCache",
    "ServedAnswer",
    "ServiceClient",
    "ServiceClientError",
    "ServiceCounters",
    "Ticket",
    "canonical_json",
    "compute_answer",
    "encode_error",
    "encode_response",
    "node_answer",
    "one_shot",
    "parse_request",
    "topk_answer",
    "validate_query_args",
]
