"""Wire protocol of the always-on convergence query service.

One request per line, one response per line, both compact sorted-key
JSON (the same canonical encoding the WAL uses), so any given answer
has exactly one byte representation — the property the differential
oracle (`tests/test_service_oracle.py`) compares against the batch CLI.

Request shape::

    {"id": "c1", "verb": "topk", "args": {"k": 5}, "deadline_ms": 100}

* ``verb`` — one of :data:`QUERY_VERBS` (data queries, answered from
  versioned state) or :data:`CONTROL_VERBS` (service operations);
* ``args`` — verb-specific object (optional, defaults empty);
* ``id`` — opaque client token echoed back verbatim (optional);
* ``deadline_ms`` — relative deadline budget; a request still queued
  when it expires is rejected *before* any computation runs.

Response shape::

    {"id": "c1", "ok": true, "version": 3, "stale": false,
     "result": {...}}
    {"id": "c1", "ok": false,
     "error": {"code": "over_capacity", "message": "..."}}

``version`` is the runtime's state version (windows closed so far);
``stale`` marks answers served while the advancement breaker is open
(degraded mode — the answer is still exact *for its version*).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

# ----------------------------------------------------------------------
# Verbs
# ----------------------------------------------------------------------
#: Data queries: pure functions of ``(state version, args)``, cacheable
#: and coalescible, byte-identical to ``repro query`` on the same state.
QUERY_VERBS: Tuple[str, ...] = ("topk", "node")

#: Service operations: advance the stream, report health, drain.
CONTROL_VERBS: Tuple[str, ...] = ("advance", "health")

VERBS: Tuple[str, ...] = QUERY_VERBS + CONTROL_VERBS

# ----------------------------------------------------------------------
# Structured error codes (distinct, pinned by tests)
# ----------------------------------------------------------------------
E_BAD_REQUEST = "bad_request"
E_UNKNOWN_VERB = "unknown_verb"
E_OVER_DEADLINE = "over_deadline"
E_OVER_CAPACITY = "over_capacity"
E_DRAINING = "draining"
E_SHED = "shed"
E_ADVANCE_FAILED = "advance_failed"
E_INTERNAL = "internal"

ERROR_CODES: Tuple[str, ...] = (
    E_BAD_REQUEST, E_UNKNOWN_VERB, E_OVER_DEADLINE, E_OVER_CAPACITY,
    E_DRAINING, E_SHED, E_ADVANCE_FAILED, E_INTERNAL,
)


class ProtocolError(ValueError):
    """A malformed request; carries the structured error code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


def canonical_json(payload: Any) -> str:
    """The one byte representation of a JSON value (sorted, compact)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def canonical_args(args: Mapping[str, Any]) -> str:
    """Canonical form of a request's args — the coalescing/cache key."""
    return canonical_json(dict(args))


@dataclass(frozen=True)
class Request:
    """One parsed, validated request."""

    verb: str
    args: Dict[str, Any] = field(default_factory=dict)
    request_id: Optional[Any] = None
    deadline_ms: Optional[int] = None

    @property
    def key(self) -> Tuple[str, str]:
        """The coalescing identity: ``(verb, canonical args)``."""
        return (self.verb, canonical_args(self.args))


def parse_request(line: str) -> Request:
    """Parse and validate one request line.

    Raises :class:`ProtocolError` with :data:`E_BAD_REQUEST` for
    malformed JSON / fields and :data:`E_UNKNOWN_VERB` for a verb the
    service does not speak.
    """
    try:
        payload = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(
            E_BAD_REQUEST, f"request is not valid JSON: {exc}"
        ) from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            E_BAD_REQUEST,
            f"request must be a JSON object, got {type(payload).__name__}",
        )
    unknown = sorted(
        set(payload) - {"verb", "args", "id", "deadline_ms"}
    )
    if unknown:
        raise ProtocolError(
            E_BAD_REQUEST, f"unknown request field(s): {', '.join(unknown)}"
        )
    verb = payload.get("verb")
    if not isinstance(verb, str):
        raise ProtocolError(E_BAD_REQUEST, "request lacks a string 'verb'")
    if verb not in VERBS:
        raise ProtocolError(
            E_UNKNOWN_VERB,
            f"unknown verb {verb!r}; known: {', '.join(VERBS)}",
        )
    args = payload.get("args", {})
    if not isinstance(args, dict):
        raise ProtocolError(
            E_BAD_REQUEST, f"'args' must be an object, got {args!r}"
        )
    deadline_ms = payload.get("deadline_ms")
    if deadline_ms is not None:
        if isinstance(deadline_ms, bool) or not isinstance(deadline_ms, int):
            raise ProtocolError(
                E_BAD_REQUEST,
                f"'deadline_ms' must be an integer, got {deadline_ms!r}",
            )
        if deadline_ms < 1:
            raise ProtocolError(
                E_BAD_REQUEST,
                f"'deadline_ms' must be >= 1, got {deadline_ms}",
            )
    return Request(
        verb=verb,
        args=args,
        request_id=payload.get("id"),
        deadline_ms=deadline_ms,
    )


def encode_response(
    request_id: Optional[Any],
    *,
    version: int,
    stale: bool,
    result: Any,
) -> str:
    """One successful response line (without the trailing newline)."""
    return canonical_json({
        "id": request_id,
        "ok": True,
        "version": version,
        "stale": stale,
        "result": result,
    })


def encode_error(
    request_id: Optional[Any], code: str, message: str
) -> str:
    """One error response line (without the trailing newline)."""
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    return canonical_json({
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": message},
    })
