"""A small blocking client for the query service.

Used by the CLI (``repro serve --status``) and by the test suites; the
service itself never imports this module.  One request per line, one
response per line — see :mod:`repro.service.protocol`.

:class:`ServiceClient` also exposes the raw send/receive surface the
fault-injection tests need (partial writes, half-open shutdowns), so
socket misuse scenarios are driven through the same code path a real
client would use.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Optional, Tuple, Union

from repro.service.protocol import canonical_json

#: ``("unix", path)`` or ``("tcp", host, port)``.
Address = Union[Tuple[str, str], Tuple[str, str, int]]


class ServiceClientError(RuntimeError):
    """The service hung up or answered with something unparseable."""


def _connect(address: Address, timeout: Optional[float]) -> socket.socket:
    if address[0] == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(address[1])
        return sock
    sock = socket.create_connection(
        (address[1], address[2]), timeout=timeout
    )
    return sock


class ServiceClient:
    """One persistent connection to a running service."""

    def __init__(self, address: Address, timeout: Optional[float] = 10.0):
        self.address = address
        self._sock = _connect(address, timeout)
        self._file = self._sock.makefile("rb")

    # ------------------------------------------------------------------
    # High-level request/response
    # ------------------------------------------------------------------
    def request(
        self,
        verb: str,
        args: Optional[Dict[str, Any]] = None,
        *,
        request_id: Optional[Any] = None,
        deadline_ms: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Send one request and return the decoded response object."""
        payload: Dict[str, Any] = {"verb": verb}
        if args:
            payload["args"] = args
        if request_id is not None:
            payload["id"] = request_id
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        self.send_line(canonical_json(payload))
        return self.recv_response()

    def recv_response(self) -> Dict[str, Any]:
        """Read and decode the next response line."""
        import json

        line = self.recv_line()
        try:
            response = json.loads(line)
        except ValueError as exc:
            raise ServiceClientError(
                f"undecodable response line: {line!r}"
            ) from exc
        if not isinstance(response, dict):
            raise ServiceClientError(f"non-object response: {response!r}")
        return response

    # ------------------------------------------------------------------
    # Raw surface (fault-injection tests drive these directly)
    # ------------------------------------------------------------------
    def send_line(self, line: str) -> None:
        self.send_bytes(line.encode("utf-8") + b"\n")

    def send_bytes(self, data: bytes) -> None:
        """Send raw bytes — possibly a *partial* request line."""
        self._sock.sendall(data)

    def recv_line(self) -> str:
        raw = self._file.readline()
        if not raw:
            raise ServiceClientError("service closed the connection")
        return raw.decode("utf-8").rstrip("\n")

    def shutdown_write(self) -> None:
        """Half-close: no more sends, reads stay open (fault tests)."""
        self._sock.shutdown(socket.SHUT_WR)

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def one_shot(
    address: Address,
    verb: str,
    args: Optional[Dict[str, Any]] = None,
    *,
    deadline_ms: Optional[int] = None,
    timeout: Optional[float] = 10.0,
) -> Dict[str, Any]:
    """Connect, send one request, return the response, disconnect."""
    with ServiceClient(address, timeout=timeout) as client:
        return client.request(verb, args, deadline_ms=deadline_ms)
