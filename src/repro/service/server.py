"""The always-on convergence query service.

:class:`ConvergenceService` embeds a
:class:`~repro.runtime.engine.StreamRuntime` as its state engine and
serves line-delimited JSON queries (:mod:`repro.service.protocol`) over
asyncio streams — TCP or a UNIX socket.  The request path is::

    line -> parse -> validate -> admission (bound / coalesce / deadline)
         -> version-keyed cache -> compute (answers.py) -> respond

Robustness properties, each pinned by tests:

* **Admission before compute** — malformed, over-capacity, and
  over-deadline requests are rejected with distinct structured error
  codes without ever touching the runtime (``tests/test_service_admission``).
* **Version-keyed serving** — every data answer is computed at (and
  stamped with) the runtime's ``state_version``; the cache is dropped by
  the runtime's ``on_advance`` callback the instant a window closes, so
  a served answer is byte-identical to the batch CLI (``repro query``)
  at the same version (``tests/test_service_oracle``).
* **Degraded mode** — advancement runs behind a dedicated
  :class:`~repro.runtime.breaker.CircuitBreaker` under the service's
  :class:`~repro.runtime.supervisor.Supervisor`; while the breaker is
  not closed, queries keep being answered from the last good version
  with ``stale: true`` on the envelope.
* **Shed before checkpoint** — a :class:`~repro.runtime.guards.
  ResourceGuard` breach rejects the whole queue (``shed``) and then
  flushes runtime state, mirroring the batch runtime's
  checkpoint-and-shed contract.
* **Graceful drain** — SIGTERM/SIGINT stop admission (``draining``),
  let queued and in-flight requests finish, flush WAL/checkpoint state,
  and only then close the listener.
"""

from __future__ import annotations

import asyncio
import signal
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple, Union

from repro.resilience.clock import monotonic
from repro.resilience.events import log_event
from repro.runtime.breaker import CLOSED, CircuitBreaker
from repro.runtime.engine import StreamRuntime, WindowResult
from repro.runtime.guards import ResourceGuard
from repro.runtime.supervisor import Heartbeat, Supervisor, SupervisorGivingUp
from repro.service.admission import (
    AdmissionController,
    AdmissionReject,
    ResultCache,
    ServiceCounters,
    Ticket,
)
from repro.service.answers import compute_answer, validate_query_args
from repro.service.protocol import (
    E_ADVANCE_FAILED,
    E_BAD_REQUEST,
    E_INTERNAL,
    E_SHED,
    QUERY_VERBS,
    ProtocolError,
    Request,
    canonical_json,
    encode_error,
    encode_response,
    parse_request,
)

#: ``("unix", path)`` or ``("tcp", host, port)``.
Address = Union[Tuple[str, str], Tuple[str, str, int]]

ChaosHook = Callable[[str], None]


def _no_chaos(point: str) -> None:
    """The production chaos hook: nothing ever fires."""


@dataclass(frozen=True)
class ServedAnswer:
    """One settled data/control answer: the response envelope's payload."""

    version: int
    stale: bool
    result: Any


class ConvergenceService:
    """Admission-controlled query serving over an embedded runtime.

    Parameters
    ----------
    runtime:
        The (already recovered) state engine.  The service takes over
        its ``on_advance`` slot to invalidate the result cache.
    capacity:
        Admission queue bound; arrival ``capacity + 1`` is rejected.
    advance_batches:
        Stream batches ingested per ``advance`` request (bounded so one
        control request cannot monopolise the worker).
    breaker:
        The *advancement* breaker (distinct from the runtime's repair
        breaker): failed ``advance`` requests trip it, and while it is
        not closed every query answer carries ``stale: true``.
    supervisor:
        Lifetime restart budget for advancement attempts.
    guard:
        Optional resource guard polled per request; a breach sheds the
        queue and then checkpoints.
    clock:
        Injectable monotonic clock for deadline accounting (never part
        of any payload).
    chaos:
        Injection-point hook (``service.request.mid``); the chaos suite
        SIGKILLs there.
    """

    def __init__(
        self,
        runtime: StreamRuntime,
        *,
        capacity: int = 64,
        advance_batches: int = 1,
        breaker: Optional[CircuitBreaker] = None,
        supervisor: Optional[Supervisor] = None,
        guard: Optional[ResourceGuard] = None,
        clock: Callable[[], float] = monotonic,
        chaos: Optional[ChaosHook] = None,
    ) -> None:
        if advance_batches < 1:
            raise ValueError(
                f"advance_batches must be >= 1, got {advance_batches}"
            )
        self.runtime = runtime
        self.advance_batches = advance_batches
        self.counters = ServiceCounters()
        self.cache = ResultCache(self.counters)
        self.controller = AdmissionController(
            capacity, clock=clock, counters=self.counters
        )
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            seed=runtime.config.seed + 1
        )
        self.supervisor = supervisor if supervisor is not None else Supervisor(
            max_restarts=1
        )
        self.guard = guard
        self.heartbeat = Heartbeat("service.advance", clock=clock)
        self._chaos = chaos if chaos is not None else _no_chaos
        self._worker_task: Optional["asyncio.Task[None]"] = None
        self._drain_requested = asyncio.Event()
        runtime.on_advance = self._on_advance

    # ------------------------------------------------------------------
    # Runtime hook
    # ------------------------------------------------------------------
    def _on_advance(self, version: int, window: WindowResult) -> None:
        """The runtime closed a window: drop every cached answer."""
        self.cache.invalidate(version)
        self.counters.advances += 1
        self.counters.requests_since_advance = 0

    # ------------------------------------------------------------------
    # Request intake (one call per request line)
    # ------------------------------------------------------------------
    async def handle_line(self, line: str) -> str:
        """Parse, admit, await, and encode one request line."""
        try:
            request = parse_request(line)
            if request.verb in QUERY_VERBS:
                validate_query_args(request.verb, request.args)
            elif request.verb == "advance":
                _validate_advance_args(request.args)
            elif request.args:
                raise ProtocolError(
                    E_BAD_REQUEST,
                    f"verb {request.verb!r} takes no args",
                )
        except ProtocolError as exc:
            self.counters.rejected_bad_request += 1
            request_id = _request_id_of(line)
            return encode_error(request_id, exc.code, str(exc))
        try:
            future = self.controller.submit(request)
        except AdmissionReject as exc:
            return encode_error(request.request_id, exc.code, str(exc))
        try:
            # Shield: a coalesced future may be shared with other
            # connections — one client hanging up must not cancel it.
            answer = await asyncio.shield(future)
        except AdmissionReject as exc:
            return encode_error(request.request_id, exc.code, str(exc))
        return encode_response(
            request.request_id,
            version=answer.version,
            stale=answer.stale,
            result=answer.result,
        )

    # ------------------------------------------------------------------
    # The worker (single consumer of the admission queue)
    # ------------------------------------------------------------------
    def start_worker(self) -> "asyncio.Task[None]":
        """Start the queue consumer (idempotent)."""
        if self._worker_task is None or self._worker_task.done():
            self._worker_task = asyncio.get_running_loop().create_task(
                self._worker()
            )
        return self._worker_task

    async def _worker(self) -> None:
        while True:
            ticket = await self.controller.next_ticket()
            if ticket is None:
                return
            self._handle_ticket(ticket)
            # Yield so connection coroutines can flush settled answers
            # before the next computation starts.
            await asyncio.sleep(0)

    def _handle_ticket(self, ticket: Ticket) -> None:
        if self.guard is not None and self.guard.check() is not None:
            # Shed the queue first, then persist: the guard fired
            # because resources are tight — reclaim them before doing
            # checkpoint work (mirrors the runtime's shed contract).
            breached = self.guard.breached
            self.controller.fail(
                ticket, E_SHED, f"queue shed: {breached}"
            )
            self.counters.shed += 1
            self.controller.shed(str(breached))
            self.runtime.flush()
            return
        self._chaos("service.request.mid")
        verb = ticket.request.verb
        try:
            if verb in QUERY_VERBS:
                self._serve_query(ticket)
            elif verb == "advance":
                self._serve_advance(ticket)
            else:
                self._serve_health(ticket)
        except ProtocolError as exc:
            self.counters.rejected_bad_request += 1
            self.controller.fail(ticket, exc.code, str(exc))
        except Exception as exc:  # noqa: BLE001 - the service must outlive
            # any single request; the failure is reported to the client
            # and audited, never swallowed silently.
            log_event(
                "service.request_failed",
                verb=verb,
                error=type(exc).__name__,
            )
            self.controller.fail(
                ticket, E_INTERNAL, f"{type(exc).__name__}: {exc}"
            )

    def _serve_query(self, ticket: Ticket) -> None:
        version = self.runtime.state_version
        result = self.cache.get(version, ticket.key)
        if result is None:
            result = compute_answer(
                self.runtime, ticket.request.verb, ticket.request.args
            )
            self.cache.put(version, ticket.key, result)
        self.counters.requests_since_advance += 1
        self.controller.resolve(
            ticket,
            ServedAnswer(version=version, stale=self.stale, result=result),
        )

    def _serve_advance(self, ticket: Ticket) -> None:
        batches = int(ticket.request.args.get("batches", self.advance_batches))
        if not self.breaker.allow():
            self.controller.fail(
                ticket,
                E_ADVANCE_FAILED,
                "advancement breaker is open; serving stale answers",
            )
            return
        try:
            report = self.supervisor.run(
                lambda: self.runtime.run(max_batches=batches),
                unit="service.advance",
            )
        except SupervisorGivingUp as exc:
            self.breaker.record_failure()
            log_event(
                "service.advance_failed",
                restarts=exc.restarts,
                error=type(exc.last_error).__name__,
            )
            self.controller.fail(ticket, E_ADVANCE_FAILED, str(exc))
            return
        self.breaker.record_success()
        self.heartbeat.beat()
        self.counters.requests_since_advance = 0
        self.controller.resolve(
            ticket,
            ServedAnswer(
                version=self.runtime.state_version,
                stale=self.stale,
                result={
                    "batches": batches,
                    "consumed": self.runtime.consumed,
                    "status": report.status,
                    "windows": len(self.runtime.windows),
                },
            ),
        )

    def _serve_health(self, ticket: Ticket) -> None:
        self.controller.resolve(
            ticket,
            ServedAnswer(
                version=self.runtime.state_version,
                stale=self.stale,
                result=self.health_payload(),
            ),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def stale(self) -> bool:
        """Whether answers are degraded (advancement breaker not closed)."""
        return self.breaker.state != CLOSED

    def health_payload(self) -> Dict[str, Any]:
        """Deterministic health snapshot: counters and states only.

        No wall-clock values appear here (R012): "heartbeat age" is
        expressed as requests served since the last successful advance,
        the service's natural clock.
        """
        return {
            "breaker": {
                "advance": self.breaker.state,
                "engine": self.runtime.breaker.state,
            },
            "consumed": self.runtime.consumed,
            "counters": self.counters.to_payload(),
            "draining": self.controller.draining,
            "heartbeat": {
                "advances": self.heartbeat.beats,
                "requests_since_advance": (
                    self.counters.requests_since_advance
                ),
            },
            "queue": {
                "capacity": self.controller.capacity,
                "depth": self.controller.depth,
            },
            "stale": self.stale,
            "version": self.runtime.state_version,
            "windows": len(self.runtime.windows),
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def request_drain(self) -> None:
        """Begin graceful shutdown (signal-handler safe)."""
        self.controller.begin_drain()
        self._drain_requested.set()

    async def drain(self) -> None:
        """Finish queued work, stop the worker, and flush durable state."""
        self.controller.begin_drain()
        self.controller.close()
        if self._worker_task is not None:
            await self._worker_task
        self.runtime.flush()
        log_event(
            "service.drained",
            served=self.counters.served,
            version=self.runtime.state_version,
        )

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                raw = await reader.readline()
                if not raw:
                    break
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                response = await self.handle_line(line)
                writer.write(response.encode("utf-8") + b"\n")
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # half-open / reset sockets are the client's problem
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def serve(
        self,
        address: Address,
        *,
        ready: Optional[Callable[[Address], None]] = None,
        install_signal_handlers: bool = True,
    ) -> None:
        """Listen on ``address`` until a drain is requested.

        ``address`` is ``("unix", path)`` or ``("tcp", host, port)``
        (port 0 binds an ephemeral port; ``ready`` receives the
        *resolved* address once the listener is up).
        """
        if address[0] == "unix":
            server = await asyncio.start_unix_server(
                self._handle_connection, path=address[1]
            )
            bound: Address = address
        else:
            server = await asyncio.start_server(
                self._handle_connection, host=address[1], port=address[2]
            )
            sock = server.sockets[0].getsockname()
            bound = ("tcp", sock[0], sock[1])
        if install_signal_handlers:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self.request_drain)
                except (NotImplementedError, RuntimeError):
                    # Platforms / nested loops without signal support
                    # still drain via request_drain() or ``drain()``.
                    break
        self.start_worker()
        log_event("service.listening", address=canonical_json(list(bound)))
        if ready is not None:
            ready(bound)
        try:
            await self._drain_requested.wait()
            await self.drain()
        finally:
            server.close()
            await server.wait_closed()


def _request_id_of(line: str) -> Any:
    """Best-effort ``id`` echo for errors on unparseable requests."""
    import json

    try:
        payload = json.loads(line)
    except ValueError:
        return None
    if isinstance(payload, dict):
        return payload.get("id")
    return None


def _validate_advance_args(args: Dict[str, Any]) -> None:
    unknown = sorted(set(args) - {"batches"})
    if unknown:
        raise ProtocolError(
            E_BAD_REQUEST,
            f"verb 'advance' does not accept arg(s): {', '.join(unknown)}",
        )
    batches = args.get("batches")
    if batches is not None and (
        isinstance(batches, bool) or not isinstance(batches, int)
        or batches < 1
    ):
        raise ProtocolError(
            E_BAD_REQUEST,
            f"'batches' must be a positive integer, got {batches!r}",
        )
