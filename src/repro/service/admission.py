"""Admission control for the query service: bound, shed, coalesce, cache.

Everything between "a request line arrived" and "a computation may run"
lives here, so the service's overload behaviour is a property of one
small module:

* **Bounded queue** — at most ``capacity`` requests wait at once; the
  next arrival is rejected with :data:`~repro.service.protocol.
  E_OVER_CAPACITY` *at submit time*, before it allocates anything.
* **Deadline-aware shedding** — a request still queued when its
  ``deadline_ms`` budget elapses is rejected with
  :data:`~repro.service.protocol.E_OVER_DEADLINE` the moment the worker
  reaches it, never computed.  The clock is injectable (tests advance a
  fake; production uses :func:`repro.resilience.clock.monotonic`) and is
  never part of any payload.
* **Coalescing** — a data query identical (same verb, same canonical
  args) to one already admitted attaches to the in-flight computation's
  future without occupying a queue slot.
* **Version-keyed result cache** — answers are cached under
  ``(state_version, verb, canonical args)`` and the whole cache is
  dropped exactly when the runtime closes a window (the server wires
  :meth:`ResultCache.invalidate` to the runtime's ``on_advance``).
* **Counters, not clocks** — every decision increments a counter on
  :class:`ServiceCounters`; the ``health`` verb serves those counters
  verbatim, so the health payload is deterministic under a fixed
  request sequence.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Optional, Tuple

from repro.resilience.clock import monotonic
from repro.resilience.events import log_event
from repro.service.protocol import (
    E_DRAINING,
    E_OVER_CAPACITY,
    E_OVER_DEADLINE,
    E_SHED,
    QUERY_VERBS,
    Request,
)

#: The coalescing/cache identity of a data query.
QueryKey = Tuple[str, str]


class AdmissionReject(Exception):
    """A request turned away before any computation ran."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


@dataclass
class ServiceCounters:
    """Monotonic decision counters; the ``health`` payload serves these.

    Counters only — no timestamps, no durations — so the payload stays
    deterministic (R012) under a fixed request sequence.
    """

    admitted: int = 0
    served: int = 0
    coalesced: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    rejected_bad_request: int = 0
    rejected_over_capacity: int = 0
    rejected_over_deadline: int = 0
    rejected_draining: int = 0
    shed: int = 0
    advances: int = 0
    requests_since_advance: int = 0

    def to_payload(self) -> Dict[str, int]:
        """Sorted-key snapshot for the ``health`` verb."""
        return {key: int(value) for key, value in sorted(vars(self).items())}


@dataclass
class Ticket:
    """One admitted request waiting for (or undergoing) computation."""

    request: Request
    future: "asyncio.Future[Any]"
    expires_at: Optional[float] = None

    @property
    def key(self) -> QueryKey:
        return self.request.key


@dataclass
class ResultCache:
    """Version-keyed answer cache.

    Entries are valid for exactly one state version; the server calls
    :meth:`invalidate` from the runtime's ``on_advance`` callback, so
    the cache can never serve an answer from a superseded version.
    """

    counters: ServiceCounters
    version: int = -1
    _entries: Dict[QueryKey, Any] = field(default_factory=dict)

    def invalidate(self, version: int) -> None:
        """Advance to ``version``, dropping every cached answer."""
        if version != self.version:
            self._entries.clear()
            self.version = version

    def get(self, version: int, key: QueryKey) -> Optional[Any]:
        if version == self.version and key in self._entries:
            self.counters.cache_hits += 1
            return self._entries[key]
        self.counters.cache_misses += 1
        return None

    def put(self, version: int, key: QueryKey, result: Any) -> None:
        if version != self.version:
            self.invalidate(version)
        self._entries[key] = result

    def __len__(self) -> int:
        return len(self._entries)


class AdmissionController:
    """The bounded, deadline-aware, coalescing admission queue.

    ``submit`` either returns a future that will carry the answer (or a
    structured rejection) or raises :class:`AdmissionReject`
    synchronously — over-capacity and draining rejections never touch
    the queue.  A single worker drains tickets via :meth:`next_ticket`
    and settles them with :meth:`resolve` / :meth:`fail`.
    """

    def __init__(
        self,
        capacity: int,
        *,
        clock: Callable[[], float] = monotonic,
        counters: Optional[ServiceCounters] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.clock = clock
        self.counters = counters if counters is not None else ServiceCounters()
        self._queue: Deque[Ticket] = deque()
        self._inflight: Dict[QueryKey, "asyncio.Future[Any]"] = {}
        self._wakeup = asyncio.Event()
        self._draining = False
        self._closed = False

    # ------------------------------------------------------------------
    # Intake
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Requests currently queued (excludes coalesced attachments)."""
        return len(self._queue)

    @property
    def draining(self) -> bool:
        return self._draining

    def submit(self, request: Request) -> "asyncio.Future[Any]":
        """Admit, coalesce, or reject one parsed request.

        Raises :class:`AdmissionReject` (``draining`` /
        ``over_capacity``) without enqueuing anything; otherwise returns
        the future that will carry the request's outcome.
        """
        if self._draining:
            self.counters.rejected_draining += 1
            raise AdmissionReject(
                E_DRAINING, "service is draining; no new requests"
            )
        if request.verb in QUERY_VERBS:
            shared = self._inflight.get(request.key)
            if shared is not None and not shared.done():
                self.counters.coalesced += 1
                return shared
        if len(self._queue) >= self.capacity:
            self.counters.rejected_over_capacity += 1
            raise AdmissionReject(
                E_OVER_CAPACITY,
                f"admission queue is full ({self.capacity} waiting)",
            )
        future: "asyncio.Future[Any]" = (
            asyncio.get_running_loop().create_future()
        )
        expires_at = (
            None
            if request.deadline_ms is None
            else self.clock() + request.deadline_ms / 1000.0
        )
        ticket = Ticket(request=request, future=future, expires_at=expires_at)
        self._queue.append(ticket)
        if request.verb in QUERY_VERBS:
            self._inflight[request.key] = future
        self.counters.admitted += 1
        self._wakeup.set()
        return future

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    async def next_ticket(self) -> Optional[Ticket]:
        """The next live ticket, or ``None`` once closed and drained.

        Tickets whose deadline elapsed while queued are settled with
        ``over_deadline`` here — the caller only ever sees work that is
        still worth doing.
        """
        while True:
            while not self._queue:
                if self._closed:
                    return None
                self._wakeup.clear()
                await self._wakeup.wait()
            ticket = self._queue.popleft()
            if (
                ticket.expires_at is not None
                and self.clock() >= ticket.expires_at
            ):
                self.counters.rejected_over_deadline += 1
                self.fail(
                    ticket,
                    E_OVER_DEADLINE,
                    "deadline elapsed while queued; not computed",
                )
                continue
            return ticket

    def resolve(self, ticket: Ticket, result: Any) -> None:
        """Settle a ticket (and every coalesced follower) with a result."""
        self._settle(ticket)
        if not ticket.future.done():
            ticket.future.set_result(result)
        self.counters.served += 1

    def fail(self, ticket: Ticket, code: str, message: str) -> None:
        """Settle a ticket with a structured rejection."""
        self._settle(ticket)
        if not ticket.future.done():
            ticket.future.set_exception(AdmissionReject(code, message))

    def _settle(self, ticket: Ticket) -> None:
        if self._inflight.get(ticket.key) is ticket.future:
            del self._inflight[ticket.key]

    # ------------------------------------------------------------------
    # Overload / shutdown transitions
    # ------------------------------------------------------------------
    def shed(self, reason: str) -> int:
        """Reject every queued ticket (resource breach); returns count.

        In-flight work is untouched — shedding reclaims the queue, it
        does not abandon computations already running.
        """
        dropped = 0
        while self._queue:
            ticket = self._queue.popleft()
            self.fail(ticket, E_SHED, f"queue shed: {reason}")
            dropped += 1
        self.counters.shed += dropped
        if dropped:
            log_event("service.shed", reason=reason, dropped=dropped)
        return dropped

    def begin_drain(self) -> None:
        """Stop admitting; queued and in-flight requests still finish."""
        if not self._draining:
            self._draining = True
            log_event("service.draining", depth=len(self._queue))

    def close(self) -> None:
        """Release the worker once the queue empties."""
        self._closed = True
        self._wakeup.set()
