"""Experiment E-F3 — Figure 3: classifiers vs the best single algorithm.

For every dataset: coverage-vs-budget curves of the local classifier, the
global classifier, and the dataset's best single-feature algorithm (which
differs per dataset — that is the point of learning a combination).

Paper shape: both classifiers catch up with the best single algorithm
despite their 3·2l landmark set-up handicap; the global classifier lags
only on the odd-one-out Actors dataset, whose regime is underrepresented
in its pooled training data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import curve_block
from repro.experiments.runner import budget_sweep, coverage_cell, get_context
from repro.selection import SINGLE_FEATURE_SELECTORS


@dataclass
class Figure3Result:
    """Per-dataset: the chosen best algorithm and the three curves."""

    offset: int
    best_algorithm: Dict[str, str]
    curves: Dict[str, Dict[str, List[Tuple[int, float]]]]


def _best_single_algorithm(
    ctx, offset: int, config: ExperimentConfig
) -> str:
    """The single-feature algorithm with top coverage at the fixed budget."""
    scores = {
        name: coverage_cell(ctx, name, config.budget, offset, config)
        for name in SINGLE_FEATURE_SELECTORS
    }
    return max(scores, key=lambda n: (scores[n], n))


def run(config: ExperimentConfig, offset: int = 1) -> Figure3Result:
    """Sweep budgets for L-/G-Classifier and the per-dataset best."""
    best: Dict[str, str] = {}
    curves: Dict[str, Dict[str, List[Tuple[int, float]]]] = {}
    for name in config.datasets:
        ctx = get_context(name, config.scale)
        best[name] = _best_single_algorithm(ctx, offset, config)
        curves[name] = budget_sweep(
            ctx,
            ("L-Classifier", "G-Classifier", best[name]),
            offset,
            config,
        )
    return Figure3Result(offset=offset, best_algorithm=best, curves=curves)


def render(result: Figure3Result) -> str:
    """Text rendering: three series per dataset."""
    lines = [
        f"Figure 3: classifiers vs best single algorithm "
        f"(δ = Δmax-{result.offset})"
    ]
    for dataset, series in result.curves.items():
        lines.append(f"{dataset} (best single: {result.best_algorithm[dataset]}):")
        for name, curve in series.items():
            lines.append(curve_block(name, curve))
    return "\n".join(lines)
