"""Experiment E-T3 — Table 3: pair-graph characteristics.

For every dataset and δ threshold (Δmax, Δmax−1, Δmax−2), the size of the
pair graph ``G^p_k``: number of top-k pairs, number of distinct
endpoints, and the size of the greedy vertex cover ("maxcover").  The
paper's headline structural fact — the top-k pairs are covered by a
*tiny* node set (e.g. DBLP: 68 pairs, 68 endpoints, 12-node cover) — is
asserted by the accompanying benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table
from repro.experiments.runner import get_context


@dataclass
class Table3Row:
    """``G^p_k`` statistics at one (dataset, δ) cell."""

    dataset: str
    offset: int
    delta_min: float
    pairs: int
    endpoints: int
    maxcover: int


def run(config: ExperimentConfig) -> List[Table3Row]:
    """Compute Table 3 for every dataset and configured δ offset."""
    rows: List[Table3Row] = []
    for name in config.datasets:
        ctx = get_context(name, config.scale)
        for offset in ctx.distinct_offsets(config.delta_offsets):
            truth = ctx.truth_at_offset(offset)
            rows.append(
                Table3Row(
                    dataset=name,
                    offset=offset,
                    delta_min=truth.delta_min,
                    pairs=truth.k,
                    endpoints=truth.pair_graph.num_endpoints,
                    maxcover=len(truth.greedy_cover),
                )
            )
    return rows


def render(rows: List[Table3Row]) -> str:
    """Paper-layout text table."""
    return format_table(
        headers=("Dataset", "δ", "pairs", "endpoints", "maxcover"),
        rows=[
            (r.dataset, f"Δ-{r.offset} ({r.delta_min:g})", r.pairs,
             r.endpoints, r.maxcover)
            for r in rows
        ],
        title="Table 3: G^p_k characteristics and greedy cover size",
    )
