"""Ablation experiments for the design choices DESIGN.md calls out.

Not tables from the paper, but claims the paper makes in passing that are
worth pinning down experimentally:

* **A-1, landmark count** — "we fix the number l of landmarks to 10 ...
  a larger number of landmarks did not improve the performance": sweep l
  for SumDiff and MMSD at a fixed budget.  (Note the trade-off is real:
  at fixed m, more landmarks means fewer score-ranked candidates.)
* **A-2, landmark seeding** — the hybrid motivation: with the scoring
  norm held fixed (SumDiff), compare random vs MaxMin vs MaxAvg landmark
  seeding across the budget sweep.
* **A-3, IncBet estimator** — the paper grants IncBet exact edge
  betweenness; sweep the sampled-pivot estimator of [14] to show how
  coverage degrades with cheaper estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.algorithm import find_top_k_converging_pairs
from repro.core.evaluation import candidate_pair_coverage
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table, percent, percent_label
from repro.experiments.runner import coverage_cell, get_context
from repro.selection import get_selector


@dataclass
class LandmarkCountResult:
    """A-1: coverage per (algorithm, l) at the fixed budget."""

    dataset: str
    offset: int
    budget: int
    coverage: Dict[Tuple[str, int], float]
    landmark_counts: Tuple[int, ...]


def run_landmark_count(
    config: ExperimentConfig,
    dataset: str = "facebook",
    offset: int = 1,
    landmark_counts: Sequence[int] = (2, 5, 10, 15, 20),
) -> LandmarkCountResult:
    """Sweep the landmark count for SumDiff and MMSD."""
    ctx = get_context(dataset, config.scale)
    truth = ctx.truth_at_offset(offset)
    coverage: Dict[Tuple[str, int], float] = {}
    for name in ("SumDiff", "MMSD"):
        for l in landmark_counts:
            scores = []
            for r in range(config.repeats):
                selector = get_selector(name, num_landmarks=l)
                result = find_top_k_converging_pairs(
                    ctx.g1, ctx.g2, k=max(truth.k, 1), m=config.budget,
                    selector=selector, seed=config.seed + r, validate=False,
                )
                scores.append(
                    candidate_pair_coverage(result.candidates, truth.pairs)
                )
            coverage[(name, l)] = sum(scores) / len(scores)
    return LandmarkCountResult(
        dataset=dataset,
        offset=offset,
        budget=config.budget,
        coverage=coverage,
        landmark_counts=tuple(landmark_counts),
    )


def render_landmark_count(result: LandmarkCountResult) -> str:
    """Coverage-by-l table."""
    headers = ["Algorithm"] + [f"l={l}" for l in result.landmark_counts]
    rows = []
    for name in ("SumDiff", "MMSD"):
        rows.append(
            [name]
            + [percent(result.coverage[(name, l)]) for l in result.landmark_counts]
        )
    return format_table(
        headers=headers,
        rows=rows,
        title=(
            f"Ablation A-1 ({result.dataset}, m={result.budget}): "
            "coverage (%) vs landmark count"
        ),
    )


@dataclass
class SeedingResult:
    """A-2: SumDiff scoring under the three landmark seeding policies."""

    dataset: str
    offset: int
    curves: Dict[str, List[Tuple[int, float]]]


def run_landmark_seeding(
    config: ExperimentConfig, dataset: str = "internet", offset: int = 1
) -> SeedingResult:
    """Random vs MaxMin vs MaxAvg seeding, SumDiff norm held fixed."""
    ctx = get_context(dataset, config.scale)
    truth = ctx.truth_at_offset(offset)
    policies = {"random": "SumDiff", "MaxMin": "MMSD", "MaxAvg": "MASD"}
    curves: Dict[str, List[Tuple[int, float]]] = {}
    for label, name in policies.items():
        curves[label] = [
            (m, coverage_cell(ctx, name, m, offset, config))
            for m in config.budget_sweep
        ]
    return SeedingResult(dataset=dataset, offset=offset, curves=curves)


def render_landmark_seeding(result: SeedingResult) -> str:
    """One coverage series per seeding policy."""
    lines = [
        f"Ablation A-2 ({result.dataset}): SumDiff scoring, landmark "
        "seeding policy"
    ]
    for label, curve in result.curves.items():
        points = ", ".join(f"m={m}: {percent_label(c)}" for m, c in curve)
        lines.append(f"  {label:8s} {points}")
    return "\n".join(lines)


@dataclass
class IncBetPivotResult:
    """A-3: IncBet coverage per betweenness-estimator pivot count."""

    dataset: str
    offset: int
    budget: int
    coverage: Dict[str, float]


def run_incbet_pivots(
    config: ExperimentConfig,
    dataset: str = "dblp",
    offset: int = 1,
    pivot_counts: Sequence[int] = (16, 64, 256),
) -> IncBetPivotResult:
    """Sampled-pivot IncBet vs the exact-betweenness version."""
    ctx = get_context(dataset, config.scale)
    truth = ctx.truth_at_offset(offset)
    coverage: Dict[str, float] = {}
    for pivots in list(pivot_counts) + [None]:
        selector = get_selector("IncBet", pivots=pivots)
        result = find_top_k_converging_pairs(
            ctx.g1, ctx.g2, k=max(truth.k, 1), m=config.budget,
            selector=selector, seed=config.seed, validate=False,
        )
        label = "exact" if pivots is None else f"pivots={pivots}"
        coverage[label] = candidate_pair_coverage(result.candidates, truth.pairs)
    return IncBetPivotResult(
        dataset=dataset, offset=offset, budget=config.budget, coverage=coverage
    )


def render_incbet_pivots(result: IncBetPivotResult) -> str:
    """Coverage per estimator fidelity."""
    return format_table(
        headers=("estimator", "coverage %"),
        rows=[(label, percent(c)) for label, c in result.coverage.items()],
        title=(
            f"Ablation A-3 ({result.dataset}, m={result.budget}): IncBet "
            "betweenness estimator fidelity"
        ),
    )


@dataclass
class CoverQualityRow:
    """A-5: greedy vs exact cover on one G^p_k instance."""

    dataset: str
    delta_min: float
    pairs: int
    greedy_size: int
    exact_size: int


def run_cover_quality(
    config: ExperimentConfig, max_pairs: int = 150
) -> List[CoverQualityRow]:
    """Quantify the greedy cover's gap to the true optimum.

    The paper leans on the classical guarantee ("a logarithmic
    approximation ratio, that works well in practice"); this ablation
    computes the exact minimum cover (branch and bound) on every catalog
    ``G^p_k`` small enough and reports the actual gap.
    """
    from repro.core.cover import exact_min_vertex_cover

    rows: List[CoverQualityRow] = []
    for name in config.datasets:
        ctx = get_context(name, config.scale)
        for offset in ctx.distinct_offsets(config.delta_offsets):
            truth = ctx.truth_at_offset(offset)
            if not 0 < truth.k <= max_pairs:
                continue
            exact = exact_min_vertex_cover(truth.pair_graph,
                                           max_pairs=max_pairs)
            rows.append(
                CoverQualityRow(
                    dataset=name,
                    delta_min=truth.delta_min,
                    pairs=truth.k,
                    greedy_size=len(truth.greedy_cover),
                    exact_size=len(exact),
                )
            )
    return rows


def render_cover_quality(rows: List[CoverQualityRow]) -> str:
    """Greedy-vs-optimal cover table."""
    return format_table(
        headers=("Dataset", "δ", "pairs", "greedy", "optimal", "ratio"),
        rows=[
            (r.dataset, f"{r.delta_min:g}", r.pairs, r.greedy_size,
             r.exact_size,
             f"{r.greedy_size / max(r.exact_size, 1):.2f}")
            for r in rows
        ],
        title="Ablation A-5: greedy cover vs exact minimum vertex cover",
    )


@dataclass
class VarianceRow:
    """A-6: coverage mean and spread across selector seeds."""

    selector: str
    dataset: str
    mean: float
    std: float
    minimum: float
    maximum: float


def run_seed_variance(
    config: ExperimentConfig,
    offset: int = 1,
    num_seeds: int = 10,
    selectors: Sequence[str] = ("SumDiff", "MMSD", "MASD"),
) -> List[VarianceRow]:
    """Coverage stability of the randomised selectors across seeds.

    The paper reports point estimates; this ablation quantifies how much
    landmark-sampling randomness moves them at the fixed budget.
    """
    import numpy as np

    from repro.core.evaluation import candidate_pair_coverage

    rows: List[VarianceRow] = []
    for name in config.datasets:
        ctx = get_context(name, config.scale)
        truth = ctx.truth_at_offset(offset)
        if truth.k == 0:
            continue
        for selector_name in selectors:
            scores = []
            for seed in range(num_seeds):
                selector = get_selector(
                    selector_name, num_landmarks=config.num_landmarks
                )
                result = find_top_k_converging_pairs(
                    ctx.g1, ctx.g2, k=truth.k, m=config.budget,
                    selector=selector, seed=config.seed + seed,
                    validate=False,
                )
                scores.append(
                    candidate_pair_coverage(result.candidates, truth.pairs)
                )
            rows.append(
                VarianceRow(
                    selector=selector_name,
                    dataset=name,
                    mean=float(np.mean(scores)),
                    std=float(np.std(scores)),
                    minimum=float(np.min(scores)),
                    maximum=float(np.max(scores)),
                )
            )
    return rows


def render_seed_variance(rows: List[VarianceRow]) -> str:
    """Coverage stability table."""
    return format_table(
        headers=("Selector", "dataset", "mean %", "std %", "min %", "max %"),
        rows=[
            (r.selector, r.dataset, percent(r.mean), percent(r.std),
             percent(r.minimum), percent(r.maximum))
            for r in rows
        ],
        title=(
            "Ablation A-6: coverage stability of randomised selectors "
            "across seeds"
        ),
    )
