"""Experiment E-T2 — Table 2: dataset characteristics.

For each dataset the paper reports node/edge counts of both snapshots,
their diameters, the maximum distance decrease Δmax, and the number of
disconnected node pairs at t1.  This module reproduces those columns for
the synthetic catalog, which is also the calibration check that each
synthetic analogue sits in its paper counterpart's structural regime
(dense Actors, fragmented DBLP, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table
from repro.experiments.runner import DatasetContext, get_context
from repro.graph.apsp import diameter
from repro.graph.components import count_disconnected_pairs


@dataclass
class Table2Row:
    """One dataset's characteristics line."""

    dataset: str
    nodes_t1: int
    nodes_t2: int
    edges_t1: int
    edges_t2: int
    diameter_t1: float
    diameter_t2: float
    max_delta: float
    disconnected_t1: int


def run(config: ExperimentConfig) -> List[Table2Row]:
    """Compute the Table 2 characteristics of every configured dataset."""
    rows: List[Table2Row] = []
    for name in config.datasets:
        ctx = get_context(name, config.scale)
        rows.append(
            Table2Row(
                dataset=name,
                nodes_t1=ctx.g1.num_nodes,
                nodes_t2=ctx.g2.num_nodes,
                edges_t1=ctx.g1.num_edges,
                edges_t2=ctx.g2.num_edges,
                diameter_t1=diameter(ctx.g1),
                diameter_t2=diameter(ctx.g2),
                max_delta=ctx.max_delta,
                disconnected_t1=count_disconnected_pairs(ctx.g1),
            )
        )
    return rows


def render(rows: List[Table2Row]) -> str:
    """Paper-layout text table."""
    return format_table(
        headers=(
            "Dataset", "nodes t1", "nodes t2", "edges t1", "edges t2",
            "diam t1", "diam t2", "max Δ", "not-connected t1",
        ),
        rows=[
            (
                r.dataset, r.nodes_t1, r.nodes_t2, r.edges_t1, r.edges_t2,
                r.diameter_t1, r.diameter_t2, r.max_delta, r.disconnected_t1,
            )
            for r in rows
        ],
        title="Table 2: Dataset characteristics",
    )
