"""Experiment E-T1 — Table 1: shortest-path budget accounting.

Table 1 is analytical in the paper; here it becomes an *executable*
claim: we run one representative selector per approach family under an
instrumented budget and verify that the measured generation/top-k SSSP
split equals the paper's formula exactly.

========================== ===================== ==============
Approach                   Candidate generation   top-k pairs
========================== ===================== ==============
Degree-based (+Incidence)  0                      2m
Dispersion-based           m (on G_t1)            m (on G_t2)
Landmark-based             2l                     2m − 2l
Hybrid                     2l                     2m − 2l
Classification-based       3·2l                   2m − 3·2l
========================== ===================== ==============
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.algorithm import find_top_k_converging_pairs
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table
from repro.experiments.runner import build_selector, get_context
from repro.selection.landmark import effective_num_landmarks

#: Representative selector per approach family, with the Table 1 formula
#: as (generation, topk) in terms of (m, l).
FAMILIES: Tuple[Tuple[str, str, str, str], ...] = (
    ("Degree-based", "Degree", "0", "2m"),
    ("Dispersion-based", "MaxAvg", "m", "m"),
    ("Landmark-based", "SumDiff", "2l", "2m-2l"),
    ("Hybrid", "MMSD", "2l", "2m-2l"),
    ("Classification-based", "L-Classifier", "6l", "2m-6l"),
    ("Incidence (budgeted)", "IncDeg", "0", "2m"),
)


def _expected(formula: str, m: int, l: int) -> int:
    """Evaluate a Table 1 cost formula.

    ``l`` is the *effective* landmark count: selectors clamp the
    configured l when the budget cannot sustain it
    (see :func:`repro.selection.landmark.effective_num_landmarks`), and
    the formulas must be checked against what actually ran.
    """
    return {
        "0": 0,
        "m": m,
        "2m": 2 * m,
        "2l": 2 * l,
        "6l": 6 * l,
        "2m-2l": 2 * m - 2 * l,
        "2m-6l": 2 * m - 6 * l,
    }[formula]


def _effective_l(selector_name: str, m: int, l: int) -> int:
    if selector_name in ("SumDiff", "MMSD"):
        return effective_num_landmarks(l, m, tables=1)
    if selector_name == "L-Classifier":
        return effective_num_landmarks(l, m, tables=3)
    return l


@dataclass
class Table1Row:
    """Measured vs expected SSSP split for one approach family."""

    family: str
    selector: str
    generation_measured: int
    topk_measured: int
    generation_expected: int
    topk_expected: int

    @property
    def total_measured(self) -> int:
        return self.generation_measured + self.topk_measured

    @property
    def matches(self) -> bool:
        """True when measurement equals the paper's formula.

        The classifier is allowed to come in *under* the formula's top-k
        share: when its three landmark policies pick overlapping nodes it
        has fewer fresh candidates to pay for.
        """
        if self.generation_measured != self.generation_expected:
            return False
        if self.selector == "L-Classifier":
            return self.topk_measured <= self.topk_expected
        return self.topk_measured == self.topk_expected


def run(config: ExperimentConfig, dataset: str = "facebook") -> List[Table1Row]:
    """Measure the budget split of each approach family on one dataset."""
    ctx = get_context(dataset, config.scale)
    truth = ctx.truth_at_offset(1)
    m, l = config.budget, config.num_landmarks
    rows: List[Table1Row] = []
    for family, selector_name, gen_formula, topk_formula in FAMILIES:
        selector = build_selector(selector_name, config, ctx)
        result = find_top_k_converging_pairs(
            ctx.g1, ctx.g2, k=max(truth.k, 1), m=m, selector=selector,
            seed=config.seed, validate=False,
        )
        phases: Dict[str, int] = result.budget.by_phase()
        l_eff = _effective_l(selector_name, m, l)
        rows.append(
            Table1Row(
                family=family,
                selector=selector_name,
                generation_measured=phases.get("generation", 0),
                topk_measured=phases.get("topk", 0),
                generation_expected=_expected(gen_formula, m, l_eff),
                topk_expected=_expected(topk_formula, m, l_eff),
            )
        )
    return rows


def render(rows: List[Table1Row]) -> str:
    """Paper-layout text table with a measured-vs-formula check column."""
    return format_table(
        headers=(
            "Approach", "selector", "gen (meas)", "topk (meas)",
            "gen (formula)", "topk (formula)", "ok",
        ),
        rows=[
            (
                r.family, r.selector, r.generation_measured, r.topk_measured,
                r.generation_expected, r.topk_expected,
                "yes" if r.matches else "NO",
            )
            for r in rows
        ],
        title="Table 1: SSSP budget split per approach (measured vs formula)",
    )
