"""Experiment E-F2 — Figure 2: candidate-quality diagnostics.

On the Facebook-like dataset (the paper uses Facebook, δ = Δmax−1,
k = 37), for the landmark and hybrid selectors at increasing budgets:

* (a) the fraction of generated candidates that are endpoints of
  ``G^p_k`` at all, and
* (b) the fraction that belong to the greedy vertex cover.

Paper shape: algorithms that cover many pairs also intersect both sets
heavily, and the SumDiff-based ones have the largest greedy-cover
intersection — they discover "high-quality" candidates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.algorithm import find_top_k_converging_pairs
from repro.core.evaluation import cover_precision, endpoint_precision
from repro.experiments.config import ExperimentConfig
from repro.experiments.figure1 import FIGURE1_SELECTORS
from repro.experiments.report import curve_block
from repro.experiments.runner import build_selector, get_context


@dataclass
class Figure2Result:
    """Per-selector (m, fraction) curves for both panels."""

    dataset: str
    offset: int
    endpoint_curves: Dict[str, List[Tuple[int, float]]]  # panel (a)
    cover_curves: Dict[str, List[Tuple[int, float]]]  # panel (b)


def run(
    config: ExperimentConfig, dataset: str = "facebook", offset: int = 1
) -> Figure2Result:
    """Measure both candidate-quality panels across the budget sweep."""
    ctx = get_context(dataset, config.scale)
    truth = ctx.truth_at_offset(offset)
    endpoint_curves: Dict[str, List[Tuple[int, float]]] = {}
    cover_curves: Dict[str, List[Tuple[int, float]]] = {}
    for name in FIGURE1_SELECTORS:
        endpoint_curves[name] = []
        cover_curves[name] = []
        for m in config.budget_sweep:
            selector = build_selector(name, config, ctx)
            result = find_top_k_converging_pairs(
                ctx.g1, ctx.g2, k=max(truth.k, 1), m=m, selector=selector,
                seed=config.seed, validate=False,
            )
            endpoint_curves[name].append(
                (m, endpoint_precision(result.candidates, truth.pair_graph))
            )
            cover_curves[name].append(
                (m, cover_precision(result.candidates, truth.greedy_cover))
            )
    return Figure2Result(
        dataset=dataset,
        offset=offset,
        endpoint_curves=endpoint_curves,
        cover_curves=cover_curves,
    )


def render(result: Figure2Result) -> str:
    """Text rendering of both panels."""
    lines = [
        f"Figure 2 ({result.dataset}, δ = Δmax-{result.offset}): "
        "candidate quality vs budget"
    ]
    lines.append("(a) fraction of candidates that are G^p_k endpoints:")
    for name in FIGURE1_SELECTORS:
        lines.append(curve_block(name, result.endpoint_curves[name]))
    lines.append("(b) fraction of candidates in the greedy cover:")
    for name in FIGURE1_SELECTORS:
        lines.append(curve_block(name, result.cover_curves[name]))
    return "\n".join(lines)
