"""Machine-readable export of experiment results.

The render functions print paper-layout text; this module turns the same
result objects into plain JSON-serialisable dictionaries so downstream
tooling (plotting scripts, dashboards, regression trackers) can consume
a reproduction run without scraping text.

Every experiment result type is handled by :func:`result_to_dict`; the
CLI's ``experiment --json`` flag goes through :func:`write_json`.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Union

PathLike = Union[str, Path]


def _keyed(mapping: dict) -> dict:
    """JSON objects need string keys; join tuple keys with '/'."""
    out = {}
    for key, value in mapping.items():
        if isinstance(key, tuple):
            key = "/".join(str(part) for part in key)
        out[str(key)] = value
    return out


def result_to_dict(result: Any) -> Any:
    """Recursively convert an experiment result to JSON-ready data.

    Handles dataclasses (all experiment rows/results), dicts with tuple
    keys (coverage matrices), lists/tuples, and scalars.  Unknown objects
    fall back to ``repr`` — exports must never crash a finished run.
    """
    if dataclasses.is_dataclass(result) and not isinstance(result, type):
        return {
            field.name: result_to_dict(getattr(result, field.name))
            for field in dataclasses.fields(result)
        }
    if isinstance(result, dict):
        return {k: result_to_dict(v) for k, v in _keyed(result).items()}
    if isinstance(result, (list, tuple)):
        return [result_to_dict(v) for v in result]
    if isinstance(result, (str, int, float, bool)) or result is None:
        return result
    if hasattr(result, "item"):  # numpy scalars
        return result.item()
    return repr(result)


def write_json(result: Any, path: PathLike, indent: int = 2) -> None:
    """Serialise an experiment result to a JSON file."""
    path = Path(path)
    payload = result_to_dict(result)
    path.write_text(
        json.dumps(payload, indent=indent, sort_keys=True) + "\n",
        encoding="utf-8",
    )
