"""Experiment E-P1 — the complexity claim, measured.

The paper's motivation is computational: exact top-k needs all-pairs
shortest paths ("for networks with millions of nodes this is impractical
both in terms of storage and time ... we need solutions that scale
linearly with the number of nodes"), while the budgeted algorithm costs
a *fixed* number of SSSPs.

This experiment measures both on growing instances of one dataset
family: exact ground truth runs ``n`` SSSP pairs (``O(n(n+m))``), the
budgeted detector runs ``2m`` regardless of ``n``, so the wall-clock
ratio must widen roughly linearly with ``n`` — which is the whole reason
the budgeted formulation exists.

There is also E-X3, a robustness check: the key selector ordering on a
stream from a model *outside* the calibration catalog (forest fire), to
show the findings aren't artifacts of the four tuned generators.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.algorithm import find_top_k_converging_pairs
from repro.core.evaluation import candidate_pair_coverage
from repro.core.pairs import converging_pairs_at_threshold, delta_histogram
from repro.datasets import catalog
from repro.datasets.generators import forest_fire_stream
from repro.datasets.splits import eval_snapshots
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table, percent
from repro.selection import get_selector


@dataclass
class ScalingRow:
    """One size point of the exact-vs-budgeted comparison.

    The deterministic claim is the SSSP-count ratio (exact needs one
    SSSP pair per node; the budgeted algorithm a fixed 2m); wall-clock
    is recorded as supporting evidence but carries timer noise.
    """

    scale: float
    nodes: int
    edges: int
    exact_ssps: int
    budgeted_ssps: int
    exact_seconds: float
    budgeted_seconds: float

    @property
    def sssp_ratio(self) -> float:
        return self.exact_ssps / max(self.budgeted_ssps, 1)

    @property
    def speedup(self) -> float:
        if self.budgeted_seconds == 0:
            return float("inf")
        return self.exact_seconds / self.budgeted_seconds


def run_scaling(
    config: ExperimentConfig,
    dataset: str = "internet",
    scales: Sequence[float] = (0.25, 0.5, 1.0),
) -> List[ScalingRow]:
    """Time exact ground truth vs the budgeted algorithm per size."""
    rows: List[ScalingRow] = []
    for scale in scales:
        temporal = catalog.load(dataset, scale=scale)
        g1, g2 = eval_snapshots(temporal)

        t0 = time.perf_counter()  # reprolint: disable=R002 -- timing experiment: wall-clock runtime is the measured quantity
        delta_histogram(g1, g2, validate=False)
        exact_seconds = time.perf_counter() - t0  # reprolint: disable=R002 -- timing experiment: wall-clock runtime is the measured quantity

        selector = get_selector("MMSD", num_landmarks=config.num_landmarks)
        t0 = time.perf_counter()  # reprolint: disable=R002 -- timing experiment: wall-clock runtime is the measured quantity
        result = find_top_k_converging_pairs(
            g1, g2, k=50, m=config.budget, selector=selector,
            seed=config.seed, validate=False,
        )
        budgeted_seconds = time.perf_counter() - t0  # reprolint: disable=R002 -- timing experiment: wall-clock runtime is the measured quantity

        rows.append(
            ScalingRow(
                scale=scale,
                nodes=g1.num_nodes,
                edges=g1.num_edges,
                exact_ssps=2 * g1.num_nodes,
                budgeted_ssps=result.budget.spent,
                exact_seconds=exact_seconds,
                budgeted_seconds=budgeted_seconds,
            )
        )
    return rows


def render_scaling(rows: List[ScalingRow]) -> str:
    """Exact-vs-budgeted timing table."""
    return format_table(
        headers=("scale", "nodes", "edges", "SSSPs exact", "SSSPs budgeted",
                 "ratio", "exact (s)", "budgeted (s)", "speedup"),
        rows=[
            (f"{r.scale:g}", r.nodes, r.edges, r.exact_ssps, r.budgeted_ssps,
             f"{r.sssp_ratio:.0f}x",
             f"{r.exact_seconds:.2f}", f"{r.budgeted_seconds:.3f}",
             f"{r.speedup:.1f}x")
            for r in rows
        ],
        title=(
            "Experiment E-P1: exact ground truth vs the budgeted "
            "algorithm (fixed m) as the graph grows"
        ),
    )


@dataclass
class RobustnessResult:
    """E-X3: selector coverage on an out-of-catalog stream."""

    nodes: int
    k: int
    delta_min: float
    coverage: Dict[str, float]


def run_forest_fire_robustness(
    config: ExperimentConfig,
    num_nodes: int = 600,
    selectors: Sequence[str] = (
        "Degree", "DegRel", "MaxAvg", "SumDiff", "MMSD", "IncDeg",
    ),
) -> RobustnessResult:
    """Key selector ordering on a forest-fire stream (no calibration)."""
    temporal = forest_fire_stream(num_nodes, forward_prob=0.3, seed=config.seed)
    g1, g2 = eval_snapshots(temporal)
    hist = delta_histogram(g1, g2, validate=False)
    positive = [d for d in hist if d > 0]
    delta_min = max(1.0, (max(positive) if positive else 1.0) - 1)
    truth = converging_pairs_at_threshold(g1, g2, delta_min, validate=False)

    coverage: Dict[str, float] = {}
    for name in selectors:
        scores = []
        for r in range(config.repeats):
            result = find_top_k_converging_pairs(
                g1, g2, k=max(len(truth), 1), m=config.budget,
                selector=get_selector(name), seed=config.seed + r,
                validate=False,
            )
            scores.append(
                candidate_pair_coverage(result.candidates, truth)
            )
        coverage[name] = sum(scores) / len(scores)
    return RobustnessResult(
        nodes=g1.num_nodes, k=len(truth), delta_min=delta_min,
        coverage=coverage,
    )


def render_forest_fire_robustness(result: RobustnessResult) -> str:
    """Out-of-catalog coverage table."""
    return format_table(
        headers=("Selector", "coverage %"),
        rows=[
            (name, percent(cov))
            for name, cov in sorted(
                result.coverage.items(), key=lambda kv: -kv[1]
            )
        ],
        title=(
            f"Extension E-X3: forest-fire stream (n={result.nodes}, "
            f"δ={result.delta_min:g}, k={result.k}) — out-of-catalog "
            "robustness"
        ),
    )
