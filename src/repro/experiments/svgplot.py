"""Minimal dependency-free SVG line charts for the figure experiments.

The environment has no plotting library, and the paper's Figures 1–3 are
simple multi-series line charts (coverage vs budget).  This module
renders exactly that shape as standalone SVG — axes, ticks, polylines,
point markers, and a legend — so ``scripts/generate_figures.py`` can
turn the experiment results into real figure files next to
EXPERIMENTS.md.

Scope is deliberately tiny: one chart type, numeric axes, y fixed to
[0, 1] by default (coverage).  Anything fancier belongs in a real
plotting stack.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple
from xml.sax.saxutils import escape

Point = Tuple[float, float]

#: Distinguishable default palette (colorblind-safe-ish hues).
PALETTE = (
    "#1b6ca8",  # blue
    "#d1495b",  # red
    "#2e933c",  # green
    "#8f2d56",  # plum
    "#e09f3e",  # ochre
    "#3d5a80",  # slate
    "#7768ae",  # violet
    "#50808e",  # teal
)

#: Per-series marker shapes, cycled alongside the palette.
MARKERS = ("circle", "square", "diamond", "triangle")


def _nice_ticks(lo: float, hi: float, count: int = 5) -> List[float]:
    """Roughly ``count`` evenly spaced ticks across [lo, hi]."""
    if hi <= lo:
        return [lo]
    step = (hi - lo) / max(count - 1, 1)
    return [lo + i * step for i in range(count)]


def _marker(shape: str, x: float, y: float, color: str) -> str:
    if shape == "square":
        return (
            f'<rect x="{x - 3:.1f}" y="{y - 3:.1f}" width="6" height="6" '
            f'fill="{color}"/>'
        )
    if shape == "diamond":
        return (
            f'<polygon points="{x:.1f},{y - 4:.1f} {x + 4:.1f},{y:.1f} '
            f'{x:.1f},{y + 4:.1f} {x - 4:.1f},{y:.1f}" fill="{color}"/>'
        )
    if shape == "triangle":
        return (
            f'<polygon points="{x:.1f},{y - 4:.1f} {x + 4:.1f},{y + 3:.1f} '
            f'{x - 4:.1f},{y + 3:.1f}" fill="{color}"/>'
        )
    return f'<circle cx="{x:.1f}" cy="{y:.1f}" r="3.2" fill="{color}"/>'


def line_chart(
    series: Dict[str, Sequence[Point]],
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    width: int = 560,
    height: int = 360,
    y_range: Optional[Tuple[float, float]] = (0.0, 1.0),
    percent_y: bool = True,
) -> str:
    """Render named (x, y) series as a standalone SVG string.

    Parameters
    ----------
    series:
        Mapping of legend label to points; series are drawn in mapping
        order with cycling colors/markers.
    y_range:
        Fixed y span (default [0, 1], the coverage scale); ``None``
        autoscales to the data.
    percent_y:
        Render y tick labels as percentages.
    """
    if not series:
        raise ValueError("need at least one series")
    all_points = [p for pts in series.values() for p in pts]
    if not all_points:
        raise ValueError("series contain no points")

    x_lo = min(p[0] for p in all_points)
    x_hi = max(p[0] for p in all_points)
    if y_range is None:
        y_lo = min(p[1] for p in all_points)
        y_hi = max(p[1] for p in all_points)
        if y_hi == y_lo:
            y_hi = y_lo + 1.0
    else:
        y_lo, y_hi = y_range

    margin_left, margin_right = 62, 150
    margin_top, margin_bottom = 42, 48
    plot_w = width - margin_left - margin_right
    plot_h = height - margin_top - margin_bottom

    def sx(x: float) -> float:
        if x_hi == x_lo:
            return margin_left + plot_w / 2
        return margin_left + (x - x_lo) / (x_hi - x_lo) * plot_w

    def sy(y: float) -> float:
        return margin_top + (1.0 - (y - y_lo) / (y_hi - y_lo)) * plot_h

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="sans-serif" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2:.0f}" y="20" text-anchor="middle" '
            f'font-size="13" font-weight="bold">{escape(title)}</text>'
        )

    # Axes and grid.
    axis = 'stroke="#444" stroke-width="1"'
    parts.append(
        f'<line x1="{margin_left}" y1="{margin_top}" x2="{margin_left}" '
        f'y2="{margin_top + plot_h}" {axis}/>'
    )
    parts.append(
        f'<line x1="{margin_left}" y1="{margin_top + plot_h}" '
        f'x2="{margin_left + plot_w}" y2="{margin_top + plot_h}" {axis}/>'
    )
    for tick in _nice_ticks(y_lo, y_hi):
        y = sy(tick)
        label = f"{100 * tick:.0f}%" if percent_y else f"{tick:g}"
        parts.append(
            f'<line x1="{margin_left}" y1="{y:.1f}" '
            f'x2="{margin_left + plot_w}" y2="{y:.1f}" stroke="#ddd"/>'
        )
        parts.append(
            f'<text x="{margin_left - 6}" y="{y + 4:.1f}" '
            f'text-anchor="end">{label}</text>'
        )
    for tick in sorted({p[0] for p in all_points}):
        x = sx(tick)
        parts.append(
            f'<line x1="{x:.1f}" y1="{margin_top + plot_h}" x2="{x:.1f}" '
            f'y2="{margin_top + plot_h + 4}" {axis}/>'
        )
        parts.append(
            f'<text x="{x:.1f}" y="{margin_top + plot_h + 16}" '
            f'text-anchor="middle">{tick:g}</text>'
        )
    if x_label:
        parts.append(
            f'<text x="{margin_left + plot_w / 2:.0f}" y="{height - 10}" '
            f'text-anchor="middle">{escape(x_label)}</text>'
        )
    if y_label:
        parts.append(
            f'<text x="16" y="{margin_top + plot_h / 2:.0f}" '
            f'text-anchor="middle" transform="rotate(-90 16 '
            f'{margin_top + plot_h / 2:.0f})">{escape(y_label)}</text>'
        )

    # Series.
    legend_x = margin_left + plot_w + 14
    for i, (name, points) in enumerate(series.items()):
        color = PALETTE[i % len(PALETTE)]
        marker = MARKERS[i % len(MARKERS)]
        coords = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in points)
        parts.append(
            f'<polyline points="{coords}" fill="none" stroke="{color}" '
            f'stroke-width="1.8"/>'
        )
        for x, y in points:
            parts.append(_marker(marker, sx(x), sy(y), color))
        ly = margin_top + 10 + i * 18
        parts.append(_marker(marker, legend_x + 5, ly - 3, color))
        parts.append(
            f'<text x="{legend_x + 14}" y="{ly}">{escape(str(name))}</text>'
        )

    parts.append("</svg>")
    return "\n".join(parts)
