"""Experiment E-T6 — Table 6: the unbudgeted Incidence algorithm.

The original algorithm of [14] computes shortest paths from *every*
active node.  The paper's point, reproduced here: it achieves near-total
coverage, but its effective budget — the active-node count — is a huge
fraction of the graph (11–66% of |V_t1| across the paper's datasets),
versus under ~3% for the budgeted approaches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.evaluation import coverage
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table, percent
from repro.experiments.runner import get_context
from repro.selection.incidence import run_incidence_algorithm


@dataclass
class Table6Row:
    """One dataset's unbudgeted-Incidence outcome."""

    dataset: str
    delta_min: float
    k: int
    active_nodes: int
    active_fraction: float
    budget_fraction: float
    coverage: float
    sp_computations: int


def run(config: ExperimentConfig, offset: int = 1) -> List[Table6Row]:
    """Run the unbudgeted Incidence algorithm on every dataset."""
    rows: List[Table6Row] = []
    for name in config.datasets:
        ctx = get_context(name, config.scale)
        truth = ctx.truth_at_offset(offset)
        if truth.k == 0:
            continue
        result = run_incidence_algorithm(ctx.g1, ctx.g2, k=truth.k)
        rows.append(
            Table6Row(
                dataset=name,
                delta_min=truth.delta_min,
                k=truth.k,
                active_nodes=len(result.active),
                active_fraction=result.active_fraction(ctx.g1),
                budget_fraction=config.budget / ctx.g1.num_nodes,
                coverage=coverage(result.pairs, truth.pairs),
                sp_computations=result.sp_computations,
            )
        )
    return rows


def render(rows: List[Table6Row]) -> str:
    """Paper-layout text table contrasting |A| with the budgeted m."""
    return format_table(
        headers=(
            "Dataset", "δ", "k", "|A|", "|A|/|V1| %", "m/|V1| %",
            "coverage %", "SP comps",
        ),
        rows=[
            (
                r.dataset, f"{r.delta_min:g}", r.k, r.active_nodes,
                percent(r.active_fraction), percent(r.budget_fraction),
                percent(r.coverage), r.sp_computations,
            )
            for r in rows
        ],
        title="Table 6: unbudgeted Incidence — coverage vs effective budget",
    )
