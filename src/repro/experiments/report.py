"""Plain-text rendering of experiment results, paper-table style.

Nothing here affects the science — these helpers exist so benchmark runs
print rows directly comparable to the paper's tables and so
EXPERIMENTS.md is generated rather than hand-copied.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
) -> str:
    """Monospace table with a header rule, right-aligned numeric cells."""
    str_rows: List[List[str]] = []
    for row in rows:
        str_rows.append([_fmt(cell) for cell in row])
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        padded = []
        for i, cell in enumerate(cells):
            if _is_numeric(cell):
                padded.append(cell.rjust(widths[i]))
            else:
                padded.append(cell.ljust(widths[i]))
        return "  ".join(padded).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "-"
        if abs(cell - round(cell)) < 1e-9 and abs(cell) < 1e12:
            return str(int(round(cell)))
        return f"{cell:.3f}"
    return str(cell)


def _is_numeric(cell: str) -> bool:
    try:
        float(cell)
        return True
    except ValueError:
        return False


def percent(value: float) -> str:
    """Coverage fraction → the paper's one-decimal percent string.

    NaN marks a cell whose computation failed under ``on_error="skip"``
    (see :mod:`repro.resilience.degrade`); it renders as ``—`` so a
    degraded table is visibly partial rather than silently wrong.
    """
    if value != value:  # NaN — failed cell
        return "—"
    return f"{100.0 * value:.1f}"


def percent_label(value: float) -> str:
    """:func:`percent` with the ``%`` sign — left off a failed (``—``) cell."""
    if value != value:
        return "—"
    return f"{percent(value)}%"


def curve_block(
    name: str, curve: Sequence[Tuple[int, float]], indent: str = "  "
) -> str:
    """One cost–coverage series rendered as ``m -> coverage%`` pairs."""
    points = ", ".join(f"m={m}: {percent_label(cov)}" for m, cov in curve)
    return f"{indent}{name:14s} {points}"
