"""Shared experiment machinery: dataset contexts, ground truth, sweeps.

Everything expensive — snapshot materialisation, the Δ histogram, the
per-δ ground truth, greedy covers, trained classifiers — is computed once
per (dataset, scale) and cached in a :class:`DatasetContext`, so the
table/figure modules stay declarative.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cover import greedy_vertex_cover
from repro.core.evaluation import candidate_pair_coverage
from repro.core.pairgraph import PairGraph
from repro.core.pairs import (
    ConvergingPair,
    converging_pairs_at_threshold,
    delta_histogram,
    k_for_delta_threshold,
)
from repro.core.algorithm import find_top_k_converging_pairs
from repro.datasets import catalog
from repro.datasets.splits import eval_snapshots
from repro.experiments.config import ExperimentConfig
from repro.graph.dynamic import TemporalGraph
from repro.graph.graph import Graph
from repro.ml.training import (
    TrainedModel,
    train_global_classifier,
    train_local_classifier,
)
from repro.parallel import ParallelExecutor, worker_state
from repro.resilience import (
    CheckpointStore,
    Deadline,
    FaultInjector,
    RetryPolicy,
    log_event,
    run_guarded,
)
from repro.selection import get_selector
from repro.selection.base import CandidateSelector


@dataclass
class GroundTruth:
    """Exact answer at one δ threshold."""

    delta_min: float
    k: int
    pairs: List[ConvergingPair]
    pair_graph: PairGraph
    greedy_cover: List


@dataclass
class DatasetContext:
    """One dataset instance with cached evaluation artefacts."""

    name: str
    scale: float
    temporal: TemporalGraph
    g1: Graph
    g2: Graph
    histogram: Dict[float, int]
    max_delta: float
    _truths: Dict[float, GroundTruth] = field(default_factory=dict)
    _incident_bet: Dict[Optional[int], Dict] = field(default_factory=dict)

    def delta_for_offset(self, offset: int) -> float:
        """δ = max(1, Δmax − offset) — the paper's per-column thresholds."""
        return max(1.0, self.max_delta - offset)

    def truth_at_offset(self, offset: int) -> GroundTruth:
        """Ground truth (pairs, pair graph, greedy cover) at an offset."""
        return self.truth_at_delta(self.delta_for_offset(offset))

    def distinct_offsets(self, offsets) -> list:
        """Drop offsets whose clamped δ duplicates an earlier one.

        On shallow datasets (Δmax = 2) the paper's three offsets collapse
        to fewer distinct thresholds; tables probe each δ once.
        """
        seen = set()
        out = []
        for offset in offsets:
            delta = self.delta_for_offset(offset)
            if delta not in seen:
                seen.add(delta)
                out.append(offset)
        return out

    def incident_bet_scores(self, pivots: Optional[int]) -> Dict:
        """Cached per-node incident-betweenness increase (IncBet input).

        The edge-betweenness pass is the most expensive single step in the
        experiment suite and is independent of the budget and δ, so it is
        computed once per dataset instance and estimator fidelity.
        """
        if pivots not in self._incident_bet:
            from repro.selection.incidence import incident_betweenness_increase

            rng = np.random.default_rng(0)
            self._incident_bet[pivots] = incident_betweenness_increase(
                self.g1, self.g2, pivots, rng
            )
        return self._incident_bet[pivots]

    def truth_at_delta(self, delta_min: float) -> GroundTruth:
        """Ground truth at an explicit δ, cached."""
        if delta_min not in self._truths:
            pairs = converging_pairs_at_threshold(
                self.g1, self.g2, delta_min, validate=False
            )
            pg = PairGraph(pairs)
            self._truths[delta_min] = GroundTruth(
                delta_min=delta_min,
                k=len(pairs),
                pairs=pairs,
                pair_graph=pg,
                greedy_cover=greedy_vertex_cover(pg),
            )
        return self._truths[delta_min]


_CONTEXT_CACHE: Dict[Tuple[str, float], DatasetContext] = {}


def get_context(name: str, scale: float) -> DatasetContext:
    """Build (or fetch) the cached context of a catalog dataset."""
    key = (name, scale)
    if key not in _CONTEXT_CACHE:
        temporal = catalog.load(name, scale=scale)
        g1, g2 = eval_snapshots(temporal)
        hist = delta_histogram(g1, g2, validate=False)
        positive = [d for d in hist if d > 0]
        _CONTEXT_CACHE[key] = DatasetContext(
            name=name,
            scale=scale,
            temporal=temporal,
            g1=g1,
            g2=g2,
            histogram=dict(hist),
            max_delta=max(positive) if positive else 0.0,
        )
    return _CONTEXT_CACHE[key]


def clear_context_cache() -> None:
    """Drop all cached dataset contexts (tests use this for isolation)."""
    global _TOPK_RUNS
    _CONTEXT_CACHE.clear()
    _CANDIDATE_CACHE.clear()
    _STORE_CACHE.clear()
    _TOPK_RUNS = 0
    _trained_local.cache_clear()
    _trained_global.cache_clear()


def build_selector(
    name: str, config: ExperimentConfig, context: Optional[DatasetContext] = None
) -> CandidateSelector:
    """Instantiate a selector by paper name with config-driven kwargs.

    Classifier selectors are trained on demand (cached per dataset/scale)
    using the disjoint 20%/40% training split.
    """
    lname = name.lower()
    if lname in ("sumdiff", "maxdiff", "mmsd", "mmmd", "masd", "mamd",
                 "coorddiff"):
        return get_selector(name, num_landmarks=config.num_landmarks)
    if lname == "incbet":
        if context is not None:
            return get_selector(
                name,
                pivots=config.incbet_pivots,
                precomputed_scores=context.incident_bet_scores(
                    config.incbet_pivots
                ),
            )
        return get_selector(name, pivots=config.incbet_pivots)
    if lname == "increcv":
        return get_selector(name, pivots=config.incbet_pivots)
    if lname == "l-classifier":
        if context is None:
            raise ValueError("L-Classifier needs a dataset context")
        model = _trained_local(
            context.name, context.scale, config.num_landmarks, config.seed
        )
        return get_selector(name, model=model)
    if lname == "g-classifier":
        model = _trained_global(
            tuple(sorted(config.datasets)),
            config.scale,
            config.num_landmarks,
            config.seed,
        )
        return get_selector(name, model=model)
    return get_selector(name)


@lru_cache(maxsize=None)
def _trained_local(
    name: str, scale: float, num_landmarks: int, seed: int
) -> TrainedModel:
    context = get_context(name, scale)
    return train_local_classifier(
        context.temporal, num_landmarks=num_landmarks, seed=seed
    )


@lru_cache(maxsize=None)
def _trained_global(
    names: Tuple[str, ...], scale: float, num_landmarks: int, seed: int
) -> TrainedModel:
    temporals = {n: get_context(n, scale).temporal for n in names}
    return train_global_classifier(
        temporals, num_landmarks=num_landmarks, seed=seed
    )


def _is_randomised(selector_name: str) -> bool:
    """Whether a selector's output depends on the RNG (repeat-averaged)."""
    return selector_name.lower() in (
        "maxmin",
        "maxavg",
        "sumdiff",
        "maxdiff",
        "mmsd",
        "mmmd",
        "masd",
        "mamd",
        "coorddiff",
        "l-classifier",
        "g-classifier",
    )


_CANDIDATE_CACHE: Dict[Tuple, List[List]] = {}

#: Budgeted Algorithm 1 runs since the last cache clear — the audited
#: "expensive unit" counter the resume tests assert on.
_TOPK_RUNS = 0

_STORE_CACHE: Dict[str, CheckpointStore] = {}

_MISS = object()


def topk_run_count() -> int:
    """Budgeted top-k runs performed since :func:`clear_context_cache`."""
    return _TOPK_RUNS


def _checkpoint_store(config: ExperimentConfig) -> Optional[CheckpointStore]:
    """The config's cell-checkpoint store (one per directory), if any."""
    if not config.checkpoint_dir:
        return None
    directory = str(config.checkpoint_dir)
    if directory not in _STORE_CACHE:
        _STORE_CACHE[directory] = CheckpointStore(directory)
    return _STORE_CACHE[directory]


def _cell_key(
    context: DatasetContext, selector_name: str, m: int, delta: float,
    config: ExperimentConfig,
) -> list:
    """Checkpoint identity of one coverage cell.

    Keyed by everything that influences the cell's value —
    (experiment, dataset, scale, δ, selector) per the resume contract,
    plus the knobs (m, l, pivots, seed, repeats) a config could vary.
    """
    return [
        "cell", config.experiment, context.name, context.scale, delta,
        selector_name.lower(), m, config.num_landmarks,
        config.incbet_pivots, config.seed, config.repeats,
    ]


def candidate_sets(
    context: DatasetContext,
    selector_name: str,
    m: int,
    config: ExperimentConfig,
) -> List[List]:
    """The selector's candidate lists (one per repeat seed), cached.

    Candidate generation does not depend on the δ threshold, so a single
    selection run serves every offset column of Table 5 and every truth
    set of the figures.  Keyed by everything that influences selection.
    """
    repeats = config.repeats if _is_randomised(selector_name) else 1
    key = (
        context.name, context.scale, selector_name.lower(), m,
        config.num_landmarks, config.incbet_pivots, config.seed, repeats,
    )
    if key not in _CANDIDATE_CACHE:
        global _TOPK_RUNS
        runs: List[List] = []
        for r in range(repeats):
            selector = build_selector(selector_name, config, context)
            _TOPK_RUNS += 1
            result = find_top_k_converging_pairs(
                context.g1,
                context.g2,
                k=1,
                m=m,
                selector=selector,
                seed=config.seed + r,
                validate=False,
            )
            runs.append(result.candidates)
        _CANDIDATE_CACHE[key] = runs
    return _CANDIDATE_CACHE[key]


def coverage_cell(
    context: DatasetContext,
    selector_name: str,
    m: int,
    offset: int,
    config: ExperimentConfig,
) -> float:
    """Mean coverage of one (dataset, algorithm, δ, m) cell.

    Randomised selectors are averaged over ``config.repeats`` seeds;
    deterministic ones run once.  Coverage is evaluated directly on the
    candidate sets (provably equal to running Algorithm 1 end to end with
    the δ-threshold k — asserted by the integration tests).

    The config's resilience knobs apply here, at the cell level — the
    sweep's unit of expensive work:

    * ``checkpoint_dir`` persists each completed cell;  with ``resume``
      a valid checkpoint short-circuits the recomputation entirely (no
      budgeted top-k runs, no ground-truth pass);
    * ``max_retries`` / ``deadline_s`` re-run a transiently failing cell
      under :class:`~repro.resilience.policy.RetryPolicy`;
    * ``on_error="skip"`` converts a persistent failure into a NaN cell
      (rendered ``—``) instead of aborting the sweep.
    """
    delta = context.delta_for_offset(offset)
    store = _checkpoint_store(config)
    key = _cell_key(context, selector_name, m, delta, config)
    unit = (
        f"cell:{config.experiment or 'sweep'}:{context.name}"
        f"/{selector_name}/m={m}/delta={delta:g}"
    )
    if store is not None and config.resume:
        cached = store.get(key, default=_MISS)
        if cached is not _MISS:
            log_event("checkpoint.hit", unit=unit)
            return float(cached)

    def compute() -> float:
        truth = context.truth_at_delta(delta)
        if truth.k == 0:
            return 1.0
        scores = [
            candidate_pair_coverage(candidates, truth.pairs)
            for candidates in candidate_sets(context, selector_name, m, config)
        ]
        return float(np.mean(scores))

    retry_policy = None
    if config.max_retries > 0:
        retry_policy = RetryPolicy(
            max_retries=config.max_retries,
            base_delay=config.retry_backoff_s,
            seed=config.seed,
        )
    deadline = (
        Deadline(config.deadline_s) if config.deadline_s is not None else None
    )
    value, error = run_guarded(
        compute,
        unit=unit,
        retry_policy=retry_policy,
        deadline=deadline,
        on_error=config.on_error,
    )
    if error is not None:
        return float("nan")
    assert value is not None
    if store is not None:
        store.put(key, value)
    return value


#: A coverage-cell work item: ``(dataset, selector, m, offset)``.  The
#: dataset is named (not passed as an object) so pool workers rebuild
#: their own :class:`DatasetContext` from the catalog — once per worker,
#: then cached across every cell the worker processes.
CellSpec = Tuple[str, str, int, int]


def _cell_task(spec: CellSpec) -> float:
    """Worker task: one coverage cell against the installed config."""
    name, selector_name, m, offset = spec
    config = worker_state()["config"]
    context = get_context(name, config.scale)
    return coverage_cell(context, selector_name, m, offset, config)


def coverage_cells(
    specs: Sequence[CellSpec],
    config: ExperimentConfig,
    *,
    chunk_size: Optional[int] = None,
    fault_injector: Optional[FaultInjector] = None,
) -> List[float]:
    """Many independent coverage cells, fanned out when ``config.workers > 1``.

    Cells are the sweep's unit of expensive work and are mutually
    independent, so this is the experiment layer's parallel driver: each
    worker rebuilds the named catalog datasets once (contexts are cached
    per process) and runs the ordinary :func:`coverage_cell` — resume,
    retries, and checkpointing behave exactly as in serial mode, and
    checkpoint keys contain nothing worker-dependent.  Values are
    returned in ``specs`` order and are bit-identical at any worker
    count or chunk size.

    A chunk whose worker dies degrades to serial recomputation in the
    parent (``parallel.degraded`` event); ``fault_injector`` is the
    chaos-test hook that triggers exactly that path deterministically.
    Only catalog datasets can be fanned out (workers rebuild contexts by
    name).
    """
    specs = list(specs)
    if config.workers <= 1 and fault_injector is None:
        return [
            coverage_cell(get_context(name, config.scale), s, m, o, config)
            for name, s, m, o in specs
        ]
    # Cells inside workers must not nest another pool.
    inner = dataclasses.replace(config, workers=1)
    executor = ParallelExecutor(
        config.workers,
        state={"config": inner},
        chunk_size=chunk_size,
        fault_injector=fault_injector,
    )
    unit = f"cells:{config.experiment or 'sweep'}"
    return executor.map(_cell_task, specs, unit=unit)


def budget_sweep(
    context: DatasetContext,
    selector_names: Sequence[str],
    offset: int,
    config: ExperimentConfig,
) -> Dict[str, List[Tuple[int, float]]]:
    """Coverage-vs-budget curves for several selectors at one δ offset."""
    curves: Dict[str, List[Tuple[int, float]]] = {}
    if config.workers > 1:
        specs = [
            (context.name, name, m, offset)
            for name in selector_names
            for m in config.budget_sweep
        ]
        values = iter(coverage_cells(specs, config))
        for name in selector_names:
            curves[name] = [(m, next(values)) for m in config.budget_sweep]
        return curves
    for name in selector_names:
        curves[name] = [
            (m, coverage_cell(context, name, m, offset, config))
            for m in config.budget_sweep
        ]
    return curves
