"""Experiment harness: one module per paper table/figure plus ablations.

Every module exposes ``run(config) -> result`` and ``render(result) ->
str``; the benchmark suite under ``benchmarks/`` drives them and prints
the paper-shaped rows, and EXPERIMENTS.md records a full-fidelity run.

========  =============================================  ==============================
Artifact  What it reproduces                             Module
========  =============================================  ==============================
Table 1   SSSP budget split per approach (executable)    :mod:`repro.experiments.table1`
Table 2   Dataset characteristics                        :mod:`repro.experiments.table2`
Table 3   Pair-graph sizes and greedy covers             :mod:`repro.experiments.table3`
Table 5   Coverage of all single-feature algorithms      :mod:`repro.experiments.table5`
Table 6   Unbudgeted Incidence baseline                  :mod:`repro.experiments.table6`
Figure 1  Coverage vs budget, landmark family            :mod:`repro.experiments.figure1`
Figure 2  Candidate-quality diagnostics                  :mod:`repro.experiments.figure2`
Figure 3  Classifiers vs best single algorithm           :mod:`repro.experiments.figure3`
A-1..A-4  Ablations (landmark count/seeding, IncBet,     :mod:`repro.experiments.ablations`
          coordinate-embedding extension)
E-X1/X2   Extension experiments (extended coverage      :mod:`repro.experiments.extensions`
          table, Selective Expansion study)
========  =============================================  ==============================

(Table 4 of the paper is the algorithm index — reproduced as the selector
registry itself, see :mod:`repro.selection`.)
"""

from repro.experiments.config import (
    ExperimentConfig,
    bench_config,
    default_config,
    smoke_config,
)
from repro.experiments.export import result_to_dict, write_json
from repro.experiments.runner import (
    DatasetContext,
    GroundTruth,
    budget_sweep,
    build_selector,
    clear_context_cache,
    coverage_cell,
    coverage_cells,
    get_context,
    topk_run_count,
)

__all__ = [
    "ExperimentConfig",
    "bench_config",
    "default_config",
    "smoke_config",
    "DatasetContext",
    "GroundTruth",
    "budget_sweep",
    "build_selector",
    "clear_context_cache",
    "coverage_cell",
    "coverage_cells",
    "get_context",
    "topk_run_count",
    "result_to_dict",
    "write_json",
]
