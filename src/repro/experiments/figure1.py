"""Experiment E-F1 — Figure 1: coverage vs budget, landmark family.

Cost–coverage curves for the plain landmark algorithms (SumDiff, MaxDiff)
and the four hybrids on every dataset.  The paper's shape findings:

* SumDiff-based curves converge faster than MaxDiff-based ones;
* the hybrids dominate the plain landmark algorithms at small budgets
  because their dispersion-chosen landmarks are themselves useful
  candidates (the random-landmark algorithms "waste" their first 2l
  computations);
* the best hybrids reach ~90% coverage well before the budget sweep ends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import curve_block
from repro.experiments.runner import budget_sweep, get_context

#: The six curves the figure plots, in legend order.
FIGURE1_SELECTORS = ("SumDiff", "MaxDiff", "MMSD", "MMMD", "MASD", "MAMD")


@dataclass
class Figure1Result:
    """Per-dataset curves: selector -> [(m, coverage)]."""

    offset: int
    curves: Dict[str, Dict[str, List[Tuple[int, float]]]]  # dataset -> ...


def run(config: ExperimentConfig, offset: int = 1) -> Figure1Result:
    """Sweep the budget for the landmark family on every dataset."""
    curves: Dict[str, Dict[str, List[Tuple[int, float]]]] = {}
    for name in config.datasets:
        ctx = get_context(name, config.scale)
        curves[name] = budget_sweep(ctx, FIGURE1_SELECTORS, offset, config)
    return Figure1Result(offset=offset, curves=curves)


def render(result: Figure1Result) -> str:
    """Text rendering: one block of series per dataset."""
    lines = [
        f"Figure 1: coverage vs budget m (δ = Δmax-{result.offset}),"
        " landmark & hybrid algorithms"
    ]
    for dataset, series in result.curves.items():
        lines.append(f"{dataset}:")
        for name in FIGURE1_SELECTORS:
            lines.append(curve_block(name, series[name]))
    return "\n".join(lines)
