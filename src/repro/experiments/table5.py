"""Experiment E-T5 — Table 5: coverage of every single-feature algorithm.

The paper's main results table: for a fixed budget (m = 100 there, the
config's ``budget`` here) and each dataset x δ column, the percentage of
the top-k converging pairs covered by every algorithm of Table 4.

The shape findings the accompanying benchmark asserts:

* Degree is near zero everywhere except the dense Actors-like graph;
* SumDiff beats MaxDiff consistently;
* the hybrids are at or near the top (MMSD typically best);
* the budgeted Incidence rankers trail the landmark family.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table, percent
from repro.experiments.runner import coverage_cells, get_context
from repro.selection import SINGLE_FEATURE_SELECTORS


@dataclass
class Table5Result:
    """Coverage matrix plus the column metadata (δ and k per column)."""

    algorithms: Tuple[str, ...]
    columns: List[Tuple[str, int, float, int]]  # (dataset, offset, δ, k)
    coverage: Dict[Tuple[str, str, int], float]  # (algo, dataset, offset)

    def best_algorithm(self, dataset: str, offset: int) -> str:
        """Best single-feature algorithm for one column (Figure 3 needs it)."""
        return max(
            self.algorithms,
            key=lambda a: self.coverage[(a, dataset, offset)],
        )


def run(config: ExperimentConfig) -> Table5Result:
    """Fill the full coverage matrix at the fixed budget.

    Every cell is independent, so the whole matrix is one
    :func:`~repro.experiments.runner.coverage_cells` batch — with
    ``config.workers > 1`` the cells fan out across datasets and
    algorithms at once.
    """
    columns: List[Tuple[str, int, float, int]] = []
    cells: List[Tuple[str, str, int, int]] = []
    for name in config.datasets:
        ctx = get_context(name, config.scale)
        for offset in ctx.distinct_offsets(config.delta_offsets):
            truth = ctx.truth_at_offset(offset)
            columns.append((name, offset, truth.delta_min, truth.k))
            for algo in SINGLE_FEATURE_SELECTORS:
                cells.append((name, algo, config.budget, offset))
    values = coverage_cells(cells, config)
    coverage: Dict[Tuple[str, str, int], float] = {
        (algo, name, offset): value
        for (name, algo, _, offset), value in zip(cells, values)
    }
    return Table5Result(
        algorithms=tuple(SINGLE_FEATURE_SELECTORS),
        columns=columns,
        coverage=coverage,
    )


def render(result: Table5Result) -> str:
    """Paper-layout matrix: algorithms x (dataset, δ) columns, percent."""
    headers = ["Algorithm"] + [
        f"{ds}:δ={delta:g}(k={k})" for ds, _, delta, k in result.columns
    ]
    rows = []
    for algo in result.algorithms:
        row = [algo]
        for ds, offset, _, _ in result.columns:
            row.append(percent(result.coverage[(algo, ds, offset)]))
        rows.append(row)
    return format_table(
        headers=headers,
        rows=rows,
        title=(
            "Table 5: coverage (%) of the top-k converging pairs at fixed "
            "budget m"
        ),
    )
