"""Extension experiments (beyond the paper's tables and figures).

* **E-X1, extended coverage table** — Table 5 re-run including the
  selectors the paper omits: the other two Incidence rank policies of
  [14] (IncDeg2, IncRecv) and the coordinate-embedding extension
  (CoordDiff).
* **E-X2, Selective Expansion study** — the paper declined to evaluate
  the recursive variant of [14] for cost reasons ("it would lead us to
  ... the baseline algorithm").  We run a bounded version and chart
  coverage against the SSSPs it actually consumed, quantifying that
  judgement instead of asserting it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.evaluation import coverage
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import format_table, percent
from repro.experiments.runner import coverage_cell, get_context
from repro.selection.incidence import (
    run_incidence_algorithm,
    run_selective_expansion,
)

#: Rows of the extended coverage table: paper's best performers as
#: anchors plus everything the paper left out.
EXTENDED_SELECTORS = (
    "SumDiff",
    "MMSD",
    "CoordDiff",
    "IncDeg",
    "IncDeg2",
    "IncRecv",
    "IncBet",
)


@dataclass
class ExtendedTableResult:
    """Coverage of the extended selector set at the fixed budget."""

    columns: List[Tuple[str, int, float, int]]
    coverage: Dict[Tuple[str, str, int], float]


def run_extended_table(
    config: ExperimentConfig, offset: int = 1
) -> ExtendedTableResult:
    """Coverage of the extended selector set on every dataset."""
    columns: List[Tuple[str, int, float, int]] = []
    cov: Dict[Tuple[str, str, int], float] = {}
    for name in config.datasets:
        ctx = get_context(name, config.scale)
        truth = ctx.truth_at_offset(offset)
        columns.append((name, offset, truth.delta_min, truth.k))
        for algo in EXTENDED_SELECTORS:
            cov[(algo, name, offset)] = coverage_cell(
                ctx, algo, config.budget, offset, config
            )
    return ExtendedTableResult(columns=columns, coverage=cov)


def render_extended_table(result: ExtendedTableResult) -> str:
    """Extended-coverage matrix in the Table 5 layout."""
    headers = ["Algorithm"] + [
        f"{ds}:δ={delta:g}(k={k})" for ds, _, delta, k in result.columns
    ]
    rows = []
    for algo in EXTENDED_SELECTORS:
        rows.append(
            [algo]
            + [
                percent(result.coverage[(algo, ds, off)])
                for ds, off, _, _ in result.columns
            ]
        )
    return format_table(
        headers=headers,
        rows=rows,
        title=(
            "Extension E-X1: coverage (%) including the selectors the "
            "paper omits"
        ),
    )


@dataclass
class SelectiveExpansionRow:
    """Cost/coverage of one Selective Expansion configuration."""

    dataset: str
    variant: str
    sp_computations: int
    sources: int
    rounds: int
    coverage: float


def run_selective_expansion_study(
    config: ExperimentConfig,
    offset: int = 1,
    expansion_per_round: int = 25,
    max_rounds: int = 4,
    importance_pivots: int = 256,
) -> List[SelectiveExpansionRow]:
    """Plain Incidence vs bounded Selective Expansion, with true costs.

    Edge importance uses the sampled shortest-path-tree estimator with
    ``importance_pivots`` pivots — the estimator [14] itself proposed for
    Selective Expansion (unlike Table 5's IncBet, which the paper granted
    exact betweenness).
    """
    rows: List[SelectiveExpansionRow] = []
    for name in config.datasets:
        ctx = get_context(name, config.scale)
        truth = ctx.truth_at_offset(offset)
        if truth.k == 0:
            continue
        base = run_incidence_algorithm(ctx.g1, ctx.g2, k=truth.k)
        rows.append(
            SelectiveExpansionRow(
                dataset=name,
                variant="Incidence",
                sp_computations=base.sp_computations,
                sources=len(base.active),
                rounds=1,
                coverage=coverage(base.pairs, truth.pairs),
            )
        )
        expanded = run_selective_expansion(
            ctx.g1,
            ctx.g2,
            k=truth.k,
            expansion_per_round=expansion_per_round,
            max_rounds=max_rounds,
            pivots=min(importance_pivots, ctx.g2.num_nodes),
            rng=np.random.default_rng(config.seed),
        )
        rows.append(
            SelectiveExpansionRow(
                dataset=name,
                variant="SelectiveExp",
                sp_computations=expanded.sp_computations,
                sources=len(expanded.active),
                rounds=expanded.rounds,
                coverage=coverage(expanded.pairs, truth.pairs),
            )
        )
    return rows


def render_selective_expansion(rows: List[SelectiveExpansionRow]) -> str:
    """Cost/coverage comparison table."""
    return format_table(
        headers=("Dataset", "variant", "sources", "rounds", "SP comps",
                 "coverage %"),
        rows=[
            (r.dataset, r.variant, r.sources, r.rounds, r.sp_computations,
             percent(r.coverage))
            for r in rows
        ],
        title=(
            "Extension E-X2: Selective Expansion — what the recursion "
            "actually costs"
        ),
    )


@dataclass
class WeightedPipelineResult:
    """E-X4: the budgeted pipeline on a weighted (latency) topology."""

    nodes: int
    k: int
    min_delta: float
    coverage: Dict[str, float]


def run_weighted_pipeline(
    config: ExperimentConfig,
    k: int = 50,
    selectors: Tuple[str, ...] = ("DegRel", "MaxAvg", "SumDiff", "MMSD"),
) -> WeightedPipelineResult:
    """Coverage on the weighted internet analogue (Dijkstra distances).

    The problem definition covers weighted graphs but the paper's
    evaluation never exercises them; this experiment does.  Continuous
    latencies make Δ ties essentially impossible, so a plain top-k truth
    set is already unique and candidate coverage equals pipeline
    coverage without the δ-threshold construction.
    """
    from repro.core.pairs import top_k_converging_pairs
    from repro.datasets import eval_snapshots, load

    temporal = load("internet-weighted", scale=config.scale)
    g1, g2 = eval_snapshots(temporal)
    truth = top_k_converging_pairs(g1, g2, k=k, validate=False)

    from repro.core.algorithm import find_top_k_converging_pairs
    from repro.core.evaluation import candidate_pair_coverage
    from repro.selection import get_selector

    coverage_by: Dict[str, float] = {}
    for name in selectors:
        scores = []
        for r in range(config.repeats):
            result = find_top_k_converging_pairs(
                g1, g2, k=len(truth), m=config.budget,
                selector=get_selector(name), seed=config.seed + r,
                validate=False,
            )
            scores.append(candidate_pair_coverage(result.candidates, truth))
        coverage_by[name] = sum(scores) / len(scores)
    return WeightedPipelineResult(
        nodes=g1.num_nodes,
        k=len(truth),
        min_delta=min(p.delta for p in truth) if truth else 0.0,
        coverage=coverage_by,
    )


def render_weighted_pipeline(result: WeightedPipelineResult) -> str:
    """Weighted-pipeline coverage table."""
    return format_table(
        headers=("Selector", "coverage %"),
        rows=[
            (name, percent(cov))
            for name, cov in sorted(
                result.coverage.items(), key=lambda kv: -kv[1]
            )
        ],
        title=(
            f"Extension E-X4: weighted latency topology (n={result.nodes}, "
            f"top-{result.k}, min Δ={result.min_delta:.2f}) — Dijkstra "
            "pipeline"
        ),
    )
