"""Experiment configuration.

One knob object shared by every table/figure module.  The defaults mirror
the paper's setup scaled to the synthetic catalog:

* The paper's budget of m = 100 on graphs of 4k–22k nodes is 0.5–2.3% of
  the node count; our default m = 40 on ~1–3k-node graphs sits in the
  same band.
* δ thresholds are probed at Δmax, Δmax−1, Δmax−2 (the paper's three
  per-dataset δ columns), clamped at 1.
* l = 10 landmarks, as fixed in the paper.

``scale`` rescales every dataset; benchmarks honour the
``REPRO_BENCH_SCALE`` environment variable so a quick run and a
full-fidelity run use the same code path.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared parameters for all reproduction experiments."""

    #: Dataset scale factor (1.0 = the catalog's reference size).
    scale: float = 1.0
    #: Candidate budget m for the fixed-budget tables (Table 5/6).
    budget: int = 40
    #: Budget sweep for the cost–coverage figures (Figures 1–3).
    budget_sweep: Tuple[int, ...] = (10, 20, 30, 40, 60, 80)
    #: δ offsets below Δmax to probe (0 → δ = Δmax, etc.).
    delta_offsets: Tuple[int, ...] = (0, 1, 2)
    #: Number of landmarks l for every landmark-based approach.
    num_landmarks: int = 10
    #: Seed for the selectors' random choices (landmark sampling, ...).
    seed: int = 42
    #: Datasets to run (catalog names).
    datasets: Tuple[str, ...] = ("actors", "internet", "facebook", "dblp")
    #: Pivot count for IncBet's edge betweenness; ``None`` = exact, the
    #: paper's setting ("we used the actual edge betweenness").
    incbet_pivots: Optional[int] = None
    #: Independent selector runs averaged per coverage cell (randomised
    #: selectors only; deterministic ones run once).
    repeats: int = 3
    #: Process-pool workers for the parallel drivers (1 = serial).  Any
    #: worker count produces bit-identical results — ``workers`` never
    #: enters checkpoint keys or caches (see docs/parallel.md).
    workers: int = 1

    # -- resilience (see repro.resilience and docs/resilience.md) -------
    #: Directory for per-cell checkpoints; ``None`` disables persistence.
    checkpoint_dir: Optional[str] = None
    #: Reuse valid checkpointed cells instead of recomputing them.
    resume: bool = False
    #: Retries per coverage cell before the failure escalates.
    max_retries: int = 0
    #: Backoff base delay between cell retries, seconds.  0 (the
    #: default) retries immediately — deterministic and sleep-free.
    retry_backoff_s: float = 0.0
    #: Per-cell deadline in seconds (checked between attempts); ``None``
    #: disables it.
    deadline_s: Optional[float] = None
    #: ``"fail"`` aborts the sweep on a cell failure (the exception
    #: propagates); ``"skip"`` records the cell as NaN (rendered ``—``)
    #: and continues.
    on_error: str = "fail"
    #: Label naming the running experiment in checkpoint keys and logs
    #: (set by the CLI; cells of different experiments never collide).
    experiment: str = ""


def default_config() -> ExperimentConfig:
    """The full-fidelity configuration used for EXPERIMENTS.md."""
    return ExperimentConfig()


def bench_config() -> ExperimentConfig:
    """Configuration for the benchmark suite.

    Honour ``REPRO_BENCH_SCALE`` (default 0.5) so CI can dial fidelity
    against wall-clock.  At 0.5 every experiment finishes in seconds to a
    couple of minutes; at 1.0 it reproduces EXPERIMENTS.md exactly.
    """
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))
    return ExperimentConfig(scale=scale)


def smoke_config() -> ExperimentConfig:
    """A tiny configuration for integration tests (sub-second datasets)."""
    return ExperimentConfig(
        scale=0.15,
        budget=20,
        budget_sweep=(5, 10, 20),
        delta_offsets=(0, 1),
        repeats=1,
        incbet_pivots=64,
    )
